//! Integration suite for the `sh-server` network front door: streamed
//! frames must reassemble byte-identical to the CLI driver's output,
//! sessions must be isolated (conflicting `SET`s answer independently),
//! a mid-stream client disconnect must not wedge a scheduler slot, and
//! admission-control push-back must surface as a retryable `429 BUSY`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use sh_bench::client::{Response, ShClient};
use spatialhadoop::dfs::{ClusterConfig, Dfs};
use spatialhadoop::mapreduce::SchedConfig;
use spatialhadoop::pigeon::run_script;
use spatialhadoop::server::{Server, ServerConfig};

fn dfs() -> Dfs {
    Dfs::new(ClusterConfig::small_for_tests())
}

/// One statement list, used both over the wire and through the CLI
/// driver. `GENERATE` is seed-deterministic, so two fresh clusters
/// produce identical data and the outputs must match byte for byte.
const SCRIPT: &str = "p = GENERATE 3000 POINT uniform INTO '/t/p'; \
     ip = INDEX p AS str+ INTO '/t/ip'; \
     r = FILTER ip BY Overlaps(RECTANGLE(200000, 200000, 700000, 700000)); \
     DUMP r; \
     k = KNN ip POINT(444444, 333333) K 25; \
     DUMP k;";

#[test]
fn streamed_frames_match_cli_driver_byte_for_byte() {
    // Tiny chunk size so the range result spans many DATA frames —
    // reassembly, not just single-frame transport, is under test.
    let server = Server::start(
        &dfs(),
        ServerConfig {
            chunk_bytes: 64,
            ..ServerConfig::default()
        },
    )
    .expect("start server");
    let mut client = ShClient::connect(&server.addr()).expect("connect");
    let streamed = client
        .request(SCRIPT)
        .expect("request")
        .expect_rows("script");
    client.quit().ok();

    let driver = run_script(&dfs(), SCRIPT).expect("cli driver");
    assert!(
        streamed.len() > 25,
        "expected a multi-frame result, got {} rows",
        streamed.len()
    );
    assert_eq!(streamed, driver, "wire rows diverge from CLI driver rows");
}

#[test]
fn sessions_answer_conflicting_sets_independently() {
    let server = Server::start(&dfs(), ServerConfig::default()).expect("start server");
    let mut c1 = ShClient::connect(&server.addr()).expect("c1");
    let mut c2 = ShClient::connect(&server.addr()).expect("c2");

    // Conflicting SETs: c1 caps dumps at 4 rows, c2 stays unlimited.
    c1.request("SET result_limit 4;")
        .expect("c1 set")
        .expect_rows("c1 set");
    c2.request("SET result_limit 0;")
        .expect("c2 set")
        .expect_rows("c2 set");

    let gen = |path: &str| format!("g = GENERATE 100 POINT uniform INTO '{path}'; DUMP g;");
    let r1 = c1
        .request(&gen("/iso/a"))
        .expect("c1 dump")
        .expect_rows("c1 dump");
    let r2 = c2
        .request(&gen("/iso/b"))
        .expect("c2 dump")
        .expect_rows("c2 dump");

    assert_eq!(r1.len(), 5, "c1: 4 rows + truncation marker, got {r1:?}");
    assert!(
        r1[4].contains("truncated by result_limit 4"),
        "c1 marker missing: {:?}",
        r1[4]
    );
    assert_eq!(r2.len(), 100, "c2 must not inherit c1's result_limit");

    // Vars are session-local too: c2 never bound c1's `g`? It did bind
    // its own; a third fresh session must see neither.
    let mut c3 = ShClient::connect(&server.addr()).expect("c3");
    match c3.request("DUMP g;").expect("c3 dump") {
        Response::Err(msg) => assert!(msg.contains("undefined"), "got {msg:?}"),
        other => panic!("c3 saw another session's binding: {other:?}"),
    }
    c1.quit().ok();
    c2.quit().ok();
    c3.quit().ok();
}

/// Builds shared bindings in the base session so every connection —
/// including ones we abandon mid-query — can run the same statements.
fn busy_server(queue_cap: usize) -> Server {
    Server::start(
        &dfs(),
        ServerConfig {
            init_script: Some(
                "p = GENERATE 2000 POINT uniform INTO '/w/p'; \
                 ip = INDEX p AS grid INTO '/w/ip';"
                    .to_string(),
            ),
            sched: SchedConfig {
                max_in_flight: 1,
                queue_cap,
                ..SchedConfig::default()
            },
            retry_ms: 5,
            ..ServerConfig::default()
        },
    )
    .expect("start server")
}

const SLOW_QUERY: &str = "s = KNN ip POINT(500000, 500000) K 5; DUMP s;";

#[test]
fn mid_stream_disconnect_does_not_wedge_a_scheduler_slot() {
    let server = busy_server(4);
    // Arm a fault-plan delay so queries hold the single slot ~1.5s.
    let mut ctl = ShClient::connect(&server.addr()).expect("ctl");
    ctl.request("SET retry_backoff_ms 0; SET fault_plan 'delay:0x1500';")
        .expect("arm")
        .expect_rows("arm");

    // Occupy the slot.
    let addr = server.addr();
    let runner = std::thread::spawn(move || {
        let mut c = ShClient::connect(&addr).expect("runner connect");
        let rows = c.request(SLOW_QUERY).expect("runner").expect_rows("runner");
        c.quit().ok();
        rows.len()
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.scheduler().running() == 0 {
        assert!(Instant::now() < deadline, "slow query never started");
        std::thread::sleep(Duration::from_millis(5));
    }

    // A raw client queues a second query, then vanishes mid-stream
    // without reading a single response byte.
    {
        let mut raw = TcpStream::connect(server.addr()).expect("raw connect");
        let mut banner = String::new();
        BufReader::new(raw.try_clone().expect("clone"))
            .read_line(&mut banner)
            .expect("banner");
        raw.write_all(SLOW_QUERY.as_bytes()).expect("raw send");
        raw.write_all(b"\n").expect("raw send");
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.scheduler().queue_depth() == 0 {
            assert!(Instant::now() < deadline, "abandoned query never queued");
            std::thread::sleep(Duration::from_millis(5));
        }
        // Dropping the stream here sends FIN with the statement queued.
    }

    // The server must notice, cancel the queued statement, and leave the
    // scheduler drainable: once the slow query finishes, a fresh client
    // gets a slot without waiting behind a ghost.
    let deadline = Instant::now() + Duration::from_secs(20);
    while server.scheduler().queue_depth() > 0 {
        assert!(
            Instant::now() < deadline,
            "abandoned statement still queued — disconnect wedged the scheduler"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(runner.join().expect("runner thread"), 5);

    ctl.request("SET fault_plan none;")
        .expect("disarm")
        .expect_rows("disarm");
    let mut fresh = ShClient::connect(&server.addr()).expect("fresh");
    let (resp, _retries) = fresh
        .request_with_retry(SLOW_QUERY, 100)
        .expect("fresh query");
    assert_eq!(resp.expect_rows("fresh query").len(), 5);
    fresh.quit().ok();
    ctl.quit().ok();
    // Dropping the server joins every connection thread — a wedged
    // handler would hang the test here rather than pass silently.
}

#[test]
fn saturated_scheduler_maps_queue_full_to_429_busy() {
    let server = busy_server(1);
    let mut ctl = ShClient::connect(&server.addr()).expect("ctl");
    ctl.request("SET retry_backoff_ms 0; SET fault_plan 'delay:0x1200';")
        .expect("arm")
        .expect_rows("arm");

    // Fill the slot and the 1-deep queue.
    let mut held = Vec::new();
    for _ in 0..2 {
        let addr = server.addr();
        held.push(std::thread::spawn(move || {
            let mut c = ShClient::connect(&addr).expect("held connect");
            let rows = c.request(SLOW_QUERY).expect("held").expect_rows("held");
            c.quit().ok();
            rows.len()
        }));
        std::thread::sleep(Duration::from_millis(150));
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.scheduler().running() == 0 || server.scheduler().queue_depth() == 0 {
        assert!(Instant::now() < deadline, "saturation never established");
        std::thread::sleep(Duration::from_millis(5));
    }

    let mut probe = ShClient::connect(&server.addr()).expect("probe");
    match probe.request(SLOW_QUERY).expect("probe") {
        Response::Busy { retry_ms } => assert_eq!(retry_ms, 5, "retry hint echoes config"),
        other => panic!("expected 429 BUSY from a saturated scheduler, got {other:?}"),
    }

    // The same request succeeds once capacity frees up — BUSY is
    // retryable, not fatal, and the connection stays usable.
    let (resp, retries) = probe
        .request_with_retry(SLOW_QUERY, 1000)
        .expect("probe retry");
    assert_eq!(resp.expect_rows("probe retry").len(), 5);
    assert!(
        retries > 0,
        "expected at least one 429 retry before success"
    );
    for h in held {
        assert_eq!(h.join().expect("held thread"), 5);
    }
    probe.quit().ok();
    ctl.quit().ok();
}

#[test]
fn quit_closes_the_session_politely() {
    let server = Server::start(&dfs(), ServerConfig::default()).expect("start server");
    let mut raw = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(raw.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("banner");
    assert_eq!(line.trim_end(), "SHADOOP 1 READY");
    raw.write_all(b"QUIT\n").expect("quit");
    line.clear();
    reader.read_line(&mut line).expect("bye");
    assert_eq!(line.trim_end(), "BYE");
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("eof");
    assert!(rest.is_empty(), "server kept talking after BYE: {rest:?}");
}
