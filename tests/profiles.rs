//! Cross-layer observability: every spatial operation must come back with
//! a usable [`JobProfile`] — splitter selectivity that adds up, DFS/shuffle
//! accounting, and a JSON rendering that round-trips exactly.

use spatialhadoop::core::ops::{join, knn, range};
use spatialhadoop::core::storage::{build_index, upload};
use spatialhadoop::dfs::{ClusterConfig, Dfs};
use spatialhadoop::geom::{Point, Rect};
use spatialhadoop::index::PartitionKind;
use spatialhadoop::trace::JobProfile;
use spatialhadoop::workload::{points, rects, Distribution};

fn indexed_points(dfs: &Dfs) -> spatialhadoop::core::SpatialFile {
    let uni = Rect::new(0.0, 0.0, 1_000_000.0, 1_000_000.0);
    let pts = points(20_000, Distribution::Uniform, &uni, 7);
    upload(dfs, "/data/points", &pts).unwrap();
    build_index::<Point>(dfs, "/data/points", "/idx/points", PartitionKind::StrPlus)
        .unwrap()
        .value
}

#[test]
fn range_query_profile_shows_pruning() {
    let dfs = Dfs::new(ClusterConfig::small_for_tests());
    let file = indexed_points(&dfs);
    let query = Rect::new(100_000.0, 100_000.0, 200_000.0, 200_000.0);
    let r = range::range_spatial::<Point>(&dfs, &file, &query, "/out/range").unwrap();

    let sel = r.selectivity();
    assert!(sel.partitions_pruned > 0, "small query must prune: {sel:?}");
    assert_eq!(
        sel.partitions_scanned + sel.partitions_pruned,
        file.partitions.len() as u64,
        "scanned + pruned must cover the whole file"
    );
    assert_eq!(sel.records_emitted, r.value.len() as u64);
    assert!(sel.records_scanned >= sel.records_emitted);

    let p = r.profile("range");
    assert!(p.dfs_local_bytes + p.dfs_remote_bytes > 0, "maps read data");
    assert!(p.phases.iter().any(|ph| ph.name == "map" && ph.tasks > 0));
}

#[test]
fn spatial_join_profile_covers_all_partition_pairs() {
    let dfs = Dfs::new(ClusterConfig::small_for_tests());
    let uni = Rect::new(0.0, 0.0, 500.0, 500.0);
    upload(&dfs, "/l", &rects(800, &uni, 10.0, 1)).unwrap();
    upload(&dfs, "/r", &rects(800, &uni, 10.0, 2)).unwrap();
    let a = build_index::<Rect>(&dfs, "/l", "/ia", PartitionKind::Grid)
        .unwrap()
        .value;
    let b = build_index::<Rect>(&dfs, "/r", "/ib", PartitionKind::Grid)
        .unwrap()
        .value;
    let j = join::distributed_join(&dfs, &a, &b, "/out/join").unwrap();

    // The join's pruning unit is partition *pairs*.
    let sel = j.selectivity();
    assert_eq!(
        sel.partitions_total,
        (a.partitions.len() * b.partitions.len()) as u64
    );
    assert_eq!(
        sel.partitions_scanned + sel.partitions_pruned,
        sel.partitions_total
    );
    assert!(
        sel.partitions_pruned > 0,
        "grid cells far apart must be filtered: {sel:?}"
    );
    assert!(!j.value.is_empty());
}

#[test]
fn knn_profile_prunes_and_roundtrips_as_json() {
    let dfs = Dfs::new(ClusterConfig::small_for_tests());
    let file = indexed_points(&dfs);
    let q = Point::new(500_000.0, 500_000.0);
    let r = knn::knn_spatial(&dfs, &file, &q, 10, "/out/knn").unwrap();
    assert_eq!(r.value.len(), 10);

    let sel = r.selectivity();
    assert!(
        sel.partitions_pruned > 0,
        "kNN should not touch every partition: {sel:?}"
    );
    assert_eq!(
        sel.partitions_scanned + sel.partitions_pruned,
        file.partitions.len() as u64
    );

    // The aggregated profile survives a JSON round-trip exactly.
    let p = r.profile("knn");
    let json = p.to_json();
    let back = JobProfile::from_json(&json).unwrap();
    assert_eq!(p, back, "JSON round-trip must be lossless");
    assert_eq!(back.to_json(), json);
}

#[test]
fn phase_histogram_p99_is_sane() {
    let dfs = Dfs::new(ClusterConfig::small_for_tests());
    let file = indexed_points(&dfs);
    let query = Rect::new(100_000.0, 100_000.0, 200_000.0, 200_000.0);
    let r = range::range_spatial::<Point>(&dfs, &file, &query, "/out/range").unwrap();

    let p = r.profile("range");
    let map = p
        .phases
        .iter()
        .find(|ph| ph.name == "map" && ph.tasks > 0)
        .expect("the range job has a map phase");
    let h = &map.task_micros;
    assert!(h.count() > 0, "map phase must record task durations");
    let (p50, p99, max) = (h.quantile(0.5), h.quantile(0.99), h.max());
    assert!(
        p50 <= p99 && p99 <= max,
        "quantiles must be ordered: p50={p50} p99={p99} max={max}"
    );
    // Fewer than 100 map tasks means rank(0.99) == count, so the p99
    // estimate collapses to the exact max — pin that, it is what STATS
    // renders for small jobs.
    assert!(h.count() < 100, "test workload stays under 100 map tasks");
    assert_eq!(p99, max);
}
