//! Cross-crate integration tests: full pipelines through the façade
//! crate, exercising workload generation → DFS loading → index building
//! → every operation, validated against single-machine baselines, plus
//! failure injection and the language layer.

use spatialhadoop::core::ops::{
    aggregate, closest_pair, convex_hull, delaunay, farthest_pair, join, knn, knn_join, plot,
    range, single, skyline, union, voronoi,
};
use spatialhadoop::core::storage::{build_index, build_index_with, upload};
use spatialhadoop::core::OpError;
use spatialhadoop::dfs::{ClusterConfig, Dfs};
use spatialhadoop::geom::algorithms::union::total_length;
use spatialhadoop::geom::point::sort_dedup;
use spatialhadoop::geom::{Point, Polygon, Record, Rect};
use spatialhadoop::index::{GlobalPartitioning, PartitionKind};
use spatialhadoop::pigeon;
use spatialhadoop::workload::{osm_like_points, osm_like_polygons, points, rects, Distribution};

fn test_cluster() -> Dfs {
    Dfs::new(ClusterConfig {
        num_nodes: 6,
        block_size: 16 * 1024,
        replication: 2,
        ..ClusterConfig::default()
    })
}

fn uni() -> Rect {
    Rect::new(0.0, 0.0, 10_000.0, 10_000.0)
}

fn canon_points(mut v: Vec<Point>) -> Vec<(i64, i64)> {
    v.sort_by(Point::cmp_xy);
    v.iter()
        .map(|p| ((p.x * 1e6) as i64, (p.y * 1e6) as i64))
        .collect()
}

#[test]
fn full_point_pipeline_all_operations() {
    let dfs = test_cluster();
    let pts = points(6_000, Distribution::Uniform, &uni(), 1001);
    upload(&dfs, "/pipe/points", &pts).unwrap();
    let file = build_index::<Point>(&dfs, "/pipe/points", "/pipe/idx", PartitionKind::StrPlus)
        .unwrap()
        .value;
    assert!(file.partitions.len() > 4);

    // Range.
    let query = Rect::new(2_000.0, 2_000.0, 3_500.0, 3_500.0);
    let got = range::range_spatial::<Point>(&dfs, &file, &query, "/pipe/range").unwrap();
    let expected = single::range_query(&pts, &query).value;
    assert_eq!(canon_points(got.value), canon_points(expected));

    // kNN.
    let q = Point::new(5_100.0, 4_900.0);
    let got = knn::knn_spatial(&dfs, &file, &q, 25, "/pipe/knn").unwrap();
    let expected = single::knn(&pts, &q, 25).value;
    assert_eq!(canon_points(got.value), canon_points(expected));

    // Skyline.
    let got = skyline::skyline_output_sensitive(&dfs, &file, "/pipe/sky").unwrap();
    let expected = single::skyline_single(&pts).value;
    assert_eq!(canon_points(got.value), canon_points(expected));

    // Hull.
    let got = convex_hull::hull_enhanced(&dfs, &file, "/pipe/hull").unwrap();
    let expected = single::convex_hull_single(&pts).value;
    assert_eq!(canon_points(got.value), canon_points(expected));

    // Closest pair.
    let got = closest_pair::closest_pair_spatial(&dfs, &file, "/pipe/cp").unwrap();
    let expected = single::closest_pair_single(&pts).value.unwrap();
    assert!((got.value.unwrap().distance - expected.distance).abs() < 1e-9);

    // Farthest pair.
    let got = farthest_pair::farthest_pair_spatial(&dfs, &file, "/pipe/fp").unwrap();
    let expected = single::farthest_pair_single(&pts).value.unwrap();
    assert!((got.value.unwrap().distance - expected.distance).abs() < 1e-9);
}

#[test]
fn voronoi_pipeline_is_exact() {
    let dfs = test_cluster();
    let mut pts = osm_like_points(2_000, &uni(), 5, 1002);
    sort_dedup(&mut pts);
    upload(&dfs, "/vd/points", &pts).unwrap();
    let file = build_index::<Point>(&dfs, "/vd/points", "/vd/idx", PartitionKind::Grid)
        .unwrap()
        .value;
    let got = voronoi::voronoi_spatial(&dfs, &file, "/vd/out").unwrap();
    assert_eq!(got.value.len(), pts.len());
    let expected = single::voronoi_single(&pts).value;
    let mut got_fp: Vec<_> = got.value.iter().map(|c| c.fingerprint()).collect();
    let mut exp_fp: Vec<_> = expected
        .cells
        .iter()
        .map(|c| {
            voronoi::VCell {
                site: c.site,
                vertices: c.vertices.clone(),
                bounded: c.bounded,
            }
            .fingerprint()
        })
        .collect();
    got_fp.sort();
    exp_fp.sort();
    assert_eq!(got_fp, exp_fp);
}

#[test]
fn union_pipeline_matches_baseline() {
    let dfs = test_cluster();
    let polys = osm_like_polygons(250, &uni(), 120.0, 1003);
    upload(&dfs, "/u/polys", &polys).unwrap();
    let reference = total_length(&single::union_single(&polys).value);

    let h = union::union_hadoop(&dfs, "/u/polys", "/u/h").unwrap();
    assert!((total_length(&h.value) - reference).abs() / reference < 1e-3);

    let file = build_index::<Polygon>(&dfs, "/u/polys", "/u/idx", PartitionKind::StrPlus)
        .unwrap()
        .value;
    let e = union::union_enhanced(&dfs, &file, "/u/e").unwrap();
    assert!((total_length(&e.value) - reference).abs() / reference < 1e-3);
}

#[test]
fn co_partitioned_join_pipeline() {
    let dfs = test_cluster();
    let left = rects(1_500, &uni(), 300.0, 1004);
    let right = rects(1_500, &uni(), 300.0, 1005);
    upload(&dfs, "/j/l", &left).unwrap();
    upload(&dfs, "/j/r", &right).unwrap();
    let gp = std::sync::Arc::new(GlobalPartitioning::build(
        PartitionKind::Grid,
        &[],
        uni(),
        16,
    ));
    let fa = build_index_with::<Rect>(&dfs, "/j/l", "/j/ia", gp.clone())
        .unwrap()
        .value;
    let fb = build_index_with::<Rect>(&dfs, "/j/r", "/j/ib", gp)
        .unwrap()
        .value;
    let dj = join::distributed_join(&dfs, &fa, &fb, "/j/dj").unwrap();
    let sj = join::sjmr(&dfs, "/j/l", "/j/r", &uni(), 16, "/j/sj").unwrap();
    let expected = single::spatial_join(&left, &right).value.len();
    assert_eq!(dj.value.len(), expected);
    assert_eq!(sj.value.len(), expected);
    // Co-partitioned: near-linear pair count.
    assert!(
        dj.counter("join.pairs.processed") <= 2 * fa.partitions.len() as u64,
        "{} pairs for {} partitions",
        dj.counter("join.pairs.processed"),
        fa.partitions.len()
    );
}

#[test]
fn pipeline_survives_node_failure() {
    let dfs = test_cluster();
    let pts = points(4_000, Distribution::Gaussian, &uni(), 1006);
    upload(&dfs, "/f/points", &pts).unwrap();
    let file = build_index::<Point>(&dfs, "/f/points", "/f/idx", PartitionKind::Grid)
        .unwrap()
        .value;
    // Kill one node after indexing: every partition still has a replica.
    dfs.kill_node(2);
    let query = Rect::new(4_000.0, 4_000.0, 6_000.0, 6_000.0);
    let got = range::range_spatial::<Point>(&dfs, &file, &query, "/f/out").unwrap();
    // Reads fell back to surviving replicas: traffic still flowed.
    assert!(got.counter("map.input.bytes.remote") > 0 || got.counter("map.input.bytes.local") > 0);
    let expected = single::range_query(&pts, &query).value;
    assert_eq!(canon_points(got.value), canon_points(expected.clone()));

    // Namenode re-replication restores the factor; subsequent jobs can
    // schedule locally again and answers stay correct.
    let created = dfs.rereplicate();
    assert!(created > 0, "lost replicas should be recreated");
    assert_eq!(dfs.unrecoverable_blocks(), 0);
    let again = range::range_spatial::<Point>(&dfs, &file, &query, "/f/out2").unwrap();
    assert_eq!(canon_points(again.value), canon_points(expected));
}

#[test]
fn pigeon_script_end_to_end_matches_api() {
    let dfs = test_cluster();
    let pts = points(3_000, Distribution::Uniform, &uni(), 1007);
    upload(&dfs, "/p/points", &pts).unwrap();
    let out = pigeon::run_script(
        &dfs,
        "pts = LOAD '/p/points' AS POINT;\n\
         idx = INDEX pts AS quadtree INTO '/p/idx';\n\
         sel = FILTER idx BY Overlaps(RECTANGLE(1000, 1000, 4000, 4000));\n\
         sky = SKYLINE idx;\n\
         DUMP sel;\n\
         DUMP sky;",
    )
    .unwrap();
    let query = Rect::new(1_000.0, 1_000.0, 4_000.0, 4_000.0);
    let expected_range = single::range_query(&pts, &query).value.len();
    let expected_sky = single::skyline_single(&pts).value.len();
    assert_eq!(out.len(), expected_range + expected_sky);
    // Each dumped line parses back as a point.
    for line in &out {
        Point::parse_line(line).unwrap();
    }
}

#[test]
fn reopened_index_answers_queries() {
    // An index built in one "session" is reopened from its master file.
    let dfs = test_cluster();
    let pts = points(2_500, Distribution::Uniform, &uni(), 1008);
    upload(&dfs, "/r/points", &pts).unwrap();
    build_index::<Point>(&dfs, "/r/points", "/r/idx", PartitionKind::Hilbert).unwrap();
    let reopened = spatialhadoop::core::SpatialFile::open(&dfs, "/r/idx").unwrap();
    assert_eq!(reopened.kind, PartitionKind::Hilbert);
    let query = Rect::new(0.0, 0.0, 2_000.0, 2_000.0);
    let got = range::range_spatial::<Point>(&dfs, &reopened, &query, "/r/out").unwrap();
    let expected = single::range_query(&pts, &query).value;
    assert_eq!(canon_points(got.value), canon_points(expected));
}

#[test]
fn knn_join_and_polygon_join_pipelines() {
    let dfs = test_cluster();
    let r = points(1_000, Distribution::Uniform, &uni(), 1101);
    let s = points(1_500, Distribution::Gaussian, &uni(), 1102);
    upload(&dfs, "/kj/r", &r).unwrap();
    upload(&dfs, "/kj/s", &s).unwrap();
    let rf = build_index::<Point>(&dfs, "/kj/r", "/kj/ri", PartitionKind::StrPlus)
        .unwrap()
        .value;
    let sf = build_index::<Point>(&dfs, "/kj/s", "/kj/si", PartitionKind::Grid)
        .unwrap()
        .value;
    let got = knn_join::knn_join_spatial(&dfs, &rf, &sf, 4, "/kj/out").unwrap();
    let expected = knn_join::knn_join_single(&r, &s, 4);
    assert_eq!(got.value.len(), expected.len());
    for (g, e) in got.value.iter().zip(&expected) {
        assert!(g.r.approx_eq(&e.r));
        let gd: Vec<i64> = g
            .neighbors
            .iter()
            .map(|n| (n.distance(&g.r) * 1e6) as i64)
            .collect();
        let ed: Vec<i64> = e
            .neighbors
            .iter()
            .map(|n| (n.distance(&e.r) * 1e6) as i64)
            .collect();
        assert_eq!(gd, ed);
    }

    let lakes = osm_like_polygons(120, &uni(), 120.0, 1103);
    let parks = osm_like_polygons(120, &uni(), 120.0, 1104);
    upload(&dfs, "/pj/l", &lakes).unwrap();
    upload(&dfs, "/pj/p", &parks).unwrap();
    let fl = build_index::<Polygon>(&dfs, "/pj/l", "/pj/il", PartitionKind::Grid)
        .unwrap()
        .value;
    let fp = build_index::<Polygon>(&dfs, "/pj/p", "/pj/ip", PartitionKind::Grid)
        .unwrap()
        .value;
    let pj = join::polygon_join(&dfs, &fl, &fp, "/pj/out").unwrap();
    let mut expected_pairs = 0usize;
    for l in &lakes {
        for p in &parks {
            if l.intersects(p) {
                expected_pairs += 1;
            }
        }
    }
    assert_eq!(pj.value.len(), expected_pairs);
}

#[test]
fn delaunay_plot_and_stats_pipelines() {
    let dfs = test_cluster();
    let mut pts = osm_like_points(1_500, &uni(), 4, 1105);
    sort_dedup(&mut pts);
    upload(&dfs, "/m/points", &pts).unwrap();
    let file = build_index::<Point>(&dfs, "/m/points", "/m/idx", PartitionKind::Grid)
        .unwrap()
        .value;

    // Delaunay triangulation matches the kernel.
    let dt = delaunay::delaunay_spatial(&dfs, &file, "/m/dt").unwrap();
    let kernel = spatialhadoop::geom::algorithms::delaunay::Triangulation::build(&pts);
    assert_eq!(dt.value.len(), kernel.triangles().len());

    // Plot matches the single-machine raster exactly.
    let raster = plot::plot_spatial::<Point>(&dfs, &file, 40, 40, "/m/plot").unwrap();
    let expected = plot::plot_single(&pts, &file.universe, 40, 40);
    assert_eq!(raster.value, expected);
    assert!(dfs.exists("/m/plot/image.pgm"));

    // Catalogue statistics agree with the full scan.
    let quick = aggregate::stats_spatial(&file);
    let scanned = aggregate::stats_hadoop::<Point>(&dfs, "/m/points", "/m/stats")
        .unwrap()
        .value;
    assert_eq!(quick.records, scanned.records);
}

#[test]
fn self_contained_pigeon_script_with_generate_plot_describe() {
    let dfs = test_cluster();
    let out = pigeon::run_script(
        &dfs,
        "pts = GENERATE 2000 POINT osm INTO '/sc/points';
         idx = INDEX pts AS str+ INTO '/sc/idx';
         DESCRIBE idx;
         PLOT idx WIDTH 24 HEIGHT 24 INTO '/sc/img';
         t = DELAUNAY idx;
         j = KNNJOIN idx, idx K 2;
         DUMP j;",
    )
    .unwrap();
    assert!(out[0].contains("2000 records"), "{}", out[0]);
    assert_eq!(out.len() - 1, 2000, "one kNN-join row per point");
    assert!(dfs.exists("/sc/img/image.pgm"));
}

#[test]
fn shipped_pigeon_scripts_parse() {
    for script in ["scripts/demo.pigeon", "scripts/analysis.pigeon"] {
        let source = std::fs::read_to_string(script).expect("script file present");
        let parsed = spatialhadoop::pigeon::parser::parse(&source)
            .unwrap_or_else(|e| panic!("{script}: {e}"));
        assert!(parsed.stmts.len() >= 5, "{script} looks truncated");
    }
}

#[test]
fn unsupported_combinations_error_cleanly() {
    let dfs = test_cluster();
    let pts = points(800, Distribution::Uniform, &uni(), 1009);
    upload(&dfs, "/e/points", &pts).unwrap();
    let overlapping = build_index::<Point>(&dfs, "/e/points", "/e/idx", PartitionKind::ZCurve)
        .unwrap()
        .value;
    assert!(matches!(
        closest_pair::closest_pair_spatial(&dfs, &overlapping, "/e/cp"),
        Err(OpError::Unsupported(_))
    ));
    assert!(matches!(
        skyline::skyline_output_sensitive(&dfs, &overlapping, "/e/sky"),
        Err(OpError::Unsupported(_))
    ));
    assert!(matches!(
        voronoi::voronoi_spatial(&dfs, &overlapping, "/e/vd"),
        Err(OpError::Unsupported(_))
    ));
}
