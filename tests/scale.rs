//! Opt-in scale tests — larger datasets than the default suite, still
//! asserting *exact* agreement with single-machine baselines.
//!
//! ```text
//! cargo test --release --test scale -- --ignored
//! ```

use spatialhadoop::core::ops::{closest_pair, range, single, skyline, voronoi};
use spatialhadoop::core::storage::{build_index, upload};
use spatialhadoop::dfs::{ClusterConfig, Dfs};
use spatialhadoop::geom::point::sort_dedup;
use spatialhadoop::geom::{Point, Rect};
use spatialhadoop::index::PartitionKind;
use spatialhadoop::workload::{default_universe, osm_like_points, points, Distribution};

fn cluster() -> Dfs {
    Dfs::new(ClusterConfig::paper_cluster(64 * 1024))
}

#[test]
#[ignore = "scale test: ~1M points, run with --ignored"]
fn million_point_range_and_skyline() {
    let dfs = cluster();
    let uni = default_universe();
    let pts = points(1_000_000, Distribution::Uniform, &uni, 9001);
    upload(&dfs, "/scale/points", &pts).unwrap();
    let file = build_index::<Point>(&dfs, "/scale/points", "/scale/idx", PartitionKind::StrPlus)
        .unwrap()
        .value;
    assert_eq!(file.total_records(), 1_000_000);

    let query = Rect::new(250_000.0, 250_000.0, 280_000.0, 280_000.0);
    let got = range::range_spatial::<Point>(&dfs, &file, &query, "/scale/r").unwrap();
    let expected = single::range_query(&pts, &query).value;
    assert_eq!(got.value.len(), expected.len());

    let sky = skyline::skyline_output_sensitive(&dfs, &file, "/scale/sky").unwrap();
    let mut expected = single::skyline_single(&pts).value;
    expected.sort_by(Point::cmp_xy);
    assert_eq!(sky.value.len(), expected.len());
}

#[test]
#[ignore = "scale test: 300k-site exact Voronoi, run with --ignored"]
fn large_voronoi_is_exact() {
    let dfs = cluster();
    let uni = default_universe();
    let mut sites = osm_like_points(300_000, &uni, 12, 9002);
    sort_dedup(&mut sites);
    upload(&dfs, "/scale/sites", &sites).unwrap();
    let file = build_index::<Point>(&dfs, "/scale/sites", "/scale/vidx", PartitionKind::Grid)
        .unwrap()
        .value;
    let got = voronoi::voronoi_spatial(&dfs, &file, "/scale/vd").unwrap();
    assert_eq!(got.value.len(), sites.len());
    // Spot-check exactness on a sample of cells against the global
    // diagram (full fingerprint comparison would dominate the runtime).
    let reference = single::voronoi_single(&sites).value;
    let mut ref_by_site: std::collections::HashMap<(i64, i64), _> = reference
        .cells
        .iter()
        .map(|c| (((c.site.x * 1e6) as i64, (c.site.y * 1e6) as i64), c))
        .collect();
    for cell in got.value.iter().step_by(997) {
        let key = ((cell.site.x * 1e6) as i64, (cell.site.y * 1e6) as i64);
        let r = ref_by_site.remove(&key).expect("site present");
        assert_eq!(cell.bounded, r.bounded);
        assert_eq!(cell.vertices.len(), r.vertices.len());
    }
    // The pruning claim at real partition sizes: the bulk of the cells
    // are final before any merge (the skewed OSM-like distribution keeps
    // sparse partitions boundary-heavy, so this is below the paper's 99%
    // for its uniform 64 MB partitions).
    let local = got.counter("voronoi.flushed.local") as f64;
    assert!(local / sites.len() as f64 > 0.80, "{local}");
}

#[test]
#[ignore = "scale test: 1M-point closest pair, run with --ignored"]
fn million_point_closest_pair() {
    let dfs = cluster();
    let uni = default_universe();
    let pts = points(1_000_000, Distribution::Gaussian, &uni, 9003);
    upload(&dfs, "/scale/cp", &pts).unwrap();
    let file = build_index::<Point>(&dfs, "/scale/cp", "/scale/cpidx", PartitionKind::StrPlus)
        .unwrap()
        .value;
    let got = closest_pair::closest_pair_spatial(&dfs, &file, "/scale/cpo").unwrap();
    let expected = single::closest_pair_single(&pts).value.unwrap();
    assert!((got.value.unwrap().distance - expected.distance).abs() < 1e-9);
    // Pruning forwards only a few percent at these partition sizes
    // (shrinks further with larger partitions; Gaussian tails keep
    // sparse partitions buffer-heavy).
    let frac = got.counter("closestpair.candidates") as f64 / pts.len() as f64;
    assert!(frac < 0.05, "forwarded fraction {frac}");
}
