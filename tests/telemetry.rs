//! Telemetry consistency chaos test: the event journal and the metrics
//! registry observe the same engine, so after any number of
//! fault-injected runs the journaled `task.retry` / `node.blacklist`
//! events must count exactly what the `job.task_retries` /
//! `job.nodes_blacklisted` counters accumulated — and both must match
//! the per-job profiles.
//!
//! This lives in its own test binary on purpose: integration tests
//! within one binary run on parallel threads, and both the journal and
//! the registry are process-global, so sharing a binary with unrelated
//! job-running tests would corrupt the deltas. CI also points
//! `SH_TELEMETRY_LOG` at a JSONL file when running this binary, which
//! exercises the streaming sink under chaos and leaves an uploadable
//! artifact.

use spatialhadoop::core::ops::range;
use spatialhadoop::core::storage::{build_index, upload};
use spatialhadoop::dfs::{ClusterConfig, Dfs, FaultPlan};
use spatialhadoop::geom::{Point, Rect};
use spatialhadoop::index::PartitionKind;
use spatialhadoop::trace::JobProfile;
use spatialhadoop::workload::{points, Distribution};

/// Iterations for the consistency loop: CI sets `SH_CHAOS_ITERS=10`;
/// plain `cargo test` keeps the quick default.
fn chaos_iters() -> usize {
    std::env::var("SH_CHAOS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
        .max(2)
}

/// Fresh cluster, fault-free upload + index build, then a range query
/// with a node kill and an injected task failure armed. Returns the
/// query job's profile.
fn run_with_faults() -> JobProfile {
    let mut cfg = ClusterConfig::small_for_tests();
    cfg.retry_backoff_ms = 0;
    let dfs = Dfs::new(cfg);
    let uni = Rect::new(0.0, 0.0, 1_000_000.0, 1_000_000.0);
    let pts = points(20_000, Distribution::Uniform, &uni, 7);
    upload(&dfs, "/data/points", &pts).unwrap();
    let file = build_index::<Point>(&dfs, "/data/points", "/idx/points", PartitionKind::Grid)
        .unwrap()
        .value;
    dfs.update_ft_options(|ft| {
        ft.node_blacklist_threshold = 1;
        ft.fault_plan = FaultPlan::none().kill_node(0).fail_task(1, 0);
    });
    let query = Rect::new(100_000.0, 100_000.0, 400_000.0, 400_000.0);
    let r = range::range_spatial::<Point>(&dfs, &file, &query, "/out/range").unwrap();
    r.profile("range")
}

#[test]
fn journal_events_match_registry_counters_under_chaos() {
    let journal = spatialhadoop::trace::journal();
    let registry = spatialhadoop::trace::global();

    let retry_events_before = journal.count("task.retry");
    let blacklist_events_before = journal.count("node.blacklist");
    let snap_before = registry.snapshot();

    let mut profiled_retries = 0;
    let mut profiled_blacklists = 0;
    for iter in 0..chaos_iters() {
        let profile = run_with_faults();
        assert!(
            profile.task_retries >= 1,
            "iteration {iter}: the killed node and injected failure must retry: {profile:?}"
        );
        // Threshold 1 blacklists the killed node and the node that
        // served the injected failure (usually distinct, so 1 or 2).
        assert!(
            profile.nodes_blacklisted >= 1,
            "iteration {iter}: at least the dead node is blacklisted: {profile:?}"
        );
        profiled_retries += profile.task_retries;
        profiled_blacklists += profile.nodes_blacklisted;
    }

    // Every retry the profiles counted was journaled exactly once and
    // rolled into the registry exactly once — no event is dropped by the
    // ring (lifetime counts survive wrap) and no site double-emits.
    let snap = registry.snapshot().since(&snap_before);
    assert_eq!(
        journal.count("task.retry") - retry_events_before,
        profiled_retries,
        "journaled task.retry events must match the profiled retries"
    );
    assert_eq!(
        snap.counter("job.task_retries"),
        profiled_retries,
        "registry retry counter must match the profiled retries"
    );
    assert_eq!(
        journal.count("node.blacklist") - blacklist_events_before,
        profiled_blacklists,
        "journaled node.blacklist events must match the profiled blacklists"
    );
    assert_eq!(
        snap.counter("job.nodes_blacklisted"),
        profiled_blacklists,
        "registry blacklist counter must match the profiled blacklists"
    );

    // The chaos runs also journaled job lifecycle events (index build +
    // query per iteration) and the node kills themselves.
    assert!(journal.count("job.started") >= 2 * chaos_iters() as u64);
    assert_eq!(journal.count("job.started"), journal.count("job.finished"));
    assert!(journal.count("node.kill") >= chaos_iters() as u64);
    assert!(
        journal.count("fault.inject") >= chaos_iters() as u64,
        "each iteration's injected task failure must be journaled"
    );

    // If CI pointed SH_TELEMETRY_LOG at a file, every journaled event
    // must have streamed there as one parseable JSONL object.
    if let Some(path) = journal.log_path() {
        let text = std::fs::read_to_string(&path).expect("telemetry log must exist");
        let mut streamed_retries = 0;
        for line in text.lines() {
            let v = spatialhadoop::trace::json::parse(line)
                .unwrap_or_else(|e| panic!("malformed JSONL line {line:?}: {e}"));
            if v.get("kind").and_then(|k| k.as_str()) == Some("task.retry") {
                streamed_retries += 1;
            }
        }
        assert!(
            streamed_retries >= profiled_retries,
            "sink saw {streamed_retries} task.retry lines, profiles counted {profiled_retries}"
        );
    }
}
