//! Property-based tests (proptest) over the whole stack: for arbitrary
//! random inputs, distributed results must equal single-machine results,
//! and structural invariants of the substrates must hold.

use proptest::prelude::*;
use spatialhadoop::core::ops::{range, single, skyline};
use spatialhadoop::core::storage::{build_index, build_index_fmt, upload, BlockFormat};
use spatialhadoop::dfs::{ClusterConfig, CorruptKind, Dfs, DfsError};
use spatialhadoop::geom::algorithms::closest_pair::{closest_pair, closest_pair_naive};
use spatialhadoop::geom::algorithms::convex_hull::{convex_hull, hull_contains};
use spatialhadoop::geom::algorithms::delaunay::{in_circle, Triangulation};
use spatialhadoop::geom::algorithms::farthest_pair::{farthest_pair, farthest_pair_naive};
use spatialhadoop::geom::algorithms::skyline::{skyline as skyline_kernel, skyline_naive};
use spatialhadoop::geom::point::sort_dedup;
use spatialhadoop::geom::{Point, Record, Rect};
use spatialhadoop::index::curve::{hilbert_point, hilbert_value};
use spatialhadoop::index::{owns_point, GlobalPartitioning, LocalRTree, PartitionKind};

fn arb_point() -> impl Strategy<Value = Point> {
    (0.0..1000.0f64, 0.0..1000.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(arb_point(), 2..max)
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0.0..900.0f64, 0.0..900.0f64, 1.0..100.0f64, 1.0..100.0f64)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hull_contains_every_input_point(pts in arb_points(120)) {
        let hull = convex_hull(&pts);
        for p in &pts {
            prop_assert!(hull_contains(&hull, p), "{p} outside its own hull");
        }
    }

    #[test]
    fn skyline_fast_matches_naive(pts in arb_points(120)) {
        let mut fast = skyline_kernel(&pts);
        fast.sort_by(Point::cmp_xy);
        prop_assert_eq!(fast, skyline_naive(&pts));
    }

    #[test]
    fn closest_pair_matches_naive(pts in arb_points(100)) {
        let fast = closest_pair(&pts).unwrap();
        let slow = closest_pair_naive(&pts).unwrap();
        prop_assert!((fast.distance - slow.distance).abs() < 1e-9);
    }

    #[test]
    fn farthest_pair_matches_naive(pts in arb_points(100)) {
        let fast = farthest_pair(&pts);
        let slow = farthest_pair_naive(&pts);
        match (fast, slow) {
            (Some(f), Some(s)) => prop_assert!((f.distance - s.distance).abs() < 1e-9),
            (f, s) => prop_assert_eq!(f.is_some(), s.is_some()),
        }
    }

    #[test]
    fn delaunay_empty_circumcircle(pts in arb_points(60)) {
        let mut sites = pts;
        sort_dedup(&mut sites);
        prop_assume!(sites.len() >= 3);
        let tri = Triangulation::build(&sites);
        for t in tri.triangles() {
            let [a, b, c] = t.map(|i| sites[i]);
            for (k, p) in sites.iter().enumerate() {
                if !t.contains(&k) {
                    prop_assert!(!in_circle(&a, &b, &c, p));
                }
            }
        }
    }

    #[test]
    fn hilbert_curve_is_bijective(x in 0u32..65536, y in 0u32..65536) {
        prop_assert_eq!(hilbert_point(hilbert_value(x, y)), (x, y));
    }

    #[test]
    fn rtree_query_equals_linear_scan(rects in prop::collection::vec(arb_rect(), 1..150),
                                      q in arb_rect()) {
        let tree = LocalRTree::build(rects.clone());
        let expected: Vec<usize> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.intersects(&q))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(tree.query(&q), expected);
    }

    #[test]
    fn disjoint_partitionings_give_unique_owners(
        pts in arb_points(200),
        kind in prop::sample::select(vec![
            PartitionKind::Grid,
            PartitionKind::QuadTree,
            PartitionKind::KdTree,
            PartitionKind::StrPlus,
        ]),
        target in 2usize..20,
    ) {
        let universe = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let gp = GlobalPartitioning::build(kind, &pts, universe, target);
        for p in &pts {
            let owners: Vec<usize> = (0..gp.len())
                .filter(|&i| owns_point(&gp.cell(i), p, &universe))
                .collect();
            prop_assert_eq!(owners.len(), 1, "{} owners for {}", owners.len(), p);
        }
    }

    #[test]
    fn disjoint_rect_assignment_covers_every_overlapping_cell(
        pts in arb_points(150),
        rects in prop::collection::vec(arb_rect(), 1..40),
        kind in prop::sample::select(vec![
            PartitionKind::Grid,
            PartitionKind::QuadTree,
            PartitionKind::KdTree,
            PartitionKind::StrPlus,
        ]),
    ) {
        let universe = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let gp = GlobalPartitioning::build(kind, &pts, universe, 12);
        for r in &rects {
            let assigned: std::collections::HashSet<usize> =
                gp.assign(r).into_iter().collect();
            prop_assert!(!assigned.is_empty());
            for i in 0..gp.len() {
                let cell = gp.cell(i);
                // Positive-area overlap must be assigned (zero-area edge
                // touches may legitimately go either way).
                let pos_overlap = cell
                    .intersection(r)
                    .map(|x| x.area() > 0.0)
                    .unwrap_or(false);
                if pos_overlap {
                    prop_assert!(
                        assigned.contains(&i),
                        "{}: rect {r} overlaps cell {i} but was not assigned",
                        kind.name()
                    );
                }
                // And every assigned cell really intersects the record.
                if assigned.contains(&i) {
                    prop_assert!(cell.intersects(r));
                }
            }
        }
    }

    #[test]
    fn overlapping_assignment_is_singular(
        pts in arb_points(200),
        rects in prop::collection::vec(arb_rect(), 1..40),
        kind in prop::sample::select(vec![
            PartitionKind::Str,
            PartitionKind::ZCurve,
            PartitionKind::Hilbert,
        ]),
    ) {
        let universe = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let gp = GlobalPartitioning::build(kind, &pts, universe, 10);
        for r in &rects {
            let assigned = gp.assign(r);
            prop_assert_eq!(assigned.len(), 1, "{}", kind.name());
            prop_assert!(assigned[0] < gp.len());
        }
    }

    #[test]
    fn chunked_mbr_filter_matches_scalar_oracle(
        pts in prop::collection::vec(arb_point(), 0..300),
        rects in prop::collection::vec(arb_rect(), 0..300),
        q in arb_rect(),
    ) {
        // The chunked (or explicit-SIMD) kernel behind `mbr_filter` must
        // agree with the short-circuiting scalar reference on every
        // block: empty blocks, odd-length tails (lengths 0..300 cover
        // every remainder mod the 8-wide lanes), and boundary-touching
        // queries whose edges pass exactly through record coordinates.
        use spatialhadoop::core::colblock;
        let pblock = colblock::decode(&colblock::encode(&pts).unwrap()).unwrap();
        prop_assert_eq!(pblock.mbr_filter(&q), pblock.mbr_filter_scalar(&q));
        let rblock = colblock::decode(&colblock::encode(&rects).unwrap()).unwrap();
        prop_assert_eq!(rblock.mbr_filter(&q), rblock.mbr_filter_scalar(&q));

        // On-edge semantics: a query rect built from two records'
        // coordinates puts those records exactly on the boundary, where
        // a >= / <= vs. > / < mismatch between kernels would show up.
        if pts.len() >= 2 {
            let (a, b) = (&pts[0], &pts[pts.len() / 2]);
            let edge = Rect::new(
                a.x.min(b.x), a.y.min(b.y), a.x.max(b.x), a.y.max(b.y),
            );
            prop_assert_eq!(pblock.mbr_filter(&edge), pblock.mbr_filter_scalar(&edge));
        }
        if let Some(r) = rects.first() {
            prop_assert_eq!(rblock.mbr_filter(r), rblock.mbr_filter_scalar(r));
        }
    }

    #[test]
    fn record_lines_roundtrip(pts in arb_points(30), rects in prop::collection::vec(arb_rect(), 1..30)) {
        for p in &pts {
            prop_assert_eq!(&Point::parse_line(&p.to_line()).unwrap(), p);
        }
        for r in &rects {
            prop_assert_eq!(&Rect::parse_line(&r.to_line()).unwrap(), r);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn disjoint_polygon_union_keeps_all_perimeter(
        centers in prop::collection::vec((0.0..900.0f64, 0.0..900.0f64), 1..12)
    ) {
        // Far-apart polygons (no overlap): boundary = every edge.
        use spatialhadoop::geom::algorithms::union::{boundary_union, total_length};
        use spatialhadoop::geom::Polygon;
        let polys: Vec<Polygon> = centers
            .iter()
            .enumerate()
            .map(|(i, &(_, _))| {
                // Lay them out on a coarse lattice so they never touch.
                let x = (i % 10) as f64 * 100.0;
                let y = (i / 10) as f64 * 100.0;
                Polygon::from_rect(&Rect::new(x, y, x + 10.0, y + 10.0))
            })
            .collect();
        let segs = boundary_union(&polys);
        let expected: f64 = polys.iter().map(Polygon::perimeter).sum();
        prop_assert!((total_length(&segs) - expected).abs() < 1e-6);
    }

    #[test]
    fn voronoi_safe_cells_survive_additions(
        pts in arb_points(80),
        extra in arb_points(20),
    ) {
        use spatialhadoop::geom::algorithms::voronoi::{cell_fingerprint, VoronoiDiagram};
        let partition = Rect::new(250.0, 250.0, 750.0, 750.0);
        let mut inside: Vec<Point> = pts
            .into_iter()
            .filter(|p| partition.contains_point(p))
            .collect();
        sort_dedup(&mut inside);
        prop_assume!(inside.len() >= 4);
        let local = VoronoiDiagram::build(&inside);
        let safe: Vec<_> = local.cells.iter().filter(|c| c.is_safe(&partition)).collect();
        // Add only points strictly outside the partition.
        let mut all = inside.clone();
        all.extend(extra.iter().filter(|p| !partition.contains_point(p)));
        sort_dedup(&mut all);
        let global = VoronoiDiagram::build(&all);
        for s in safe {
            let g = global
                .cells
                .iter()
                .find(|c| c.site.approx_eq(&s.site))
                .expect("site still present");
            prop_assert_eq!(cell_fingerprint(g), cell_fingerprint(s));
        }
    }

    #[test]
    fn reservoir_sampling_is_within_bounds(k in 0usize..50, n in 0usize..500, seed in 0u64..100) {
        use spatialhadoop::index::sampler::reservoir_sample;
        let s = reservoir_sample(0..n, k, seed);
        prop_assert_eq!(s.len(), k.min(n));
        for x in s {
            prop_assert!(x < n);
        }
    }

    #[test]
    fn segment_clipping_stays_inside(ax in 0.0..100.0f64, ay in 0.0..100.0f64,
                                     bx in 0.0..100.0f64, by in 0.0..100.0f64) {
        use spatialhadoop::geom::Segment;
        let s = Segment::new(Point::new(ax, ay), Point::new(bx, by));
        let clip = Rect::new(25.0, 25.0, 75.0, 75.0);
        if let Some(c) = s.clip(&clip) {
            let grown = clip.buffer(1e-9);
            prop_assert!(grown.contains_point(&c.a));
            prop_assert!(grown.contains_point(&c.b));
            prop_assert!(c.length() <= s.length() + 1e-9);
        }
    }
}

// Distributed-vs-baseline properties run fewer cases: each case spins up
// a DFS and runs MapReduce jobs.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn distributed_range_query_matches_scan(
        pts in arb_points(800),
        q in arb_rect(),
        kind in prop::sample::select(vec![
            PartitionKind::Grid,
            PartitionKind::StrPlus,
            PartitionKind::Str,
            PartitionKind::Hilbert,
        ]),
    ) {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        upload(&dfs, "/pp/points", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/pp/points", "/pp/idx", kind).unwrap().value;
        let got = range::range_spatial::<Point>(&dfs, &file, &q, "/pp/out").unwrap();
        let mut got_pts = got.value;
        got_pts.sort_by(Point::cmp_xy);
        let mut expected = single::range_query(&pts, &q).value;
        expected.sort_by(Point::cmp_xy);
        prop_assert_eq!(got_pts, expected);
    }

    #[test]
    fn distributed_delaunay_matches_kernel(pts in arb_points(400)) {
        use spatialhadoop::core::ops::delaunay::{delaunay_spatial, Tri};
        use spatialhadoop::geom::algorithms::delaunay::Triangulation;
        let mut sites = pts;
        sort_dedup(&mut sites);
        prop_assume!(sites.len() >= 10);
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        upload(&dfs, "/pd/points", &sites).unwrap();
        let file = build_index::<Point>(&dfs, "/pd/points", "/pd/idx", PartitionKind::Grid)
            .unwrap()
            .value;
        let got = delaunay_spatial(&dfs, &file, "/pd/out").unwrap();
        let tri = Triangulation::build(&sites);
        let mut expected: Vec<_> = tri
            .triangles()
            .into_iter()
            .map(|t| Tri(t.map(|i| sites[i])).fingerprint())
            .collect();
        expected.sort();
        let mut got_fp: Vec<_> = got.value.iter().map(Tri::fingerprint).collect();
        got_fp.sort();
        prop_assert_eq!(got_fp, expected);
    }

    #[test]
    fn distributed_hull_and_closest_pair_match_kernels(pts in arb_points(600)) {
        use spatialhadoop::core::ops::{closest_pair, convex_hull};
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        upload(&dfs, "/ph/points", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/ph/points", "/ph/idx", PartitionKind::StrPlus)
            .unwrap()
            .value;
        let hull = convex_hull::hull_enhanced(&dfs, &file, "/ph/hull").unwrap();
        let mut got: Vec<Point> = hull.value;
        got.sort_by(Point::cmp_xy);
        let mut expected = spatialhadoop::geom::algorithms::convex_hull::convex_hull(&pts);
        expected.sort_by(Point::cmp_xy);
        prop_assert_eq!(got, expected);

        let cp = closest_pair::closest_pair_spatial(&dfs, &file, "/ph/cp").unwrap();
        let truth = closest_pair(&pts).unwrap();
        prop_assert!((cp.value.unwrap().distance - truth.distance).abs() < 1e-9);
    }

    #[test]
    fn binary_index_answers_exactly_like_text(
        pts in arb_points(600),
        q in arb_rect(),
        kind in prop::sample::select(vec![
            PartitionKind::Grid,
            PartitionKind::StrPlus,
            PartitionKind::Hilbert,
        ]),
    ) {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        upload(&dfs, "/pb/points", &pts).unwrap();
        let tf = build_index_fmt::<Point>(&dfs, "/pb/points", "/pb/it", kind, BlockFormat::Text)
            .unwrap()
            .value;
        let bf = build_index_fmt::<Point>(&dfs, "/pb/points", "/pb/ib", kind, BlockFormat::Binary)
            .unwrap()
            .value;
        let sorted = |file, out| {
            let mut v = range::range_spatial::<Point>(&dfs, file, &q, out).unwrap().value;
            v.sort_by(Point::cmp_xy);
            v
        };
        prop_assert_eq!(sorted(&tf, "/pb/ot"), sorted(&bf, "/pb/ob"));
    }

    #[test]
    fn pigeon_parser_never_panics(source in ".{0,120}") {
        // Arbitrary input must produce Ok or a structured error, never a
        // panic.
        let _ = spatialhadoop::pigeon::parser::parse(&source);
    }

    #[test]
    fn any_single_byte_of_rot_is_detected_and_healed(
        pts in arb_points(600),
        offset in 0u64..1_000_000,
        replica in 0usize..2,
        fmt in prop::sample::select(vec![BlockFormat::Text, BlockFormat::Binary]),
    ) {
        // One flipped byte at an arbitrary offset of an arbitrary
        // replica — in either the text or the SHCB columnar layout —
        // must be seen by the scrubber and healed from the sibling
        // replica, never silently served.
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        upload(&dfs, "/pr/points", &pts).unwrap();
        let file = build_index_fmt::<Point>(&dfs, "/pr/points", "/pr/idx", PartitionKind::Grid, fmt)
            .unwrap()
            .value;
        let victim = &file.partitions[offset as usize % file.partitions.len()].path;
        let healthy = dfs.read_bytes(victim).unwrap();
        prop_assert!(dfs.corrupt_replica_byte(victim, replica, offset));
        let report = dfs.scrub("/pr/");
        prop_assert_eq!(report.corrupt, 1, "exactly one replica rotted: {}", report);
        prop_assert_eq!(report.repaired, 1, "{}", report);
        prop_assert_eq!(report.unrecoverable, 0, "{}", report);
        prop_assert_eq!(dfs.read_bytes(victim).unwrap(), healthy);
        prop_assert_eq!(dfs.scrub("/pr/").corrupt, 0, "second scrub must run clean");
    }

    #[test]
    fn flip_and_truncate_are_healed_by_read_repair(
        pts in arb_points(600),
        replica in 0usize..2,
        kind in prop::sample::select(vec![CorruptKind::Flip, CorruptKind::Truncate]),
    ) {
        // Plain reads must always come back byte-identical, whichever
        // replica rotted. Reads walk candidates in preference order, so
        // rot on the first pick is detected and read-repaired on the
        // spot; rot on a later sibling is simply never served and is
        // the scrubber's job to find.
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        upload(&dfs, "/pt/points", &pts).unwrap();
        let healthy = dfs.read_to_string("/pt/points").unwrap();
        let hit = dfs.corrupt_replica("/pt/points", replica, kind);
        prop_assert!(hit > 0, "corruption must land on at least one block");
        let before = dfs.metrics().snapshot();
        prop_assert_eq!(dfs.read_to_string("/pt/points").unwrap(), healthy);
        let delta = dfs.metrics().snapshot().since(&before);
        if replica == 0 {
            prop_assert_eq!(delta.corrupt_replicas, hit as u64);
            prop_assert!(delta.repaired_replicas >= hit as u64);
            prop_assert_eq!(dfs.scrub("/pt/").corrupt, 0, "read-repair must have healed all");
        } else {
            let report = dfs.scrub("/pt/");
            prop_assert_eq!(report.corrupt, hit, "scrub must find what reads skipped");
            prop_assert_eq!(report.repaired, hit, "{}", report);
        }
        prop_assert_eq!(dfs.scrub("/pt/").corrupt, 0, "everything healed");
    }

    #[test]
    fn unreplicated_corruption_errors_instead_of_wrong_bytes(
        pts in arb_points(400),
        offset in 0u64..1_000_000,
        kind in prop::sample::select(vec![CorruptKind::Flip, CorruptKind::Truncate]),
    ) {
        // With a single replica there is nothing to heal from: the read
        // must fail with a structured error — a wrong answer is the one
        // unacceptable outcome.
        let mut cfg = ClusterConfig::small_for_tests();
        cfg.replication = 1;
        let dfs = Dfs::new(cfg);
        upload(&dfs, "/p1/points", &pts).unwrap();
        if kind == CorruptKind::Flip {
            prop_assert!(dfs.corrupt_replica_byte("/p1/points", 0, offset));
        } else {
            prop_assert!(dfs.corrupt_replica("/p1/points", 0, kind) > 0);
        }
        match dfs.read_to_string("/p1/points") {
            Err(DfsError::CorruptBlock(_)) => {}
            other => prop_assert!(false, "expected CorruptBlock, got {:?}", other.map(|s| s.len())),
        }
        let report = dfs.scrub("/p1/");
        prop_assert!(report.unrecoverable >= 1, "{}", report);
        prop_assert_eq!(report.repaired, 0, "{}", report);
    }

    #[test]
    fn distributed_skyline_matches_kernel(pts in arb_points(800)) {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        upload(&dfs, "/ps/points", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/ps/points", "/ps/idx", PartitionKind::StrPlus)
            .unwrap()
            .value;
        let got = skyline::skyline_output_sensitive(&dfs, &file, "/ps/out").unwrap();
        let mut got_pts = got.value;
        got_pts.sort_by(Point::cmp_xy);
        let mut expected = skyline_kernel(&pts);
        expected.sort_by(Point::cmp_xy);
        expected.dedup_by(|a, b| a.approx_eq(b));
        got_pts.dedup_by(|a, b| a.approx_eq(b));
        prop_assert_eq!(got_pts, expected);
    }
}
