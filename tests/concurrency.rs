//! Concurrency stress: many threads hammer one indexed file with mixed
//! queries. Every concurrent result must match the serial baseline, the
//! shared worker-slot pool must never be breached, and the cache
//! counters must stay consistent under the race (per-job counters sum
//! to the global registry's delta — no lost updates).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use spatialhadoop::core::ops::{knn, range};
use spatialhadoop::core::storage::{build_index, upload};
use spatialhadoop::dfs::{ClusterConfig, Dfs};
use spatialhadoop::geom::{Point, Rect};
use spatialhadoop::index::PartitionKind;
use spatialhadoop::workload::{points, Distribution};

const THREADS: usize = 8;

/// Shorter under plain `cargo test`; CI's chaos stage exports
/// `SH_STRESS_MILLIS=2000` for the full soak.
fn stress_millis() -> u64 {
    std::env::var("SH_STRESS_MILLIS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500)
}

fn range_lines(
    dfs: &Dfs,
    file: &spatialhadoop::core::SpatialFile,
    q: &Rect,
    out: &str,
) -> (Vec<String>, u64, u64) {
    let r = range::range_spatial::<Point>(dfs, file, q, out).unwrap();
    let lines = r.value.iter().map(|p| format!("{} {}", p.x, p.y)).collect();
    (lines, r.counter("cache.hits"), r.counter("cache.misses"))
}

fn knn_lines(
    dfs: &Dfs,
    file: &spatialhadoop::core::SpatialFile,
    q: &Point,
    k: usize,
    out: &str,
) -> (Vec<String>, u64, u64) {
    let r = knn::knn_spatial(dfs, file, q, k, out).unwrap();
    let lines = r.value.iter().map(|p| format!("{} {}", p.x, p.y)).collect();
    (lines, r.counter("cache.hits"), r.counter("cache.misses"))
}

#[test]
fn stress_mixed_queries_match_serial_baseline() {
    let dfs = Dfs::new(ClusterConfig::small_for_tests());
    let uni = Rect::new(0.0, 0.0, 1_000_000.0, 1_000_000.0);
    let pts = points(10_000, Distribution::Uniform, &uni, 42);
    upload(&dfs, "/data/points", &pts).unwrap();
    let file = build_index::<Point>(&dfs, "/data/points", "/idx/points", PartitionKind::Grid)
        .unwrap()
        .value;

    let ranges = [
        Rect::new(100_000.0, 100_000.0, 400_000.0, 400_000.0),
        Rect::new(500_000.0, 200_000.0, 900_000.0, 700_000.0),
        Rect::new(0.0, 0.0, 250_000.0, 990_000.0),
    ];
    let knns = [
        (Point::new(500_000.0, 500_000.0), 10usize),
        (Point::new(123_456.0, 654_321.0), 25usize),
    ];

    // Serial baselines, one per query shape.
    let base_ranges: Vec<Vec<String>> = ranges
        .iter()
        .enumerate()
        .map(|(i, q)| range_lines(&dfs, &file, q, &format!("/base/r{i}")).0)
        .collect();
    let base_knns: Vec<Vec<String>> = knns
        .iter()
        .enumerate()
        .map(|(i, (q, k))| knn_lines(&dfs, &file, q, *k, &format!("/base/k{i}")).0)
        .collect();

    // Count cache traffic only from here on: the concurrent phase's
    // per-job counters must sum exactly to the registry's delta.
    let registry = spatialhadoop::trace::global();
    let before = registry.snapshot();
    let job_hits = Arc::new(AtomicU64::new(0));
    let job_misses = Arc::new(AtomicU64::new(0));

    let deadline = Instant::now() + Duration::from_millis(stress_millis());
    let mut workers = Vec::new();
    for t in 0..THREADS {
        let dfs = dfs.clone();
        let file = file.clone();
        let base_ranges = base_ranges.clone();
        let base_knns = base_knns.clone();
        let job_hits = Arc::clone(&job_hits);
        let job_misses = Arc::clone(&job_misses);
        workers.push(std::thread::spawn(move || {
            let mut iters = 0u64;
            while Instant::now() < deadline {
                let (lines, hits, misses) = match (iters as usize + t) % 5 {
                    i @ 0..=2 => {
                        let out = format!("/out/t{t}-i{iters}-r{i}");
                        let got = range_lines(&dfs, &file, &ranges[i], &out);
                        assert_eq!(got.0, base_ranges[i], "thread {t} range {i} diverged");
                        got
                    }
                    i => {
                        let (q, k) = &knns[i - 3];
                        let out = format!("/out/t{t}-i{iters}-k{i}");
                        let got = knn_lines(&dfs, &file, q, *k, &out);
                        assert_eq!(got.0, base_knns[i - 3], "thread {t} knn {i} diverged");
                        got
                    }
                };
                drop(lines);
                job_hits.fetch_add(hits, Ordering::Relaxed);
                job_misses.fetch_add(misses, Ordering::Relaxed);
                iters += 1;
            }
            iters
        }));
    }
    let total_iters: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert!(
        total_iters >= THREADS as u64,
        "each thread ran at least once"
    );

    // The shared slot pool bounded task concurrency across all threads.
    assert!(
        dfs.slots().peak() <= dfs.slots().total(),
        "slot pool breached: peak {} > total {}",
        dfs.slots().peak(),
        dfs.slots().total()
    );

    // Cache counters are race-free: the per-job counters (one per
    // partition open) add up exactly to the global registry's delta.
    let delta = registry.snapshot().since(&before);
    assert_eq!(
        delta.counter("dfs.cache.hits"),
        job_hits.load(Ordering::Relaxed),
        "cache hit counters lost updates"
    );
    assert_eq!(
        delta.counter("dfs.cache.misses"),
        job_misses.load(Ordering::Relaxed),
        "cache miss counters lost updates"
    );
}
