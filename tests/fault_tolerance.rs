//! Chaos tests: injected task failures, node kills, and stragglers must
//! never change query results — only the fault-tolerance counters. Every
//! scenario runs the same seeded workload with and without faults and
//! demands byte-identical output.

use spatialhadoop::core::ops::range;
use spatialhadoop::core::storage::{build_index, upload};
use spatialhadoop::dfs::{ClusterConfig, Dfs, FaultPlan};
use spatialhadoop::geom::{Point, Rect};
use spatialhadoop::index::PartitionKind;
use spatialhadoop::trace::JobProfile;
use spatialhadoop::workload::{points, Distribution};

const QUERY: [f64; 4] = [100_000.0, 100_000.0, 400_000.0, 400_000.0];

/// Uploads a fixed-seed dataset, indexes it, applies the chaos knobs,
/// and runs a range query. Returns the result lines (in output order —
/// determinism matters, so no sorting), the query's aggregated profile,
/// and the raw bytes of every output part file.
fn run_range(chaos: impl FnOnce(&Dfs)) -> (Vec<String>, JobProfile, String) {
    let mut cfg = ClusterConfig::small_for_tests();
    cfg.retry_backoff_ms = 0;
    cfg.placement_seed = chaos_seed();
    let dfs = Dfs::new(cfg);
    let uni = Rect::new(0.0, 0.0, 1_000_000.0, 1_000_000.0);
    let pts = points(20_000, Distribution::Uniform, &uni, 7);
    upload(&dfs, "/data/points", &pts).unwrap();
    let file = build_index::<Point>(&dfs, "/data/points", "/idx/points", PartitionKind::Grid)
        .unwrap()
        .value;
    // Faults arm only now: the index build above runs fault-free so
    // every scenario queries the identical on-disk layout.
    chaos(&dfs);
    let query = Rect::new(QUERY[0], QUERY[1], QUERY[2], QUERY[3]);
    let r = range::range_spatial::<Point>(&dfs, &file, &query, "/out/range").unwrap();
    let lines: Vec<String> = r.value.iter().map(|p| format!("{} {}", p.x, p.y)).collect();
    let profile = r.profile("range");
    let mut raw = String::new();
    for part in dfs.list("/out/range/part-") {
        raw.push_str(&dfs.read_to_string(&part).unwrap());
    }
    (lines, profile, raw)
}

fn baseline() -> (Vec<String>, JobProfile, String) {
    run_range(|_| {})
}

#[test]
fn task_that_fails_twice_still_yields_identical_output() {
    let (base_lines, base_profile, base_raw) = baseline();
    assert_eq!(base_profile.task_retries, 0, "baseline must be fault-free");
    assert!(!base_lines.is_empty());

    let (lines, profile, raw) = run_range(|dfs| {
        dfs.update_ft_options(|ft| {
            ft.fault_plan = FaultPlan::none().fail_task(0, 0).fail_task(0, 1);
        });
    });
    assert_eq!(
        profile.task_retries, 2,
        "two injected failures, two retries"
    );
    assert_eq!(lines, base_lines, "results must not change under retries");
    assert_eq!(raw, base_raw, "part files must be byte-identical");
}

#[test]
fn node_killed_at_wave_boundary_is_blacklisted_and_output_unchanged() {
    let (base_lines, _, base_raw) = baseline();

    let (lines, profile, raw) = run_range(|dfs| {
        dfs.update_ft_options(|ft| {
            ft.node_blacklist_threshold = 1;
            ft.fault_plan = FaultPlan::none().kill_node(0);
        });
    });
    assert!(
        profile.task_retries >= 1,
        "tasks scheduled on the killed node must retry: {profile:?}"
    );
    assert_eq!(profile.nodes_blacklisted, 1, "the dead node is blacklisted");
    assert_eq!(
        lines, base_lines,
        "results must not change under a node kill"
    );
    assert_eq!(raw, base_raw, "part files must be byte-identical");
}

#[test]
fn speculative_duplicate_wins_and_output_unchanged() {
    let (base_lines, _, base_raw) = baseline();

    let t0 = std::time::Instant::now();
    let (lines, profile, raw) = run_range(|dfs| {
        dfs.update_ft_options(|ft| {
            ft.speculative_execution = true;
            ft.speculation_threshold_ms = 10;
            // Speculation needs an idle worker while the straggler
            // sleeps; don't let a 1-core machine shrink the pool.
            ft.worker_threads = Some(4);
            ft.fault_plan = FaultPlan::none().delay_task(0, 2_000);
        });
    });
    assert!(profile.speculative_launched >= 1, "{profile:?}");
    assert!(
        profile.speculative_won >= 1,
        "the undelayed backup must win: {profile:?}"
    );
    assert!(
        t0.elapsed() < std::time::Duration::from_millis(1_900),
        "the cancelled straggler must not serve its full delay"
    );
    assert_eq!(
        lines, base_lines,
        "results must not change under speculation"
    );
    assert_eq!(raw, base_raw, "part files must be byte-identical");
}

#[test]
fn pruning_statistics_survive_faults() {
    let mut cfg = ClusterConfig::small_for_tests();
    cfg.retry_backoff_ms = 0;
    let dfs = Dfs::new(cfg);
    let uni = Rect::new(0.0, 0.0, 1_000_000.0, 1_000_000.0);
    let pts = points(20_000, Distribution::Uniform, &uni, 7);
    upload(&dfs, "/data/points", &pts).unwrap();
    let file = build_index::<Point>(&dfs, "/data/points", "/idx/points", PartitionKind::Grid)
        .unwrap()
        .value;
    dfs.update_ft_options(|ft| {
        ft.fault_plan = FaultPlan::none().fail_task(0, 0);
    });
    let query = Rect::new(QUERY[0], QUERY[1], QUERY[2], QUERY[3]);
    let r = range::range_spatial::<Point>(&dfs, &file, &query, "/out/range").unwrap();
    // The global-index pruning contract holds even when tasks retried.
    let sel = r.selectivity();
    assert!(sel.partitions_pruned > 0, "small query must prune: {sel:?}");
    assert_eq!(
        sel.partitions_scanned + sel.partitions_pruned,
        file.partitions.len() as u64
    );
    assert_eq!(sel.records_emitted, r.value.len() as u64);
    assert_eq!(r.profile("range").task_retries, 1);
}

#[test]
fn cached_rerun_is_byte_identical_and_invalidated_by_churn() {
    let mut cfg = ClusterConfig::small_for_tests();
    cfg.retry_backoff_ms = 0;
    let dfs = Dfs::new(cfg);
    let uni = Rect::new(0.0, 0.0, 1_000_000.0, 1_000_000.0);
    let pts = points(20_000, Distribution::Uniform, &uni, 7);
    upload(&dfs, "/data/points", &pts).unwrap();
    let file = build_index::<Point>(&dfs, "/data/points", "/idx/points", PartitionKind::Grid)
        .unwrap()
        .value;
    let query = Rect::new(QUERY[0], QUERY[1], QUERY[2], QUERY[3]);
    let run = |out: &str| {
        let r = range::range_spatial::<Point>(&dfs, &file, &query, out).unwrap();
        let mut raw = String::new();
        for part in dfs.list(&format!("{out}/part-")) {
            raw.push_str(&dfs.read_to_string(&part).unwrap());
        }
        (r, raw)
    };

    // The index build warms the cache as a side effect; clear it so the
    // first query pays the full parse + sidecar-load path.
    dfs.cache().clear();
    let (cold, cold_raw) = run("/out/c0");
    assert!(cold.counter("cache.misses") > 0, "cold run must miss");
    assert_eq!(cold.counter("cache.hits"), 0, "cold run cannot hit");
    assert!(dfs.cache().stats().resident_entries > 0);

    // Warm rerun: served from cache, byte-identical output, and the hit
    // counters surface in the job profile.
    let (warm, warm_raw) = run("/out/c1");
    assert!(warm.counter("cache.hits") > 0, "warm run must hit");
    assert_eq!(warm.counter("cache.misses"), 0, "warm run must not miss");
    assert_eq!(warm_raw, cold_raw, "warm rerun must be byte-identical");
    assert_eq!(warm.profile("range").counters["cache.hits"], {
        warm.counter("cache.hits")
    });

    // Node churn wipes the cache: post-rereplication reruns parse fresh
    // replica bytes and must still match the cold output exactly.
    dfs.kill_node(0);
    assert_eq!(
        dfs.cache().stats().resident_entries,
        0,
        "kill_node must clear the cache"
    );
    dfs.rereplicate();
    dfs.revive_node(0);
    let (churn, churn_raw) = run("/out/c2");
    assert!(churn.counter("cache.misses") > 0, "churn run reparses");
    assert_eq!(churn_raw, cold_raw, "rerun after churn must match cold");

    // Overwriting one partition must not serve stale cached records:
    // drop a record that the query returns and rerun.
    let victim = file
        .partitions
        .iter()
        .find(|p| p.mbr_rect().intersects(&query))
        .expect("some partition overlaps the query");
    let content = dfs.read_to_string(&victim.path).unwrap();
    let dropped = content
        .lines()
        .find(|l| {
            let mut it = l.split_whitespace();
            let x: f64 = it.next().unwrap().parse().unwrap();
            let y: f64 = it.next().unwrap().parse().unwrap();
            query.contains_point(&Point::new(x, y))
        })
        .expect("the overlapping partition holds a matching record")
        .to_string();
    dfs.delete(&victim.path);
    let mut w = dfs.create(&victim.path).unwrap();
    for line in content.lines().filter(|l| *l != dropped) {
        w.write_line(line);
    }
    w.close().unwrap();
    let (fresh, fresh_raw) = run("/out/c3");
    assert!(
        fresh.counter("cache.misses") >= 1,
        "the overwritten partition must be reparsed"
    );
    assert_eq!(
        fresh.value.len(),
        cold.value.len() - 1,
        "exactly the dropped record disappears"
    );
    assert!(
        !fresh_raw.contains(&dropped),
        "stale cached parse leaked the deleted record"
    );
}

/// Iterations for the determinism loops: CI sets `SH_CHAOS_ITERS=10` and
/// gets the full sweep from one test-binary invocation; plain `cargo
/// test` keeps the quick default.
fn chaos_iters() -> usize {
    std::env::var("SH_CHAOS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
        .max(2)
}

/// Seed for replica placement in the chaos runs. CI varies it via
/// `SH_CHAOS_SEED` and the value is printed exactly once, so a failing
/// run's log always carries everything needed to reproduce it locally.
/// Defaults to the cluster's stock placement seed.
fn chaos_seed() -> u64 {
    static SEED: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *SEED.get_or_init(|| {
        let seed = std::env::var("SH_CHAOS_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(ClusterConfig::small_for_tests().placement_seed);
        eprintln!("SH_CHAOS_SEED={seed}");
        seed
    })
}

#[test]
fn chaos_runs_are_deterministic_across_processes_worth_of_state() {
    // Same seeds + same fault plan = identical bytes, run repeatedly
    // from scratch (fresh DFS each time, fresh replica placement).
    let chaos = |dfs: &Dfs| {
        dfs.update_ft_options(|ft| {
            ft.node_blacklist_threshold = 1;
            ft.fault_plan = FaultPlan::none().kill_node(0).fail_task(1, 0);
        });
    };
    let (lines_a, _, raw_a) = run_range(chaos);
    for i in 1..chaos_iters() {
        let (lines_b, _, raw_b) = run_range(chaos);
        assert_eq!(lines_a, lines_b, "iteration {i} diverged");
        assert_eq!(raw_a, raw_b, "iteration {i} bytes diverged");
    }
}

#[test]
fn two_concurrent_jobs_under_chaos_are_deterministic() {
    use spatialhadoop::mapreduce::{JobScheduler, SchedConfig};

    // Serial fault-free run is the reference output.
    let (base_lines, _, base_raw) = baseline();

    for iter in 0..chaos_iters() {
        let mut cfg = ClusterConfig::small_for_tests();
        cfg.retry_backoff_ms = 0;
        let dfs = Dfs::new(cfg);
        let uni = Rect::new(0.0, 0.0, 1_000_000.0, 1_000_000.0);
        let pts = points(20_000, Distribution::Uniform, &uni, 7);
        upload(&dfs, "/data/points", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/data/points", "/idx/points", PartitionKind::Grid)
            .unwrap()
            .value;
        // Arm faults only after the fault-free index build.
        dfs.update_ft_options(|ft| {
            ft.node_blacklist_threshold = 1;
            ft.fault_plan = FaultPlan::none().kill_node(0);
        });

        let sched = JobScheduler::new(&dfs, SchedConfig::default());
        let query = Rect::new(QUERY[0], QUERY[1], QUERY[2], QUERY[3]);
        let handles: Vec<_> = (0..2)
            .map(|j| {
                let file = file.clone();
                sched
                    .submit(&format!("range{j}"), move |dfs| {
                        let out = format!("/out/r{j}");
                        let r = range::range_spatial::<Point>(dfs, &file, &query, &out).unwrap();
                        let lines: Vec<String> =
                            r.value.iter().map(|p| format!("{} {}", p.x, p.y)).collect();
                        let mut raw = String::new();
                        for part in dfs.list(&format!("{out}/part-")) {
                            raw.push_str(&dfs.read_to_string(&part).unwrap());
                        }
                        (lines, raw)
                    })
                    .unwrap()
            })
            .collect();
        // A third party churns the cache while both jobs read: the
        // epoch protocol must keep every result byte-identical.
        let churn_dfs = dfs.clone();
        let churn = std::thread::spawn(move || {
            for _ in 0..20 {
                churn_dfs.cache().clear();
                std::thread::yield_now();
            }
        });
        for h in handles {
            let (lines, raw) = h.join().unwrap();
            assert_eq!(lines, base_lines, "iteration {iter} diverged");
            assert_eq!(raw, base_raw, "iteration {iter} bytes diverged");
        }
        churn.join().unwrap();
        // Two jobs on one cluster never exceeded the shared slot pool.
        assert!(
            dfs.slots().peak() <= dfs.slots().total(),
            "slot pool breached: {} > {}",
            dfs.slots().peak(),
            dfs.slots().total()
        );
    }
}

#[test]
fn text_and_binary_indexes_answer_identically_under_chaos() {
    use spatialhadoop::core::ops::join;
    use spatialhadoop::core::storage::{build_index_fmt, BlockFormat};
    use spatialhadoop::workload::rects;

    for iter in 0..chaos_iters() {
        let mut cfg = ClusterConfig::small_for_tests();
        cfg.retry_backoff_ms = 0;
        let dfs = Dfs::new(cfg);
        let uni = Rect::new(0.0, 0.0, 1_000_000.0, 1_000_000.0);
        let pts = points(20_000, Distribution::Uniform, &uni, 7);
        upload(&dfs, "/data/points", &pts).unwrap();
        let ra = rects(4_000, &uni, 8_000.0, 12);
        let rb = rects(4_000, &uni, 8_000.0, 13);
        upload(&dfs, "/data/ra", &ra).unwrap();
        upload(&dfs, "/data/rb", &rb).unwrap();

        // The same data indexed twice, once per layout. Builds run
        // fault-free so both formats see identical partition boundaries.
        let build = |fmt: BlockFormat, tag: &str| {
            let p = build_index_fmt::<Point>(
                &dfs,
                "/data/points",
                &format!("/i{tag}/p"),
                PartitionKind::StrPlus,
                fmt,
            )
            .unwrap()
            .value;
            let a = build_index_fmt::<Rect>(
                &dfs,
                "/data/ra",
                &format!("/i{tag}/a"),
                PartitionKind::Grid,
                fmt,
            )
            .unwrap()
            .value;
            let b = build_index_fmt::<Rect>(
                &dfs,
                "/data/rb",
                &format!("/i{tag}/b"),
                PartitionKind::Grid,
                fmt,
            )
            .unwrap()
            .value;
            (p, a, b)
        };
        let (tp, ta, tb) = build(BlockFormat::Text, "t");
        let (bp, ba, bb) = build(BlockFormat::Binary, "b");

        // Chaos arms only for the queries.
        dfs.update_ft_options(|ft| {
            ft.node_blacklist_threshold = 1;
            ft.fault_plan = FaultPlan::none().kill_node(0).fail_task(1, 0);
        });

        // Every (format, scan-path) combination under the same chaos
        // plan must produce byte-identical output: text vs. binary, and
        // within binary the owned decode vs. the mmap zero-copy path
        // (which spills block bytes to disk and reinterprets them in
        // place — node kills and re-replication move block *placement*,
        // never content, so the mapping stays valid).
        let query = Rect::new(QUERY[0], QUERY[1], QUERY[2], QUERY[3]);
        let mut range_base: Option<(Vec<String>, String)> = None;
        let mut join_base: Option<(Vec<(Rect, Rect)>, String)> = None;
        for mmap in [false, true] {
            dfs.update_ft_options(|ft| ft.mmap_scans = mmap);
            dfs.cache().clear();
            let m = mmap as usize;

            let range_run = |file: &spatialhadoop::core::SpatialFile, out: &str| {
                let r = range::range_spatial::<Point>(&dfs, file, &query, out).unwrap();
                let lines: Vec<String> =
                    r.value.iter().map(|p| format!("{} {}", p.x, p.y)).collect();
                let mut raw = String::new();
                for part in dfs.list(&format!("{out}/part-")) {
                    raw.push_str(&dfs.read_to_string(&part).unwrap());
                }
                (lines, raw)
            };
            let (rt_lines, rt_raw) = range_run(&tp, &format!("/out/rt{m}"));
            let (rb_lines, rb_raw) = range_run(&bp, &format!("/out/rb{m}"));
            assert!(!rt_lines.is_empty(), "iteration {iter}: empty range result");
            assert_eq!(
                rt_lines, rb_lines,
                "iteration {iter} mmap={mmap}: range diverged"
            );
            assert_eq!(
                rt_raw, rb_raw,
                "iteration {iter} mmap={mmap}: range bytes not identical"
            );
            match &range_base {
                None => range_base = Some((rt_lines, rt_raw)),
                Some((lines0, raw0)) => {
                    assert_eq!(
                        lines0, &rt_lines,
                        "iteration {iter}: mmap range diverged from owned"
                    );
                    assert_eq!(
                        raw0, &rt_raw,
                        "iteration {iter}: mmap range bytes differ from owned"
                    );
                }
            }

            let dj_run = |a: &spatialhadoop::core::SpatialFile,
                          b: &spatialhadoop::core::SpatialFile,
                          out: &str| {
                let r = join::distributed_join(&dfs, a, b, out).unwrap();
                let mut raw = String::new();
                for part in dfs.list(&format!("{out}/part-")) {
                    raw.push_str(&dfs.read_to_string(&part).unwrap());
                }
                (r.value, raw)
            };
            let (jt, jt_raw) = dj_run(&ta, &tb, &format!("/out/jt{m}"));
            let (jb, jb_raw) = dj_run(&ba, &bb, &format!("/out/jb{m}"));
            assert!(!jt.is_empty(), "iteration {iter}: empty join result");
            assert_eq!(jt, jb, "iteration {iter} mmap={mmap}: join diverged");
            assert_eq!(
                jt_raw, jb_raw,
                "iteration {iter} mmap={mmap}: join bytes not identical"
            );
            match &join_base {
                None => join_base = Some((jt, jt_raw)),
                Some((jt0, raw0)) => {
                    assert_eq!(jt0, &jt, "iteration {iter}: mmap join diverged from owned");
                    assert_eq!(
                        raw0, &jt_raw,
                        "iteration {iter}: mmap join bytes differ from owned"
                    );
                }
            }
        }
    }
}

#[test]
fn silent_corruption_is_repaired_with_byte_identical_output() {
    use spatialhadoop::core::storage::{build_index_fmt, BlockFormat};
    use spatialhadoop::dfs::CorruptKind;

    let (base_lines, _, base_raw) = baseline();
    let query = Rect::new(QUERY[0], QUERY[1], QUERY[2], QUERY[3]);

    for iter in 0..chaos_iters() {
        for mmap in [false, true] {
            let mut cfg = ClusterConfig::small_for_tests();
            cfg.retry_backoff_ms = 0;
            // Vary placement per iteration so the corrupted ordinal
            // lands on different nodes across the sweep.
            cfg.placement_seed = chaos_seed().wrapping_add(iter as u64);
            let dfs = Dfs::new(cfg);
            let uni = Rect::new(0.0, 0.0, 1_000_000.0, 1_000_000.0);
            let pts = points(20_000, Distribution::Uniform, &uni, 7);
            upload(&dfs, "/data/points", &pts).unwrap();

            for (fmt, tag) in [(BlockFormat::Text, "t"), (BlockFormat::Binary, "b")] {
                let dir = format!("/i{tag}/p");
                let file =
                    build_index_fmt::<Point>(&dfs, "/data/points", &dir, PartitionKind::Grid, fmt)
                        .unwrap()
                        .value;

                // Rot the primary replica of every stored file in the
                // index directory — partitions, local-index sidecars,
                // and the partition manifest alike. Ordinal 0 is the
                // locality-first pick, so every cold read is guaranteed
                // to hit the corruption, not route around it.
                let mut plan = FaultPlan::none();
                for (i, f) in dfs.list(&format!("{dir}/")).iter().enumerate() {
                    let kind = if i % 2 == 0 {
                        CorruptKind::Flip
                    } else {
                        CorruptKind::Truncate
                    };
                    plan = plan.corrupt_replica(f, 0, kind);
                }
                dfs.update_ft_options(|ft| {
                    ft.fault_plan = plan;
                    ft.mmap_scans = mmap;
                });
                dfs.cache().clear();

                let before = dfs.metrics().snapshot();
                let out = format!("/out/corrupt-{tag}{}", mmap as usize);
                let r = range::range_spatial::<Point>(&dfs, &file, &query, &out).unwrap();
                let lines: Vec<String> =
                    r.value.iter().map(|p| format!("{} {}", p.x, p.y)).collect();
                let mut raw = String::new();
                for part in dfs.list(&format!("{out}/part-")) {
                    raw.push_str(&dfs.read_to_string(&part).unwrap());
                }
                let delta = dfs.metrics().snapshot().since(&before);
                assert!(
                    delta.corrupt_replicas > 0,
                    "iteration {iter} fmt={tag} mmap={mmap}: query never hit the rot"
                );
                assert!(
                    delta.repaired_replicas > 0,
                    "iteration {iter} fmt={tag} mmap={mmap}: nothing was repaired"
                );
                assert_eq!(
                    lines, base_lines,
                    "iteration {iter} fmt={tag} mmap={mmap}: results diverged"
                );
                assert_eq!(
                    raw, base_raw,
                    "iteration {iter} fmt={tag} mmap={mmap}: bytes diverged"
                );

                // Query-driven read-repair only heals what the query
                // read; pruned partitions still rot. A scrub reports
                // and heals every remaining fault, and a second pass
                // must come back clean.
                dfs.update_ft_options(|ft| ft.fault_plan = FaultPlan::none());
                let report = dfs.scrub(&format!("{dir}/"));
                assert_eq!(
                    report.unrecoverable, 0,
                    "iteration {iter} fmt={tag}: replication 2 must always recover"
                );
                assert_eq!(
                    report.corrupt, report.repaired,
                    "iteration {iter} fmt={tag}: scrub left faults behind: {report}"
                );
                let clean = dfs.scrub(&format!("{dir}/"));
                assert_eq!(
                    clean.corrupt, 0,
                    "iteration {iter} fmt={tag}: second scrub must run clean"
                );

                // Post-repair reruns parse fresh healthy bytes.
                let (re_lines, re_raw) = {
                    let out = format!("/out/healed-{tag}{}", mmap as usize);
                    let r = range::range_spatial::<Point>(&dfs, &file, &query, &out).unwrap();
                    let lines: Vec<String> =
                        r.value.iter().map(|p| format!("{} {}", p.x, p.y)).collect();
                    let mut raw = String::new();
                    for part in dfs.list(&format!("{out}/part-")) {
                        raw.push_str(&dfs.read_to_string(&part).unwrap());
                    }
                    (lines, raw)
                };
                assert_eq!(re_lines, base_lines, "healed rerun diverged");
                assert_eq!(re_raw, base_raw, "healed rerun bytes diverged");
            }
        }
    }
}
