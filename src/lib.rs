//! # spatialhadoop — façade crate
//!
//! Re-exports the whole SpatialHadoop-rs workspace behind one dependency,
//! which is what the `examples/` and cross-crate integration `tests/` use.
//!
//! The layering mirrors the paper's architecture:
//!
//! * [`trace`] — cross-layer observability: spans, metrics, job profiles,
//! * [`geom`] — computational-geometry substrate,
//! * [`dfs`] — simulated HDFS (block-structured distributed file system),
//! * [`mapreduce`] — MapReduce engine with a cluster cost model,
//! * [`index`] — spatial partitioning techniques + local indexes,
//! * [`core`] — the SpatialHadoop layers: storage (index building jobs),
//!   spatial MapReduce components, and the operations layer,
//! * [`pigeon`] — the high-level query language,
//! * [`server`] — the TCP front door: sessions, streamed results,
//!   back-pressure over the job scheduler,
//! * [`workload`] — dataset generators used by tests and benchmarks.

pub use sh_core as core;
pub use sh_dfs as dfs;
pub use sh_geom as geom;
pub use sh_index as index;
pub use sh_mapreduce as mapreduce;
pub use sh_pigeon as pigeon;
pub use sh_server as server;
pub use sh_trace as trace;
pub use sh_workload as workload;
