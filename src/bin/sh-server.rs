//! `sh-server` — network front door for the simulated cluster.
//!
//! Starts a TCP query server speaking the Pigeon line protocol and
//! prints `LISTENING <addr>` once it is accepting:
//!
//! ```text
//! cargo run --release --bin sh-server -- --port 0
//! printf "p = GENERATE 1000 POINT uniform INTO '/p';\nDUMP p;\nQUIT\n" | nc 127.0.0.1 <port>
//! ```
//!
//! `--init <script>` runs a Pigeon script at startup; the datasets it
//! binds are visible to every connection (each gets its own copy of the
//! bindings, so `SET` and new bindings stay per-session).

use std::process::ExitCode;

use spatialhadoop::dfs::{ClusterConfig, Dfs};
use spatialhadoop::mapreduce::SchedPolicy;
use spatialhadoop::server::{Server, ServerConfig};

fn main() -> ExitCode {
    let mut port = 0u16;
    let mut host = "127.0.0.1".to_string();
    let mut nodes = 25usize;
    let mut block_kb = 64u64;
    let mut cfg = ServerConfig::default();
    let mut init_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        macro_rules! value {
            ($what:expr) => {
                match args.next() {
                    Some(v) => v,
                    None => return usage(concat!($what, " needs a value")),
                }
            };
        }
        match arg.as_str() {
            "--port" => match value!("--port").parse() {
                Ok(v) => port = v,
                Err(_) => return usage("--port needs a number"),
            },
            "--host" => host = value!("--host"),
            "--nodes" => match value!("--nodes").parse() {
                Ok(v) => nodes = v,
                Err(_) => return usage("--nodes needs a number"),
            },
            "--block-kb" => match value!("--block-kb").parse() {
                Ok(v) => block_kb = v,
                Err(_) => return usage("--block-kb needs a number"),
            },
            "--max-inflight" => match value!("--max-inflight").parse::<usize>() {
                Ok(v) if v > 0 => cfg.sched.max_in_flight = v,
                _ => return usage("--max-inflight needs a positive number"),
            },
            "--queue-cap" => match value!("--queue-cap").parse::<usize>() {
                Ok(v) if v > 0 => cfg.sched.queue_cap = v,
                _ => return usage("--queue-cap needs a positive number"),
            },
            "--policy" => match SchedPolicy::parse(&value!("--policy")) {
                Ok(p) => cfg.sched.policy = p,
                Err(e) => return usage(&e),
            },
            "--chunk-bytes" => match value!("--chunk-bytes").parse::<usize>() {
                Ok(v) if v > 0 => cfg.chunk_bytes = v,
                _ => return usage("--chunk-bytes needs a positive number"),
            },
            "--retry-ms" => match value!("--retry-ms").parse() {
                Ok(v) => cfg.retry_ms = v,
                Err(_) => return usage("--retry-ms needs a number"),
            },
            "--init" => init_path = Some(value!("--init")),
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unexpected argument {other:?}")),
        }
    }
    if let Some(path) = init_path {
        match std::fs::read_to_string(&path) {
            Ok(src) => cfg.init_script = Some(src),
            Err(e) => {
                eprintln!("sh-server: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    cfg.addr = format!("{host}:{port}");
    let dfs = Dfs::new(ClusterConfig {
        num_nodes: nodes,
        block_size: block_kb * 1024,
        ..ClusterConfig::default()
    });
    let server = match Server::start(&dfs, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sh-server: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("sh-server: simulated cluster with {nodes} nodes, {block_kb} KiB blocks");
    // Scripts (ci.sh, loadgen) parse this exact line for the bound port.
    println!("LISTENING {}", server.addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    // Serve until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("sh-server: {err}");
    }
    eprintln!(
        "usage: sh-server [--host H] [--port P] [--nodes N] [--block-kb K] \
         [--max-inflight N] [--queue-cap N] [--policy fifo|fair] \
         [--chunk-bytes N] [--retry-ms N] [--init script.pigeon]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
