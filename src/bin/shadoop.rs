//! `shadoop` — command-line Pigeon driver over a simulated cluster.
//!
//! Runs a Pigeon script against a fresh simulated SpatialHadoop cluster
//! and prints the `DUMP`ed results:
//!
//! ```text
//! cargo run --release --bin shadoop -- script.pigeon
//! cargo run --release --bin shadoop -- --nodes 10 --block-kb 32 script.pigeon
//! echo "p = GENERATE 1000 POINT uniform INTO '/p'; DUMP p;" | cargo run --bin shadoop -- -
//! ```
//!
//! The `GENERATE` statement makes scripts self-contained:
//!
//! ```text
//! pts  = GENERATE 100000 POINT osm INTO '/data/points';
//! idx  = INDEX pts AS str+ INTO '/idx/points';
//! near = KNN idx POINT(500000, 500000) K 10;
//! sky  = SKYLINE idx;
//! DUMP near;
//! DUMP sky;
//! ```

use std::io::Read;
use std::process::ExitCode;

use spatialhadoop::dfs::{ClusterConfig, Dfs};
use spatialhadoop::pigeon;

fn main() -> ExitCode {
    let mut nodes = 25usize;
    let mut block_kb = 64u64;
    let mut script_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => nodes = v,
                None => return usage("--nodes needs a number"),
            },
            "--block-kb" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => block_kb = v,
                None => return usage("--block-kb needs a number"),
            },
            "--help" | "-h" => return usage(""),
            other if script_path.is_none() => script_path = Some(other.to_string()),
            other => return usage(&format!("unexpected argument {other:?}")),
        }
    }
    let Some(path) = script_path else {
        return usage("missing script path (or '-' for stdin)");
    };
    let source = if path == "-" {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("shadoop: failed to read stdin");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("shadoop: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let dfs = Dfs::new(ClusterConfig {
        num_nodes: nodes,
        block_size: block_kb * 1024,
        ..ClusterConfig::default()
    });
    eprintln!("shadoop: simulated cluster with {nodes} nodes, {block_kb} KiB blocks");
    match pigeon::run_script(&dfs, &source) {
        Ok(lines) => {
            for line in lines {
                println!("{line}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("shadoop: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("shadoop: {err}");
    }
    eprintln!("usage: shadoop [--nodes N] [--block-kb K] <script.pigeon | ->");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
