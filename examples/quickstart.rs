//! Quickstart: load a dataset, build a spatial index, and run the two
//! bread-and-butter queries (range + kNN) on both Hadoop and
//! SpatialHadoop plans.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use spatialhadoop::core::ops::{knn, range};
use spatialhadoop::core::storage::{build_index, upload};
use spatialhadoop::dfs::{ClusterConfig, Dfs};
use spatialhadoop::geom::{Point, Rect};
use spatialhadoop::index::PartitionKind;
use spatialhadoop::workload::{default_universe, points, Distribution};

fn main() {
    // A simulated 25-node cluster with laptop-scaled 64 KiB blocks.
    let dfs = Dfs::new(ClusterConfig::paper_cluster(64 * 1024));

    // 1. Generate and load 100k uniform points as a heap (text) file.
    let universe = default_universe();
    let pts = points(100_000, Distribution::Uniform, &universe, 42);
    upload(&dfs, "/data/points", &pts).expect("upload");
    println!(
        "loaded {} points into {} blocks",
        pts.len(),
        dfs.stat("/data/points").unwrap().num_blocks
    );

    // 2. Bulk-build an STR+ index (sample -> boundaries -> partition).
    let built = build_index::<Point>(
        &dfs,
        "/data/points",
        "/index/points",
        PartitionKind::StrPlus,
    )
    .expect("index build");
    let build_time = built.sim().total();
    let file = built.value;
    println!(
        "built {} index: {} partitions, simulated build time {build_time:.1}s",
        file.kind.name(),
        file.partitions.len(),
    );

    // 3. Range query: full scan vs. index.
    let query = Rect::new(250_000.0, 250_000.0, 300_000.0, 300_000.0);
    let h = range::range_hadoop::<Point>(&dfs, "/data/points", &query, "/out/range-h")
        .expect("hadoop range");
    let s =
        range::range_spatial::<Point>(&dfs, &file, &query, "/out/range-s").expect("spatial range");
    assert_eq!(h.value.len(), s.value.len());
    println!(
        "range query -> {} results | hadoop scans {} tasks ({:.2}s scan phase) | \
         spatialhadoop opens {} ({:.2}s scan phase, {:.0}x less I/O)",
        s.value.len(),
        h.map_tasks(),
        h.sim().map,
        s.map_tasks(),
        s.sim().map,
        (h.counter("map.input.bytes.local") + h.counter("map.input.bytes.remote")) as f64
            / (s.counter("map.input.bytes.local") + s.counter("map.input.bytes.remote")).max(1)
                as f64
    );

    // 4. kNN around the universe centre.
    let q = Point::new(500_000.0, 500_000.0);
    let nn = knn::knn_spatial(&dfs, &file, &q, 5, "/out/knn").expect("knn");
    println!("5 nearest neighbours of {q} (in {} round(s)):", nn.rounds());
    for p in &nn.value {
        println!("  {p}  (distance {:.1})", p.distance(&q));
    }

    // 5. Every operation carries a per-job profile: phase durations,
    //    DFS traffic, shuffle volume, and splitter selectivity.
    println!();
    println!("{}", s.profile("range-spatial").render());
}
