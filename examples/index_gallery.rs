//! Index gallery: renders every partitioning technique over the same
//! skewed dataset as SVG files, plus the Voronoi diagram of a sample —
//! the fastest way to *see* how the seven techniques differ.
//!
//! ```text
//! cargo run --release --example index_gallery
//! open gallery/str+.svg
//! ```

use std::fmt::Write as _;
use std::fs;

use spatialhadoop::core::storage::{build_index, upload};
use spatialhadoop::dfs::{ClusterConfig, Dfs};
use spatialhadoop::geom::algorithms::voronoi::VoronoiDiagram;
use spatialhadoop::geom::point::sort_dedup;
use spatialhadoop::geom::{Point, Rect};
use spatialhadoop::index::PartitionKind;
use spatialhadoop::workload::{default_universe, osm_like_points};

const CANVAS: f64 = 800.0;

fn main() {
    let universe = default_universe();
    let pts = osm_like_points(60_000, &universe, 10, 2024);
    fs::create_dir_all("gallery").expect("create gallery dir");

    // One SVG per technique: partition cells + a sample of the points.
    for kind in PartitionKind::ALL {
        let dfs = Dfs::new(ClusterConfig::paper_cluster(16 * 1024));
        upload(&dfs, "/g/points", &pts).expect("upload");
        let file = build_index::<Point>(&dfs, "/g/points", "/g/idx", kind)
            .expect("build index")
            .value;
        let mut svg = svg_header(&universe);
        // Points first (under the cell outlines).
        for p in pts.iter().step_by(30) {
            let (x, y) = project(p, &universe);
            let _ = writeln!(
                svg,
                r##"<circle cx="{x:.1}" cy="{y:.1}" r="1" fill="#4a7aa7" fill-opacity="0.5"/>"##
            );
        }
        for part in &file.partitions {
            let r = part.mbr_rect();
            let (x1, y2) = project(&Point::new(r.x1, r.y1), &universe);
            let (x2, y1) = project(&Point::new(r.x2, r.y2), &universe);
            let _ = writeln!(
                svg,
                r##"<rect x="{x1:.1}" y="{y1:.1}" width="{:.1}" height="{:.1}" fill="none" stroke="#c0392b" stroke-width="1"/>"##,
                x2 - x1,
                y2 - y1
            );
        }
        svg.push_str("</svg>\n");
        let name = kind.name().replace('+', "plus");
        let path = format!("gallery/{name}.svg");
        fs::write(&path, &svg).expect("write svg");
        println!(
            "{path}: {} partitions ({})",
            file.partitions.len(),
            if kind.is_disjoint() {
                "disjoint"
            } else {
                "overlapping"
            }
        );
    }

    // Voronoi diagram of a 600-site sample.
    let mut sites: Vec<Point> = pts.iter().step_by(100).copied().collect();
    sort_dedup(&mut sites);
    let vd = VoronoiDiagram::build(&sites);
    let mut svg = svg_header(&universe);
    for cell in vd.cells.iter().filter(|c| c.bounded) {
        let mut d = String::new();
        for (i, v) in cell.vertices.iter().enumerate() {
            let (x, y) = project(v, &universe);
            let _ = write!(d, "{}{x:.1},{y:.1} ", if i == 0 { "M" } else { "L" });
        }
        let _ = writeln!(
            svg,
            r##"<path d="{d}Z" fill="none" stroke="#2c3e50" stroke-width="0.7"/>"##
        );
    }
    for s in &sites {
        let (x, y) = project(s, &universe);
        let _ = writeln!(
            svg,
            r##"<circle cx="{x:.1}" cy="{y:.1}" r="1.5" fill="#c0392b"/>"##
        );
    }
    svg.push_str("</svg>\n");
    fs::write("gallery/voronoi.svg", &svg).expect("write voronoi svg");
    println!(
        "gallery/voronoi.svg: {} sites, {} bounded cells",
        sites.len(),
        vd.cells.iter().filter(|c| c.bounded).count()
    );
}

fn svg_header(universe: &Rect) -> String {
    let _ = universe;
    format!(
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{c}" height="{c}" viewBox="0 0 {c} {c}">
<rect width="{c}" height="{c}" fill="#fdfaf4"/>
"##,
        c = CANVAS
    )
}

/// Projects universe coordinates to SVG pixels (y-axis flipped).
fn project(p: &Point, universe: &Rect) -> (f64, f64) {
    let x = (p.x - universe.x1) / universe.width() * CANVAS;
    let y = CANVAS - (p.y - universe.y1) / universe.height() * CANVAS;
    (x, y)
}
