//! Urban analytics over OSM-like data — the scenario the paper's
//! introduction motivates: billions of points of interest from
//! OpenStreetMap-style extracts, queried interactively.
//!
//! The workload: clustered "city" points + a rectangle dataset of
//! administrative districts. We answer three product questions:
//!
//! 1. *coverage*: which districts contain which points (spatial join),
//! 2. *hot zone*: all points inside a downtown window (range query),
//! 3. *dispatch*: the nearest 10 points to an incident (kNN),
//!
//! and run the last one through the Pigeon language layer too.
//!
//! ```text
//! cargo run --example urban_analytics
//! ```

use spatialhadoop::core::ops::{join, knn, range};
use spatialhadoop::core::storage::{build_index, upload};
use spatialhadoop::dfs::{ClusterConfig, Dfs};
use spatialhadoop::geom::{Point, Rect};
use spatialhadoop::index::PartitionKind;
use spatialhadoop::pigeon;
use spatialhadoop::workload::{default_universe, osm_like_points, rects};

fn main() {
    let dfs = Dfs::new(ClusterConfig::paper_cluster(64 * 1024));
    let universe = default_universe();

    // --- data: 150k clustered POIs and 5k districts -------------------
    let pois = osm_like_points(150_000, &universe, 12, 7);
    let districts = rects(5_000, &universe, 25_000.0, 8);
    upload(&dfs, "/city/pois", &pois).expect("upload pois");
    upload(&dfs, "/city/districts", &districts).expect("upload districts");

    let poi_index = build_index::<Point>(&dfs, "/city/pois", "/idx/pois", PartitionKind::StrPlus)
        .expect("index pois")
        .value;
    let district_index = build_index::<Rect>(
        &dfs,
        "/city/districts",
        "/idx/districts",
        PartitionKind::StrPlus,
    )
    .expect("index districts")
    .value;
    println!(
        "indexed {} POIs ({} partitions) and {} districts ({} partitions)",
        pois.len(),
        poi_index.partitions.len(),
        districts.len(),
        district_index.partitions.len()
    );

    // --- 1. coverage: district x district overlap audit ----------------
    let overlaps = join::distributed_join(&dfs, &district_index, &district_index, "/out/join")
        .expect("district join");
    println!(
        "district overlap audit: {} overlapping pairs found in {:.1} simulated seconds \
         ({} of {} partition pairs processed)",
        overlaps.value.len(),
        overlaps.sim().total(),
        overlaps.counter("join.pairs.processed"),
        overlaps.counter("join.pairs.considered"),
    );

    // --- 2. hot zone --------------------------------------------------
    let downtown = Rect::new(400_000.0, 400_000.0, 480_000.0, 480_000.0);
    let hot = range::range_spatial::<Point>(&dfs, &poi_index, &downtown, "/out/hot")
        .expect("range query");
    println!(
        "downtown window holds {} POIs (answered from {} of {} partitions)",
        hot.value.len(),
        hot.map_tasks(),
        poi_index.partitions.len()
    );

    // --- 3. dispatch ----------------------------------------------------
    let incident = Point::new(612_000.0, 388_000.0);
    let nearest = knn::knn_spatial(&dfs, &poi_index, &incident, 10, "/out/knn").expect("knn");
    println!(
        "10 nearest POIs to the incident at {incident} (rounds: {}):",
        nearest.rounds()
    );
    for (i, p) in nearest.value.iter().enumerate() {
        println!("  #{:<2} {p}  ({:.0} m)", i + 1, p.distance(&incident));
    }

    // --- the same dispatch query in Pigeon ------------------------------
    let script = "\
        pois = LOAD '/city/pois' AS POINT;\n\
        idx  = INDEX pois AS str+ INTO '/idx/pois-pigeon';\n\
        near = KNN idx POINT(612000, 388000) K 10;\n\
        DUMP near;";
    let dumped = pigeon::run_script(&dfs, script).expect("pigeon script");
    assert_eq!(dumped.len(), nearest.value.len());
    println!(
        "pigeon agrees: {} rows from the language layer",
        dumped.len()
    );
}
