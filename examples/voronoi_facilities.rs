//! Facility coverage via distributed Voronoi diagrams: given facility
//! locations (clustered like real deployments), compute each facility's
//! service region and report coverage statistics — the paper's flagship
//! new operation, with its safe-region early flush at work.
//!
//! ```text
//! cargo run --release --example voronoi_facilities
//! ```

use spatialhadoop::core::ops::voronoi;
use spatialhadoop::core::storage::{build_index, upload};
use spatialhadoop::dfs::{ClusterConfig, Dfs};
use spatialhadoop::geom::point::sort_dedup;
use spatialhadoop::geom::{Point, Polygon};
use spatialhadoop::index::PartitionKind;
use spatialhadoop::workload::{default_universe, osm_like_points};

fn main() {
    let dfs = Dfs::new(ClusterConfig::paper_cluster(64 * 1024));
    let universe = default_universe();

    // 40k facility sites, clustered.
    let mut sites = osm_like_points(40_000, &universe, 10, 9);
    sort_dedup(&mut sites);
    upload(&dfs, "/net/facilities", &sites).expect("upload sites");

    let index = build_index::<Point>(&dfs, "/net/facilities", "/idx/fac", PartitionKind::Grid)
        .expect("grid index")
        .value;
    println!(
        "{} facilities across {} grid partitions",
        sites.len(),
        index.partitions.len()
    );

    let result = voronoi::voronoi_spatial(&dfs, &index, "/out/voronoi").expect("voronoi");
    let cells = &result.value;
    assert_eq!(cells.len(), sites.len(), "one service region per facility");

    let local = result.counter("voronoi.flushed.local");
    let vmerge = result.counter("voronoi.flushed.vmerge");
    let hmerge = result.counter("voronoi.flushed.hmerge");
    println!(
        "service regions finalized: {:.1}% in the local step, {:.1}% in the vertical merge, \
         {:.1}% at the final merge",
        100.0 * local as f64 / cells.len() as f64,
        100.0 * vmerge as f64 / cells.len() as f64,
        100.0 * hmerge as f64 / cells.len() as f64,
    );
    println!("simulated cluster time: {:.1}s", result.sim().total());

    // Coverage statistics over service regions clipped to the universe
    // (boundary cells extend far outside it).
    let mut areas: Vec<f64> = cells
        .iter()
        .filter(|c| c.bounded && c.vertices.len() >= 3)
        .filter_map(|c| {
            Polygon::new(c.vertices.clone())
                .clip_to_rect(&universe)
                .map(|p| p.area())
        })
        .collect();
    areas.sort_by(f64::total_cmp);
    let covered: f64 = areas.iter().sum();
    println!(
        "bounded service regions: {} of {} | median area {:.0} | p95 {:.0} | covering {:.1}% of the universe",
        areas.len(),
        cells.len(),
        areas[areas.len() / 2],
        areas[areas.len() * 95 / 100],
        100.0 * covered / universe_area(),
    );

    // The largest clipped region is the worst-served area.
    let worst = areas.last().copied().unwrap_or(0.0);
    println!("largest in-universe service region: {worst:.0} square units");
}

fn universe_area() -> f64 {
    let u = default_universe();
    u.width() * u.height()
}
