//! ZIP-code union — the paper's running polygon-union example (its
//! Fig. 1): dissolve a mosaic of area polygons into region boundaries.
//!
//! Compares all four plans on the same dataset: single machine, Hadoop
//! (random placement), SpatialHadoop (spatial clustering), and the
//! enhanced merge-free algorithm, verifying they produce the same
//! boundary.
//!
//! ```text
//! cargo run --release --example zipcode_union
//! ```

use spatialhadoop::core::ops::{single, union};
use spatialhadoop::core::storage::{build_index, upload};
use spatialhadoop::dfs::{ClusterConfig, Dfs};
use spatialhadoop::geom::algorithms::union::total_length;
use spatialhadoop::geom::Polygon;
use spatialhadoop::index::PartitionKind;
use spatialhadoop::workload::{default_universe, osm_like_polygons};

fn main() {
    let dfs = Dfs::new(ClusterConfig::paper_cluster(8 * 1024));
    let universe = default_universe();

    // ZIP-code-like mosaic: clusters of small adjacent polygons plus
    // scattered rural ones.
    let zips = osm_like_polygons(1_200, &universe, 8_000.0, 3);
    upload(&dfs, "/gis/zips", &zips).expect("upload polygons");
    println!("dissolving {} area polygons", zips.len());

    // Single machine baseline.
    let baseline = single::union_single(&zips);
    let reference = total_length(&baseline.value);
    println!(
        "single machine: boundary of {} segments, total length {:.0} ({:.2}s wall)",
        baseline.value.len(),
        reference,
        baseline.seconds
    );

    // Hadoop: random block placement.
    let hadoop = union::union_hadoop(&dfs, "/gis/zips", "/out/union-h").expect("hadoop union");
    report(
        "hadoop",
        reference,
        total_length(&hadoop.value),
        hadoop.sim().total(),
        hadoop.counter("union.segments.into.merge"),
    );

    // SpatialHadoop: STR clustering, one copy per polygon.
    let str_index = build_index::<Polygon>(&dfs, "/gis/zips", "/idx/str", PartitionKind::Str)
        .expect("str index")
        .value;
    let spatial = union::union_spatial(&dfs, &str_index, "/out/union-s").expect("spatial union");
    report(
        "spatialhadoop",
        reference,
        total_length(&spatial.value),
        spatial.sim().total(),
        spatial.counter("union.segments.into.merge"),
    );

    // Enhanced: disjoint STR+ cells, clip-to-cell, no merge step at all.
    let strp_index = build_index::<Polygon>(&dfs, "/gis/zips", "/idx/strp", PartitionKind::StrPlus)
        .expect("str+ index")
        .value;
    let enhanced = union::union_enhanced(&dfs, &strp_index, "/out/union-e").expect("enhanced");
    report(
        "enhanced",
        reference,
        total_length(&enhanced.value),
        enhanced.sim().total(),
        0,
    );
    println!(
        "enhanced ran map-only: {} reduce tasks, {} boundary segments flushed in place",
        enhanced.jobs[0].reduce_tasks,
        enhanced.counter("union.segments.flushed")
    );
}

fn report(name: &str, reference: f64, got: f64, sim: f64, merge_segments: u64) {
    let drift = (got - reference).abs() / reference.max(1.0);
    assert!(
        drift < 1e-3,
        "{name}: boundary length {got:.0} deviates from reference {reference:.0}"
    );
    if merge_segments > 0 {
        println!("{name:>14}: {sim:>7.1} simulated s, {merge_segments} segments into the merge");
    } else {
        println!("{name:>14}: {sim:>7.1} simulated s, merge-free");
    }
}
