#!/usr/bin/env bash
# Full CI gate: formatting, lints, release build, and the test suite.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> chaos tests (fault injection)"
cargo test -q --test fault_tolerance

echo "==> chaos determinism: 10 iterations, identical results required"
for i in $(seq 1 10); do
  echo "  chaos iteration $i/10"
  cargo test -q --test fault_tolerance chaos_runs_are_deterministic >/dev/null
done

echo "CI green."
