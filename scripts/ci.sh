#!/usr/bin/env bash
# Full CI gate: formatting, lints, release build, and the test suite.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings (+ hot-path allocation lints)"
cargo clippy --workspace -- -D warnings \
  -D clippy::redundant_clone -D clippy::inefficient_to_string

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> chaos tests (fault injection)"
cargo test -q --test fault_tolerance

echo "==> chaos determinism: 10 iterations, identical results required"
for i in $(seq 1 10); do
  echo "  chaos iteration $i/10"
  cargo test -q --test fault_tolerance chaos_runs_are_deterministic >/dev/null
done

echo "==> hot-path benchmark smoke (warm must not be slower than cold)"
cargo run -q -p sh-bench --release --bin hotpath -- /tmp/BENCH_hotpath_ci.json

echo "CI green."
