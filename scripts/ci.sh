#!/usr/bin/env bash
# Stage-aware CI gate. Run from anywhere:
#
#   ./scripts/ci.sh                 # every stage
#   ./scripts/ci.sh --quick         # skip the chaos soak and benches
#   ./scripts/ci.sh lint test       # just the named stages
#
# Stages: lint, build, test, chaos, corruption, server, bench. Fails
# fast, naming the stage that broke, and prints per-stage wall-clock
# timings at the end.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
STAGES=()
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    lint|build|test|chaos|corruption|server|bench) STAGES+=("$arg") ;;
    *) echo "usage: $0 [--quick] [lint|build|test|chaos|corruption|server|bench]..." >&2; exit 2 ;;
  esac
done
if [ ${#STAGES[@]} -eq 0 ]; then
  STAGES=(lint build test chaos corruption server bench)
  if [ "$QUICK" -eq 1 ]; then
    STAGES=(lint build test)
  fi
fi

TIMINGS=()
run_stage() {
  local name="$1"
  shift
  echo "==> stage: $name"
  local t0
  t0=$(date +%s)
  if ! "$@"; then
    echo "CI FAILED in stage: $name" >&2
    exit 1
  fi
  TIMINGS+=("$name: $(( $(date +%s) - t0 ))s")
}

stage_lint() {
  # `&&`-chained: `if ! stage` suppresses errexit inside the function,
  # so each stage must propagate its first failure explicitly.
  cargo fmt --check &&
    # Hot-path allocation lints plus the concurrency lints: no mutexed
    # atomics, no lock-holding scrutinees living longer than they look.
    cargo clippy --workspace -- -D warnings \
      -D clippy::redundant_clone -D clippy::inefficient_to_string \
      -D clippy::mutex_atomic -D clippy::significant_drop_in_scrutinee
}

stage_build() {
  cargo build --release
}

stage_test() {
  cargo test -q
}

stage_chaos() {
  # The determinism loops run inside the test binary (SH_CHAOS_ITERS),
  # so 10 iterations cost one cargo invocation, not ten. The telemetry
  # binary also streams its event journal to a JSONL file that the
  # workflow uploads when a chaos run fails.
  SH_CHAOS_ITERS=10 cargo test -q --test fault_tolerance &&
    SH_CHAOS_ITERS=10 SH_TELEMETRY_LOG=telemetry_chaos.jsonl \
      cargo test -q --test telemetry &&
    SH_STRESS_MILLIS=2000 cargo test -q --test concurrency
}

stage_corruption() {
  # Silent-corruption soak: 10 placement-seeded iterations of the
  # flip/truncate chaos test (mmap off and on, text and SHCB layouts).
  # The binary prints its SH_CHAOS_SEED= line so a failing run's log
  # carries everything needed to reproduce it; the journal — including
  # storage.corrupt_replica, storage.read_repair, and scrub.done events
  # — streams to a JSONL artifact the workflow uploads. The property
  # trio then sweeps arbitrary single-byte rot, read-repair healing,
  # and the unreplicated must-error-not-lie contract.
  SH_CHAOS_ITERS=10 SH_CHAOS_SEED="${SH_CHAOS_SEED:-12648430}" \
    SH_TELEMETRY_LOG=telemetry_corruption.jsonl \
    cargo test -q --test fault_tolerance silent_corruption -- --nocapture &&
    cargo test -q --test properties -- \
      any_single_byte_of_rot flip_and_truncate unreplicated_corruption
}

stage_server() {
  # End-to-end smoke of the network front door: boot sh-server on an
  # ephemeral port with a deliberately tiny scheduler (1 slot, 1-deep
  # queue) so the smoke client can provably trigger 429 BUSY, then
  # drive it over TCP: connect, SET, INDEX, range query, a concurrent
  # second connection, and the busy path.
  cargo build --release --bin sh-server &&
    cargo build --release -p sh-bench --bin server_smoke &&
    run_server_smoke
}

run_server_smoke() {
  local log=server_smoke_ci.log pid addr=""
  rm -f "$log"
  ./target/release/sh-server --port 0 --max-inflight 1 --queue-cap 1 >"$log" 2>&1 &
  pid=$!
  # The server prints "LISTENING <addr>" once bound; poll the log for it.
  for _ in $(seq 1 100); do
    addr=$(awk '/^LISTENING /{print $2; exit}' "$log")
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then break; fi
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    echo "sh-server never reported LISTENING; server log follows:" >&2
    cat "$log" >&2
    kill "$pid" 2>/dev/null || true
    return 1
  fi
  echo "--- server up at $addr (1-slot scheduler); running smoke client"
  local rc=0
  ./target/release/server_smoke "$addr" || rc=$?
  kill "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
  if [ "$rc" -ne 0 ]; then
    echo "server smoke FAILED (exit $rc); server log follows:" >&2
    cat "$log" >&2
    return "$rc"
  fi
}

stage_bench() {
  # The throughput trend entry only means something with real
  # parallelism; trendcheck drops it below 4 cores (see sh-bench trend).
  if [ "$(nproc)" -lt 4 ]; then
    echo "gate skipped: cores < 4 (throughput metric will not be trended)"
  fi
  echo "--- hotpath (warm must not be slower than cold; binary >=1.5x text; mmap >=1.3x owned)" &&
    cargo run -q -p sh-bench --release --bin hotpath -- BENCH_hotpath_ci.json &&
    echo "--- throughput (concurrent vs serial multi-job)" &&
    cargo run -q -p sh-bench --release --bin throughput -- BENCH_throughput_ci.json &&
    echo "--- load (open-loop mixed queries against a live sh-server)" &&
    cargo run -q -p sh-bench --release --bin loadgen -- BENCH_load_ci.json &&
    echo "--- benchmark JSON artifacts must be well-formed" &&
    cargo run -q -p sh-bench --release --bin checkjson -- \
      BENCH_hotpath_ci.json BENCH_throughput_ci.json BENCH_load_ci.json &&
    echo "--- trend gate (fail on >20% run-over-run regression, speedups on shrinkage)" &&
    cargo run -q -p sh-bench --release --bin trendcheck -- \
      BENCH_hotpath_ci.json BENCH_throughput_ci.json BENCH_load_ci.json &&
    report_gate_verdicts
}

# One-line RAN/SKIPPED verdict per enforced gate, read straight from the
# CI bench artifacts so the log states explicitly what was checked.
report_gate_verdicts() {
  echo "--- gate verdicts"
  awk -F'[:,]' '
    /"mmap_speedup"/  { gsub(/[ "]/, "", $2); print "  hotpath mmap_speedup gate: RAN (>=1.3x required, got " $2 "x)" }
    /"binary_speedup"/ { gsub(/[ "]/, "", $2); print "  hotpath binary_speedup gate: RAN (>=1.5x required, got " $2 "x)" }
  ' BENCH_hotpath_ci.json
  gate_verdict "throughput speedup" BENCH_throughput_ci.json
  gate_verdict "load (sustained QPS + p99)" BENCH_load_ci.json
}

# Reads `gate_skipped` from one artifact and prints the verdict line.
gate_verdict() {
  local label="$1" file="$2"
  awk -F'[:,]' -v label="$label" '
    /"gate_skipped"/ {
      gsub(/[ ]/, "", $2)
      if ($2 == "true") print "  " label " gate: SKIPPED (gate_skipped: true, single-core runner)"
      else print "  " label " gate: RAN (gate_skipped: false)"
    }
  ' "$file"
}

for s in "${STAGES[@]}"; do
  run_stage "$s" "stage_$s"
done

echo "CI green. Stage timings:"
for t in "${TIMINGS[@]}"; do
  echo "  $t"
done
