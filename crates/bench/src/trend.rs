//! Bench regression tracker: run history plus a ratio gate.
//!
//! The `trendcheck` bin reads every `BENCH_*.json` artifact the bench
//! bins wrote, extracts each benchmark's tracked metrics, appends a run
//! record (git revision, core count, metric entries, skipped gates) to
//! `BENCH_trend.json`, and compares the new run against the previous
//! one. Tracking is direction-aware: latency metrics regress when they
//! *grow* past the tolerated ratio (default [`DEFAULT_MAX_RATIO`], i.e.
//! +20%); speedup-style metrics (`*_speedup`, e.g. `binary_speedup` and
//! `mmap_speedup` from the format/scan ablations) regress when they
//! *shrink* by the same ratio. Either way CI fails. All the logic lives
//! here so the gate itself is unit-testable without running a benchmark.

use sh_trace::json::{self, Value};

/// Default tolerated run-over-run growth: fail past +20%.
pub const DEFAULT_MAX_RATIO: f64 = 1.2;

/// History cap — oldest runs are dropped so the artifact stays bounded.
pub const MAX_RUNS: usize = 512;

/// One tracked `(benchmark, metric, value)` from a bench artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct Entry {
    pub benchmark: String,
    pub metric: String,
    pub value: f64,
}

/// One appended run of the whole bench suite.
#[derive(Clone, Debug, PartialEq)]
pub struct Run {
    pub unix_secs: u64,
    pub git_rev: String,
    pub cores: usize,
    pub entries: Vec<Entry>,
    /// `benchmark.metric` names whose gate was explicitly skipped this
    /// run (e.g. concurrency metrics on a starved host) — recorded so a
    /// skipped gate is visible in the history instead of silently
    /// indistinguishable from a passing one.
    pub skipped: Vec<String>,
}

/// A gate violation: `current > previous * max_ratio` for
/// lower-is-better metrics, `current < previous / max_ratio` for
/// higher-is-better ones.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    pub benchmark: String,
    pub metric: String,
    pub previous: f64,
    pub current: f64,
}

impl Regression {
    /// One-line report, e.g.
    /// `hotpath.warm_secs_mean: 1.000000 -> 1.300000 (+30.0%)`.
    pub fn render(&self) -> String {
        format!(
            "{}.{}: {:.6} -> {:.6} ({:+.1}%)",
            self.benchmark,
            self.metric,
            self.previous,
            self.current,
            (self.current / self.previous - 1.0) * 100.0
        )
    }
}

/// The metrics the gate watches per benchmark. `warm_secs_mean`,
/// `concurrent_secs`, and the server load test's `p99_ms` tail latency
/// are lower-is-better; the two speedup
/// ratios guard the storage-format and scan-path wins so a format
/// regression (binary decode or mmap zero-copy getting slower relative
/// to its baseline) fails CI even when absolute times drift.
pub fn tracked_metrics(benchmark: &str) -> &'static [&'static str] {
    match benchmark {
        "hotpath" => &["warm_secs_mean", "binary_speedup", "mmap_speedup"],
        "throughput" => &["concurrent_secs"],
        "load" => &["p99_ms"],
        _ => &[],
    }
}

/// Direction of a tracked metric: speedup ratios grow when the code gets
/// faster, every other tracked metric is a time that shrinks.
pub fn higher_is_better(metric: &str) -> bool {
    metric.ends_with("speedup")
}

/// Minimum core count for concurrency metrics to be meaningful: below
/// this, concurrent and serial execution degenerate to the same thing
/// and a recorded value would poison the trend baseline for real runs.
pub const MIN_CONCURRENCY_CORES: usize = 4;

/// True for metrics that only measure something on a multi-core host.
/// Runs on fewer than [`MIN_CONCURRENCY_CORES`] cores must not append
/// these to the trend history.
pub fn is_concurrency_metric(benchmark: &str) -> bool {
    benchmark == "throughput" || benchmark == "load"
}

/// Extracts every tracked entry from one parsed bench artifact. Returns
/// an empty vec for benchmarks without tracked metrics (they are checked
/// for well-formedness by `checkjson` but not trended). A tracked metric
/// missing from the artifact is simply absent — `checkjson` is the gate
/// for artifact completeness.
pub fn extract_entries(doc: &Value) -> Vec<Entry> {
    let Some(benchmark) = doc.get("benchmark").and_then(|b| b.as_str()) else {
        return Vec::new();
    };
    tracked_metrics(benchmark)
        .iter()
        .filter_map(|metric| {
            Some(Entry {
                benchmark: benchmark.to_string(),
                metric: metric.to_string(),
                value: doc.get(metric)?.as_f64()?,
            })
        })
        .collect()
}

/// Compares the new run's entries against the previous run's,
/// direction-aware per [`higher_is_better`]. Metrics absent from the
/// previous run (first run, new benchmark) pass.
pub fn find_regressions(previous: &[Entry], current: &[Entry], max_ratio: f64) -> Vec<Regression> {
    let mut out = Vec::new();
    for cur in current {
        let prev = previous
            .iter()
            .find(|p| p.benchmark == cur.benchmark && p.metric == cur.metric);
        if let Some(prev) = prev {
            let regressed = if higher_is_better(&cur.metric) {
                prev.value > 0.0 && cur.value < prev.value / max_ratio
            } else {
                prev.value > 0.0 && cur.value > prev.value * max_ratio
            };
            if regressed {
                out.push(Regression {
                    benchmark: cur.benchmark.clone(),
                    metric: cur.metric.clone(),
                    previous: prev.value,
                    current: cur.value,
                });
            }
        }
    }
    out
}

/// Parses a trend document (as written by [`render_trend`]).
pub fn parse_trend(text: &str) -> Result<Vec<Run>, String> {
    let doc = json::parse(text)?;
    let runs = doc
        .get("runs")
        .and_then(|r| r.as_arr())
        .ok_or("trend file missing \"runs\" array")?;
    let mut out = Vec::with_capacity(runs.len());
    for run in runs {
        let entries = run
            .get("entries")
            .and_then(|e| e.as_arr())
            .ok_or("run missing \"entries\" array")?
            .iter()
            .map(|e| {
                Some(Entry {
                    benchmark: e.get("benchmark")?.as_str()?.to_string(),
                    metric: e.get("metric")?.as_str()?.to_string(),
                    value: e.get("value")?.as_f64()?,
                })
            })
            .collect::<Option<Vec<_>>>()
            .ok_or("malformed trend entry")?;
        // Absent in histories written before skip tracking: default empty.
        let skipped = run
            .get("skipped")
            .and_then(|s| s.as_arr())
            .map(|arr| {
                arr.iter()
                    .filter_map(|v| v.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default();
        out.push(Run {
            unix_secs: run.get("unix_secs").and_then(|v| v.as_u64()).unwrap_or(0),
            git_rev: run
                .get("git_rev")
                .and_then(|v| v.as_str())
                .unwrap_or("unknown")
                .to_string(),
            cores: run.get("cores").and_then(|v| v.as_usize()).unwrap_or(0),
            entries,
            skipped,
        });
    }
    Ok(out)
}

/// Serializes the run history (round-trips through [`parse_trend`]).
pub fn render_trend(runs: &[Run]) -> String {
    let runs = runs
        .iter()
        .map(|r| {
            Value::Obj(vec![
                ("unix_secs".into(), Value::Int(r.unix_secs as i128)),
                ("git_rev".into(), Value::Str(r.git_rev.clone())),
                ("cores".into(), Value::Int(r.cores as i128)),
                (
                    "entries".into(),
                    Value::Arr(
                        r.entries
                            .iter()
                            .map(|e| {
                                Value::Obj(vec![
                                    ("benchmark".into(), Value::Str(e.benchmark.clone())),
                                    ("metric".into(), Value::Str(e.metric.clone())),
                                    ("value".into(), Value::Float(e.value)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "skipped".into(),
                    Value::Arr(r.skipped.iter().cloned().map(Value::Str).collect()),
                ),
            ])
        })
        .collect();
    let doc = Value::Obj(vec![
        ("trend".into(), Value::Str("sh-bench".into())),
        ("runs".into(), Value::Arr(runs)),
    ]);
    format!("{doc}\n")
}

/// The whole gate as a pure function: parse the existing history (if
/// any), compare `new_run` against the most recent run, append, cap, and
/// re-serialize. Returns the new trend text plus any regressions.
pub fn append_and_check(
    history_text: Option<&str>,
    new_run: Run,
    max_ratio: f64,
) -> Result<(String, Vec<Regression>), String> {
    let mut runs = match history_text {
        Some(text) => parse_trend(text)?,
        None => Vec::new(),
    };
    let regressions = match runs.last() {
        Some(prev) => find_regressions(&prev.entries, &new_run.entries, max_ratio),
        None => Vec::new(),
    };
    runs.push(new_run);
    if runs.len() > MAX_RUNS {
        let drop = runs.len() - MAX_RUNS;
        runs.drain(..drop);
    }
    Ok((render_trend(&runs), regressions))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(benchmark: &str, metric: &str, value: f64) -> Entry {
        Entry {
            benchmark: benchmark.into(),
            metric: metric.into(),
            value,
        }
    }

    fn run(rev: &str, entries: Vec<Entry>) -> Run {
        Run {
            unix_secs: 1_000,
            git_rev: rev.into(),
            cores: 8,
            entries,
            skipped: Vec::new(),
        }
    }

    #[test]
    fn extracts_tracked_metrics_from_bench_artifacts() {
        let hotpath = json::parse(
            r#"{"benchmark": "hotpath", "cold_secs": 4.0, "warm_secs_mean": 0.91,
                "binary_speedup": 2.1, "mmap_speedup": 1.6}"#,
        )
        .unwrap();
        assert_eq!(
            extract_entries(&hotpath),
            vec![
                entry("hotpath", "warm_secs_mean", 0.91),
                entry("hotpath", "binary_speedup", 2.1),
                entry("hotpath", "mmap_speedup", 1.6),
            ]
        );

        let throughput =
            json::parse(r#"{"benchmark": "throughput", "concurrent_secs": 12}"#).unwrap();
        assert_eq!(
            extract_entries(&throughput),
            vec![entry("throughput", "concurrent_secs", 12.0)]
        );

        let unknown = json::parse(r#"{"benchmark": "mystery", "secs": 1.0}"#).unwrap();
        assert!(extract_entries(&unknown).is_empty());
    }

    #[test]
    fn speedup_metrics_gate_on_shrinkage_not_growth() {
        assert!(higher_is_better("binary_speedup"));
        assert!(higher_is_better("mmap_speedup"));
        assert!(!higher_is_better("warm_secs_mean"));
        assert!(!higher_is_better("concurrent_secs"));

        // mmap_speedup fell from 2.0x to 1.5x (-25%): regression.
        let previous = vec![entry("hotpath", "mmap_speedup", 2.0)];
        let current = vec![entry("hotpath", "mmap_speedup", 1.5)];
        let regs = find_regressions(&previous, &current, DEFAULT_MAX_RATIO);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "mmap_speedup");
        assert!(regs[0].render().contains("-25.0%"));

        // Growing or mildly dipping speedups pass.
        let current = vec![entry("hotpath", "mmap_speedup", 2.5)];
        assert!(find_regressions(&previous, &current, DEFAULT_MAX_RATIO).is_empty());
        let current = vec![entry("hotpath", "mmap_speedup", 1.8)];
        assert!(find_regressions(&previous, &current, DEFAULT_MAX_RATIO).is_empty());
    }

    #[test]
    fn skipped_gates_round_trip_and_default_empty_for_old_history() {
        let mut r = run("dddd444", vec![entry("hotpath", "warm_secs_mean", 1.0)]);
        r.skipped = vec!["throughput.concurrent_secs".to_string()];
        let text = render_trend(&[r.clone()]);
        assert!(text.contains("throughput.concurrent_secs"));
        let runs = parse_trend(&text).unwrap();
        assert_eq!(runs[0].skipped, r.skipped);

        // Histories written before skip tracking parse with no skips.
        let old = r#"{"trend": "sh-bench", "runs": [{"unix_secs": 1, "git_rev": "e",
            "cores": 2, "entries": []}]}"#;
        assert_eq!(parse_trend(old).unwrap()[0].skipped, Vec::<String>::new());
    }

    #[test]
    fn concurrency_metrics_are_flagged() {
        assert!(is_concurrency_metric("throughput"));
        assert!(is_concurrency_metric("load"));
        assert!(!is_concurrency_metric("hotpath"));
        assert!(MIN_CONCURRENCY_CORES >= 2);
    }

    #[test]
    fn load_p99_is_tracked_and_fails_on_growth() {
        let doc = json::parse(
            r#"{"benchmark": "load", "sustained_qps": 29.5, "p50_ms": 3.0,
                "p95_ms": 20.0, "p99_ms": 36.0, "gate_skipped": false}"#,
        )
        .unwrap();
        assert_eq!(extract_entries(&doc), vec![entry("load", "p99_ms", 36.0)]);

        // p99 is a latency, not a speedup: the gate trips on growth…
        assert!(!higher_is_better("p99_ms"));
        let previous = vec![entry("load", "p99_ms", 36.0)];
        let current = vec![entry("load", "p99_ms", 50.0)];
        let regs = find_regressions(&previous, &current, DEFAULT_MAX_RATIO);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].render().contains("load.p99_ms"));
        // …and never on improvement.
        let current = vec![entry("load", "p99_ms", 10.0)];
        assert!(find_regressions(&previous, &current, DEFAULT_MAX_RATIO).is_empty());
    }

    #[test]
    fn a_twenty_percent_regression_fails_the_default_gate() {
        // Synthetic fixture: warm path slowed from 1.0s to 1.25s (+25%).
        let previous = vec![
            entry("hotpath", "warm_secs_mean", 1.0),
            entry("throughput", "concurrent_secs", 10.0),
        ];
        let current = vec![
            entry("hotpath", "warm_secs_mean", 1.25),
            entry("throughput", "concurrent_secs", 10.1),
        ];
        let regs = find_regressions(&previous, &current, DEFAULT_MAX_RATIO);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].benchmark, "hotpath");
        assert_eq!(regs[0].previous, 1.0);
        assert_eq!(regs[0].current, 1.25);
        assert!(regs[0].render().contains("+25.0%"));
    }

    #[test]
    fn growth_under_the_ratio_passes() {
        let previous = vec![entry("hotpath", "warm_secs_mean", 1.0)];
        let current = vec![entry("hotpath", "warm_secs_mean", 1.15)];
        assert!(find_regressions(&previous, &current, DEFAULT_MAX_RATIO).is_empty());
        // A looser ratio also forgives the 25% slip.
        let current = vec![entry("hotpath", "warm_secs_mean", 1.25)];
        assert!(find_regressions(&previous, &current, 1.3).is_empty());
    }

    #[test]
    fn first_run_and_new_benchmarks_pass() {
        let current = vec![entry("hotpath", "warm_secs_mean", 9.0)];
        assert!(find_regressions(&[], &current, DEFAULT_MAX_RATIO).is_empty());

        let (text, regs) =
            append_and_check(None, run("aaaa111", current.clone()), DEFAULT_MAX_RATIO).unwrap();
        assert!(regs.is_empty());
        let runs = parse_trend(&text).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].git_rev, "aaaa111");
        assert_eq!(runs[0].entries, current);
    }

    #[test]
    fn append_and_check_round_trips_and_gates_the_latest_pair() {
        let (text, regs) = append_and_check(
            None,
            run("aaaa111", vec![entry("hotpath", "warm_secs_mean", 1.0)]),
            DEFAULT_MAX_RATIO,
        )
        .unwrap();
        assert!(regs.is_empty());

        // Second run regresses ≥20% against the first: the gate trips and
        // the history still records both runs.
        let (text, regs) = append_and_check(
            Some(&text),
            run("bbbb222", vec![entry("hotpath", "warm_secs_mean", 1.3)]),
            DEFAULT_MAX_RATIO,
        )
        .unwrap();
        assert_eq!(regs.len(), 1);
        assert!(regs[0].render().contains("hotpath.warm_secs_mean"));
        let runs = parse_trend(&text).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[1].entries[0].value, 1.3);
    }

    #[test]
    fn history_is_capped() {
        let mut text = render_trend(&[]);
        for i in 0..(MAX_RUNS + 3) {
            let (next, _) = append_and_check(
                Some(&text),
                run(
                    "cccc333",
                    vec![entry("hotpath", "warm_secs_mean", 1.0 + i as f64 * 1e-6)],
                ),
                DEFAULT_MAX_RATIO,
            )
            .unwrap();
            text = next;
        }
        assert_eq!(parse_trend(&text).unwrap().len(), MAX_RUNS);
    }
}
