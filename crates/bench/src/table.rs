//! Plain-text result tables.

use std::fmt;

/// A result table: title, column header, and rows of cells.
#[derive(Clone, Debug, Default)]
pub struct Table {
    pub id: String,
    pub title: String,
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// One-line interpretation appended under the table (the "shape"
    /// the paper's figure shows).
    pub note: String,
}

impl Table {
    /// Starts a table.
    pub fn new(id: &str, title: &str, header: &[&str]) -> Table {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            note: String::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Sets the interpretation note.
    pub fn with_note(mut self, note: &str) -> Table {
        self.note = note.to_string();
        self
    }
}

/// Formats seconds compactly.
pub fn secs(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats a ratio as `12.3x`.
pub fn speedup(base: f64, other: f64) -> String {
    if other <= 0.0 {
        "-".to_string()
    } else {
        format!("{:.1}x", base / other)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {} — {}", self.id, self.title)?;
        writeln!(f)?;
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut s = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!(" {:<width$} |", c, width = widths[i]));
            }
            s
        };
        writeln!(f, "{}", fmt_row(&self.header))?;
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        writeln!(f, "{sep}")?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        if !self.note.is_empty() {
            writeln!(f)?;
            writeln!(f, "> {}", self.note)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown_table() {
        let mut t = Table::new("E0", "demo", &["a", "b"]);
        t.row(vec!["1".into(), "two".into()]);
        let s = t.with_note("shape holds").to_string();
        assert!(s.contains("## E0 — demo"));
        assert!(s.contains("| a | b   |"));
        assert!(s.contains("| 1 | two |"));
        assert!(s.contains("> shape holds"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_is_checked() {
        let mut t = Table::new("E0", "demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(secs(0.1234), "0.123");
        assert_eq!(secs(12.34), "12.3");
        assert_eq!(secs(1234.0), "1234");
        assert_eq!(speedup(10.0, 2.0), "5.0x");
        assert_eq!(speedup(10.0, 0.0), "-");
    }
}
