//! CI regression gate over benchmark trend history.
//!
//! ```text
//! cargo run -p sh-bench --release --bin trendcheck -- \
//!     BENCH_hotpath_ci.json BENCH_throughput_ci.json
//! ```
//!
//! Reads each bench artifact, extracts its tracked metrics, appends a
//! run record (git revision, cores, metrics, skipped gates) to
//! `BENCH_trend.json`, and exits non-zero if any metric regressed past
//! the tolerated ratio versus the previous run — direction-aware, so
//! latencies fail on growth and `*_speedup` ratios fail on shrinkage.
//! Gates that cannot run (concurrency metrics on a starved host) are
//! recorded as `gate_skipped: true` in the run record instead of
//! silently passing. Options: `--trend <path>` overrides the history
//! file, `--max-ratio <r>` (or the `SH_TREND_MAX_RATIO` env var)
//! overrides the default 1.2 gate.

use sh_bench::trend::{self, Run};

fn main() {
    let mut trend_path = "BENCH_trend.json".to_string();
    let mut max_ratio: Option<f64> = None;
    let mut inputs: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trend" => match args.next() {
                Some(p) => trend_path = p,
                None => usage("--trend needs a path"),
            },
            "--max-ratio" => match args.next().and_then(|r| r.parse::<f64>().ok()) {
                Some(r) if r >= 1.0 => max_ratio = Some(r),
                _ => usage("--max-ratio needs a number >= 1.0"),
            },
            _ => inputs.push(arg),
        }
    }
    if inputs.is_empty() {
        usage("no bench artifacts given");
    }
    let max_ratio = max_ratio
        .or_else(|| {
            std::env::var("SH_TREND_MAX_RATIO")
                .ok()
                .and_then(|r| r.parse().ok())
        })
        .unwrap_or(trend::DEFAULT_MAX_RATIO);

    let mut entries = Vec::new();
    let mut skipped: Vec<String> = Vec::new();
    for path in &inputs {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => fail(&format!("{path}: unreadable: {e}")),
        };
        let doc = match sh_trace::json::parse(&text) {
            Ok(v) => v,
            Err(e) => fail(&format!("{path}: malformed JSON: {e}")),
        };
        let extracted = trend::extract_entries(&doc);
        if extracted.is_empty() {
            println!("trend: {path}: no tracked metric, skipped");
            continue;
        }
        for e in extracted {
            // Concurrency metrics from a starved host say nothing about
            // the code; record the skip explicitly instead of letting
            // them poison (or silently pass) the trend baseline.
            let cores = sh_bench::cores();
            if trend::is_concurrency_metric(&e.benchmark) && cores < trend::MIN_CONCURRENCY_CORES {
                println!(
                    "trend: {path}: {}.{} gate_skipped: true (cores {cores} < {})",
                    e.benchmark,
                    e.metric,
                    trend::MIN_CONCURRENCY_CORES
                );
                skipped.push(format!("{}.{}", e.benchmark, e.metric));
                continue;
            }
            println!(
                "trend: {path}: {}.{} = {:.6}",
                e.benchmark, e.metric, e.value
            );
            entries.push(e);
        }
    }
    if entries.is_empty() {
        fail("no tracked metrics in any input");
    }

    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let n_skipped = skipped.len();
    let new_run = Run {
        unix_secs,
        git_rev: sh_bench::git_rev(),
        cores: sh_bench::cores(),
        entries,
        skipped,
    };

    let history = std::fs::read_to_string(&trend_path).ok();
    let (text, regressions) = match trend::append_and_check(history.as_deref(), new_run, max_ratio)
    {
        Ok(out) => out,
        Err(e) => fail(&format!("{trend_path}: {e}")),
    };
    if let Err(e) = std::fs::write(&trend_path, &text) {
        fail(&format!("{trend_path}: write failed: {e}"));
    }
    let runs = trend::parse_trend(&text).map(|r| r.len()).unwrap_or(0);
    println!(
        "trend: appended run to {trend_path} ({runs} run(s) on record, {n_skipped} gate(s) skipped)"
    );

    if regressions.is_empty() {
        println!("trend: no regressions past {max_ratio:.2}x");
    } else {
        for r in &regressions {
            eprintln!("FAIL regression past {max_ratio:.2}x: {}", r.render());
        }
        std::process::exit(1);
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("trendcheck: {msg}");
    eprintln!("usage: trendcheck [--trend <path>] [--max-ratio <r>] <BENCH_*.json>...");
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("FAIL {msg}");
    std::process::exit(1);
}
