//! Multi-job throughput benchmark: 16 mixed queries run serially, then
//! concurrently through the [`JobScheduler`] against the same DFS.
//!
//! ```text
//! cargo run -p sh-bench --release --bin throughput            # BENCH_throughput.json
//! cargo run -p sh-bench --release --bin throughput -- out.json
//! ```
//!
//! Always enforced: every concurrent result is byte-identical to its
//! serial counterpart, and the cluster's worker-slot pool is never
//! breached. The ≥1.5× concurrent-speedup gate only applies on machines
//! with at least 4 cores — on fewer cores concurrency cannot beat the
//! serial pass and the run is informational.

use std::time::Instant;

use sh_bench::{fresh_dfs, BLOCK};
use sh_core::ops::{join, knn, range};
use sh_core::storage::{build_index, upload};
use sh_core::SpatialFile;
use sh_dfs::Dfs;
use sh_geom::{Point, Record, Rect};
use sh_index::PartitionKind;
use sh_mapreduce::{JobScheduler, SchedConfig};
use sh_workload::{default_universe, points, rects, Distribution};

const POINTS: usize = 100_000;
const RECTS: usize = 20_000;
const MIN_SPEEDUP: f64 = 1.5;
const MIN_CORES: usize = 4;

#[derive(Clone)]
enum Query {
    Range(Rect),
    Knn(Point, usize),
    Join,
}

impl Query {
    fn kind(&self) -> &'static str {
        match self {
            Query::Range(_) => "range",
            Query::Knn(..) => "knn",
            Query::Join => "join",
        }
    }
}

/// Runs one query and returns its sorted result lines (sorted so serial
/// and concurrent runs compare independent of output-part order).
fn run_query(
    dfs: &Dfs,
    pfile: &SpatialFile,
    fa: &SpatialFile,
    fb: &SpatialFile,
    q: &Query,
    out: &str,
) -> Vec<String> {
    let mut lines: Vec<String> = match q {
        Query::Range(rect) => range::range_spatial::<Point>(dfs, pfile, rect, out)
            .expect("range query")
            .value
            .iter()
            .map(Record::to_line)
            .collect(),
        Query::Knn(center, k) => knn::knn_spatial(dfs, pfile, center, *k, out)
            .expect("knn query")
            .value
            .iter()
            .map(Record::to_line)
            .collect(),
        Query::Join => join::distributed_join(dfs, fa, fb, out)
            .expect("distributed join")
            .value
            .iter()
            .map(|(a, b)| sh_core::codec::encode_pair(a, b))
            .collect(),
    };
    lines.sort();
    lines
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_throughput.json".to_string());

    let uni = default_universe();
    let dfs = fresh_dfs(BLOCK);
    let pts = points(POINTS, Distribution::Uniform, &uni, 21);
    upload(&dfs, "/tp/points", &pts).expect("upload points");
    let pfile = build_index::<Point>(&dfs, "/tp/points", "/tp/ipoints", PartitionKind::StrPlus)
        .expect("index points")
        .value;
    let ra = rects(RECTS, &uni, 400.0, 22);
    let rb = rects(RECTS, &uni, 400.0, 23);
    upload(&dfs, "/tp/ra", &ra).expect("upload ra");
    upload(&dfs, "/tp/rb", &rb).expect("upload rb");
    let fa = build_index::<Rect>(&dfs, "/tp/ra", "/tp/ira", PartitionKind::StrPlus)
        .expect("index ra")
        .value;
    let fb = build_index::<Rect>(&dfs, "/tp/rb", "/tp/irb", PartitionKind::StrPlus)
        .expect("index rb")
        .value;

    // 16 mixed queries: 10 range, 4 knn, 2 distributed joins.
    let mut queries: Vec<Query> = rects(10, &uni, 60_000.0, 24)
        .into_iter()
        .map(Query::Range)
        .collect();
    for (i, p) in points(4, Distribution::Uniform, &uni, 25)
        .into_iter()
        .enumerate()
    {
        queries.push(Query::Knn(p, 8 + 8 * i));
    }
    queries.push(Query::Join);
    queries.push(Query::Join);

    // Warm the cache untimed so serial and concurrent phases both run
    // the steady-state hot path.
    for (i, q) in queries.iter().enumerate() {
        run_query(&dfs, &pfile, &fa, &fb, q, &format!("/tp/warm/{i}"));
    }

    let t0 = Instant::now();
    let serial: Vec<Vec<String>> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| run_query(&dfs, &pfile, &fa, &fb, q, &format!("/tp/serial/{i}")))
        .collect();
    let serial_secs = t0.elapsed().as_secs_f64();

    let sched = JobScheduler::new(
        &dfs,
        SchedConfig {
            max_in_flight: 8,
            ..SchedConfig::default()
        },
    );
    let t0 = Instant::now();
    let handles: Vec<_> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let (pfile, fa, fb, q) = (pfile.clone(), fa.clone(), fb.clone(), q.clone());
            sched
                .submit(q.kind(), move |dfs| {
                    run_query(dfs, &pfile, &fa, &fb, &q, &format!("/tp/conc/{i}"))
                })
                .expect("submit")
        })
        .collect();
    let concurrent: Vec<Vec<String>> = handles
        .into_iter()
        .map(|h| h.join().expect("job result"))
        .collect();
    let concurrent_secs = t0.elapsed().as_secs_f64();

    // Hard gate 1: identical results regardless of scheduling.
    for (i, (s, c)) in serial.iter().zip(&concurrent).enumerate() {
        assert_eq!(
            s,
            c,
            "query {i} ({}) diverged under concurrency",
            queries[i].kind()
        );
    }
    // Hard gate 2: the global slot pool bounded task concurrency.
    let (slots, peak) = (dfs.slots().total(), dfs.slots().peak());
    assert!(
        peak <= slots,
        "slot pool breached: peak {peak} > total {slots}"
    );

    let cores = sh_bench::cores();
    let speedup = serial_secs / concurrent_secs;

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"throughput\",\n");
    json.push_str(&format!(
        "  \"workload\": {{\"points\": {POINTS}, \"rects_per_side\": {RECTS}, \"jobs\": {}, \"mix\": {{\"range\": 10, \"knn\": 4, \"join\": 2}}}},\n",
        queries.len()
    ));
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!("  \"git_rev\": \"{}\",\n", sh_bench::git_rev()));
    json.push_str(&format!("  \"slots\": {slots},\n"));
    json.push_str(&format!("  \"slot_peak\": {peak},\n"));
    json.push_str("  \"max_in_flight\": 8,\n");
    json.push_str(&format!("  \"serial_secs\": {serial_secs:.6},\n"));
    json.push_str(&format!("  \"concurrent_secs\": {concurrent_secs:.6},\n"));
    json.push_str(&format!("  \"speedup\": {speedup:.2},\n"));
    // `gate_skipped` is the explicit single-core marker: a sub-1.5×
    // speedup in this file is a regression only when it is false.
    json.push_str(&format!("  \"gate_skipped\": {},\n", cores < MIN_CORES));
    json.push_str(&format!(
        "  \"speedup_gate\": {{\"min_speedup\": {MIN_SPEEDUP}, \"min_cores\": {MIN_CORES}, \"enforced\": {}}}\n",
        cores >= MIN_CORES
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");

    println!(
        "throughput: {} jobs, serial {serial_secs:.3}s, concurrent {concurrent_secs:.3}s, \
         speedup {speedup:.2}x on {cores} core(s), slot peak {peak}/{slots}",
        queries.len()
    );
    println!("wrote {out_path}");

    if cores >= MIN_CORES && speedup < MIN_SPEEDUP {
        eprintln!("FAIL: concurrent speedup {speedup:.2}x below {MIN_SPEEDUP}x on {cores} cores");
        std::process::exit(1);
    }
}
