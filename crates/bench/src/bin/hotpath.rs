//! Query hot-path benchmark: cold vs. warm wall-clock over the per-node
//! block cache and persisted local indexes.
//!
//! ```text
//! cargo run -p sh-bench --release --bin hotpath            # BENCH_hotpath.json
//! cargo run -p sh-bench --release --bin hotpath -- out.json
//! ```
//!
//! The workload repeats the same range queries and distributed join over
//! indexed files. Iteration 0 runs against an empty cache (cold: every
//! partition is parsed from block bytes and its persisted `_lidx` sidecar
//! is deserialized); later iterations hit the cache (warm: parsed records
//! and loaded trees are shared via `Arc`). The process exits non-zero if
//! the warm path is not faster than the cold one, so CI can gate on it.

use std::time::Instant;

use sh_bench::{fresh_dfs, BLOCK};
use sh_core::ops::{join, range};
use sh_core::storage::{build_index, build_index_fmt, upload, BlockFormat};
use sh_geom::{Point, Rect};
use sh_index::PartitionKind;
use sh_workload::{default_universe, points, rects, Distribution};

const POINTS: usize = 200_000;
const RECTS: usize = 40_000;
const RANGE_QUERIES: usize = 24;
const ITERATIONS: usize = 5;

struct Iter {
    wall_secs: f64,
    cache_hits: u64,
    cache_misses: u64,
    results: u64,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_hotpath.json".to_string());

    let uni = default_universe();
    let dfs = fresh_dfs(BLOCK);

    // Datasets: one point file for range queries, two rect files for the
    // distributed join. All indexed, so every query partition carries a
    // persisted local-index sidecar.
    let pts = points(POINTS, Distribution::Uniform, &uni, 11);
    upload(&dfs, "/hp/points", &pts).expect("upload points");
    let pfile = build_index::<Point>(&dfs, "/hp/points", "/hp/ipoints", PartitionKind::StrPlus)
        .expect("index points")
        .value;
    let ra = rects(RECTS, &uni, 500.0, 12);
    let rb = rects(RECTS, &uni, 500.0, 13);
    upload(&dfs, "/hp/ra", &ra).expect("upload ra");
    upload(&dfs, "/hp/rb", &rb).expect("upload rb");
    let fa = build_index::<Rect>(&dfs, "/hp/ra", "/hp/ira", PartitionKind::StrPlus)
        .expect("index ra")
        .value;
    let fb = build_index::<Rect>(&dfs, "/hp/rb", "/hp/irb", PartitionKind::StrPlus)
        .expect("index rb")
        .value;

    // Fixed query mix reused every iteration.
    let queries: Vec<Rect> = rects(RANGE_QUERIES, &uni, 30_000.0, 14);

    // Index-build map tasks touch partition paths; start from a truly
    // cold cache so iteration 0 measures the full parse+load path.
    dfs.cache().clear();

    let mut iters: Vec<Iter> = Vec::new();
    let mut baseline: Option<(Vec<String>, Vec<String>)> = None;
    for it in 0..ITERATIONS {
        let before = dfs.cache().stats();
        let t0 = Instant::now();
        let mut range_lines: Vec<String> = Vec::new();
        let mut results = 0u64;
        for (qi, q) in queries.iter().enumerate() {
            let r = range::range_spatial::<Point>(&dfs, &pfile, q, &format!("/hp/out/r{it}-{qi}"))
                .expect("range query");
            results += r.value.len() as u64;
            let mut lines: Vec<String> = r
                .value
                .iter()
                .map(|p| {
                    let mut s = String::new();
                    use sh_geom::Record;
                    p.write_line(&mut s);
                    s
                })
                .collect();
            lines.sort();
            range_lines.extend(lines);
        }
        let dj = join::distributed_join(&dfs, &fa, &fb, &format!("/hp/out/dj{it}"))
            .expect("distributed join");
        results += dj.value.len() as u64;
        let mut dj_lines: Vec<String> = dj
            .value
            .iter()
            .map(|(a, b)| sh_core::codec::encode_pair(a, b))
            .collect();
        dj_lines.sort();
        let wall_secs = t0.elapsed().as_secs_f64();
        let after = dfs.cache().stats();
        iters.push(Iter {
            wall_secs,
            cache_hits: after.hits - before.hits,
            cache_misses: after.misses - before.misses,
            results,
        });

        // Warm answers must be byte-identical to cold ones.
        match &baseline {
            None => baseline = Some((range_lines, dj_lines)),
            Some((r0, d0)) => {
                assert_eq!(r0, &range_lines, "warm range output diverged from cold");
                assert_eq!(d0, &dj_lines, "warm join output diverged from cold");
            }
        }
    }

    let cold = iters[0].wall_secs;
    let warm: f64 = iters[1..].iter().map(|i| i.wall_secs).sum::<f64>() / (iters.len() - 1) as f64;
    let speedup = cold / warm;
    let stats = dfs.cache().stats();

    // Format comparison: the same cold range sweep over a text-format and
    // a binary-format index of the same points. The cache is cleared
    // before every query, so each one pays the full partition-open path —
    // text parses every line, binary decodes coordinate columns.
    let bfile = build_index_fmt::<Point>(
        &dfs,
        "/hp/points",
        "/hp/bpoints",
        PartitionKind::StrPlus,
        BlockFormat::Binary,
    )
    .expect("binary index")
    .value;
    let cold_sweep = |file: &sh_core::SpatialFile, tag: &str| -> (f64, Vec<String>) {
        let mut lines: Vec<String> = Vec::new();
        let t0 = Instant::now();
        for (qi, q) in queries.iter().enumerate() {
            dfs.cache().clear();
            let r = range::range_spatial::<Point>(&dfs, file, q, &format!("/hp/out/fmt-{tag}{qi}"))
                .expect("format-comparison query");
            let mut qlines: Vec<String> = r
                .value
                .iter()
                .map(|p| {
                    let mut s = String::new();
                    use sh_geom::Record;
                    p.write_line(&mut s);
                    s
                })
                .collect();
            qlines.sort();
            lines.extend(qlines);
        }
        (t0.elapsed().as_secs_f64(), lines)
    };
    let (text_cold_secs, text_lines) = cold_sweep(&pfile, "t");
    let (binary_cold_secs, binary_lines) = cold_sweep(&bfile, "b");
    assert_eq!(
        text_lines, binary_lines,
        "text and binary indexes returned different results"
    );
    let binary_speedup = text_cold_secs / binary_cold_secs;

    // Owned-vs-mmap cold-scan ablation, measured at the scan layer
    // itself: every sweep re-opens every binary partition with the
    // cache cleared, so each open pays the full block-decode path — the
    // owned run copies and finite-validates the coordinate columns out
    // of the block bytes every time, the mmap run reinterprets the
    // spilled mapping in place. One untimed mmap pass first creates and
    // validates the spill files, so both timed sweeps measure the
    // steady state of repeat cold scans — the case the block cache
    // cannot help with after churn, and the one `SET mmap on` targets.
    // The ablation gets its own index with scan-sized partitions
    // (512 KiB blocks, ~25k records each): at the default experiment
    // block size the fixed per-open cost (DFS read, partition
    // bookkeeping) swamps the decode this ablation isolates.
    let sdfs = fresh_dfs(512 * 1024);
    upload(&sdfs, "/hp/points", &pts).expect("upload scan points");
    let sbfile = build_index_fmt::<Point>(
        &sdfs,
        "/hp/points",
        "/hp/spoints",
        PartitionKind::StrPlus,
        BlockFormat::Binary,
    )
    .expect("scan index")
    .value;
    const SCAN_REPS: usize = 5;
    let scan_sweep = || -> (f64, Vec<(usize, usize)>) {
        let mut hits: Vec<(usize, usize)> = Vec::new();
        let t0 = Instant::now();
        for _ in 0..SCAN_REPS {
            for q in &queries {
                sdfs.cache().clear();
                for part in &sbfile.partitions {
                    let data = sdfs.read_bytes(&part.path).expect("read partition");
                    let p = sh_core::mrlayer::SpatialRecordReader::open_scan::<Point>(
                        &sdfs, &part.path, &data,
                    );
                    hits.extend(p.scan_filter(q).into_iter().map(|i| (part.id, i)));
                }
            }
        }
        (t0.elapsed().as_secs_f64(), hits)
    };
    sdfs.update_ft_options(|ft| ft.mmap_scans = true);
    let _ = scan_sweep(); // untimed: spill files created + validated
    sdfs.update_ft_options(|ft| ft.mmap_scans = false);
    let (owned_scan_cold_secs, owned_scan_hits) = scan_sweep();
    sdfs.update_ft_options(|ft| ft.mmap_scans = true);
    let (mmap_scan_cold_secs, mmap_scan_hits) = scan_sweep();
    sdfs.update_ft_options(|ft| ft.mmap_scans = false);
    assert!(!owned_scan_hits.is_empty(), "scan ablation found no hits");
    assert_eq!(
        owned_scan_hits, mmap_scan_hits,
        "mmap scan returned different hits than the owned scan"
    );
    let mmap_speedup = owned_scan_cold_secs / mmap_scan_cold_secs;

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"hotpath\",\n");
    json.push_str(&format!("  \"cores\": {},\n", sh_bench::cores()));
    json.push_str(&format!("  \"git_rev\": \"{}\",\n", sh_bench::git_rev()));
    json.push_str(&format!(
        "  \"workload\": {{\"points\": {POINTS}, \"rects_per_side\": {RECTS}, \"range_queries\": {RANGE_QUERIES}, \"dj_joins\": 1, \"iterations\": {ITERATIONS}}},\n"
    ));
    json.push_str(&format!("  \"cold_secs\": {cold:.6},\n"));
    json.push_str(&format!("  \"warm_secs_mean\": {warm:.6},\n"));
    json.push_str(&format!("  \"speedup\": {speedup:.2},\n"));
    json.push_str(&format!("  \"text_cold_secs\": {text_cold_secs:.6},\n"));
    json.push_str(&format!("  \"binary_cold_secs\": {binary_cold_secs:.6},\n"));
    json.push_str(&format!("  \"binary_speedup\": {binary_speedup:.2},\n"));
    json.push_str(&format!(
        "  \"owned_scan_cold_secs\": {owned_scan_cold_secs:.6},\n"
    ));
    json.push_str(&format!(
        "  \"mmap_scan_cold_secs\": {mmap_scan_cold_secs:.6},\n"
    ));
    json.push_str(&format!("  \"mmap_speedup\": {mmap_speedup:.2},\n"));
    json.push_str(&format!(
        "  \"cache\": {{\"budget_bytes\": {}, \"resident_bytes\": {}, \"resident_entries\": {}, \"hits\": {}, \"misses\": {}, \"evictions\": {}}},\n",
        dfs.cache().budget(),
        stats.resident_bytes,
        stats.resident_entries,
        stats.hits,
        stats.misses,
        stats.evictions
    ));
    json.push_str("  \"iterations\": [\n");
    for (i, it) in iters.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"iter\": {i}, \"wall_secs\": {:.6}, \"cache_hits\": {}, \"cache_misses\": {}, \"results\": {}}}{}\n",
            it.wall_secs,
            it.cache_hits,
            it.cache_misses,
            it.results,
            if i + 1 < iters.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");

    println!(
        "hotpath: cold {cold:.3}s, warm {warm:.3}s (mean of {}), speedup {speedup:.2}x",
        ITERATIONS - 1
    );
    println!(
        "format: text cold {text_cold_secs:.3}s, binary cold {binary_cold_secs:.3}s, \
         binary {binary_speedup:.2}x faster"
    );
    println!(
        "scan: owned {owned_scan_cold_secs:.3}s, mmap {mmap_scan_cold_secs:.3}s, \
         mmap {mmap_speedup:.2}x faster"
    );
    println!(
        "cache: {} hits / {} misses / {} evictions, {} entries, {} KiB resident",
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.resident_entries,
        stats.resident_bytes / 1024
    );
    println!("wrote {out_path}");

    if warm > cold {
        eprintln!("FAIL: warm path slower than cold ({warm:.3}s > {cold:.3}s)");
        std::process::exit(1);
    }
    if binary_speedup < 1.5 {
        eprintln!("FAIL: binary cold scan not >=1.5x faster than text ({binary_speedup:.2}x)");
        std::process::exit(1);
    }
    if mmap_speedup < 1.3 {
        eprintln!("FAIL: mmap cold scan not >=1.3x faster than owned ({mmap_speedup:.2}x)");
        std::process::exit(1);
    }
}
