//! CI guard: verify benchmark JSON artifacts are well-formed.
//!
//! ```text
//! cargo run -p sh-bench --release --bin checkjson -- BENCH_*.json
//! ```
//!
//! Each file must parse as JSON and carry a non-empty string under the
//! `benchmark` key; known benchmarks must additionally carry their
//! numeric metric fields. Any violation exits non-zero naming the file.

/// Numeric fields a known benchmark's artifact must carry beyond the
/// generic shape — the trend gate and the format-comparison reports
/// read these, so losing one silently breaks downstream checks.
fn required_fields(benchmark: &str) -> &'static [&'static str] {
    match benchmark {
        "hotpath" => &[
            "cold_secs",
            "warm_secs_mean",
            "speedup",
            "text_cold_secs",
            "binary_cold_secs",
            "binary_speedup",
            "owned_scan_cold_secs",
            "mmap_scan_cold_secs",
            "mmap_speedup",
        ],
        "throughput" => &["concurrent_secs"],
        "load" => &[
            "cores",
            "target_qps",
            "duration_secs",
            "arrivals",
            "completed",
            "errors",
            "busy_retries",
            "sustained_qps",
            "p50_ms",
            "p95_ms",
            "p99_ms",
        ],
        _ => &[],
    }
}

/// Boolean fields a known benchmark's artifact must carry. `throughput`
/// must say `gate_skipped: true|false` explicitly so a single-core run
/// is distinguishable from a passing multi-core one downstream.
fn required_bool_fields(benchmark: &str) -> &'static [&'static str] {
    match benchmark {
        "throughput" | "load" => &["gate_skipped"],
        _ => &[],
    }
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: checkjson <file.json>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("FAIL {path}: unreadable: {e}");
                failed = true;
                continue;
            }
        };
        let value = match sh_trace::json::parse(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("FAIL {path}: malformed JSON: {e}");
                failed = true;
                continue;
            }
        };
        let name = match value.get("benchmark").and_then(|b| b.as_str()) {
            Some(name) if !name.is_empty() => name.to_string(),
            _ => {
                eprintln!("FAIL {path}: missing \"benchmark\" key");
                failed = true;
                continue;
            }
        };
        let missing: Vec<&str> = required_fields(&name)
            .iter()
            .filter(|f| value.get(f).and_then(|v| v.as_f64()).is_none())
            .copied()
            .collect();
        let missing_bools: Vec<&str> = required_bool_fields(&name)
            .iter()
            .filter(|f| value.get(f).and_then(|v| v.as_bool()).is_none())
            .copied()
            .collect();
        if missing.is_empty() && missing_bools.is_empty() {
            let skipped = value
                .get("gate_skipped")
                .and_then(|v| v.as_bool())
                .unwrap_or(false);
            if skipped {
                println!("ok {path}: benchmark \"{name}\" (gate_skipped: true)");
            } else {
                println!("ok {path}: benchmark \"{name}\"");
            }
        } else {
            if !missing.is_empty() {
                eprintln!(
                    "FAIL {path}: benchmark \"{name}\" missing numeric field(s): {}",
                    missing.join(", ")
                );
            }
            if !missing_bools.is_empty() {
                eprintln!(
                    "FAIL {path}: benchmark \"{name}\" missing boolean field(s): {}",
                    missing_bools.join(", ")
                );
            }
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
