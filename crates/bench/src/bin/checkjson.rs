//! CI guard: verify benchmark JSON artifacts are well-formed.
//!
//! ```text
//! cargo run -p sh-bench --release --bin checkjson -- BENCH_*.json
//! ```
//!
//! Each file must parse as JSON and carry a non-empty string under the
//! `benchmark` key; any violation exits non-zero naming the file.

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: checkjson <file.json>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("FAIL {path}: unreadable: {e}");
                failed = true;
                continue;
            }
        };
        let value = match sh_trace::json::parse(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("FAIL {path}: malformed JSON: {e}");
                failed = true;
                continue;
            }
        };
        match value.get("benchmark").and_then(|b| b.as_str()) {
            Some(name) if !name.is_empty() => println!("ok {path}: benchmark \"{name}\""),
            _ => {
                eprintln!("FAIL {path}: missing \"benchmark\" key");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
