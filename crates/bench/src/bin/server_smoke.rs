//! CI smoke test for a live `sh-server`: connect, `SET`, `INDEX`, range
//! query, a concurrent second connection, and the `429 BUSY` path.
//!
//! ```text
//! sh-server --port 0 --max-inflight 1 --queue-cap 1 &   # note the addr
//! cargo run -p sh-bench --bin server_smoke -- 127.0.0.1:PORT
//! ```
//!
//! Expects a server with a **1-slot, 1-queue** scheduler so the third
//! concurrent query provably gets pushed back. Exits non-zero on the
//! first broken expectation; `scripts/ci.sh server` dumps the server
//! log when that happens.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::thread;

use sh_bench::client::{Response, ShClient};

fn fail(msg: &str) -> ExitCode {
    eprintln!("server_smoke: FAIL: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let Some(addr) = std::env::args().nth(1) else {
        eprintln!("usage: server_smoke <host:port>");
        return ExitCode::FAILURE;
    };
    let addr: SocketAddr = match addr.parse() {
        Ok(a) => a,
        Err(e) => return fail(&format!("bad address {addr:?}: {e}")),
    };

    // 1. Connect; the banner carries the protocol version.
    let mut c1 = match ShClient::connect(&addr) {
        Ok(c) => c,
        Err(e) => return fail(&format!("connect: {e}")),
    };
    println!("smoke: connected, banner {:?}", c1.banner());

    // 2. SET (session-local knob) answers OK.
    match c1.request("SET result_limit 5;") {
        Ok(Response::Ok(rows)) if rows.is_empty() => println!("smoke: SET ok"),
        other => return fail(&format!("SET: {other:?}")),
    }

    // 3. Build a dataset + index through the wire.
    let build = "p = GENERATE 20000 POINT uniform INTO '/smoke/p'; \
                 ip = INDEX p AS str+ INTO '/smoke/ip';";
    match c1.request(build) {
        Ok(Response::Ok(_)) => println!("smoke: INDEX ok"),
        other => return fail(&format!("INDEX: {other:?}")),
    }

    // 4. Range query streams rows, capped by this session's result_limit
    //    (5 rows + the truncation marker).
    let q = "r = FILTER ip BY Overlaps(RECTANGLE(100000, 100000, 900000, 900000)); DUMP r;";
    match c1.request(q) {
        Ok(Response::Ok(rows)) => {
            if rows.len() != 6 || !rows[5].contains("truncated by result_limit") {
                return fail(&format!(
                    "range: expected 5 rows + marker, got {} rows (last {:?})",
                    rows.len(),
                    rows.last()
                ));
            }
            println!("smoke: range query ok ({} rows, truncated)", rows.len() - 1);
        }
        other => return fail(&format!("range: {other:?}")),
    }

    // 5. A concurrent second connection works and cannot see c1's vars
    //    (sessions are isolated).
    let mut c2 = match ShClient::connect(&addr) {
        Ok(c) => c,
        Err(e) => return fail(&format!("second connect: {e}")),
    };
    match c2.request("DUMP p;") {
        Ok(Response::Err(msg)) if msg.contains("undefined") => {
            println!("smoke: session isolation ok (c2 cannot see c1's vars)")
        }
        other => return fail(&format!("isolation: expected undefined, got {other:?}")),
    }
    match c2.request("g = GENERATE 500 POINT uniform INTO '/smoke/g'; DUMP g;") {
        Ok(Response::Ok(rows)) if rows.len() == 500 => {
            println!("smoke: concurrent second connection ok (500 rows, no result_limit)")
        }
        other => return fail(&format!("second connection: {other:?}")),
    }

    // 6. The 429 path. The server runs a 1-slot/1-queue scheduler; a
    //    DFS-wide fault-plan delay makes every map task 0 hold its job
    //    slot ~2s, so with one query running and one queued, the third
    //    must be pushed back. Each connection queries its own dataset
    //    (sessions cannot see each other's vars), built while the fault
    //    plan is still off.
    let mut ca = match ShClient::connect(&addr) {
        Ok(c) => c,
        Err(e) => return fail(&format!("busy conn a: {e}")),
    };
    let mut cb = match ShClient::connect(&addr) {
        Ok(c) => c,
        Err(e) => return fail(&format!("busy conn b: {e}")),
    };
    for (c, path) in [(&mut ca, "'/smoke/a'"), (&mut cb, "'/smoke/b'")] {
        match c.request(&format!("x = GENERATE 5000 POINT uniform INTO {path};")) {
            Ok(Response::Ok(_)) => {}
            other => return fail(&format!("busy setup {path}: {other:?}")),
        }
    }
    if let Err(e) = c1.request("SET retry_backoff_ms 0; SET fault_plan 'delay:0x2000';") {
        return fail(&format!("arm fault plan: {e}"));
    }
    let slow = "s = KNN x POINT(500000, 500000) K 3; DUMP s;";
    let h1 = thread::spawn(move || {
        let r = ca.request(slow);
        ca.quit().ok();
        r
    });
    let h2 = thread::spawn(move || {
        // Stagger so a is running and b is queued before the probe.
        thread::sleep(std::time::Duration::from_millis(300));
        let r = cb.request(slow);
        cb.quit().ok();
        r
    });
    thread::sleep(std::time::Duration::from_millis(700));
    // The probe uses c2's own heap dataset from step 5, so an admitted
    // probe runs a real (slow) job rather than erroring.
    let probe = "s = KNN g POINT(500000, 500000) K 3;";
    let mut got_busy = false;
    for _ in 0..10 {
        match c2.request(probe) {
            Ok(Response::Busy { retry_ms }) => {
                println!("smoke: 429 BUSY ok (retry hint {retry_ms}ms)");
                got_busy = true;
                break;
            }
            Ok(Response::Ok(_)) => thread::sleep(std::time::Duration::from_millis(50)),
            other => return fail(&format!("busy probe: {other:?}")),
        }
    }
    if !got_busy {
        return fail("never saw 429 BUSY from a saturated 1-slot scheduler");
    }
    match (h1.join(), h2.join()) {
        (Ok(Ok(Response::Ok(ra))), Ok(Ok(Response::Ok(rb)))) if ra.len() == 3 && rb.len() == 3 => {
            println!("smoke: queued queries completed after the busy window")
        }
        other => return fail(&format!("saturating queries: {other:?}")),
    }
    if let Err(e) = c1.request("SET fault_plan none;") {
        return fail(&format!("disarm fault plan: {e}"));
    }

    // 7. Polite shutdown of both sessions.
    if c1.quit().is_err() || c2.quit().is_err() {
        return fail("QUIT");
    }
    println!("server_smoke: PASS");
    ExitCode::SUCCESS
}
