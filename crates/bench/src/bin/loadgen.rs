//! Open-loop load generator: replays a mixed range/kNN/join arrival
//! stream at a target QPS against a live `sh-server` and reports tail
//! latency + sustained throughput.
//!
//! ```text
//! cargo run -p sh-bench --release --bin loadgen                 # BENCH_load.json
//! cargo run -p sh-bench --release --bin loadgen -- out.json 40 6
//! ```
//!
//! Open-loop means arrivals fire on schedule whether or not earlier
//! queries finished — the scheduler's admission control, not the
//! client, is what bounds concurrency, so queueing delay lands in the
//! measured latency exactly as a user would feel it. `429 BUSY`
//! responses are retried with the server's back-off hint and counted.
//!
//! The concurrency gate (sustained QPS + p99 bound) is enforced only on
//! machines with at least [`MIN_CORES`] cores; below that the run is
//! informational and the artifact records `gate_skipped: true`.

use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use sh_bench::client::{Response, ShClient};
use sh_server::{Server, ServerConfig};

const MIN_CORES: usize = 4;
/// Gate: at least this fraction of the target QPS must complete.
const MIN_QPS_FRACTION: f64 = 0.5;
/// Gate: p99 latency bound, generous enough for CI runners.
const MAX_P99_MS: f64 = 2_000.0;
/// Busy retries per query before it counts as an error.
const MAX_RETRIES: usize = 50;

const INIT_SCRIPT: &str = "\
    p = GENERATE 60000 POINT uniform INTO '/load/p';\n\
    ip = INDEX p AS str+ INTO '/load/ip';\n\
    a = GENERATE 4000 RECTANGLE uniform INTO '/load/a';\n\
    b = GENERATE 4000 RECTANGLE uniform INTO '/load/b';\n\
    ia = INDEX a AS grid INTO '/load/ia';\n\
    ib = INDEX b AS grid INTO '/load/ib';\n";

/// Deterministic query mix: 70% range, 20% kNN, 10% join.
fn query_for(i: usize) -> (&'static str, String) {
    // Spread query centers over the default 1e6-wide universe.
    let t = (i as f64 * 0.6180339887498949) % 1.0; // golden-ratio stride
    let cx = 50_000.0 + t * 900_000.0;
    let cy = 50_000.0 + ((t * 7.0) % 1.0) * 900_000.0;
    match i % 10 {
        0..=6 => (
            "range",
            format!(
                "q = FILTER ip BY Overlaps(RECTANGLE({:.0}, {:.0}, {:.0}, {:.0})); DUMP q;",
                cx - 40_000.0,
                cy - 40_000.0,
                cx + 40_000.0,
                cy + 40_000.0
            ),
        ),
        7 | 8 => (
            "knn",
            format!("q = KNN ip POINT({cx:.0}, {cy:.0}) K 10; DUMP q;"),
        ),
        _ => (
            "join",
            "q = JOIN ia, ib PREDICATE Overlaps; DUMP q;".to_string(),
        ),
    }
}

struct Sample {
    latency_ms: f64,
    retries: usize,
    ok: bool,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 * p).ceil() as usize).clamp(1, sorted_ms.len()) - 1;
    sorted_ms[idx]
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out_path = args.next().unwrap_or_else(|| "BENCH_load.json".to_string());
    let target_qps: f64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(30.0);
    let duration_secs: f64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(4.0);

    // Self-hosting: stand up a real server over TCP on an ephemeral
    // port. The init script pre-builds the datasets every session sees.
    let dfs = sh_bench::fresh_dfs(sh_bench::BLOCK);
    let server = Server::start(
        &dfs,
        ServerConfig {
            init_script: Some(INIT_SCRIPT.to_string()),
            sched: sh_mapreduce::SchedConfig {
                max_in_flight: 8,
                queue_cap: 256,
                ..sh_mapreduce::SchedConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("start server");
    let addr = server.addr();
    println!("loadgen: server on {addr}, target {target_qps} qps for {duration_secs}s");

    let arrivals = (target_qps * duration_secs).round() as usize;
    let (tx, rx) = mpsc::channel::<Sample>();
    let t0 = Instant::now();
    let mut workers = Vec::with_capacity(arrivals);
    for i in 0..arrivals {
        // Open loop: sleep until the scheduled arrival, never until the
        // previous query's completion.
        let due = Duration::from_secs_f64(i as f64 / target_qps);
        let now = t0.elapsed();
        if due > now {
            thread::sleep(due - now);
        }
        let tx = tx.clone();
        workers.push(thread::spawn(move || {
            let scheduled = due;
            let (_kind, line) = query_for(i);
            let sample = (|| -> std::io::Result<Sample> {
                let mut client = ShClient::connect(&addr)?;
                let (resp, retries) = client.request_with_retry(&line, MAX_RETRIES)?;
                let ok = matches!(resp, Response::Ok(_));
                client.quit().ok();
                Ok(Sample {
                    latency_ms: 0.0, // filled below
                    retries,
                    ok,
                })
            })();
            let latency_ms = (t0.elapsed() - scheduled).as_secs_f64() * 1000.0;
            let sample = match sample {
                Ok(mut s) => {
                    s.latency_ms = latency_ms;
                    s
                }
                Err(_) => Sample {
                    latency_ms,
                    retries: 0,
                    ok: false,
                },
            };
            tx.send(sample).ok();
        }));
    }
    drop(tx);
    for w in workers {
        w.join().expect("worker");
    }
    let wall_secs = t0.elapsed().as_secs_f64();
    let samples: Vec<Sample> = rx.iter().collect();
    drop(server);

    let completed = samples.iter().filter(|s| s.ok).count();
    let errors = samples.len() - completed;
    let busy_retries: usize = samples.iter().map(|s| s.retries).sum();
    let mut lat: Vec<f64> = samples
        .iter()
        .filter(|s| s.ok)
        .map(|s| s.latency_ms)
        .collect();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("latency NaN"));
    let p50 = percentile(&lat, 0.50);
    let p95 = percentile(&lat, 0.95);
    let p99 = percentile(&lat, 0.99);
    let sustained_qps = completed as f64 / wall_secs;
    let cores = sh_bench::cores();
    let enforced = cores >= MIN_CORES;

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"load\",\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!("  \"git_rev\": \"{}\",\n", sh_bench::git_rev()));
    json.push_str(
        "  \"workload\": {\"mix\": {\"range\": 7, \"knn\": 2, \"join\": 1}, \"points\": 60000, \"rects_per_side\": 4000},\n",
    );
    json.push_str(&format!("  \"target_qps\": {target_qps:.2},\n"));
    json.push_str(&format!("  \"duration_secs\": {duration_secs:.2},\n"));
    json.push_str(&format!("  \"arrivals\": {},\n", samples.len()));
    json.push_str(&format!("  \"completed\": {completed},\n"));
    json.push_str(&format!("  \"errors\": {errors},\n"));
    json.push_str(&format!("  \"busy_retries\": {busy_retries},\n"));
    json.push_str(&format!("  \"sustained_qps\": {sustained_qps:.3},\n"));
    json.push_str(&format!("  \"p50_ms\": {p50:.3},\n"));
    json.push_str(&format!("  \"p95_ms\": {p95:.3},\n"));
    json.push_str(&format!("  \"p99_ms\": {p99:.3},\n"));
    json.push_str(&format!("  \"gate_skipped\": {},\n", !enforced));
    json.push_str(&format!(
        "  \"load_gate\": {{\"min_qps_fraction\": {MIN_QPS_FRACTION}, \"max_p99_ms\": {MAX_P99_MS}, \"min_cores\": {MIN_CORES}, \"enforced\": {enforced}}}\n"
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");

    println!(
        "load: {completed}/{} ok ({errors} errors, {busy_retries} busy retries), \
         sustained {sustained_qps:.1} qps, p50 {p50:.1}ms p95 {p95:.1}ms p99 {p99:.1}ms \
         on {cores} core(s)",
        samples.len()
    );
    println!("wrote {out_path}");

    // Hard gate regardless of cores: the stream must actually complete.
    assert!(
        errors == 0,
        "{errors} queries failed (not busy — real errors)"
    );
    if enforced {
        let min_qps = target_qps * MIN_QPS_FRACTION;
        if sustained_qps < min_qps {
            eprintln!("FAIL: sustained {sustained_qps:.1} qps below {min_qps:.1}");
            std::process::exit(1);
        }
        if p99 > MAX_P99_MS {
            eprintln!("FAIL: p99 {p99:.1}ms above {MAX_P99_MS}ms");
            std::process::exit(1);
        }
    } else {
        println!("load: gate SKIPPED ({cores} cores < {MIN_CORES}); recorded gate_skipped=true");
    }
}
