//! Experiment driver: regenerates every table/figure of the evaluation.
//!
//! ```text
//! cargo run -p sh-bench --release --bin experiments            # all
//! cargo run -p sh-bench --release --bin experiments -- E3 E13  # subset
//! ```

use std::time::Instant;

use sh_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() {
        experiments::ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    println!("# SpatialHadoop-rs experiment results");
    println!();
    println!(
        "Simulated cluster: 25 nodes, 2 map + 1 reduce slot each, {} KiB blocks.",
        sh_bench::BLOCK / 1024
    );
    println!();
    let total = Instant::now();
    for id in ids {
        let t0 = Instant::now();
        match experiments::run(id) {
            Some(table) => {
                println!("{table}");
                println!("_(harness wall time: {:.1}s)_", t0.elapsed().as_secs_f64());
                println!();
            }
            None => eprintln!(
                "unknown experiment id: {id} (known: {:?})",
                experiments::ALL
            ),
        }
    }
    eprintln!("total harness time: {:.1}s", total.elapsed().as_secs_f64());
}
