//! Experiment runners E1–E14 (see DESIGN.md §4 for the index).

use sh_core::ops::{
    closest_pair, convex_hull, farthest_pair, join, knn, knn_join, range, single, skyline, union,
    voronoi,
};
use sh_core::storage::{build_index, build_index_with, upload};
use sh_core::SpatialFile;
use sh_dfs::Dfs;
use sh_geom::{Point, Polygon, Rect};
use sh_index::quality;
use sh_index::GlobalPartitioning;
use sh_index::PartitionKind;
use sh_workload::{
    default_universe, osm_like_points, osm_like_polygons, points, rects, Distribution,
};

use crate::table::{secs, speedup, Table};
use crate::{fresh_dfs, BLOCK};

/// All experiment ids in order (E* reproduce the paper's evaluation, A*
/// are the design-choice ablations of DESIGN.md §5).
pub const ALL: [&str; 21] = [
    "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "A1",
    "A2", "A3", "A4", "A5", "X1", "X2",
];

/// Runs one experiment by id.
pub fn run(id: &str) -> Option<Table> {
    match id {
        "E1" => Some(e1_index_build()),
        "E2" => Some(e2_partition_quality()),
        "E3" => Some(e3_range_size()),
        "E4" => Some(e4_range_selectivity()),
        "E5" => Some(e5_knn_size()),
        "E6" => Some(e6_knn_k()),
        "E7" => Some(e7_join()),
        "E8" => Some(e8_skyline()),
        "E9" => Some(e9_convex_hull()),
        "E10" => Some(e10_union()),
        "E11" => Some(e11_closest_pair()),
        "E12" => Some(e12_farthest_pair()),
        "E13" => Some(e13_voronoi()),
        "E14" => Some(e14_pigeon()),
        "A1" => Some(a1_locality()),
        "A2" => Some(a2_local_pruning()),
        "A3" => Some(a3_filter_step()),
        "A4" => Some(a4_local_index()),
        "A5" => Some(a5_stragglers()),
        "X1" => Some(x1_knn_join()),
        "X2" => Some(x2_plot()),
        _ => None,
    }
}

fn uni() -> Rect {
    default_universe()
}

fn load_points(dfs: &Dfs, path: &str, n: usize, dist: Distribution, seed: u64) -> Vec<Point> {
    let pts = points(n, dist, &uni(), seed);
    upload(dfs, path, &pts).expect("upload points");
    pts
}

fn index_points(dfs: &Dfs, heap: &str, dir: &str, kind: PartitionKind) -> (SpatialFile, f64) {
    let built = build_index::<Point>(dfs, heap, dir, kind).expect("build index");
    let sim = built.sim().total();
    (built.value, sim)
}

// --------------------------------------------------------------------- E1

/// E1: index building time vs. input size and technique.
pub fn e1_index_build() -> Table {
    let mut t = Table::new(
        "E1",
        "Index building: simulated cluster seconds by size and technique",
        &["points", "grid", "quadtree", "str+", "hilbert"],
    );
    for &n in &[50_000usize, 100_000, 200_000] {
        let mut cells = vec![format!("{n}")];
        for kind in [
            PartitionKind::Grid,
            PartitionKind::QuadTree,
            PartitionKind::StrPlus,
            PartitionKind::Hilbert,
        ] {
            let dfs = fresh_dfs(BLOCK);
            load_points(&dfs, "/heap", n, Distribution::Uniform, 1);
            let (_, sim) = index_points(&dfs, "/heap", "/idx", kind);
            cells.push(secs(sim));
        }
        t.row(cells);
    }
    t.with_note(
        "Building cost grows linearly with input and is dominated by the \
         partition job; techniques differ little (paper Fig: index \
         creation time).",
    )
}

// --------------------------------------------------------------------- E2

/// E2: partitioning quality (Q1 area, Q2 overlap, Q3 margin, Q4 load CV,
/// Q5 replication) per technique on skewed data.
pub fn e2_partition_quality() -> Table {
    let mut t = Table::new(
        "E2",
        "Partitioning quality on OSM-like skewed data (100k points / 50k rects)",
        &[
            "technique",
            "partitions",
            "Q1 area",
            "Q2 overlap",
            "Q3 margin",
            "Q4 load CV",
            "Q5 repl (rects)",
        ],
    );
    let n = 100_000usize;
    let n_rects = 50_000usize;
    for kind in PartitionKind::ALL {
        let dfs = fresh_dfs(BLOCK);
        let pts = osm_like_points(n, &uni(), 8, 2);
        upload(&dfs, "/heap", &pts).expect("upload");
        let (file, _) = index_points(&dfs, "/heap", "/idx", kind);
        let mbrs: Vec<Rect> = file.partitions.iter().map(|p| p.mbr_rect()).collect();
        let counts: Vec<u64> = file.partitions.iter().map(|p| p.records).collect();
        let q = quality::measure(&mbrs, &counts, n as u64, &uni());
        // Replication only shows on extended records: measure it on a
        // rectangle dataset indexed with the same technique.
        let rs = rects(n_rects, &uni(), 8_000.0, 3);
        upload(&dfs, "/rects", &rs).expect("upload rects");
        let rf = build_index::<Rect>(&dfs, "/rects", "/ridx", kind)
            .expect("rect index")
            .value;
        let replication = rf.total_records() as f64 / n_rects as f64;
        t.row(vec![
            kind.name().to_string(),
            format!("{}", q.partitions),
            format!("{:.3}", q.total_area),
            format!("{:.3}", q.total_overlap),
            format!("{:.2}", q.total_margin),
            format!("{:.2}", q.load_cv),
            format!("{replication:.3}"),
        ]);
    }
    t.with_note(
        "Grid is skew-blind (worst load CV); quad/kd/str+ balance load; \
         overlapping techniques (str, z, hilbert) avoid replication but \
         pay MBR overlap, disjoint ones replicate boundary rectangles \
         instead (paper Table: partitioning techniques).",
    )
}

// --------------------------------------------------------------------- E3

/// E3: range-query cluster time vs. input size.
pub fn e3_range_size() -> Table {
    let mut t = Table::new(
        "E3",
        "Range query (0.01% selectivity): simulated seconds per query",
        &["points", "hadoop", "sh-grid", "sh-str+", "speedup(best)"],
    );
    let queries = 8usize;
    for &n in &[50_000usize, 100_000, 200_000, 400_000] {
        let dfs = fresh_dfs(BLOCK);
        let _pts = load_points(&dfs, "/heap", n, Distribution::Uniform, 3);
        let (grid, _) = index_points(&dfs, "/heap", "/g", PartitionKind::Grid);
        let (strp, _) = index_points(&dfs, "/heap", "/s", PartitionKind::StrPlus);
        let side = uni().width() * 0.01; // 0.01% of the area
        let mut sims = [0.0f64; 3];
        for q in 0..queries {
            let qx = 100_000.0 + (q as f64) * 90_000.0;
            let query = Rect::new(qx, qx, qx + side, qx + side);
            sims[0] += range::range_hadoop::<Point>(&dfs, "/heap", &query, &format!("/o/h{n}-{q}"))
                .unwrap()
                .sim()
                .total();
            sims[1] += range::range_spatial::<Point>(&dfs, &grid, &query, &format!("/o/g{n}-{q}"))
                .unwrap()
                .sim()
                .total();
            sims[2] += range::range_spatial::<Point>(&dfs, &strp, &query, &format!("/o/s{n}-{q}"))
                .unwrap()
                .sim()
                .total();
        }
        let per = |s: f64| s / queries as f64;
        t.row(vec![
            format!("{n}"),
            secs(per(sims[0])),
            secs(per(sims[1])),
            secs(per(sims[2])),
            speedup(per(sims[0]), per(sims[1]).min(per(sims[2]))),
        ]);
    }
    t.with_note(
        "Hadoop scans every block (cost grows with input); SpatialHadoop \
         opens only the partitions overlapping the query, so per-query \
         cost is flat — the throughput gap widens with file size (paper \
         Fig: range query performance).",
    )
}

// --------------------------------------------------------------------- E4

/// E4: range-query cluster time vs. selectivity.
pub fn e4_range_selectivity() -> Table {
    let mut t = Table::new(
        "E4",
        "Range query vs. selectivity (200k points)",
        &["area fraction", "hadoop", "sh-str+", "partitions opened"],
    );
    let dfs = fresh_dfs(BLOCK);
    let _ = load_points(&dfs, "/heap", 200_000, Distribution::Uniform, 4);
    let (strp, _) = index_points(&dfs, "/heap", "/s", PartitionKind::StrPlus);
    for (i, &frac) in [1e-6f64, 1e-5, 1e-4, 1e-3, 1e-2].iter().enumerate() {
        let side = uni().width() * frac.sqrt();
        let query = Rect::new(300_000.0, 300_000.0, 300_000.0 + side, 300_000.0 + side);
        let h = range::range_hadoop::<Point>(&dfs, "/heap", &query, &format!("/o4/h{i}")).unwrap();
        let s = range::range_spatial::<Point>(&dfs, &strp, &query, &format!("/o4/s{i}")).unwrap();
        t.row(vec![
            format!("{frac:.0e}"),
            secs(h.sim().total()),
            secs(s.sim().total()),
            format!("{}", s.map_tasks()),
        ]);
    }
    t.with_note(
        "SpatialHadoop's advantage shrinks as the query grows (more \
         partitions opened) and its cost converges toward the full scan \
         at very large ranges (paper Fig: effect of selectivity).",
    )
}

// --------------------------------------------------------------------- E5

/// E5: kNN cluster time vs. input size.
pub fn e5_knn_size() -> Table {
    let mut t = Table::new(
        "E5",
        "kNN (k=10): simulated seconds per query",
        &["points", "hadoop", "sh-str+", "rounds", "speedup"],
    );
    for &n in &[50_000usize, 100_000, 200_000, 400_000] {
        let dfs = fresh_dfs(BLOCK);
        let _ = load_points(&dfs, "/heap", n, Distribution::Uniform, 5);
        let (strp, _) = index_points(&dfs, "/heap", "/s", PartitionKind::StrPlus);
        let q = Point::new(500_000.0, 500_000.0);
        let h = knn::knn_hadoop(&dfs, "/heap", &q, 10, &format!("/o5/h{n}")).unwrap();
        let s = knn::knn_spatial(&dfs, &strp, &q, 10, &format!("/o5/s{n}")).unwrap();
        t.row(vec![
            format!("{n}"),
            secs(h.sim().total()),
            secs(s.sim().total()),
            format!("{}", s.rounds()),
            speedup(h.sim().total(), s.sim().total()),
        ]);
    }
    t.with_note(
        "Hadoop kNN scans the file; SpatialHadoop answers from one \
         partition (occasionally two rounds near boundaries), keeping \
         per-query cost flat (paper Fig: kNN performance).",
    )
}

// --------------------------------------------------------------------- E6

/// E6: kNN vs. k.
pub fn e6_knn_k() -> Table {
    let mut t = Table::new(
        "E6",
        "kNN vs. k (200k points, str+)",
        &["k", "sim seconds", "rounds", "partitions read"],
    );
    let dfs = fresh_dfs(BLOCK);
    let _ = load_points(&dfs, "/heap", 200_000, Distribution::Uniform, 6);
    let (strp, _) = index_points(&dfs, "/heap", "/s", PartitionKind::StrPlus);
    let q = Point::new(431_000.0, 577_000.0);
    for &k in &[1usize, 10, 100, 1000, 10_000] {
        let s = knn::knn_spatial(&dfs, &strp, &q, k, &format!("/o6/{k}")).unwrap();
        t.row(vec![
            format!("{k}"),
            secs(s.sim().total()),
            format!("{}", s.rounds()),
            format!("{}", s.map_tasks()),
        ]);
    }
    t.with_note(
        "Cost stays flat until k forces the correctness circle across \
         partition boundaries, then extra rounds/partitions appear \
         (paper Fig: effect of k).",
    )
}

// --------------------------------------------------------------------- E7

/// E7: spatial join — SJMR vs. distributed join.
pub fn e7_join() -> Table {
    let mut t = Table::new(
        "E7",
        "Spatial join: simulated seconds (rects x rects)",
        &[
            "n per side",
            "single(wall)",
            "sjmr",
            "dj-grid",
            "dj-str+",
            "result pairs",
        ],
    );
    for &n in &[5_000usize, 10_000, 20_000] {
        let dfs = fresh_dfs(BLOCK);
        let left = rects(n, &uni(), 4_000.0, 7);
        let right = rects(n, &uni(), 4_000.0, 8);
        upload(&dfs, "/l", &left).unwrap();
        upload(&dfs, "/r", &right).unwrap();
        let single_t = single::spatial_join(&left, &right);
        let sj = join::sjmr(&dfs, "/l", "/r", &uni(), 25, &format!("/o7/sj{n}")).unwrap();
        // Both inputs are co-partitioned (shared boundaries), the setting
        // in which the paper's distributed join is evaluated.
        let target = (n as u64 * 74).div_ceil(BLOCK).max(1) as usize;
        let grid_gp = std::sync::Arc::new(GlobalPartitioning::build(
            PartitionKind::Grid,
            &[],
            uni(),
            target,
        ));
        let ga = build_index_with::<Rect>(&dfs, "/l", &format!("/ga{n}"), grid_gp.clone())
            .unwrap()
            .value;
        let gb = build_index_with::<Rect>(&dfs, "/r", &format!("/gb{n}"), grid_gp)
            .unwrap()
            .value;
        let dj_g = join::distributed_join(&dfs, &ga, &gb, &format!("/o7/djg{n}")).unwrap();
        let sample: Vec<Point> = left.iter().map(|r| r.center()).collect();
        let strp_gp = std::sync::Arc::new(GlobalPartitioning::build(
            PartitionKind::StrPlus,
            &sample,
            uni(),
            target,
        ));
        let sa = build_index_with::<Rect>(&dfs, "/l", &format!("/sa{n}"), strp_gp.clone())
            .unwrap()
            .value;
        let sb = build_index_with::<Rect>(&dfs, "/r", &format!("/sb{n}"), strp_gp)
            .unwrap()
            .value;
        let dj_s = join::distributed_join(&dfs, &sa, &sb, &format!("/o7/djs{n}")).unwrap();
        assert_eq!(sj.value.len(), dj_g.value.len(), "join variants agree");
        t.row(vec![
            format!("{n}"),
            secs(single_t.seconds),
            secs(sj.sim().total()),
            secs(dj_g.sim().total()),
            secs(dj_s.sim().total()),
            format!("{}", sj.value.len()),
        ]);
    }
    t.with_note(
        "The distributed join over pre-indexed inputs avoids SJMR's \
         replication + shuffle entirely; both parallel plans beat the \
         single machine as inputs grow (paper Fig: spatial join).",
    )
}

// --------------------------------------------------------------------- E8

/// E8: skyline across distributions and variants.
pub fn e8_skyline() -> Table {
    let mut t = Table::new(
        "E8",
        "Skyline (200k points): simulated seconds by distribution",
        &[
            "distribution",
            "single(wall)",
            "hadoop",
            "sh",
            "output-sensitive",
            "|skyline|",
        ],
    );
    for (dist, seed) in [
        (Distribution::Uniform, 11u64),
        (Distribution::Gaussian, 12),
        (Distribution::Correlated, 13),
        (Distribution::AntiCorrelated, 14),
    ] {
        let dfs = fresh_dfs(BLOCK);
        let pts = load_points(&dfs, "/heap", 200_000, dist, seed);
        let (strp, _) = index_points(&dfs, "/heap", "/s", PartitionKind::StrPlus);
        let single_t = single::skyline_single(&pts);
        let h = skyline::skyline_hadoop(&dfs, "/heap", "/o8/h").unwrap();
        let s = skyline::skyline_spatial(&dfs, &strp, "/o8/s").unwrap();
        let os = skyline::skyline_output_sensitive(&dfs, &strp, "/o8/os").unwrap();
        assert_eq!(h.value.len(), os.value.len(), "variants agree");
        t.row(vec![
            dist.name().to_string(),
            secs(single_t.seconds),
            secs(h.sim().total()),
            secs(s.sim().total()),
            secs(os.sim().total()),
            format!("{}", os.value.len()),
        ]);
    }
    t.with_note(
        "SH prunes dominated partitions (big win on uniform/correlated); \
         the output-sensitive variant is the only one that scales on \
         anti-correlated data where the skyline is the whole input \
         (paper Figs: skyline + SkylineOS).",
    )
}

// --------------------------------------------------------------------- E9

/// E9: convex hull variants.
pub fn e9_convex_hull() -> Table {
    let mut t = Table::new(
        "E9",
        "Convex hull: simulated seconds",
        &[
            "workload",
            "single(wall)",
            "hadoop",
            "sh",
            "enhanced",
            "partitions read (sh)",
        ],
    );
    for (name, dist, n, seed) in [
        ("uniform-100k", Distribution::Uniform, 100_000usize, 21u64),
        ("uniform-400k", Distribution::Uniform, 400_000, 22),
        ("circular-50k", Distribution::Circular, 50_000, 23),
    ] {
        let dfs = fresh_dfs(BLOCK);
        let pts = load_points(&dfs, "/heap", n, dist, seed);
        let (strp, _) = index_points(&dfs, "/heap", "/s", PartitionKind::StrPlus);
        let single_t = single::convex_hull_single(&pts);
        let h = convex_hull::hull_hadoop(&dfs, "/heap", "/o9/h").unwrap();
        let s = convex_hull::hull_spatial(&dfs, &strp, "/o9/s").unwrap();
        let e = convex_hull::hull_enhanced(&dfs, &strp, "/o9/e").unwrap();
        assert_eq!(s.value.len(), e.value.len(), "variants agree");
        t.row(vec![
            name.to_string(),
            secs(single_t.seconds),
            secs(h.sim().total()),
            secs(s.sim().total()),
            secs(e.sim().total()),
            format!("{}", s.map_tasks()),
        ]);
    }
    t.with_note(
        "The filter step reads only boundary partitions on uniform data; \
         circular data defeats partition pruning (every partition touches \
         the hull) but Theorem-3 point pruning still bounds the merge \
         (paper Figs: convex hull).",
    )
}

// -------------------------------------------------------------------- E10

/// E10: polygon union variants.
pub fn e10_union() -> Table {
    let mut t = Table::new(
        "E10",
        "Polygon union: simulated seconds (simple = convex, complex = concave)",
        &[
            "workload",
            "single(wall)",
            "hadoop",
            "sh-str",
            "enhanced-str+",
            "segs into merge (hadoop/sh)",
        ],
    );
    let workloads: Vec<(String, Vec<Polygon>)> = vec![
        (
            "simple-500".into(),
            osm_like_polygons(500, &uni(), 8_000.0, 31),
        ),
        (
            "simple-1000".into(),
            osm_like_polygons(1000, &uni(), 8_000.0, 31),
        ),
        (
            "simple-2000".into(),
            osm_like_polygons(2000, &uni(), 8_000.0, 31),
        ),
        (
            "complex-1000".into(),
            sh_workload::osm_like_polygons_complex(1000, &uni(), 8_000.0, 12, 32),
        ),
    ];
    for (name, polys) in workloads {
        let dfs = fresh_dfs(8 * 1024);
        upload(&dfs, "/polys", &polys).unwrap();
        let single_t = single::union_single(&polys);
        let h = union::union_hadoop(&dfs, "/polys", "/o10/h").unwrap();
        let str_file = build_index::<Polygon>(&dfs, "/polys", "/istr", PartitionKind::Str)
            .unwrap()
            .value;
        let s = union::union_spatial(&dfs, &str_file, "/o10/s").unwrap();
        let sp_file = build_index::<Polygon>(&dfs, "/polys", "/isp", PartitionKind::StrPlus)
            .unwrap()
            .value;
        let e = union::union_enhanced(&dfs, &sp_file, "/o10/e").unwrap();
        t.row(vec![
            name,
            secs(single_t.seconds),
            secs(h.sim().total()),
            secs(s.sim().total()),
            secs(e.sim().total()),
            format!(
                "{}/{}",
                h.counter("union.segments.into.merge"),
                s.counter("union.segments.into.merge")
            ),
        ]);
    }
    t.with_note(
        "Spatial partitioning removes interior edges locally (smaller \
         merge input than Hadoop); the enhanced variant removes the merge \
         entirely by clipping to disjoint cells (paper Fig: union).",
    )
}

// -------------------------------------------------------------------- E11

/// E11: closest pair.
pub fn e11_closest_pair() -> Table {
    let mut t = Table::new(
        "E11",
        "Closest pair: simulated seconds + pruning effectiveness",
        &[
            "points",
            "single(wall)",
            "sh",
            "candidates forwarded",
            "fraction",
        ],
    );
    for &n in &[100_000usize, 200_000, 400_000] {
        let dfs = fresh_dfs(BLOCK);
        let pts = load_points(&dfs, "/heap", n, Distribution::Uniform, 41);
        let (strp, _) = index_points(&dfs, "/heap", "/s", PartitionKind::StrPlus);
        let single_t = single::closest_pair_single(&pts);
        let s = closest_pair::closest_pair_spatial(&dfs, &strp, "/o11").unwrap();
        let cand = s.counter("closestpair.candidates");
        t.row(vec![
            format!("{n}"),
            secs(single_t.seconds),
            secs(s.sim().total()),
            format!("{cand}"),
            format!("{:.4}", cand as f64 / n as f64),
        ]);
    }
    t.with_note(
        "Each partition forwards only its δ-buffer: a vanishing fraction \
         of the input reaches the final single-machine step (paper Fig: \
         closest pair + pruning power).",
    )
}

// -------------------------------------------------------------------- E12

/// E12: farthest pair.
pub fn e12_farthest_pair() -> Table {
    let mut t = Table::new(
        "E12",
        "Farthest pair: simulated seconds + pruning",
        &[
            "workload",
            "hadoop",
            "sh-hull",
            "sh-pairs",
            "pairs processed/considered",
        ],
    );
    for (name, dist, n, seed) in [
        ("uniform-200k", Distribution::Uniform, 200_000usize, 51u64),
        ("gaussian-200k", Distribution::Gaussian, 200_000, 52),
        ("circular-50k", Distribution::Circular, 50_000, 53),
    ] {
        let dfs = fresh_dfs(BLOCK);
        let _ = load_points(&dfs, "/heap", n, dist, seed);
        let (strp, _) = index_points(&dfs, "/heap", "/s", PartitionKind::StrPlus);
        let h = farthest_pair::farthest_pair_hadoop(&dfs, "/heap", "/o12/h").unwrap();
        let s = farthest_pair::farthest_pair_spatial(&dfs, &strp, "/o12/s").unwrap();
        let pp = farthest_pair::farthest_pair_pairs(&dfs, &strp, "/o12/p").unwrap();
        let d = h.value.unwrap().distance;
        assert!(
            (d - s.value.unwrap().distance).abs() < 1e-6,
            "variants agree"
        );
        assert!(
            (d - pp.value.unwrap().distance).abs() < 1e-6,
            "variants agree"
        );
        t.row(vec![
            name.to_string(),
            secs(h.sim().total()),
            secs(s.sim().total()),
            secs(pp.sim().total()),
            format!(
                "{}/{}",
                pp.counter("fp.pairs.processed"),
                pp.counter("fp.pairs.considered")
            ),
        ]);
    }
    t.with_note(
        "On compact data the hull-based plan with the four-skyline filter \
         wins outright; the pair-pruning plan never collects the hull on \
         one machine — the memory-safe fallback for hull-heavy (circular) \
         data, at the price of re-reading surviving pairs (paper Fig: \
         farthest pair).",
    )
}

// -------------------------------------------------------------------- E13

/// E13: Voronoi diagram.
pub fn e13_voronoi() -> Table {
    let mut t = Table::new(
        "E13",
        "Voronoi diagram: simulated seconds + early-flush effectiveness",
        &[
            "sites",
            "single(wall)",
            "hadoop",
            "sh",
            "% flushed local",
            "% flushed v-merge",
        ],
    );
    for &n in &[25_000usize, 50_000, 100_000] {
        // Larger blocks here: Voronoi pruning effectiveness depends on
        // sites-per-partition (boundary cells are a ~1/sqrt(m) fraction).
        let dfs = fresh_dfs(8 * BLOCK);
        let pts = load_points(&dfs, "/heap", n, Distribution::Uniform, 61);
        let (grid, _) = index_points(&dfs, "/heap", "/g", PartitionKind::Grid);
        let single_t = single::voronoi_single(&pts);
        let h = voronoi::voronoi_hadoop(&dfs, "/heap", &uni(), "/o13/h").unwrap();
        let s = voronoi::voronoi_spatial(&dfs, &grid, "/o13/s").unwrap();
        assert_eq!(s.value.len(), h.value.len(), "variants agree on cell count");
        let local = s.counter("voronoi.flushed.local") as f64;
        let vmerge = s.counter("voronoi.flushed.vmerge") as f64;
        t.row(vec![
            format!("{n}"),
            secs(single_t.seconds),
            secs(h.sim().total()),
            secs(s.sim().total()),
            format!("{:.1}%", 100.0 * local / n as f64),
            format!("{:.1}%", 100.0 * vmerge / n as f64),
        ]);
    }
    t.with_note(
        "Most cells are final after the local step (~86% at laptop-scale \
         partitions; the boundary fraction shrinks as ~1/sqrt(sites per \
         partition), giving the paper's ~99% at 64 MB blocks), so the \
         merges handle only boundary sites; the Hadoop algorithm ships \
         the whole inflated diagram to one machine (paper Figs: Voronoi \
         + pruned sites).",
    )
}

// -------------------------------------------------------------------- E14

/// E14: Pigeon language overhead sanity check.
pub fn e14_pigeon() -> Table {
    let mut t = Table::new(
        "E14",
        "Pigeon language: same physical plan as the direct API",
        &["query", "direct result", "pigeon result", "match"],
    );
    let dfs = fresh_dfs(BLOCK);
    let pts = load_points(&dfs, "/data/points", 50_000, Distribution::Uniform, 71);
    let (strp, _) = index_points(&dfs, "/data/points", "/idx/api", PartitionKind::StrPlus);

    let query = Rect::new(100_000.0, 100_000.0, 200_000.0, 200_000.0);
    let direct_range = range::range_spatial::<Point>(&dfs, &strp, &query, "/o14/r")
        .unwrap()
        .value
        .len();
    let pigeon_range = sh_pigeon::run_script(
        &dfs,
        "p = LOAD '/data/points' AS POINT;\n\
         i = INDEX p AS str+ INTO '/idx/pigeon';\n\
         r = FILTER i BY Overlaps(RECTANGLE(100000, 100000, 200000, 200000));\n\
         DUMP r;",
    )
    .unwrap()
    .len();
    t.row(vec![
        "range 100k..200k".into(),
        format!("{direct_range}"),
        format!("{pigeon_range}"),
        format!("{}", direct_range == pigeon_range),
    ]);

    let direct_knn = knn::knn_spatial(&dfs, &strp, &Point::new(500_000.0, 500_000.0), 5, "/o14/k")
        .unwrap()
        .value;
    let pigeon_knn = sh_pigeon::run_script(
        &dfs,
        "p = LOAD '/data/points' AS POINT;\n\
         i = INDEX p AS str+ INTO '/idx/pigeon2';\n\
         n = KNN i POINT(500000, 500000) K 5;\n\
         DUMP n;",
    )
    .unwrap();
    let match_knn = direct_knn.len() == pigeon_knn.len();
    t.row(vec![
        "knn k=5".into(),
        format!("{}", direct_knn.len()),
        format!("{}", pigeon_knn.len()),
        format!("{match_knn}"),
    ]);
    let _ = pts;
    t.with_note("The language layer compiles to the same operations — zero semantic overhead.")
}

// -------------------------------------------------------------------- X1

/// X1 (beyond the paper): the two-round kNN join.
pub fn x1_knn_join() -> Table {
    let mut t = Table::new(
        "X1",
        "kNN join (k=5): two-round bound-and-refine (beyond the paper)",
        &[
            "|R| = |S|",
            "single(wall)",
            "sh",
            "% final in round 1",
            "rounds",
        ],
    );
    for &n in &[10_000usize, 20_000, 40_000] {
        let dfs = fresh_dfs(BLOCK);
        let r = points(n, Distribution::Uniform, &uni(), 86);
        let s = points(n, Distribution::Uniform, &uni(), 87);
        upload(&dfs, "/r", &r).unwrap();
        upload(&dfs, "/s", &s).unwrap();
        let rf = build_index::<Point>(&dfs, "/r", "/ri", PartitionKind::StrPlus)
            .unwrap()
            .value;
        let sf = build_index::<Point>(&dfs, "/s", "/si", PartitionKind::StrPlus)
            .unwrap()
            .value;
        let t0 = std::time::Instant::now();
        let baseline = knn_join::knn_join_single(&r, &s, 5);
        let single_secs = t0.elapsed().as_secs_f64();
        let got = knn_join::knn_join_spatial(&dfs, &rf, &sf, 5, "/ox1").unwrap();
        assert_eq!(got.value.len(), baseline.len());
        let final1 = got.counter("knnjoin.final.round1") as f64;
        t.row(vec![
            format!("{n}"),
            secs(single_secs),
            secs(got.sim().total()),
            format!("{:.1}%", 100.0 * final1 / n as f64),
            format!("{}", got.rounds()),
        ]);
    }
    t.with_note(
        "The round-1 bound finalizes the overwhelming majority of points; \
         only boundary circles pay the refinement round — the same \
         pruning economics as the paper's closest pair, applied to a \
         bulk operation.",
    )
}

/// X2 (beyond the paper): the visualization (plot) operation.
pub fn x2_plot() -> Table {
    use sh_core::ops::plot;
    let mut t = Table::new(
        "X2",
        "Plot 1024x768 density raster (HadoopViz single-level)",
        &["points", "single(wall)", "sh", "pixels lit"],
    );
    for &n in &[100_000usize, 200_000, 400_000] {
        let dfs = fresh_dfs(BLOCK);
        let pts = load_points(&dfs, "/heap", n, Distribution::Uniform, 88);
        let (strp, _) = index_points(&dfs, "/heap", "/s", PartitionKind::StrPlus);
        let t0 = std::time::Instant::now();
        let expected = plot::plot_single(&pts, &strp.universe, 1024, 768);
        let single_secs = t0.elapsed().as_secs_f64();
        let got =
            plot::plot_spatial::<Point>(&dfs, &strp, 1024, 768, &format!("/ox2/{n}")).unwrap();
        assert_eq!(got.value, expected, "raster must be exact");
        let lit = got.value.pixels.iter().filter(|&&v| v > 0).count();
        t.row(vec![
            format!("{n}"),
            secs(single_secs),
            secs(got.sim().total()),
            format!("{lit}"),
        ]);
    }
    t.with_note(
        "Each map task rasterizes only its partition; reducers merge \
         horizontal bands — render cost is embarrassingly parallel and \
         identical to the single-machine raster bit for bit.",
    )
}

// ------------------------------------------------------------ ablations

/// A1: locality-aware scheduling on/off (full-scan workload).
pub fn a1_locality() -> Table {
    let mut t = Table::new(
        "A1",
        "Ablation: locality-aware map scheduling (full scan, 200k points)",
        &[
            "scheduling",
            "local bytes",
            "remote bytes",
            "map makespan (s)",
        ],
    );
    for locality in [true, false] {
        let mut cfg = crate::cluster(BLOCK);
        cfg.locality_scheduling = locality;
        let dfs = Dfs::new(cfg);
        let _ = load_points(&dfs, "/heap", 200_000, Distribution::Uniform, 81);
        let q = Rect::new(0.0, 0.0, 1_000_000.0, 1_000_000.0);
        let r = range::range_hadoop::<Point>(&dfs, "/heap", &q, "/oa1").unwrap();
        t.row(vec![
            if locality {
                "locality-aware"
            } else {
                "locality-blind"
            }
            .to_string(),
            format!("{}", r.counter("map.input.bytes.local")),
            format!("{}", r.counter("map.input.bytes.remote")),
            secs(r.jobs[0].sim.map),
        ]);
    }
    t.with_note(
        "Hadoop's locality scheduling keeps most reads on-node; disabling \
         it pushes the bulk of the input over the (slower) network.",
    )
}

/// A2: the map-side local-skyline reduction on/off.
pub fn a2_local_pruning() -> Table {
    let mut t = Table::new(
        "A2",
        "Ablation: map-side local skyline (200k uniform points)",
        &["variant", "shuffle pairs", "sim seconds"],
    );
    let dfs = fresh_dfs(BLOCK);
    let _ = load_points(&dfs, "/heap", 200_000, Distribution::Uniform, 82);
    let naive = skyline::skyline_hadoop_naive(&dfs, "/heap", "/oa2/n").unwrap();
    let pruned = skyline::skyline_hadoop(&dfs, "/heap", "/oa2/p").unwrap();
    assert_eq!(naive.value, pruned.value, "same skyline either way");
    for (name, r) in [
        ("no local pruning", &naive),
        ("local skyline per split", &pruned),
    ] {
        t.row(vec![
            name.to_string(),
            format!("{}", r.counter("shuffle.pairs")),
            secs(r.sim().total()),
        ]);
    }
    t.with_note(
        "Without the local step every input point crosses the shuffle to \
         one reducer — the local skyline is what makes even the Hadoop \
         variant viable.",
    )
}

/// A3: the SpatialFileSplitter filter step on/off.
pub fn a3_filter_step() -> Table {
    let mut t = Table::new(
        "A3",
        "Ablation: partition filter step (range query, 200k points)",
        &["variant", "partitions read", "sim seconds"],
    );
    let dfs = fresh_dfs(BLOCK);
    let _ = load_points(&dfs, "/heap", 200_000, Distribution::Uniform, 83);
    let (strp, _) = index_points(&dfs, "/heap", "/s", PartitionKind::StrPlus);
    let q = Rect::new(300_000.0, 300_000.0, 340_000.0, 340_000.0);
    for (name, filter) in [("filter on", true), ("filter off", false)] {
        let r = range::range_spatial_with::<Point>(
            &dfs,
            &strp,
            &q,
            &format!("/oa3/{filter}"),
            range::RangeOptions {
                filter,
                ..Default::default()
            },
        )
        .unwrap();
        t.row(vec![
            name.to_string(),
            format!("{}", r.map_tasks()),
            secs(r.sim().total()),
        ]);
    }
    t.with_note(
        "The filter step is the entire range-query win: without it the \
         indexed query degenerates to a full scan of all partitions.",
    )
}

/// A4: local R-tree inside partitions on/off.
pub fn a4_local_index() -> Table {
    let mut t = Table::new(
        "A4",
        "Ablation: local R-tree per partition (range query, 400k points)",
        &["variant", "map compute wall (ms)", "sim seconds"],
    );
    let dfs = fresh_dfs(BLOCK);
    let _ = load_points(&dfs, "/heap", 400_000, Distribution::Uniform, 84);
    let (strp, _) = index_points(&dfs, "/heap", "/s", PartitionKind::StrPlus);
    let q = Rect::new(300_000.0, 300_000.0, 500_000.0, 500_000.0);
    for (name, local_index) in [("R-tree search", true), ("linear scan", false)] {
        let r = range::range_spatial_with::<Point>(
            &dfs,
            &strp,
            &q,
            &format!("/oa4/{local_index}"),
            range::RangeOptions {
                local_index,
                ..Default::default()
            },
        )
        .unwrap();
        t.row(vec![
            name.to_string(),
            format!("{:.1}", r.jobs[0].wall.as_secs_f64() * 1e3),
            secs(r.sim().total()),
        ]);
    }
    t.with_note(
        "At laptop partition sizes the record reader parses every record \
         either way, so building the local tree costs about as much as \
         the linear filter it replaces — the local index pays off only \
         when partitions hold the paper's ~700k records (honest negative \
         result at this scale).",
    )
}

/// A5: straggler sensitivity of the cost model.
pub fn a5_stragglers() -> Table {
    let mut t = Table::new(
        "A5",
        "Ablation: stragglers (full scan, 200k points, 4x slowdown)",
        &[
            "stragglers",
            "map makespan (s)",
            "with speculative execution (s)",
        ],
    );
    for stragglers in [0usize, 1, 3, 6] {
        let mut makespans = Vec::new();
        for speculative in [false, true] {
            let mut cfg = crate::cluster(BLOCK);
            cfg.stragglers = stragglers;
            cfg.straggler_slowdown = 4.0;
            cfg.speculative_execution = speculative;
            let dfs = Dfs::new(cfg);
            let _ = load_points(&dfs, "/heap", 200_000, Distribution::Uniform, 85);
            let q = Rect::new(0.0, 0.0, 1_000_000.0, 1_000_000.0);
            let r = range::range_hadoop::<Point>(&dfs, "/heap", &q, "/oa5").unwrap();
            makespans.push(r.jobs[0].sim.map);
        }
        t.row(vec![
            format!("{stragglers}"),
            secs(makespans[0]),
            secs(makespans[1]),
        ]);
    }
    t.with_note(
        "The map phase ends with the slowest node: even one straggler \
         stretches the makespan toward its slowdown factor. Speculative \
         execution (backup attempts on healthy nodes) claws most of it \
         back — exactly why Hadoop ships it.",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    // Smoke tests with tiny sizes run in the unit suite; the full-size
    // experiments run from the `experiments` binary.

    #[test]
    fn run_dispatch_covers_all_ids() {
        for id in ALL {
            // Only check that every id is well-formed; E14 is cheap
            // enough to actually run (below).
            assert!(
                id.starts_with('E') || id.starts_with('A') || id.starts_with('X'),
                "{id}"
            );
        }
        assert!(run("E99").is_none());
        assert!(run("A9").is_none());
    }

    #[test]
    fn e14_pigeon_smoke() {
        let t = e14_pigeon();
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            assert_eq!(row.last().unwrap(), "true");
        }
    }
}
