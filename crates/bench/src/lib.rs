//! # sh-bench — the experiment harness
//!
//! One runner per table/figure of the SpatialHadoop evaluation (see
//! DESIGN.md §4 for the experiment index). Each runner builds its
//! workload, executes every algorithm variant on the simulated 25-node
//! cluster, and returns a [`Table`] with the same rows/series the paper
//! reports — *simulated cluster seconds* (and derived throughput), plus
//! the pruning counters several figures plot.
//!
//! Regenerate everything with:
//!
//! ```text
//! cargo run -p sh-bench --release --bin experiments          # all
//! cargo run -p sh-bench --release --bin experiments -- E3 E5 # a subset
//! ```
//!
//! Scaling note (DESIGN.md §2): datasets are laptop-sized and the HDFS
//! block is shrunk proportionally, so partition counts — which drive
//! every effect under study — match cluster-scale shapes. Absolute
//! seconds are simulated from the cost model; comparisons between
//! variants are the reproduction target, not absolute magnitudes.

pub mod client;
pub mod experiments;
pub mod table;
pub mod trend;

pub use table::Table;

use sh_dfs::{ClusterConfig, Dfs};

/// Host core count as reported by the OS (1 if unknown). Recorded in
/// every benchmark artifact so trend comparisons can be read in context.
pub fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Short git revision of the working tree, or `"unknown"` outside a
/// checkout — artifacts record provenance but never require git.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// The paper-shaped cluster (25 nodes) with a laptop-scaled block size.
///
/// Bandwidths are scaled by `block_bytes / 64 MB` so that reading one
/// block costs the same simulated time as reading a real 64 MB block at
/// 100 MB/s (~0.64 s). This keeps every ratio of the original system —
/// task startup vs. block read, job startup vs. scan length — intact at
/// laptop data sizes (DESIGN.md §2).
pub fn cluster(block_bytes: u64) -> ClusterConfig {
    let scale = block_bytes as f64 / (64.0 * 1024.0 * 1024.0);
    let base = ClusterConfig::default();
    ClusterConfig {
        block_size: block_bytes,
        disk_bandwidth: base.disk_bandwidth * scale,
        network_bandwidth: base.network_bandwidth * scale,
        ..base
    }
}

/// Fresh DFS over the paper cluster.
pub fn fresh_dfs(block_bytes: u64) -> Dfs {
    Dfs::new(cluster(block_bytes))
}

/// Default experiment block size: 8 KiB. A 400k-point file then spans
/// ~700 blocks — the same blocks-per-cluster proportion as a few hundred
/// GB on the paper's 25-node testbed.
pub const BLOCK: u64 = 8 * 1024;
