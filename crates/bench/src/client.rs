//! `sh-client` — a blocking client for the `sh-server` line protocol.
//!
//! Shared by the load generator, the CI smoke test, and the integration
//! suite. One [`ShClient`] is one connection, i.e. one server session:
//! its `SET`s and bindings are invisible to every other client.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use sh_server::protocol::{parse_header, read_payload, Header};

/// Outcome of one request line.
#[derive(Debug)]
pub enum Response {
    /// Success: every streamed result row, reassembled in order.
    Ok(Vec<String>),
    /// The server rejected or failed the request.
    Err(String),
    /// Admission control pushed back; retry after the hinted delay.
    Busy { retry_ms: u64 },
}

impl Response {
    /// Unwraps the rows of a success, panicking otherwise — for tests
    /// and benches where anything else is a bug.
    pub fn expect_rows(self, context: &str) -> Vec<String> {
        match self {
            Response::Ok(rows) => rows,
            other => panic!("{context}: expected OK, got {other:?}"),
        }
    }
}

/// A connected Pigeon-protocol client.
pub struct ShClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    banner: String,
}

impl ShClient {
    /// Connects and consumes the server banner.
    pub fn connect(addr: &SocketAddr) -> io::Result<ShClient> {
        let stream = TcpStream::connect_timeout(addr, Duration::from_secs(5))?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let mut banner = String::new();
        reader.read_line(&mut banner)?;
        let banner = banner.trim_end().to_string();
        if !banner.starts_with("SHADOOP ") {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected banner: {banner:?}"),
            ));
        }
        Ok(ShClient {
            reader,
            writer,
            banner,
        })
    }

    /// The greeting the server sent (protocol version lives here).
    pub fn banner(&self) -> &str {
        &self.banner
    }

    /// Sends one request line (Pigeon source; `;`-separated statements)
    /// and reads the full response, reassembling streamed frames.
    pub fn request(&mut self, line: &str) -> io::Result<Response> {
        if line.contains('\n') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a request is a single line; join statements with ';'",
            ));
        }
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut rows = Vec::new();
        loop {
            let mut header = String::new();
            if self.reader.read_line(&mut header)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed mid-response",
                ));
            }
            match parse_header(&header)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
            {
                Header::Data(n) => {
                    let payload = read_payload(&mut self.reader, n)?;
                    rows.extend(payload.lines().map(str::to_string));
                }
                Header::Ok(n) => {
                    debug_assert_eq!(n as usize, rows.len(), "row count vs frames");
                    return Ok(Response::Ok(rows));
                }
                Header::Err(n) => {
                    let msg = read_payload(&mut self.reader, n)?;
                    return Ok(Response::Err(msg));
                }
                Header::Busy(retry_ms) => return Ok(Response::Busy { retry_ms }),
                Header::Bye => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "unexpected BYE mid-request",
                    ))
                }
            }
        }
    }

    /// [`ShClient::request`], retrying `429 BUSY` responses up to
    /// `max_retries` times with the server's suggested back-off.
    /// Returns the terminal response and how many retries it took.
    pub fn request_with_retry(
        &mut self,
        line: &str,
        max_retries: usize,
    ) -> io::Result<(Response, usize)> {
        let mut retries = 0;
        loop {
            match self.request(line)? {
                Response::Busy { retry_ms } if retries < max_retries => {
                    retries += 1;
                    std::thread::sleep(Duration::from_millis(retry_ms.clamp(1, 1000)));
                }
                other => return Ok((other, retries)),
            }
        }
    }

    /// Polite hang-up: sends `QUIT` and waits for `BYE`.
    pub fn quit(mut self) -> io::Result<()> {
        self.writer.write_all(b"QUIT\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        Ok(())
    }
}
