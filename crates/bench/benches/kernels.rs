//! Criterion micro-benchmarks of the computational-geometry kernels —
//! the "traditional algorithm" costs underlying every experiment.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sh_geom::algorithms::closest_pair::closest_pair;
use sh_geom::algorithms::convex_hull::convex_hull;
use sh_geom::algorithms::delaunay::Triangulation;
use sh_geom::algorithms::farthest_pair::farthest_pair;
use sh_geom::algorithms::plane_sweep::plane_sweep_join;
use sh_geom::algorithms::skyline::skyline;
use sh_geom::algorithms::union::boundary_union;
use sh_geom::algorithms::voronoi::VoronoiDiagram;
use sh_geom::point::sort_dedup;
use sh_workload::{default_universe, osm_like_polygons, points, rects, Distribution};

fn bench_point_kernels(c: &mut Criterion) {
    let uni = default_universe();
    let mut group = c.benchmark_group("kernels");
    for &n in &[1_000usize, 10_000] {
        let pts = points(n, Distribution::Uniform, &uni, 1);
        group.bench_with_input(BenchmarkId::new("convex_hull", n), &pts, |b, pts| {
            b.iter(|| convex_hull(black_box(pts)))
        });
        group.bench_with_input(BenchmarkId::new("skyline", n), &pts, |b, pts| {
            b.iter(|| skyline(black_box(pts)))
        });
        group.bench_with_input(BenchmarkId::new("closest_pair", n), &pts, |b, pts| {
            b.iter(|| closest_pair(black_box(pts)))
        });
        group.bench_with_input(BenchmarkId::new("farthest_pair", n), &pts, |b, pts| {
            b.iter(|| farthest_pair(black_box(pts)))
        });
    }
    group.finish();
}

fn bench_delaunay_voronoi(c: &mut Criterion) {
    let uni = default_universe();
    let mut group = c.benchmark_group("voronoi-kernels");
    group.sample_size(10);
    for &n in &[1_000usize, 5_000] {
        let mut pts = points(n, Distribution::Uniform, &uni, 2);
        sort_dedup(&mut pts);
        group.bench_with_input(BenchmarkId::new("delaunay", n), &pts, |b, pts| {
            b.iter(|| Triangulation::build(black_box(pts)))
        });
        group.bench_with_input(BenchmarkId::new("voronoi", n), &pts, |b, pts| {
            b.iter(|| VoronoiDiagram::build(black_box(pts)))
        });
    }
    group.finish();
}

fn bench_join_and_union(c: &mut Criterion) {
    let uni = default_universe();
    let mut group = c.benchmark_group("join-union-kernels");
    group.sample_size(10);
    let left = rects(2_000, &uni, 5_000.0, 3);
    let right = rects(2_000, &uni, 5_000.0, 4);
    group.bench_function("plane_sweep_join/2k", |b| {
        b.iter(|| plane_sweep_join(black_box(&left), black_box(&right)))
    });
    let polys = osm_like_polygons(300, &uni, 8_000.0, 5);
    group.bench_function("boundary_union/300", |b| {
        b.iter(|| boundary_union(black_box(&polys)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_point_kernels,
    bench_delaunay_voronoi,
    bench_join_and_union
);
criterion_main!(benches);
