//! Criterion benchmarks of the distributed operations (wall time of the
//! in-process run at a fixed small scale — one benchmark per evaluated
//! operation, complementing the simulated-time experiment harness).

use criterion::{criterion_group, criterion_main, Criterion};
use sh_bench::fresh_dfs;
use sh_core::ops::{
    closest_pair, convex_hull, farthest_pair, join, knn, range, skyline, union, voronoi,
};
use sh_core::storage::{build_index, upload};
use sh_dfs::Dfs;
use sh_geom::{Point, Polygon, Rect};
use sh_index::PartitionKind;
use sh_workload::{default_universe, osm_like_polygons, points, rects, Distribution};

const BLOCK: u64 = 16 * 1024;
const N: usize = 20_000;

struct Setup {
    dfs: Dfs,
    strp: sh_core::SpatialFile,
    grid: sh_core::SpatialFile,
    seq: std::cell::Cell<usize>,
}

impl Setup {
    fn new() -> Setup {
        let dfs = fresh_dfs(BLOCK);
        let uni = default_universe();
        let pts = points(N, Distribution::Uniform, &uni, 1);
        upload(&dfs, "/heap", &pts).unwrap();
        let strp = build_index::<Point>(&dfs, "/heap", "/strp", PartitionKind::StrPlus)
            .unwrap()
            .value;
        let grid = build_index::<Point>(&dfs, "/heap", "/grid", PartitionKind::Grid)
            .unwrap()
            .value;
        Setup {
            dfs,
            strp,
            grid,
            seq: std::cell::Cell::new(0),
        }
    }

    fn out(&self, tag: &str) -> String {
        let n = self.seq.get();
        self.seq.set(n + 1);
        format!("/bench-out/{tag}-{n}")
    }
}

fn bench_queries(c: &mut Criterion) {
    let s = Setup::new();
    let query = Rect::new(200_000.0, 200_000.0, 260_000.0, 260_000.0);
    let mut group = c.benchmark_group("queries");
    group.sample_size(10);
    group.bench_function("range/hadoop", |b| {
        b.iter(|| range::range_hadoop::<Point>(&s.dfs, "/heap", &query, &s.out("rh")).unwrap())
    });
    group.bench_function("range/spatial-str+", |b| {
        b.iter(|| range::range_spatial::<Point>(&s.dfs, &s.strp, &query, &s.out("rs")).unwrap())
    });
    let q = Point::new(500_000.0, 500_000.0);
    group.bench_function("knn/hadoop", |b| {
        b.iter(|| knn::knn_hadoop(&s.dfs, "/heap", &q, 10, &s.out("kh")).unwrap())
    });
    group.bench_function("knn/spatial-str+", |b| {
        b.iter(|| knn::knn_spatial(&s.dfs, &s.strp, &q, 10, &s.out("ks")).unwrap())
    });
    group.finish();
}

fn bench_cg_ops(c: &mut Criterion) {
    let s = Setup::new();
    let mut group = c.benchmark_group("cg-ops");
    group.sample_size(10);
    group.bench_function("skyline/spatial", |b| {
        b.iter(|| skyline::skyline_spatial(&s.dfs, &s.strp, &s.out("sk")).unwrap())
    });
    group.bench_function("skyline/output-sensitive", |b| {
        b.iter(|| skyline::skyline_output_sensitive(&s.dfs, &s.strp, &s.out("os")).unwrap())
    });
    group.bench_function("hull/spatial", |b| {
        b.iter(|| convex_hull::hull_spatial(&s.dfs, &s.strp, &s.out("hs")).unwrap())
    });
    group.bench_function("hull/enhanced", |b| {
        b.iter(|| convex_hull::hull_enhanced(&s.dfs, &s.strp, &s.out("he")).unwrap())
    });
    group.bench_function("closest-pair/spatial", |b| {
        b.iter(|| closest_pair::closest_pair_spatial(&s.dfs, &s.strp, &s.out("cp")).unwrap())
    });
    group.bench_function("farthest-pair/spatial", |b| {
        b.iter(|| farthest_pair::farthest_pair_spatial(&s.dfs, &s.strp, &s.out("fp")).unwrap())
    });
    group.bench_function("voronoi/spatial", |b| {
        b.iter(|| voronoi::voronoi_spatial(&s.dfs, &s.grid, &s.out("vd")).unwrap())
    });
    group.finish();
}

fn bench_join_and_union(c: &mut Criterion) {
    let uni = default_universe();
    let dfs = fresh_dfs(BLOCK);
    let left = rects(4_000, &uni, 5_000.0, 2);
    let right = rects(4_000, &uni, 5_000.0, 3);
    upload(&dfs, "/l", &left).unwrap();
    upload(&dfs, "/r", &right).unwrap();
    let fa = build_index::<Rect>(&dfs, "/l", "/ja", PartitionKind::Grid)
        .unwrap()
        .value;
    let fb = build_index::<Rect>(&dfs, "/r", "/jb", PartitionKind::Grid)
        .unwrap()
        .value;
    let polys = osm_like_polygons(400, &uni, 8_000.0, 4);
    upload(&dfs, "/polys", &polys).unwrap();
    let sp = build_index::<Polygon>(&dfs, "/polys", "/up", PartitionKind::StrPlus)
        .unwrap()
        .value;
    let seq = std::cell::Cell::new(0usize);
    let out = |tag: &str| {
        let n = seq.get();
        seq.set(n + 1);
        format!("/bench-out2/{tag}-{n}")
    };
    let mut group = c.benchmark_group("join-union");
    group.sample_size(10);
    group.bench_function("join/sjmr", |b| {
        b.iter(|| join::sjmr(&dfs, "/l", "/r", &uni, 25, &out("sj")).unwrap())
    });
    group.bench_function("join/distributed", |b| {
        b.iter(|| join::distributed_join(&dfs, &fa, &fb, &out("dj")).unwrap())
    });
    group.bench_function("union/enhanced", |b| {
        b.iter(|| union::union_enhanced(&dfs, &sp, &out("ue")).unwrap())
    });
    group.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let uni = default_universe();
    let mut group = c.benchmark_group("index-build");
    group.sample_size(10);
    for kind in [
        PartitionKind::Grid,
        PartitionKind::StrPlus,
        PartitionKind::QuadTree,
    ] {
        group.bench_function(format!("build/{}", kind.name()), |b| {
            b.iter_with_setup(
                || {
                    let dfs = fresh_dfs(BLOCK);
                    let pts = points(N, Distribution::Uniform, &uni, 5);
                    upload(&dfs, "/heap", &pts).unwrap();
                    dfs
                },
                |dfs| build_index::<Point>(&dfs, "/heap", "/idx", kind).unwrap(),
            )
        });
    }
    group.finish();
}

fn bench_extensions(c: &mut Criterion) {
    use sh_core::ops::{knn_join, plot};
    let s = Setup::new();
    let uni = default_universe();
    let dfs2 = fresh_dfs(BLOCK);
    let r = points(5_000, Distribution::Uniform, &uni, 9);
    let q = points(5_000, Distribution::Uniform, &uni, 10);
    sh_core::storage::upload(&dfs2, "/kr", &r).unwrap();
    sh_core::storage::upload(&dfs2, "/ks", &q).unwrap();
    let rf = build_index::<Point>(&dfs2, "/kr", "/kri", PartitionKind::StrPlus)
        .unwrap()
        .value;
    let sf = build_index::<Point>(&dfs2, "/ks", "/ksi", PartitionKind::StrPlus)
        .unwrap()
        .value;
    let seq = std::cell::Cell::new(0usize);
    let out = |tag: &str| {
        let n = seq.get();
        seq.set(n + 1);
        format!("/bench-ext/{tag}-{n}")
    };
    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);
    group.bench_function("knn-join/k5", |b| {
        b.iter(|| knn_join::knn_join_spatial(&dfs2, &rf, &sf, 5, &out("kj")).unwrap())
    });
    group.bench_function("plot/256x256", |b| {
        b.iter(|| plot::plot_spatial::<Point>(&s.dfs, &s.strp, 256, 256, &s.out("pl")).unwrap())
    });
    group.bench_function("delaunay/spatial", |b| {
        b.iter(|| sh_core::ops::delaunay::delaunay_spatial(&s.dfs, &s.grid, &s.out("dt")).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_queries,
    bench_cg_ops,
    bench_join_and_union,
    bench_index_build,
    bench_extensions
);
criterion_main!(benches);
