//! Tiny text codecs for intermediate values and aux payloads.
//!
//! Operations ship small driver-computed payloads to mappers through
//! `InputSplit::aux` (e.g. dominance-power sets, partition boxes) and
//! encode geometric results as output lines; this module centralizes
//! those encodings. Encoders write into reusable buffers (no per-record
//! `format!` temporaries); decoders return `Result` so corrupt payloads
//! surface as [`OpError::Corrupt`] instead of panicking the task.

use std::fmt::Write as _;

use sh_geom::{Point, Record, Rect};

use crate::opresult::OpError;

fn corrupt(what: &str, s: &str) -> OpError {
    let preview: String = s.chars().take(48).collect();
    OpError::Corrupt(format!("bad {what} payload: {preview:?}"))
}

/// Parses a whitespace-separated run of floats, rejecting every
/// non-finite value — an `inf` coordinate would poison MBRs and
/// partition boundaries just as silently as a NaN.
fn decode_floats(s: &str, what: &str) -> Result<Vec<f64>, OpError> {
    let mut nums = Vec::new();
    for tok in s.split_ascii_whitespace() {
        let v: f64 = tok.parse().map_err(|_| corrupt(what, s))?;
        if !v.is_finite() {
            return Err(corrupt(what, s));
        }
        nums.push(v);
    }
    Ok(nums)
}

/// Encodes points as `x y x y ...`.
pub fn encode_points(points: &[Point]) -> String {
    let mut s = String::with_capacity(points.len() * 16);
    for p in points {
        if !s.is_empty() {
            s.push(' ');
        }
        let _ = write!(s, "{} {}", p.x, p.y);
    }
    s
}

/// Decodes `x y x y ...`.
pub fn decode_points(s: &str) -> Result<Vec<Point>, OpError> {
    let nums = decode_floats(s, "point")?;
    if nums.len() % 2 != 0 {
        return Err(corrupt("point", s));
    }
    Ok(nums
        .chunks_exact(2)
        .map(|c| Point::new(c[0], c[1]))
        .collect())
}

/// Encodes rects as `x1 y1 x2 y2 ...`.
pub fn encode_rects(rects: &[Rect]) -> String {
    let mut s = String::with_capacity(rects.len() * 32);
    for r in rects {
        if !s.is_empty() {
            s.push(' ');
        }
        let _ = write!(s, "{} {} {} {}", r.x1, r.y1, r.x2, r.y2);
    }
    s
}

/// Decodes `x1 y1 x2 y2 ...`.
pub fn decode_rects(s: &str) -> Result<Vec<Rect>, OpError> {
    let nums = decode_floats(s, "rect")?;
    if nums.len() % 4 != 0 {
        return Err(corrupt("rect", s));
    }
    Ok(nums
        .chunks_exact(4)
        .map(|c| Rect::new(c[0], c[1], c[2], c[3]))
        .collect())
}

/// Appends a rect pair (`x1 y1 x2 y2 x1 y1 x2 y2`) to `out` — the line
/// format join results use. Writes into the caller's buffer so hot loops
/// reuse one allocation.
pub fn write_pair(out: &mut String, a: &Rect, b: &Rect) {
    let _ = write!(
        out,
        "{} {} {} {} {} {} {} {}",
        a.x1, a.y1, a.x2, a.y2, b.x1, b.y1, b.x2, b.y2
    );
}

/// Encodes a rect pair as an owned line (see [`write_pair`]).
pub fn encode_pair(a: &Rect, b: &Rect) -> String {
    let mut s = String::with_capacity(64);
    write_pair(&mut s, a, b);
    s
}

/// Decodes a line written by [`write_pair`].
pub fn decode_pair(line: &str) -> Result<(Rect, Rect), OpError> {
    let nums = decode_floats(line, "join pair")?;
    if nums.len() != 8 {
        return Err(corrupt("join pair", line));
    }
    Ok((
        Rect::new(nums[0], nums[1], nums[2], nums[3]),
        Rect::new(nums[4], nums[5], nums[6], nums[7]),
    ))
}

/// Parses every non-blank line of job output as a record, mapping parse
/// failures to [`OpError::Corrupt`] — the shared driver-side output
/// reader for range/knn/skyline/hull results.
pub fn parse_output_records<R: Record>(lines: &[String]) -> Result<Vec<R>, OpError> {
    lines
        .iter()
        .filter(|l| !l.trim().is_empty())
        .map(|l| R::parse_line(l).map_err(|e| OpError::Corrupt(format!("bad output line: {e}"))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_roundtrip() {
        let pts = vec![Point::new(1.5, -2.0), Point::new(0.0, 3.25)];
        assert_eq!(decode_points(&encode_points(&pts)).unwrap(), pts);
        assert!(decode_points("").unwrap().is_empty());
    }

    #[test]
    fn rects_roundtrip() {
        let rs = vec![
            Rect::new(0.0, 1.0, 2.0, 3.0),
            Rect::new(-1.0, -1.0, 1.0, 1.0),
        ];
        assert_eq!(decode_rects(&encode_rects(&rs)).unwrap(), rs);
        assert!(decode_rects("").unwrap().is_empty());
    }

    #[test]
    fn pair_roundtrip() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(2.0, 2.0, 3.5, 4.0);
        assert_eq!(decode_pair(&encode_pair(&a, &b)).unwrap(), (a, b));
    }

    #[test]
    fn corrupt_payloads_are_errors_not_panics() {
        assert!(matches!(decode_points("1 x"), Err(OpError::Corrupt(_))));
        assert!(matches!(decode_points("1 2 3"), Err(OpError::Corrupt(_))));
        assert!(matches!(decode_rects("1 2 3"), Err(OpError::Corrupt(_))));
        assert!(matches!(
            decode_rects("NaN 1 2 3"),
            Err(OpError::Corrupt(_))
        ));
        assert!(matches!(
            decode_rects("inf 1 2 3"),
            Err(OpError::Corrupt(_))
        ));
        assert!(matches!(decode_points("1 -inf"), Err(OpError::Corrupt(_))));
        assert!(matches!(decode_pair("1 2 3 4"), Err(OpError::Corrupt(_))));
        assert!(matches!(
            decode_pair("1 2 3 4 5 6 7 boom"),
            Err(OpError::Corrupt(_))
        ));
    }

    #[test]
    fn output_records_parse_or_fail() {
        let lines = vec!["1 2".to_string(), String::new(), "3 4".to_string()];
        let pts = parse_output_records::<Point>(&lines).unwrap();
        assert_eq!(pts, vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)]);
        let bad = vec!["not a point".to_string()];
        assert!(matches!(
            parse_output_records::<Point>(&bad),
            Err(OpError::Corrupt(_))
        ));
    }
}
