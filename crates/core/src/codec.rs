//! Tiny text codecs for intermediate values and aux payloads.
//!
//! Operations ship small driver-computed payloads to mappers through
//! `InputSplit::aux` (e.g. dominance-power sets, partition boxes) and
//! encode geometric results as output lines; this module centralizes
//! those encodings.

use sh_geom::{Point, Rect};

/// Encodes points as `x y x y ...`.
pub fn encode_points(points: &[Point]) -> String {
    let mut s = String::with_capacity(points.len() * 16);
    for p in points {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(&format!("{} {}", p.x, p.y));
    }
    s
}

/// Decodes `x y x y ...`.
pub fn decode_points(s: &str) -> Vec<Point> {
    let nums: Vec<f64> = s
        .split_ascii_whitespace()
        .map(|t| t.parse().expect("bad point payload"))
        .collect();
    nums.chunks_exact(2)
        .map(|c| Point::new(c[0], c[1]))
        .collect()
}

/// Encodes rects as `x1 y1 x2 y2 ...`.
pub fn encode_rects(rects: &[Rect]) -> String {
    let mut s = String::with_capacity(rects.len() * 32);
    for r in rects {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(&format!("{} {} {} {}", r.x1, r.y1, r.x2, r.y2));
    }
    s
}

/// Decodes `x1 y1 x2 y2 ...`.
pub fn decode_rects(s: &str) -> Vec<Rect> {
    let nums: Vec<f64> = s
        .split_ascii_whitespace()
        .map(|t| t.parse().expect("bad rect payload"))
        .collect();
    nums.chunks_exact(4)
        .map(|c| Rect::new(c[0], c[1], c[2], c[3]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_roundtrip() {
        let pts = vec![Point::new(1.5, -2.0), Point::new(0.0, 3.25)];
        assert_eq!(decode_points(&encode_points(&pts)), pts);
        assert!(decode_points("").is_empty());
    }

    #[test]
    fn rects_roundtrip() {
        let rs = vec![
            Rect::new(0.0, 1.0, 2.0, 3.0),
            Rect::new(-1.0, -1.0, 1.0, 1.0),
        ];
        assert_eq!(decode_rects(&encode_rects(&rs)), rs);
        assert!(decode_rects("").is_empty());
    }
}
