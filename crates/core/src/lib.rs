//! # sh-core — SpatialHadoop proper
//!
//! The paper's contribution, on top of the substrates:
//!
//! * [`storage`] — the **indexing layer**: loading heap files and bulk-
//!   building spatially-indexed files as MapReduce jobs (sample →
//!   partition boundaries → partition-and-write, with the master
//!   catalogue stored in the DFS like SpatialHadoop's `_master` file);
//! * [`catalog`] — the indexed-file handle ([`catalog::SpatialFile`]) and
//!   the text master-file format;
//! * [`mrlayer`] — the **MapReduce layer**: `SpatialFileSplitter` (prunes
//!   partitions with a filter function over the global index) and
//!   `SpatialRecordReader` (parses a partition and exposes its local
//!   R-tree to the map function), plus the reference-point
//!   duplicate-avoidance rule;
//! * [`ops`] — the **operations layer**: range query, k-nearest-
//!   neighbours, spatial join (SJMR and the indexed distributed join),
//!   and the computational-geometry suite (polygon union, skyline,
//!   convex hull, closest pair, farthest pair, Voronoi diagram), each
//!   with a plain-Hadoop variant, a SpatialHadoop variant and — where
//!   the paper defines one — an enhanced/output-sensitive variant, all
//!   instances of the five-step skeleton *partition → filter → local
//!   process → prune → merge*.
//!
//! Every distributed operation is validated against its single-machine
//! baseline in `ops::single`; the experiments in `sh-bench` compare
//! their simulated cluster times.
//!
//! ```
//! use sh_core::ops::{knn, range};
//! use sh_core::storage::{build_index, upload};
//! use sh_dfs::{ClusterConfig, Dfs};
//! use sh_geom::{Point, Rect};
//! use sh_index::PartitionKind;
//!
//! // A simulated cluster with small blocks for this tiny example.
//! let dfs = Dfs::new(ClusterConfig::small_for_tests());
//! let pts: Vec<Point> = (0..500)
//!     .map(|i| Point::new((i % 25) as f64 * 4.0, (i / 25) as f64 * 5.0))
//!     .collect();
//! upload(&dfs, "/demo/points", &pts).unwrap();
//!
//! // Bulk-load the two-level index (runs real MapReduce jobs).
//! let file = build_index::<Point>(&dfs, "/demo/points", "/demo/idx", PartitionKind::StrPlus)
//!     .unwrap()
//!     .value;
//!
//! // Query through the SpatialHadoop plan.
//! let hits = range::range_spatial::<Point>(
//!     &dfs, &file, &Rect::new(0.0, 0.0, 20.0, 20.0), "/demo/out",
//! )
//! .unwrap();
//! assert_eq!(hits.value.len(), pts.iter()
//!     .filter(|p| p.x <= 20.0 && p.y <= 20.0).count());
//!
//! let nearest = knn::knn_spatial(&dfs, &file, &Point::new(50.0, 50.0), 3, "/demo/knn")
//!     .unwrap();
//! assert_eq!(nearest.value.len(), 3);
//! ```

pub mod catalog;
pub mod codec;
pub mod colblock;
pub mod mrlayer;
pub mod opresult;
pub mod ops;
pub mod parscan;
pub mod storage;

pub use catalog::SpatialFile;
pub use opresult::{OpError, OpResult};
