//! Binary columnar block format (`SHCB`).
//!
//! The zero-copy counterpart of the text codec: a partition file holds a
//! small versioned header followed by columnar `f64` coordinate arrays
//! (`x y` for points, `x1 y1 x2 y2` for rects). Scans iterate the column
//! arrays directly — no per-record parse, no per-record branch — and the
//! block cache shares the decoded columns behind [`ColSlice`] handles, so
//! warm reads hand out views instead of re-parsed `Vec<Record>`s.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size      field
//! 0       4         magic  b"SHCB"
//! 4       2         format version (currently 1)
//! 6       1         record kind (0 = point, 1 = rect)
//! 7       1         number of columns
//! 8       8         record count (u64)
//! 16      8*ncols   absolute byte offset of each column
//! ...     8*count   column 0 (f64 array)
//! ...     8*count   column 1, ...
//! ```
//!
//! Decoding validates the magic, version, kind/column agreement, offset
//! table, and total length, and rejects non-finite coordinates — the
//! binary mirror of the text codec's checks. Every violation is an
//! [`OpError::Corrupt`]; readers treat that exactly like a stale text
//! sidecar and fall back.
//!
//! Two decode paths share that validation:
//!
//! * [`decode`] copies each column into an owned `Arc<[f64]>` — always
//!   available, endianness-independent.
//! * [`decode_mapped`] reinterprets the columns of an mmap-backed buffer
//!   in place (`&[f64]` views into the mapping) — zero-copy, used when
//!   the DFS spill store hands out a mapping. It is gated on a
//!   little-endian target and 8-byte alignment of every column (the
//!   header makes offsets multiples of 8 and mappings are page-aligned,
//!   so the check only fails on exotic platforms or the owned-fallback
//!   mapping); any gate failure falls back to [`decode`].
//!
//! The MBR filter is a chunked, branch-light kernel: fixed-width lanes
//! are compared with non-short-circuiting `&` into a selection bitmask
//! (autovectorizable; an explicit SSE2 path exists behind the
//! `explicit-simd` feature), and match indices are extracted from the
//! mask — no per-hit `Vec` push inside the comparison loop.

use std::ops::Deref;
use std::sync::Arc;

use memmap2::Mmap;
use sh_geom::{Record, Rect};

use crate::opresult::OpError;

/// File magic of a columnar block.
pub const MAGIC: [u8; 4] = *b"SHCB";

/// Current format version.
pub const VERSION: u16 = 1;

/// Lanes per chunk in the MBR filter kernel.
const LANES: usize = 8;

/// Header length for `ncols` columns.
fn header_len(ncols: usize) -> usize {
    16 + 8 * ncols
}

/// True when `data` starts with the columnar-block magic — the sniff the
/// record readers use to dispatch between text and binary partitions.
pub fn is_binary(data: &[u8]) -> bool {
    data.len() >= 4 && data[..4] == MAGIC
}

/// One coordinate column: either an owned copy of the data or a zero-copy
/// view into an mmap-backed buffer. Both deref to `&[f64]`; cloning bumps
/// a refcount, never copies coordinates.
#[derive(Clone, Debug)]
pub enum ColSlice {
    /// Owned column (the classic decode path).
    Owned(Arc<[f64]>),
    /// View into a shared mapping. Invariants (upheld by
    /// [`decode_mapped`]): `off` is 8-byte aligned relative to the
    /// mapping base, `off + 8*len <= map.len()`, and the target is
    /// little-endian so the raw bytes *are* the `f64` values.
    Mapped {
        /// The mapping; holding it keeps the pages alive.
        map: Arc<Mmap>,
        /// Byte offset of the column within the mapping.
        off: usize,
        /// Number of `f64` elements.
        len: usize,
    },
}

impl Deref for ColSlice {
    type Target = [f64];

    #[inline]
    fn deref(&self) -> &[f64] {
        match self {
            ColSlice::Owned(a) => a,
            ColSlice::Mapped { map, off, len } => {
                // Sound per the variant invariants: in-bounds, 8-aligned,
                // read-only, and the Arc keeps the mapping alive for the
                // lifetime of this borrow.
                unsafe { std::slice::from_raw_parts(map.as_ptr().add(*off) as *const f64, *len) }
            }
        }
    }
}

impl ColSlice {
    /// True when this column borrows an mmap-backed buffer.
    pub fn is_mapped(&self) -> bool {
        matches!(self, ColSlice::Mapped { .. })
    }
}

/// A decoded columnar block: record kind plus shared coordinate columns.
#[derive(Clone, Debug)]
pub struct ColumnarBlock {
    /// Record kind tag (see [`Record::BINARY_KIND`]).
    pub kind: u8,
    /// Records in the block.
    pub count: usize,
    /// Coordinate columns, each of length `count`.
    pub cols: Vec<ColSlice>,
}

fn corrupt(msg: impl Into<String>) -> OpError {
    OpError::Corrupt(format!("columnar block: {}", msg.into()))
}

/// Encodes records as one columnar block. Fails with
/// [`OpError::Unsupported`] for record types without a columnar form
/// (segments, polygons, tagged records).
pub fn encode<R: Record>(records: &[R]) -> Result<Vec<u8>, OpError> {
    let kind = R::BINARY_KIND.ok_or_else(|| {
        OpError::Unsupported("record type has no binary columnar form".to_string())
    })?;
    let ncols = R::ncols();
    let mut cols: Vec<Vec<f64>> = (0..ncols)
        .map(|_| Vec::with_capacity(records.len()))
        .collect();
    for r in records {
        r.push_cols(&mut cols);
    }
    let mut out = Vec::with_capacity(header_len(ncols) + 8 * ncols * records.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(kind);
    out.push(ncols as u8);
    out.extend_from_slice(&(records.len() as u64).to_le_bytes());
    let mut offset = header_len(ncols);
    for _ in 0..ncols {
        out.extend_from_slice(&(offset as u64).to_le_bytes());
        offset += 8 * records.len();
    }
    for col in &cols {
        for v in col {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    Ok(out)
}

fn read_u64(data: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(data[at..at + 8].try_into().unwrap())
}

/// Validated header facts shared by both decode paths.
struct Header {
    kind: u8,
    ncols: usize,
    count: usize,
    /// Byte offset of each column (validated contiguous, in order).
    col_offsets: Vec<usize>,
}

/// Validates everything about `data` except coordinate finiteness:
/// magic, version, kind/column agreement, count/length arithmetic, and
/// the offset table.
fn parse_header(data: &[u8]) -> Result<Header, OpError> {
    if data.len() < 16 {
        return Err(corrupt(format!("truncated header ({} bytes)", data.len())));
    }
    if data[..4] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = u16::from_le_bytes([data[4], data[5]]);
    if version != VERSION {
        return Err(corrupt(format!(
            "unsupported version {version} (expected {VERSION})"
        )));
    }
    let kind = data[6];
    let ncols = data[7] as usize;
    let expected_cols = match kind {
        0 => 2,
        1 => 4,
        k => return Err(corrupt(format!("unknown record kind {k}"))),
    };
    if ncols != expected_cols {
        return Err(corrupt(format!(
            "kind {kind} expects {expected_cols} columns, header says {ncols}"
        )));
    }
    let count = read_u64(data, 8) as usize;
    let hlen = header_len(ncols);
    let col_bytes = count
        .checked_mul(8)
        .ok_or_else(|| corrupt("count overflow"))?;
    let total = hlen
        .checked_add(
            col_bytes
                .checked_mul(ncols)
                .ok_or_else(|| corrupt("size overflow"))?,
        )
        .ok_or_else(|| corrupt("size overflow"))?;
    if data.len() != total {
        return Err(corrupt(format!(
            "length mismatch: {} bytes for {count} records x {ncols} columns (expected {total})",
            data.len()
        )));
    }
    let mut col_offsets = Vec::with_capacity(ncols);
    for c in 0..ncols {
        let off = read_u64(data, 16 + 8 * c) as usize;
        if off != hlen + c * col_bytes {
            return Err(corrupt(format!("bad offset for column {c}: {off}")));
        }
        col_offsets.push(off);
    }
    Ok(Header {
        kind,
        ncols,
        count,
        col_offsets,
    })
}

/// Decodes a columnar block into owned columns, validating every header
/// field and rejecting non-finite coordinates. Corrupt or truncated
/// input is [`OpError::Corrupt`]; callers fall back to the text path or
/// a rebuild exactly as they do for a stale `_lidx` sidecar.
pub fn decode(data: &[u8]) -> Result<ColumnarBlock, OpError> {
    let h = parse_header(data)?;
    let mut cols = Vec::with_capacity(h.ncols);
    for (c, &off) in h.col_offsets.iter().enumerate() {
        let mut col = Vec::with_capacity(h.count);
        for i in 0..h.count {
            let v = f64::from_le_bytes(data[off + 8 * i..off + 8 * i + 8].try_into().unwrap());
            if !v.is_finite() {
                return Err(corrupt(format!("non-finite value in column {c} row {i}")));
            }
            col.push(v);
        }
        cols.push(ColSlice::Owned(Arc::from(col.into_boxed_slice())));
    }
    Ok(ColumnarBlock {
        kind: h.kind,
        count: h.count,
        cols,
    })
}

/// Decodes a columnar block *in place* over an mmap-backed buffer: the
/// coordinate columns become `&[f64]` views into the mapping, no copy.
///
/// Gates — all must hold, else this silently falls back to the owned
/// [`decode`] of the mapped bytes (identical result, one copy):
///
/// * little-endian target (the raw bytes are the values);
/// * every column 8-byte aligned in memory (mapping base + offset).
///
/// Header validation runs unconditionally. Coordinate finiteness is
/// checked when `validate` is true; pass false only when a previous
/// validation of these exact bytes already passed (the spill store's
/// `validated` flag) — that is what lets repeat cold scans start at
/// memory speed.
pub fn decode_mapped(map: Arc<Mmap>, validate: bool) -> Result<ColumnarBlock, OpError> {
    let h = parse_header(&map)?;
    let base = map.as_ptr() as usize;
    let aligned = h
        .col_offsets
        .iter()
        .all(|&off| (base + off).is_multiple_of(8));
    if !cfg!(target_endian = "little") || !aligned {
        return decode(&map);
    }
    let mut cols = Vec::with_capacity(h.ncols);
    for &off in &h.col_offsets {
        cols.push(ColSlice::Mapped {
            map: Arc::clone(&map),
            off,
            len: h.count,
        });
    }
    let block = ColumnarBlock {
        kind: h.kind,
        count: h.count,
        cols,
    };
    if validate {
        for (c, col) in block.cols.iter().enumerate() {
            if let Some(i) = col.iter().position(|v| !v.is_finite()) {
                return Err(corrupt(format!("non-finite value in column {c} row {i}")));
            }
        }
    }
    Ok(block)
}

impl ColumnarBlock {
    /// MBR of record `i`, straight from the columns.
    #[inline]
    pub fn mbr(&self, i: usize) -> Rect {
        match self.kind {
            0 => Rect::new(
                self.cols[0][i],
                self.cols[1][i],
                self.cols[0][i],
                self.cols[1][i],
            ),
            _ => Rect::new(
                self.cols[0][i],
                self.cols[1][i],
                self.cols[2][i],
                self.cols[3][i],
            ),
        }
    }

    /// Materializes record `i` (boundary with record-typed callers).
    pub fn record<R: Record>(&self, i: usize) -> R {
        let views: Vec<&[f64]> = self.cols.iter().map(|c| &c[..]).collect();
        R::from_cols(&views, i)
    }

    /// True when any column is a zero-copy view into an mmap-backed
    /// buffer (introspection for tests and cache accounting).
    pub fn is_mapped(&self) -> bool {
        self.cols.iter().any(ColSlice::is_mapped)
    }

    /// Indices of every record whose MBR intersects `q` — the hot inner
    /// loop, chunked (see module docs).
    pub fn mbr_filter(&self, q: &Rect) -> Vec<usize> {
        self.mbr_filter_range(q, 0, self.count)
    }

    /// [`ColumnarBlock::mbr_filter`] restricted to records
    /// `start..end` — the unit of work for parallel partition scans.
    /// Returned indices are absolute and ascending.
    pub fn mbr_filter_range(&self, q: &Rect, start: usize, end: usize) -> Vec<usize> {
        debug_assert!(start <= end && end <= self.count);
        #[cfg(all(feature = "explicit-simd", target_arch = "x86_64"))]
        {
            return self.mbr_filter_range_sse2(q, start, end);
        }
        #[allow(unreachable_code)]
        self.mbr_filter_range_chunked(q, start, end)
    }

    /// Chunked autovectorizing kernel: per-chunk selection bitmask built
    /// with non-short-circuiting `&`, hits extracted from the mask.
    fn mbr_filter_range_chunked(&self, q: &Rect, start: usize, end: usize) -> Vec<usize> {
        let mut hits = Vec::new();
        match self.kind {
            0 => {
                let xs = &self.cols[0][start..end];
                let ys = &self.cols[1][start..end];
                let n = xs.len();
                let mut base = 0;
                while base + LANES <= n {
                    let (cx, cy) = (&xs[base..base + LANES], &ys[base..base + LANES]);
                    let mut mask = 0u32;
                    for l in 0..LANES {
                        let inside =
                            (cx[l] >= q.x1) & (cx[l] <= q.x2) & (cy[l] >= q.y1) & (cy[l] <= q.y2);
                        mask |= (inside as u32) << l;
                    }
                    push_mask_hits(&mut hits, mask, start + base);
                    base += LANES;
                }
                for l in base..n {
                    if (xs[l] >= q.x1) & (xs[l] <= q.x2) & (ys[l] >= q.y1) & (ys[l] <= q.y2) {
                        hits.push(start + l);
                    }
                }
            }
            _ => {
                let x1 = &self.cols[0][start..end];
                let y1 = &self.cols[1][start..end];
                let x2 = &self.cols[2][start..end];
                let y2 = &self.cols[3][start..end];
                let n = x1.len();
                let mut base = 0;
                while base + LANES <= n {
                    let (cx1, cy1) = (&x1[base..base + LANES], &y1[base..base + LANES]);
                    let (cx2, cy2) = (&x2[base..base + LANES], &y2[base..base + LANES]);
                    let mut mask = 0u32;
                    for l in 0..LANES {
                        let hit = (cx1[l] <= q.x2)
                            & (cx2[l] >= q.x1)
                            & (cy1[l] <= q.y2)
                            & (cy2[l] >= q.y1);
                        mask |= (hit as u32) << l;
                    }
                    push_mask_hits(&mut hits, mask, start + base);
                    base += LANES;
                }
                for l in base..n {
                    if (x1[l] <= q.x2) & (x2[l] >= q.x1) & (y1[l] <= q.y2) & (y2[l] >= q.y1) {
                        hits.push(start + l);
                    }
                }
            }
        }
        hits
    }

    /// Explicit SSE2 kernel (2 f64 lanes, baseline on x86_64): compare
    /// into vector masks, `movmskpd` to a bitmask, extract hits.
    #[cfg(all(feature = "explicit-simd", target_arch = "x86_64"))]
    fn mbr_filter_range_sse2(&self, q: &Rect, start: usize, end: usize) -> Vec<usize> {
        use std::arch::x86_64::*;
        let mut hits = Vec::new();
        unsafe {
            match self.kind {
                0 => {
                    let xs = &self.cols[0][start..end];
                    let ys = &self.cols[1][start..end];
                    let n = xs.len();
                    let (qx1, qx2) = (_mm_set1_pd(q.x1), _mm_set1_pd(q.x2));
                    let (qy1, qy2) = (_mm_set1_pd(q.y1), _mm_set1_pd(q.y2));
                    let mut i = 0;
                    while i + 2 <= n {
                        let x = _mm_loadu_pd(xs.as_ptr().add(i));
                        let y = _mm_loadu_pd(ys.as_ptr().add(i));
                        let m = _mm_and_pd(
                            _mm_and_pd(_mm_cmpge_pd(x, qx1), _mm_cmple_pd(x, qx2)),
                            _mm_and_pd(_mm_cmpge_pd(y, qy1), _mm_cmple_pd(y, qy2)),
                        );
                        push_mask_hits(&mut hits, _mm_movemask_pd(m) as u32, start + i);
                        i += 2;
                    }
                    for l in i..n {
                        if (xs[l] >= q.x1) & (xs[l] <= q.x2) & (ys[l] >= q.y1) & (ys[l] <= q.y2) {
                            hits.push(start + l);
                        }
                    }
                }
                _ => {
                    let x1 = &self.cols[0][start..end];
                    let y1 = &self.cols[1][start..end];
                    let x2 = &self.cols[2][start..end];
                    let y2 = &self.cols[3][start..end];
                    let n = x1.len();
                    let (qx1, qx2) = (_mm_set1_pd(q.x1), _mm_set1_pd(q.x2));
                    let (qy1, qy2) = (_mm_set1_pd(q.y1), _mm_set1_pd(q.y2));
                    let mut i = 0;
                    while i + 2 <= n {
                        let a = _mm_loadu_pd(x1.as_ptr().add(i));
                        let b = _mm_loadu_pd(y1.as_ptr().add(i));
                        let c = _mm_loadu_pd(x2.as_ptr().add(i));
                        let d = _mm_loadu_pd(y2.as_ptr().add(i));
                        let m = _mm_and_pd(
                            _mm_and_pd(_mm_cmple_pd(a, qx2), _mm_cmpge_pd(c, qx1)),
                            _mm_and_pd(_mm_cmple_pd(b, qy2), _mm_cmpge_pd(d, qy1)),
                        );
                        push_mask_hits(&mut hits, _mm_movemask_pd(m) as u32, start + i);
                        i += 2;
                    }
                    for l in i..n {
                        if (x1[l] <= q.x2) & (x2[l] >= q.x1) & (y1[l] <= q.y2) & (y2[l] >= q.y1) {
                            hits.push(start + l);
                        }
                    }
                }
            }
        }
        hits
    }

    /// Reference scalar scan — the oracle the chunked/SIMD kernels are
    /// property-tested against.
    pub fn mbr_filter_scalar(&self, q: &Rect) -> Vec<usize> {
        let mut hits = Vec::new();
        match self.kind {
            0 => {
                let (xs, ys) = (&self.cols[0], &self.cols[1]);
                for i in 0..self.count {
                    let inside = xs[i] >= q.x1 && xs[i] <= q.x2 && ys[i] >= q.y1 && ys[i] <= q.y2;
                    if inside {
                        hits.push(i);
                    }
                }
            }
            _ => {
                let (x1, y1, x2, y2) = (&self.cols[0], &self.cols[1], &self.cols[2], &self.cols[3]);
                for i in 0..self.count {
                    let hit = x1[i] <= q.x2 && x2[i] >= q.x1 && y1[i] <= q.y2 && y2[i] >= q.y1;
                    if hit {
                        hits.push(i);
                    }
                }
            }
        }
        hits
    }

    /// All records, materialized (interchange back to the text world).
    pub fn records<R: Record>(&self) -> Vec<R> {
        self.records_range(0, self.count)
    }

    /// Records `start..end`, materialized — the unit of work for
    /// parallel partition materialization (distributed join).
    pub fn records_range<R: Record>(&self, start: usize, end: usize) -> Vec<R> {
        debug_assert!(start <= end && end <= self.count);
        let views: Vec<&[f64]> = self.cols.iter().map(|c| &c[..]).collect();
        (start..end).map(|i| R::from_cols(&views, i)).collect()
    }

    /// Resident size in bytes (cache accounting). Mapped columns charge
    /// only their handle metadata — the pages belong to the mapping, not
    /// the cache budget.
    pub fn resident_bytes(&self) -> usize {
        self.cols
            .iter()
            .map(|c| match c {
                ColSlice::Owned(col) => col.len() * 8,
                ColSlice::Mapped { .. } => 32,
            })
            .sum::<usize>()
            + 64
    }
}

/// Appends `base + bit` for every set bit in `mask` — hit extraction
/// shared by the chunked and explicit-SIMD kernels.
#[inline]
fn push_mask_hits(hits: &mut Vec<usize>, mut mask: u32, base: usize) {
    while mask != 0 {
        let l = mask.trailing_zeros() as usize;
        hits.push(base + l);
        mask &= mask - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sh_geom::Point;

    fn pts(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(i as f64 * 1.5, (n - i) as f64 * 0.25))
            .collect()
    }

    fn rects(n: usize) -> Vec<Rect> {
        (0..n)
            .map(|i| {
                let x = (i % 13) as f64 * 3.0;
                let y = (i % 7) as f64 * 5.0;
                Rect::new(x, y, x + 2.0, y + 1.0)
            })
            .collect()
    }

    fn mapped(blob: &[u8]) -> Arc<Mmap> {
        let path = std::env::temp_dir().join(format!(
            "shcb-test-{}-{:p}",
            std::process::id(),
            blob.as_ptr()
        ));
        std::fs::write(&path, blob).unwrap();
        let map = unsafe { Mmap::map(&std::fs::File::open(&path).unwrap()).unwrap() };
        std::fs::remove_file(&path).unwrap();
        Arc::new(map)
    }

    #[test]
    fn points_roundtrip_exactly() {
        let pts = pts(257);
        let blob = encode(&pts).unwrap();
        assert!(is_binary(&blob));
        let block = decode(&blob).unwrap();
        assert_eq!(block.kind, 0);
        assert_eq!(block.count, pts.len());
        assert_eq!(block.records::<Point>(), pts);
    }

    #[test]
    fn rects_roundtrip_exactly() {
        let rs = rects(100);
        let blob = encode(&rs).unwrap();
        let block = decode(&blob).unwrap();
        assert_eq!(block.kind, 1);
        assert_eq!(block.records::<Rect>(), rs);
        for (i, r) in rs.iter().enumerate() {
            assert_eq!(block.mbr(i), *r);
        }
    }

    #[test]
    fn empty_block_roundtrips() {
        let blob = encode::<Point>(&[]).unwrap();
        let block = decode(&blob).unwrap();
        assert_eq!(block.count, 0);
        assert!(block.records::<Point>().is_empty());
        assert!(block.mbr_filter(&Rect::new(0.0, 0.0, 1.0, 1.0)).is_empty());
    }

    #[test]
    fn mbr_filter_matches_linear_scan() {
        let rs = rects(500);
        let block = decode(&encode(&rs).unwrap()).unwrap();
        let q = Rect::new(5.0, 3.0, 20.0, 21.0);
        let expected: Vec<usize> = rs
            .iter()
            .enumerate()
            .filter(|(_, r)| r.intersects(&q))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(block.mbr_filter(&q), expected);
        assert_eq!(block.mbr_filter_scalar(&q), expected);

        let pts = pts(500);
        let block = decode(&encode(&pts).unwrap()).unwrap();
        let expected: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| q.contains_point(p))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(block.mbr_filter(&q), expected);
        assert_eq!(block.mbr_filter_scalar(&q), expected);
    }

    #[test]
    fn mbr_filter_range_concatenates_to_full_scan() {
        let pts = pts(103); // odd length: exercises the scalar tail
        let block = decode(&encode(&pts).unwrap()).unwrap();
        let q = Rect::new(10.0, 0.0, 90.0, 30.0);
        let full = block.mbr_filter(&q);
        for split in [0, 1, 7, 52, 103] {
            let mut parts = block.mbr_filter_range(&q, 0, split);
            parts.extend(block.mbr_filter_range(&q, split, block.count));
            assert_eq!(parts, full, "split at {split}");
        }
        assert_eq!(
            block.records_range::<Point>(40, 60),
            pts[40..60].to_vec(),
            "records_range matches the slice"
        );
    }

    #[test]
    fn mapped_decode_equals_owned_decode() {
        for blob in [
            encode(&pts(321)).unwrap(),
            encode(&rects(123)).unwrap(),
            encode::<Point>(&[]).unwrap(),
        ] {
            let owned = decode(&blob).unwrap();
            let mapped_block = decode_mapped(mapped(&blob), true).unwrap();
            assert_eq!(owned.kind, mapped_block.kind);
            assert_eq!(owned.count, mapped_block.count);
            for (a, b) in owned.cols.iter().zip(&mapped_block.cols) {
                assert_eq!(&a[..], &b[..]);
            }
            let q = Rect::new(3.0, 2.0, 60.0, 40.0);
            assert_eq!(owned.mbr_filter(&q), mapped_block.mbr_filter(&q));
        }
    }

    #[test]
    fn mapped_decode_validates_and_rejects_non_finite() {
        let mut blob = encode(&pts(10)).unwrap();
        let hlen = header_len(2);
        blob[hlen..hlen + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(matches!(
            decode_mapped(mapped(&blob), true),
            Err(OpError::Corrupt(_))
        ));
        // validate=false trusts a prior validation of these exact bytes
        // (the spill store's `validated` flag) and skips the pass.
        assert!(decode_mapped(mapped(&blob), false).is_ok());
    }

    #[test]
    fn mapped_decode_rejects_corrupt_headers() {
        let blob = encode(&pts(10)).unwrap();
        let mut bad = blob.clone();
        bad[4] = 0x7f;
        assert!(matches!(
            decode_mapped(mapped(&bad), false),
            Err(OpError::Corrupt(_))
        ));
        assert!(matches!(
            decode_mapped(mapped(&blob[..blob.len() - 3]), false),
            Err(OpError::Corrupt(_))
        ));
    }

    #[test]
    fn corrupt_blocks_are_errors_not_panics() {
        let blob = encode(&pts(10)).unwrap();

        // Truncated header.
        assert!(matches!(decode(&blob[..8]), Err(OpError::Corrupt(_))));
        // Bad magic.
        let mut bad = blob.clone();
        bad[0] = b'X';
        assert!(matches!(decode(&bad), Err(OpError::Corrupt(_))));
        assert!(!is_binary(&bad));
        // Flipped version byte.
        let mut bad = blob.clone();
        bad[4] = 0x7f;
        assert!(matches!(decode(&bad), Err(OpError::Corrupt(_))));
        // Unknown kind.
        let mut bad = blob.clone();
        bad[6] = 9;
        assert!(matches!(decode(&bad), Err(OpError::Corrupt(_))));
        // Kind/ncols disagreement.
        let mut bad = blob.clone();
        bad[7] = 4;
        assert!(matches!(decode(&bad), Err(OpError::Corrupt(_))));
        // Truncated payload.
        assert!(matches!(
            decode(&blob[..blob.len() - 3]),
            Err(OpError::Corrupt(_))
        ));
        // Corrupt offset table.
        let mut bad = blob.clone();
        bad[16] ^= 0xff;
        assert!(matches!(decode(&bad), Err(OpError::Corrupt(_))));
        // Non-finite coordinate (mirror of the text codec's check).
        let mut bad = blob.clone();
        let hlen = header_len(2);
        bad[hlen..hlen + 8].copy_from_slice(&f64::INFINITY.to_le_bytes());
        assert!(matches!(decode(&bad), Err(OpError::Corrupt(_))));
    }

    #[test]
    fn unsupported_record_types_refuse_encoding() {
        let polys = vec![sh_geom::Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ])];
        assert!(matches!(encode(&polys), Err(OpError::Unsupported(_))));
    }

    #[test]
    fn cloned_blocks_share_columns() {
        let block = decode(&encode(&pts(32)).unwrap()).unwrap();
        let clone = block.clone();
        assert!(std::ptr::eq(block.cols[0].as_ptr(), clone.cols[0].as_ptr()));
    }

    #[test]
    fn mapped_blocks_charge_only_metadata() {
        let blob = encode(&pts(10_000)).unwrap();
        let owned = decode(&blob).unwrap();
        let mapped_block = decode_mapped(mapped(&blob), true).unwrap();
        assert!(mapped_block.is_mapped());
        assert!(!owned.is_mapped());
        assert!(owned.resident_bytes() > 10_000 * 8);
        assert!(mapped_block.resident_bytes() < 256);
    }
}
