//! Binary columnar block format (`SHCB`).
//!
//! The zero-copy counterpart of the text codec: a partition file holds a
//! small versioned header followed by columnar `f64` coordinate arrays
//! (`x y` for points, `x1 y1 x2 y2` for rects). Scans iterate the column
//! arrays directly — no per-record parse, no per-record branch — and the
//! block cache shares the decoded columns behind `Arc<[f64]>`, so warm
//! reads hand out views instead of re-parsed `Vec<Record>`s.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size      field
//! 0       4         magic  b"SHCB"
//! 4       2         format version (currently 1)
//! 6       1         record kind (0 = point, 1 = rect)
//! 7       1         number of columns
//! 8       8         record count (u64)
//! 16      8*ncols   absolute byte offset of each column
//! ...     8*count   column 0 (f64 array)
//! ...     8*count   column 1, ...
//! ```
//!
//! Decoding validates the magic, version, kind/column agreement, offset
//! table, and total length, and rejects non-finite coordinates — the
//! binary mirror of the text codec's checks. Every violation is an
//! [`OpError::Corrupt`]; readers treat that exactly like a stale text
//! sidecar and fall back.

use std::sync::Arc;

use sh_geom::{Record, Rect};

use crate::opresult::OpError;

/// File magic of a columnar block.
pub const MAGIC: [u8; 4] = *b"SHCB";

/// Current format version.
pub const VERSION: u16 = 1;

/// Header length for `ncols` columns.
fn header_len(ncols: usize) -> usize {
    16 + 8 * ncols
}

/// True when `data` starts with the columnar-block magic — the sniff the
/// record readers use to dispatch between text and binary partitions.
pub fn is_binary(data: &[u8]) -> bool {
    data.len() >= 4 && data[..4] == MAGIC
}

/// A decoded columnar block: record kind plus shared coordinate columns.
///
/// Columns are `Arc<[f64]>` so a cached block hands out zero-copy views;
/// cloning the block clones refcounts, never coordinate data.
#[derive(Clone, Debug)]
pub struct ColumnarBlock {
    /// Record kind tag (see [`Record::BINARY_KIND`]).
    pub kind: u8,
    /// Records in the block.
    pub count: usize,
    /// Coordinate columns, each of length `count`.
    pub cols: Vec<Arc<[f64]>>,
}

fn corrupt(msg: impl Into<String>) -> OpError {
    OpError::Corrupt(format!("columnar block: {}", msg.into()))
}

/// Encodes records as one columnar block. Fails with
/// [`OpError::Unsupported`] for record types without a columnar form
/// (segments, polygons, tagged records).
pub fn encode<R: Record>(records: &[R]) -> Result<Vec<u8>, OpError> {
    let kind = R::BINARY_KIND.ok_or_else(|| {
        OpError::Unsupported("record type has no binary columnar form".to_string())
    })?;
    let ncols = R::ncols();
    let mut cols: Vec<Vec<f64>> = (0..ncols)
        .map(|_| Vec::with_capacity(records.len()))
        .collect();
    for r in records {
        r.push_cols(&mut cols);
    }
    let mut out = Vec::with_capacity(header_len(ncols) + 8 * ncols * records.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(kind);
    out.push(ncols as u8);
    out.extend_from_slice(&(records.len() as u64).to_le_bytes());
    let mut offset = header_len(ncols);
    for _ in 0..ncols {
        out.extend_from_slice(&(offset as u64).to_le_bytes());
        offset += 8 * records.len();
    }
    for col in &cols {
        for v in col {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    Ok(out)
}

fn read_u64(data: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(data[at..at + 8].try_into().unwrap())
}

/// Decodes a columnar block, validating every header field and rejecting
/// non-finite coordinates. Corrupt or truncated input is
/// [`OpError::Corrupt`]; callers fall back to the text path or a rebuild
/// exactly as they do for a stale `_lidx` sidecar.
pub fn decode(data: &[u8]) -> Result<ColumnarBlock, OpError> {
    if data.len() < 16 {
        return Err(corrupt(format!("truncated header ({} bytes)", data.len())));
    }
    if data[..4] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = u16::from_le_bytes([data[4], data[5]]);
    if version != VERSION {
        return Err(corrupt(format!(
            "unsupported version {version} (expected {VERSION})"
        )));
    }
    let kind = data[6];
    let ncols = data[7] as usize;
    let expected_cols = match kind {
        0 => 2,
        1 => 4,
        k => return Err(corrupt(format!("unknown record kind {k}"))),
    };
    if ncols != expected_cols {
        return Err(corrupt(format!(
            "kind {kind} expects {expected_cols} columns, header says {ncols}"
        )));
    }
    let count = read_u64(data, 8) as usize;
    let hlen = header_len(ncols);
    let col_bytes = count
        .checked_mul(8)
        .ok_or_else(|| corrupt("count overflow"))?;
    let total = hlen
        .checked_add(
            col_bytes
                .checked_mul(ncols)
                .ok_or_else(|| corrupt("size overflow"))?,
        )
        .ok_or_else(|| corrupt("size overflow"))?;
    if data.len() != total {
        return Err(corrupt(format!(
            "length mismatch: {} bytes for {count} records x {ncols} columns (expected {total})",
            data.len()
        )));
    }
    let mut cols = Vec::with_capacity(ncols);
    for c in 0..ncols {
        let off = read_u64(data, 16 + 8 * c) as usize;
        if off != hlen + c * col_bytes {
            return Err(corrupt(format!("bad offset for column {c}: {off}")));
        }
        let mut col = Vec::with_capacity(count);
        for i in 0..count {
            let v = f64::from_le_bytes(data[off + 8 * i..off + 8 * i + 8].try_into().unwrap());
            if !v.is_finite() {
                return Err(corrupt(format!("non-finite value in column {c} row {i}")));
            }
            col.push(v);
        }
        cols.push(Arc::from(col.into_boxed_slice()));
    }
    Ok(ColumnarBlock { kind, count, cols })
}

impl ColumnarBlock {
    /// MBR of record `i`, straight from the columns.
    #[inline]
    pub fn mbr(&self, i: usize) -> Rect {
        match self.kind {
            0 => Rect::new(
                self.cols[0][i],
                self.cols[1][i],
                self.cols[0][i],
                self.cols[1][i],
            ),
            _ => Rect::new(
                self.cols[0][i],
                self.cols[1][i],
                self.cols[2][i],
                self.cols[3][i],
            ),
        }
    }

    /// Materializes record `i` (boundary with record-typed callers).
    pub fn record<R: Record>(&self, i: usize) -> R {
        let views: Vec<&[f64]> = self.cols.iter().map(|c| &c[..]).collect();
        R::from_cols(&views, i)
    }

    /// Indices of every record whose MBR intersects `q` — the hot inner
    /// loop. Iterates the coordinate arrays directly: branch-light,
    /// cache-friendly, auto-vectorizable.
    pub fn mbr_filter(&self, q: &Rect) -> Vec<usize> {
        let mut hits = Vec::new();
        match self.kind {
            0 => {
                let (xs, ys) = (&self.cols[0], &self.cols[1]);
                for i in 0..self.count {
                    let inside = xs[i] >= q.x1 && xs[i] <= q.x2 && ys[i] >= q.y1 && ys[i] <= q.y2;
                    if inside {
                        hits.push(i);
                    }
                }
            }
            _ => {
                let (x1, y1, x2, y2) = (&self.cols[0], &self.cols[1], &self.cols[2], &self.cols[3]);
                for i in 0..self.count {
                    let hit = x1[i] <= q.x2 && x2[i] >= q.x1 && y1[i] <= q.y2 && y2[i] >= q.y1;
                    if hit {
                        hits.push(i);
                    }
                }
            }
        }
        hits
    }

    /// All records, materialized (interchange back to the text world).
    pub fn records<R: Record>(&self) -> Vec<R> {
        let views: Vec<&[f64]> = self.cols.iter().map(|c| &c[..]).collect();
        (0..self.count).map(|i| R::from_cols(&views, i)).collect()
    }

    /// Resident size in bytes (cache accounting).
    pub fn resident_bytes(&self) -> usize {
        self.cols.iter().map(|c| c.len() * 8).sum::<usize>() + 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sh_geom::Point;

    fn pts(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(i as f64 * 1.5, (n - i) as f64 * 0.25))
            .collect()
    }

    fn rects(n: usize) -> Vec<Rect> {
        (0..n)
            .map(|i| {
                let x = (i % 13) as f64 * 3.0;
                let y = (i % 7) as f64 * 5.0;
                Rect::new(x, y, x + 2.0, y + 1.0)
            })
            .collect()
    }

    #[test]
    fn points_roundtrip_exactly() {
        let pts = pts(257);
        let blob = encode(&pts).unwrap();
        assert!(is_binary(&blob));
        let block = decode(&blob).unwrap();
        assert_eq!(block.kind, 0);
        assert_eq!(block.count, pts.len());
        assert_eq!(block.records::<Point>(), pts);
    }

    #[test]
    fn rects_roundtrip_exactly() {
        let rs = rects(100);
        let blob = encode(&rs).unwrap();
        let block = decode(&blob).unwrap();
        assert_eq!(block.kind, 1);
        assert_eq!(block.records::<Rect>(), rs);
        for (i, r) in rs.iter().enumerate() {
            assert_eq!(block.mbr(i), *r);
        }
    }

    #[test]
    fn empty_block_roundtrips() {
        let blob = encode::<Point>(&[]).unwrap();
        let block = decode(&blob).unwrap();
        assert_eq!(block.count, 0);
        assert!(block.records::<Point>().is_empty());
        assert!(block.mbr_filter(&Rect::new(0.0, 0.0, 1.0, 1.0)).is_empty());
    }

    #[test]
    fn mbr_filter_matches_linear_scan() {
        let rs = rects(500);
        let block = decode(&encode(&rs).unwrap()).unwrap();
        let q = Rect::new(5.0, 3.0, 20.0, 21.0);
        let expected: Vec<usize> = rs
            .iter()
            .enumerate()
            .filter(|(_, r)| r.intersects(&q))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(block.mbr_filter(&q), expected);

        let pts = pts(500);
        let block = decode(&encode(&pts).unwrap()).unwrap();
        let expected: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| q.contains_point(p))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(block.mbr_filter(&q), expected);
    }

    #[test]
    fn corrupt_blocks_are_errors_not_panics() {
        let blob = encode(&pts(10)).unwrap();

        // Truncated header.
        assert!(matches!(decode(&blob[..8]), Err(OpError::Corrupt(_))));
        // Bad magic.
        let mut bad = blob.clone();
        bad[0] = b'X';
        assert!(matches!(decode(&bad), Err(OpError::Corrupt(_))));
        assert!(!is_binary(&bad));
        // Flipped version byte.
        let mut bad = blob.clone();
        bad[4] = 0x7f;
        assert!(matches!(decode(&bad), Err(OpError::Corrupt(_))));
        // Unknown kind.
        let mut bad = blob.clone();
        bad[6] = 9;
        assert!(matches!(decode(&bad), Err(OpError::Corrupt(_))));
        // Kind/ncols disagreement.
        let mut bad = blob.clone();
        bad[7] = 4;
        assert!(matches!(decode(&bad), Err(OpError::Corrupt(_))));
        // Truncated payload.
        assert!(matches!(
            decode(&blob[..blob.len() - 3]),
            Err(OpError::Corrupt(_))
        ));
        // Corrupt offset table.
        let mut bad = blob.clone();
        bad[16] ^= 0xff;
        assert!(matches!(decode(&bad), Err(OpError::Corrupt(_))));
        // Non-finite coordinate (mirror of the text codec's check).
        let mut bad = blob.clone();
        let hlen = header_len(2);
        bad[hlen..hlen + 8].copy_from_slice(&f64::INFINITY.to_le_bytes());
        assert!(matches!(decode(&bad), Err(OpError::Corrupt(_))));
    }

    #[test]
    fn unsupported_record_types_refuse_encoding() {
        let polys = vec![sh_geom::Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ])];
        assert!(matches!(encode(&polys), Err(OpError::Unsupported(_))));
    }

    #[test]
    fn cloned_blocks_share_columns() {
        let block = decode(&encode(&pts(32)).unwrap()).unwrap();
        let clone = block.clone();
        assert!(Arc::ptr_eq(&block.cols[0], &clone.cols[0]));
    }
}
