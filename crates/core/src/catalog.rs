//! The indexed-file catalogue: SpatialHadoop's `_master` file.
//!
//! An indexed file is a DFS directory holding one `part-NNNNN` file per
//! spatial partition plus a `_master` text file the master node reads to
//! plan jobs. Exactly like SpatialHadoop, the master file is a small,
//! human-readable text table: a header naming the partitioning technique
//! and the universe, then one line per partition with its boundary cell,
//! actual data MBR, record count, size, and file name.

use sh_dfs::{Dfs, DfsError};
use sh_geom::Rect;
use sh_index::{PartitionKind, PartitionMeta};

use crate::opresult::OpError;

/// Handle to a spatially-indexed file.
#[derive(Clone, Debug)]
pub struct SpatialFile {
    /// Index directory (partitions live at `{dir}/part-NNNNN`).
    pub dir: String,
    /// Technique that partitioned the file.
    pub kind: PartitionKind,
    /// Universe (MBR of the whole dataset at indexing time).
    pub universe: Rect,
    /// Non-empty partitions.
    pub partitions: Vec<PartitionMeta>,
}

impl SpatialFile {
    /// Path of the master file for an index directory.
    pub fn master_path(dir: &str) -> String {
        format!("{dir}/_master")
    }

    /// Whether the underlying partitioning replicates records (pruning
    /// operations require this).
    pub fn is_disjoint(&self) -> bool {
        self.kind.is_disjoint()
    }

    /// Total records stored (≥ input records for disjoint techniques).
    pub fn total_records(&self) -> u64 {
        self.partitions.iter().map(|p| p.records).sum()
    }

    /// Total bytes stored.
    pub fn total_bytes(&self) -> u64 {
        self.partitions.iter().map(|p| p.bytes).sum()
    }

    /// Serializes and writes the master file.
    pub fn save(&self, dfs: &Dfs) -> Result<(), DfsError> {
        let mut text = String::new();
        text.push_str(&format!(
            "SHINDEX {} {} {} {} {}\n",
            self.kind.name(),
            self.universe.x1,
            self.universe.y1,
            self.universe.x2,
            self.universe.y2
        ));
        for p in &self.partitions {
            text.push_str(&format!(
                "{} {} {} {} {} {} {} {} {} {} {} {}\n",
                p.id,
                p.cell[0],
                p.cell[1],
                p.cell[2],
                p.cell[3],
                p.mbr[0],
                p.mbr[1],
                p.mbr[2],
                p.mbr[3],
                p.records,
                p.bytes,
                p.path
            ));
        }
        let path = Self::master_path(&self.dir);
        if dfs.exists(&path) {
            dfs.delete(&path);
        }
        dfs.write_string(&path, &text)
    }

    /// Opens an indexed file by reading its master file back.
    pub fn open(dfs: &Dfs, dir: &str) -> Result<SpatialFile, OpError> {
        let text = dfs.read_to_string(&Self::master_path(dir))?;
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| OpError::Corrupt(format!("{dir}: empty master file")))?;
        let mut h = header.split_ascii_whitespace();
        match h.next() {
            Some("SHINDEX") => {}
            other => {
                return Err(OpError::Corrupt(format!(
                    "{dir}: bad master header tag {other:?}"
                )))
            }
        }
        let kind_name = h
            .next()
            .ok_or_else(|| OpError::Corrupt(format!("{dir}: missing kind")))?;
        let kind = PartitionKind::parse(kind_name)
            .ok_or_else(|| OpError::Corrupt(format!("{dir}: unknown kind {kind_name}")))?;
        let mut nums = [0f64; 4];
        for slot in nums.iter_mut() {
            *slot = h
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| OpError::Corrupt(format!("{dir}: bad universe")))?;
        }
        let universe = Rect::new(nums[0], nums[1], nums[2], nums[3]);
        let mut partitions = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let toks: Vec<&str> = line.split_ascii_whitespace().collect();
            if toks.len() != 12 {
                return Err(OpError::Corrupt(format!(
                    "{dir}: bad partition line: {line:?}"
                )));
            }
            let f = |i: usize| -> Result<f64, OpError> {
                toks[i]
                    .parse()
                    .map_err(|_| OpError::Corrupt(format!("{dir}: bad number {:?}", toks[i])))
            };
            partitions.push(PartitionMeta {
                id: toks[0]
                    .parse()
                    .map_err(|_| OpError::Corrupt(format!("{dir}: bad id {:?}", toks[0])))?,
                cell: [f(1)?, f(2)?, f(3)?, f(4)?],
                mbr: [f(5)?, f(6)?, f(7)?, f(8)?],
                records: toks[9]
                    .parse()
                    .map_err(|_| OpError::Corrupt(format!("{dir}: bad records")))?,
                bytes: toks[10]
                    .parse()
                    .map_err(|_| OpError::Corrupt(format!("{dir}: bad bytes")))?,
                path: toks[11].to_string(),
            });
        }
        Ok(SpatialFile {
            dir: dir.to_string(),
            kind,
            universe,
            partitions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sh_dfs::ClusterConfig;

    fn sample_file() -> SpatialFile {
        SpatialFile {
            dir: "/idx".into(),
            kind: PartitionKind::StrPlus,
            universe: Rect::new(0.0, 0.0, 100.0, 100.0),
            partitions: vec![
                PartitionMeta {
                    id: 0,
                    path: "/idx/part-00000".into(),
                    cell: [0.0, 0.0, 50.0, 100.0],
                    mbr: [1.0, 2.0, 49.0, 98.0],
                    records: 500,
                    bytes: 9000,
                },
                PartitionMeta {
                    id: 1,
                    path: "/idx/part-00001".into(),
                    cell: [50.0, 0.0, 100.0, 100.0],
                    mbr: [51.0, 0.5, 99.0, 99.0],
                    records: 480,
                    bytes: 8800,
                },
            ],
        }
    }

    #[test]
    fn save_open_roundtrip() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let f = sample_file();
        f.save(&dfs).unwrap();
        let g = SpatialFile::open(&dfs, "/idx").unwrap();
        assert_eq!(g.kind, f.kind);
        assert_eq!(g.universe, f.universe);
        assert_eq!(g.partitions.len(), 2);
        assert_eq!(g.partitions[1].records, 480);
        assert_eq!(
            g.partitions[0].cell_rect(),
            Rect::new(0.0, 0.0, 50.0, 100.0)
        );
        assert_eq!(g.total_records(), 980);
        assert_eq!(g.total_bytes(), 17_800);
        assert!(g.is_disjoint());
    }

    #[test]
    fn open_missing_or_corrupt() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        assert!(SpatialFile::open(&dfs, "/nope").is_err());
        dfs.write_string("/bad/_master", "GARBAGE\n").unwrap();
        assert!(matches!(
            SpatialFile::open(&dfs, "/bad"),
            Err(OpError::Corrupt(_))
        ));
        dfs.write_string("/bad2/_master", "SHINDEX grid 0 0 1 1\n1 2 3\n")
            .unwrap();
        assert!(SpatialFile::open(&dfs, "/bad2").is_err());
    }

    #[test]
    fn save_overwrites() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let f = sample_file();
        f.save(&dfs).unwrap();
        f.save(&dfs).unwrap(); // no AlreadyExists error
        assert!(SpatialFile::open(&dfs, "/idx").is_ok());
    }
}
