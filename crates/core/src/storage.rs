//! The storage/indexing layer: heap-file loading and MapReduce index
//! building.
//!
//! Index construction follows SpatialHadoop's three phases, all paid for
//! in simulated cluster time:
//!
//! 1. **sample** — a map-only job draws a seeded reservoir sample from
//!    every split and reports each split's MBR and record count;
//! 2. **boundaries** — the driver (master node) computes the universe and
//!    the partition boundaries from the sample with the chosen technique;
//! 3. **partition** — a full MapReduce job routes every record to its
//!    partition(s) (replicating across disjoint cells where required) and
//!    writes one `part-NNNNN` file per non-empty partition plus the
//!    `_master` catalogue.

use std::marker::PhantomData;
use std::sync::Arc;

use sh_dfs::{Dfs, DfsError};
use sh_geom::{Point, Record, Rect};
use sh_index::sampler::{reservoir_sample, sample_size};
use sh_index::{GlobalPartitioning, PartitionKind, PartitionMeta};
use sh_mapreduce::{InputSplit, JobBuilder, MapContext, Mapper, ReduceContext, Reducer};
use sh_trace::Span;

use crate::catalog::SpatialFile;
use crate::opresult::{OpError, OpResult};

/// On-disk layout of the partition files an index build writes. Text is
/// the ingest format; binary is the columnar `SHCB` block layout with
/// `SHLX` local-index sidecars (see [`crate::colblock`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockFormat {
    /// One record per text line.
    #[default]
    Text,
    /// Columnar coordinate arrays, scanned without re-parsing.
    Binary,
}

impl BlockFormat {
    /// Lower-case name, as written in Pigeon's `FORMAT` clause.
    pub fn name(self) -> &'static str {
        match self {
            BlockFormat::Text => "text",
            BlockFormat::Binary => "binary",
        }
    }
}

/// Bounded preview of an offending input line for corruption errors.
fn preview(line: &str) -> String {
    if line.chars().count() <= 48 {
        line.to_string()
    } else {
        let cut: String = line.chars().take(48).collect();
        format!("{cut}…")
    }
}

/// Driver-side corruption error quoting the offending line.
fn corrupt(what: &str, line: &str) -> OpError {
    OpError::Corrupt(format!("{what}: {:?}", preview(line)))
}

/// Task-side corruption failure: fails the attempt (and, without retry,
/// the job) instead of panicking the worker thread.
fn corrupt_task(context: &str, err: &dyn std::fmt::Display, line: &str) -> ! {
    sh_mapreduce::fail_corrupt(format!("{context}: {err}: {:?}", preview(line)))
}

/// Writes records as a heap (unindexed) text file — the plain Hadoop
/// loader.
pub fn upload<R: Record>(dfs: &Dfs, path: &str, records: &[R]) -> Result<(), DfsError> {
    let mut w = dfs.create(path)?;
    let mut line = String::with_capacity(48);
    for r in records {
        line.clear();
        r.write_line(&mut line);
        w.write_line(&line);
    }
    w.close()?;
    Ok(())
}

/// Deletes every file under a directory prefix (driver-side cleanup).
pub fn delete_dir(dfs: &Dfs, dir: &str) {
    for path in dfs.list(&format!("{dir}/")) {
        dfs.delete(&path);
    }
}

// ---------------------------------------------------------------- sample

struct SampleMapper<R: Record> {
    per_split: usize,
    _r: PhantomData<fn() -> R>,
}

impl<R: Record> Mapper for SampleMapper<R> {
    type K = u8;
    type V = u8;

    fn map(&self, split: &InputSplit, data: &str, ctx: &mut MapContext<u8, u8>) {
        let seed = split.blocks.first().map(|b| b.id.0).unwrap_or(0) ^ 0x5A17;
        let mut mbr = Rect::empty();
        let mut count = 0u64;
        let centers = data.lines().filter(|l| !l.trim().is_empty()).map(|l| {
            let r = R::parse_line(l).unwrap_or_else(|e| corrupt_task(&split.path, &e, l));
            count += 1;
            mbr.expand(&r.mbr());
            r.mbr().center()
        });
        let sample: Vec<Point> = reservoir_sample(centers, self.per_split, seed);
        for p in sample {
            ctx.output(format!("S {} {}", p.x, p.y));
        }
        if !mbr.is_empty() {
            ctx.output(format!("M {} {} {} {}", mbr.x1, mbr.y1, mbr.x2, mbr.y2));
        }
        ctx.counter("sample.records", count);
    }
}

// ------------------------------------------------------------- partition

struct PartitionMapper<R: Record> {
    gp: Arc<GlobalPartitioning>,
    _r: PhantomData<fn() -> R>,
}

impl<R: Record> Mapper for PartitionMapper<R> {
    type K = u64;
    type V = String;

    fn map(&self, split: &InputSplit, data: &str, ctx: &mut MapContext<u64, String>) {
        let records = ctx.register_counter("index.records");
        let replicas = ctx.register_counter("index.replicas");
        for line in data.lines().filter(|l| !l.trim().is_empty()) {
            let r = R::parse_line(line).unwrap_or_else(|e| corrupt_task(&split.path, &e, line));
            let targets = self.gp.assign(&r.mbr());
            ctx.inc(records, 1);
            ctx.inc(replicas, targets.len() as u64);
            for pid in targets {
                ctx.emit(pid as u64, line.to_string());
            }
        }
    }
}

struct PartitionReducer<R: Record> {
    format: BlockFormat,
    _r: PhantomData<fn() -> R>,
}

impl<R: Record> Reducer for PartitionReducer<R> {
    type K = u64;
    type V = String;

    fn reduce(&self, pid: &u64, lines: Vec<String>, ctx: &mut ReduceContext) {
        let name = format!("part-{pid:05}");
        let sidecar = format!("_lidx-{pid:05}");
        let mut mbr = Rect::empty();
        let count = lines.len() as u64;
        let mut records: Vec<R> = Vec::with_capacity(lines.len());
        for line in &lines {
            let r = R::parse_line(line).unwrap_or_else(|e| corrupt_task(&name, &e, line));
            mbr.expand(&r.mbr());
            records.push(r);
        }
        // Persist the partition's local R-tree next to its data so query
        // jobs deserialize instead of re-running the STR bulk-load.
        let tree = sh_index::LocalRTree::build(records.iter().map(|r| r.mbr()).collect());
        let bytes = match self.format {
            BlockFormat::Text => {
                let mut bytes = 0u64;
                for line in lines {
                    bytes += line.len() as u64 + 1;
                    ctx.side_output(&name, line);
                }
                for line in tree.to_text().lines() {
                    ctx.side_output(&sidecar, line.to_string());
                }
                bytes
            }
            BlockFormat::Binary => {
                let blob = crate::colblock::encode(&records)
                    .unwrap_or_else(|e| sh_mapreduce::fail_corrupt(format!("{name}: {e}")));
                let bytes = blob.len() as u64;
                ctx.side_output_bytes(&name, &blob);
                ctx.side_output_bytes(&sidecar, &tree.to_bytes());
                bytes
            }
        };
        ctx.counter("index.local_trees", 1);
        ctx.side_output(
            "_partmeta",
            format!(
                "{pid} {count} {bytes} {} {} {} {}",
                mbr.x1, mbr.y1, mbr.x2, mbr.y2
            ),
        );
    }
}

/// Bulk-builds a spatial index over a heap file.
///
/// Returns the [`SpatialFile`] handle plus the job outcomes (two rounds:
/// sample + partition), whose summed simulated time is the index
/// construction cost that experiment E1 reports.
pub fn build_index<R: Record>(
    dfs: &Dfs,
    heap: &str,
    index_dir: &str,
    kind: PartitionKind,
) -> Result<OpResult<SpatialFile>, OpError> {
    build_index_fmt::<R>(dfs, heap, index_dir, kind, BlockFormat::Text)
}

/// [`build_index`] with an explicit partition-file layout: Pigeon's
/// `INDEX ... FORMAT binary;` lands here. Binary is only defined for
/// record types with fixed coordinate columns (points, rectangles).
pub fn build_index_fmt<R: Record>(
    dfs: &Dfs,
    heap: &str,
    index_dir: &str,
    kind: PartitionKind,
    format: BlockFormat,
) -> Result<OpResult<SpatialFile>, OpError> {
    if format == BlockFormat::Binary && R::BINARY_KIND.is_none() {
        return Err(OpError::Unsupported(format!(
            "binary block format is not defined for {}",
            std::any::type_name::<R>()
        )));
    }
    let root = Span::root(format!("index-build:{heap}"));
    root.attr("technique", kind.name());
    root.attr("format", format.name());
    let stat = dfs.stat(heap)?;
    let target_partitions = (stat.len.div_ceil(dfs.config().block_size)).max(1) as usize;

    // Phase 1: sample job.
    let sample_span = root.child("sample");
    let num_splits = stat.num_blocks.max(1);
    let want_sample = sample_size(stat.len / 16, 0.01); // records ≈ bytes/16
    let sample_job = JobBuilder::new(dfs, &format!("sample:{heap}"))
        .input_file(heap)?
        .mapper(SampleMapper::<R> {
            per_split: want_sample.div_ceil(num_splits),
            _r: PhantomData,
        })
        .output(&format!("{index_dir}/_sample"))
        .map_only()?
        .run()?;
    let mut sample: Vec<Point> = Vec::new();
    let mut universe = Rect::empty();
    let parsed = parse_sample_output(sample_job.read_output(dfs)?, &mut sample, &mut universe);
    delete_dir(dfs, &format!("{index_dir}/_sample"));
    parsed?;
    sample_span.attr("points", sample.len());
    sample_span.finish();
    sh_trace::global().counter_add("index.sample.points", sample.len() as u64);
    if universe.is_empty() {
        return Err(OpError::Unsupported(format!("{heap}: empty input file")));
    }

    // Phase 2: boundaries on the driver.
    let boundaries_span = root.child("boundaries");
    let gp = Arc::new(GlobalPartitioning::build(
        kind,
        &sample,
        universe,
        target_partitions,
    ));
    boundaries_span.attr("cells", gp.len());
    boundaries_span.finish();
    partition_phase::<R>(
        dfs,
        heap,
        index_dir,
        gp,
        format,
        vec![sample_job],
        Some(root),
    )
}

/// Parses the sample job's `S x y` / `M x1 y1 x2 y2` output lines.
/// Malformed lines — wrong arity, unparseable or non-finite numbers —
/// are [`OpError::Corrupt`], not driver panics.
fn parse_sample_output(
    lines: Vec<String>,
    sample: &mut Vec<Point>,
    universe: &mut Rect,
) -> Result<(), OpError> {
    fn coord(tok: Option<&str>, what: &str, line: &str) -> Result<f64, OpError> {
        tok.and_then(|t| t.parse::<f64>().ok())
            .filter(|v| v.is_finite())
            .ok_or_else(|| corrupt(what, line))
    }
    for line in lines {
        let mut it = line.split_ascii_whitespace();
        match it.next() {
            Some("S") => {
                let x = coord(it.next(), "bad sample point", &line)?;
                let y = coord(it.next(), "bad sample point", &line)?;
                sample.push(Point::new(x, y));
            }
            Some("M") => {
                let mut v = [0.0f64; 4];
                for slot in &mut v {
                    *slot = coord(it.next(), "bad split MBR", &line)?;
                }
                if it.next().is_some() {
                    return Err(corrupt("bad split MBR", &line));
                }
                universe.expand(&Rect::new(v[0], v[1], v[2], v[3]));
            }
            _ => {}
        }
    }
    Ok(())
}

/// Indexes a heap file with an *existing* partitioning — co-partitioning
/// for the distributed join: both join inputs share boundaries, so every
/// partition pairs with exactly one counterpart.
pub fn build_index_with<R: Record>(
    dfs: &Dfs,
    heap: &str,
    index_dir: &str,
    gp: Arc<GlobalPartitioning>,
) -> Result<OpResult<SpatialFile>, OpError> {
    partition_phase::<R>(
        dfs,
        heap,
        index_dir,
        gp,
        BlockFormat::Text,
        Vec::new(),
        None,
    )
}

fn partition_phase<R: Record>(
    dfs: &Dfs,
    heap: &str,
    index_dir: &str,
    gp: Arc<GlobalPartitioning>,
    format: BlockFormat,
    mut jobs: Vec<sh_mapreduce::JobOutcome>,
    root: Option<Span>,
) -> Result<OpResult<SpatialFile>, OpError> {
    let kind = gp.kind();
    let universe = gp.universe();
    let root = root.unwrap_or_else(|| Span::root(format!("index-build:{heap}")));

    // Phase 3: the partition job assigns every record to its cell(s) and
    // the reducers build the local per-partition files.
    let assign_span = root.child("assign+local-build");
    let reducers = gp.len().min(dfs.config().total_reduce_slots()).max(1);
    let mut partition_job = JobBuilder::new(dfs, &format!("partition:{heap}:{}", kind.name()))
        .input_file(heap)?
        .mapper(PartitionMapper::<R> {
            gp: gp.clone(),
            _r: PhantomData,
        })
        .pair_size(|_, v: &String| 8 + v.len())
        .reducer(
            PartitionReducer::<R> {
                format,
                _r: PhantomData,
            },
            reducers,
        )
        .output(index_dir)
        .build()?
        .run()?;
    assign_span.attr("reducers", reducers);
    assign_span.finish();

    // Assemble and persist the catalogue.
    let meta_text = dfs.read_to_string(&format!("{index_dir}/_partmeta"))?;
    let mut partitions: Vec<PartitionMeta> = Vec::new();
    for line in meta_text.lines() {
        let toks: Vec<&str> = line.split_ascii_whitespace().collect();
        if toks.len() != 7 {
            return Err(corrupt("bad partition meta line", line));
        }
        let pid: usize = toks[0]
            .parse()
            .map_err(|_| corrupt("bad partition id", line))?;
        if pid >= gp.len() {
            return Err(corrupt("partition id out of range", line));
        }
        let records: u64 = toks[1]
            .parse()
            .map_err(|_| corrupt("bad partition record count", line))?;
        let bytes: u64 = toks[2]
            .parse()
            .map_err(|_| corrupt("bad partition byte count", line))?;
        let mut m = [0.0f64; 4];
        for (slot, tok) in m.iter_mut().zip(&toks[3..7]) {
            *slot = tok
                .parse::<f64>()
                .ok()
                .filter(|v| v.is_finite())
                .ok_or_else(|| corrupt("bad partition MBR", line))?;
        }
        let cell = gp.cell(pid);
        partitions.push(PartitionMeta {
            id: pid,
            path: format!("{index_dir}/part-{pid:05}"),
            cell: [cell.x1, cell.y1, cell.x2, cell.y2],
            mbr: [m[0], m[1], m[2], m[3]],
            records,
            bytes,
        });
    }
    partitions.sort_by_key(|p| p.id);

    // Report the build into the global registry and graft the engine's
    // per-job span trees under the matching build phase, so the
    // partition job's profile carries the full index-build trace.
    let g = sh_trace::global();
    g.counter_add("index.builds", 1);
    g.counter_add("index.partitions", partitions.len() as u64);
    g.counter_add("index.records", partitions.iter().map(|p| p.records).sum());
    g.counter_add("index.bytes", partitions.iter().map(|p| p.bytes).sum());
    for p in &partitions {
        g.observe("index.partition.bytes", p.bytes);
    }
    root.finish();
    let mut trace = root.record();
    for phase in trace.children.iter_mut() {
        let grafted = match phase.name.as_str() {
            "sample" => jobs.first().and_then(|j| j.profile.spans.clone()),
            "assign+local-build" => partition_job.profile.spans.clone(),
            _ => None,
        };
        if let Some(spans) = grafted {
            phase.children.push(spans);
        }
    }
    partition_job.profile.spans = Some(trace);

    let file = SpatialFile {
        dir: index_dir.to_string(),
        kind,
        universe,
        partitions,
    };
    file.save(dfs)?;
    jobs.push(partition_job);
    Ok(OpResult::new(file, jobs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sh_dfs::ClusterConfig;
    use sh_workload::{points, Distribution};

    fn setup(n: usize) -> (Dfs, Vec<Point>) {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let pts = points(n, Distribution::Uniform, &uni, 11);
        upload(&dfs, "/heap", &pts).unwrap();
        (dfs, pts)
    }

    #[test]
    fn build_grid_index_covers_all_records() {
        let (dfs, pts) = setup(3000);
        let built = build_index::<Point>(&dfs, "/heap", "/idx", PartitionKind::Grid).unwrap();
        let file = &built.value;
        assert!(file.partitions.len() > 1, "expected multiple partitions");
        assert_eq!(
            file.total_records(),
            pts.len() as u64,
            "points are never replicated"
        );
        assert_eq!(built.rounds(), 2);
        // Every partition file exists and parses; data MBR within cell.
        let mut seen = 0u64;
        for p in &file.partitions {
            let text = dfs.read_to_string(&p.path).unwrap();
            let records: Vec<Point> = sh_geom::text::parse_records(&text).unwrap();
            assert_eq!(records.len() as u64, p.records);
            seen += p.records;
            let cell = p.cell_rect();
            for r in &records {
                assert!(
                    cell.buffer(1e-9).contains_point(r),
                    "record {r} outside cell {cell}"
                );
            }
            assert!(cell.buffer(1e-9).contains_rect(&p.mbr_rect()));
        }
        assert_eq!(seen, pts.len() as u64);
    }

    #[test]
    fn build_persists_local_index_sidecars() {
        let (dfs, _) = setup(3000);
        let built = build_index::<Point>(&dfs, "/heap", "/idx", PartitionKind::Grid).unwrap();
        for p in &built.value.partitions {
            let sidecar = crate::mrlayer::local_index_path(&p.path).unwrap();
            let text = dfs
                .read_to_string(&sidecar)
                .unwrap_or_else(|_| panic!("missing sidecar {sidecar}"));
            let tree = sh_index::LocalRTree::from_text(&text).unwrap();
            assert_eq!(tree.len() as u64, p.records, "{sidecar}");
            // The persisted tree answers exactly like a fresh bulk-load.
            let data = dfs.read_to_string(&p.path).unwrap();
            let records: Vec<Point> = sh_geom::text::parse_records(&data).unwrap();
            let rebuilt = sh_index::LocalRTree::build(records.iter().map(|r| r.mbr()).collect());
            let q = p.cell_rect();
            assert_eq!(tree.query(&q), rebuilt.query(&q));
        }
        assert_eq!(
            built.counter("index.local_trees"),
            built.value.partitions.len() as u64
        );
    }

    #[test]
    fn master_file_reopens() {
        let (dfs, _) = setup(1500);
        let built = build_index::<Point>(&dfs, "/heap", "/idx", PartitionKind::StrPlus).unwrap();
        let reopened = SpatialFile::open(&dfs, "/idx").unwrap();
        assert_eq!(reopened.kind, PartitionKind::StrPlus);
        assert_eq!(reopened.partitions.len(), built.value.partitions.len());
        assert_eq!(reopened.universe, built.value.universe);
    }

    #[test]
    fn rect_records_are_replicated_in_disjoint_indexes() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let rs = sh_workload::rects(1500, &uni, 60.0, 5);
        upload(&dfs, "/rects", &rs).unwrap();
        let built = build_index::<Rect>(&dfs, "/rects", "/ridx", PartitionKind::Grid).unwrap();
        assert!(
            built.value.total_records() > rs.len() as u64,
            "large rects must replicate: {} vs {}",
            built.value.total_records(),
            rs.len()
        );
        assert_eq!(built.counter("index.records"), rs.len() as u64);
        assert!(built.counter("index.replicas") >= rs.len() as u64);
    }

    #[test]
    fn every_technique_builds() {
        let (dfs, pts) = setup(2000);
        for (i, kind) in PartitionKind::ALL.into_iter().enumerate() {
            let dir = format!("/idx{i}");
            let built = build_index::<Point>(&dfs, "/heap", &dir, kind).unwrap();
            assert_eq!(
                built.value.total_records(),
                pts.len() as u64,
                "{} lost/duplicated points",
                kind.name()
            );
        }
    }

    #[test]
    fn binary_index_matches_text_build() {
        let (dfs, pts) = setup(3000);
        let t = build_index::<Point>(&dfs, "/heap", "/t", PartitionKind::StrPlus).unwrap();
        let b = build_index_fmt::<Point>(
            &dfs,
            "/heap",
            "/b",
            PartitionKind::StrPlus,
            BlockFormat::Binary,
        )
        .unwrap();
        assert_eq!(b.value.total_records(), pts.len() as u64);
        assert_eq!(t.value.partitions.len(), b.value.partitions.len());
        for p in &b.value.partitions {
            let raw = dfs.read_bytes(&p.path).unwrap();
            assert!(crate::colblock::is_binary(&raw), "{} is not SHCB", p.path);
            assert_eq!(raw.len() as u64, p.bytes, "catalogue byte count");
            let records: Vec<Point> =
                crate::mrlayer::SpatialRecordReader::records_bytes(&raw).unwrap();
            assert_eq!(records.len() as u64, p.records);
            // The sidecar is binary too and answers like a fresh build.
            let sidecar = crate::mrlayer::local_index_path(&p.path).unwrap();
            let sraw = dfs.read_bytes(&sidecar).unwrap();
            assert!(sh_index::LocalRTree::is_binary_sidecar(&sraw));
            let tree = sh_index::LocalRTree::from_bytes(&sraw).unwrap();
            assert_eq!(tree.len() as u64, p.records, "{sidecar}");
            let rebuilt = sh_index::LocalRTree::build(records.iter().map(|r| r.mbr()).collect());
            let q = p.cell_rect();
            assert_eq!(tree.query(&q), rebuilt.query(&q));
        }
    }

    #[test]
    fn binary_format_is_unsupported_for_polygons() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 100.0, 100.0);
        let polys = sh_workload::osm_like_polygons(40, &uni, 10.0, 3);
        upload(&dfs, "/polys", &polys).unwrap();
        assert!(matches!(
            build_index_fmt::<sh_geom::Polygon>(
                &dfs,
                "/polys",
                "/idx",
                PartitionKind::Grid,
                BlockFormat::Binary
            ),
            Err(OpError::Unsupported(_))
        ));
    }

    #[test]
    fn corrupt_heap_line_fails_index_build_cleanly() {
        for format in [BlockFormat::Text, BlockFormat::Binary] {
            let dfs = Dfs::new(ClusterConfig::small_for_tests());
            let mut w = dfs.create("/heap").unwrap();
            w.write_line("1 2");
            w.write_line("3 banana");
            w.write_line("5 6");
            w.close().unwrap();
            let err = build_index_fmt::<Point>(&dfs, "/heap", "/idx", PartitionKind::Grid, format)
                .unwrap_err();
            match err {
                OpError::Corrupt(m) => assert!(m.contains("banana"), "{format:?}: {m}"),
                other => panic!("{format:?}: expected Corrupt, got {other}"),
            }
        }
    }

    #[test]
    fn empty_heap_is_an_error() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let w = dfs.create("/empty").unwrap();
        w.close().unwrap();
        assert!(matches!(
            build_index::<Point>(&dfs, "/empty", "/idx", PartitionKind::Grid),
            Err(OpError::Unsupported(_))
        ));
    }
}
