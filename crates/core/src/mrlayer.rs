//! The spatial MapReduce layer: SpatialFileSplitter, SpatialRecordReader,
//! and the reference-point duplicate-avoidance rule.

use std::sync::Arc;

use sh_dfs::{Dfs, DfsError};
use sh_geom::{Point, Record, Rect};
use sh_index::{owns_point, LocalRTree};
use sh_mapreduce::InputSplit;

use crate::catalog::SpatialFile;

/// Sidecar path of a partition file: `.../part-NNNNN` →
/// `.../_lidx-NNNNN`. `None` for paths that are not partition files
/// (heap files, block-level splits) — those have no persisted index.
pub fn local_index_path(part_path: &str) -> Option<String> {
    let (dir, name) = part_path.rsplit_once('/')?;
    let suffix = name.strip_prefix("part-")?;
    Some(format!("{dir}/_lidx-{suffix}"))
}

/// SpatialFileSplitter: turns an indexed file into map-task splits, one
/// per partition that passes the *filter function* — the mechanism every
/// SpatialHadoop operation uses to prune partitions that cannot
/// contribute to its answer.
pub struct SpatialFileSplitter;

impl SpatialFileSplitter {
    /// One split per partition with `filter(meta) == true`. The split
    /// carries the partition id and boundary cell so the map function can
    /// apply partition-relative pruning rules.
    pub fn splits(
        dfs: &Dfs,
        file: &SpatialFile,
        mut filter: impl FnMut(&sh_index::PartitionMeta) -> bool,
    ) -> Result<Vec<InputSplit>, DfsError> {
        let mut out = Vec::new();
        for meta in &file.partitions {
            if !filter(meta) {
                continue;
            }
            let split = InputSplit::whole_file(dfs, &meta.path)?.with_partition(meta.id, meta.cell);
            out.push(split);
        }
        Ok(out)
    }

    /// All partitions (no filtering).
    pub fn all_splits(dfs: &Dfs, file: &SpatialFile) -> Result<Vec<InputSplit>, DfsError> {
        Self::splits(dfs, file, |_| true)
    }
}

/// Selectivity of a splitter decision: how many of the file's
/// partitions the filter function kept, and how many records those
/// surviving partitions hold. `records_emitted` is left at zero for the
/// operation to fill once the answer size is known.
pub fn splitter_selectivity(
    file: &SpatialFile,
    splits: &[sh_mapreduce::InputSplit],
) -> sh_trace::Selectivity {
    let kept: std::collections::BTreeSet<usize> =
        splits.iter().filter_map(|s| s.partition_id).collect();
    let records_scanned = file
        .partitions
        .iter()
        .filter(|m| kept.contains(&m.id))
        .map(|m| m.records)
        .sum();
    sh_trace::Selectivity::of_split(file.partitions.len(), splits.len(), records_scanned)
}

/// SpatialRecordReader: parses a split's text back into records and can
/// bulk-load the partition's local R-tree for index-assisted map
/// functions.
pub struct SpatialRecordReader;

impl SpatialRecordReader {
    /// Parses every line of a split as a record.
    ///
    /// Map tasks treat unparseable lines as data corruption and panic
    /// (Hadoop would fail the task attempt); loaders validate input, so
    /// this never fires on files written by this crate.
    pub fn records<R: Record>(data: &str) -> Vec<R> {
        data.lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| R::parse_line(l).expect("corrupt record in partition"))
            .collect()
    }

    /// Parses records and bulk-loads the local index over their MBRs.
    pub fn with_index<R: Record>(data: &str) -> (Vec<R>, LocalRTree) {
        let records = Self::records::<R>(data);
        let tree = LocalRTree::build(records.iter().map(|r| r.mbr()).collect());
        (records, tree)
    }

    /// Opens a partition for index-assisted processing through the
    /// per-node cache: a hit returns the parsed records + local tree
    /// without touching the text; a miss parses `data`, loads the
    /// persisted `_lidx-NNNNN` sidecar when one exists (falling back to
    /// an STR bulk-load for heap files or missing/corrupt sidecars), and
    /// caches the result keyed by `path`. Returns the shared partition
    /// and whether it was a cache hit.
    pub fn open_indexed<R: Record>(
        dfs: &Dfs,
        path: &str,
        data: &str,
    ) -> (Arc<(Vec<R>, LocalRTree)>, bool) {
        // Keyed by the partition path itself so the DFS's per-path
        // invalidation (delete/overwrite) hits this entry.
        if let Some(hit) = dfs.cache().get(path) {
            if let Ok(part) = hit.downcast::<(Vec<R>, LocalRTree)>() {
                return (part, true);
            }
        }
        // `data` was read before this point; if a concurrent job
        // invalidates the path (overwrite, node kill) while we parse,
        // the epoch check below drops the stale insert.
        let epoch = dfs.cache().epoch();
        let records = Self::records::<R>(data);
        let tree = local_index_path(path)
            .filter(|p| dfs.exists(p))
            .and_then(|p| dfs.read_to_string(&p).ok())
            .and_then(|text| LocalRTree::from_text(&text).ok())
            .filter(|t| t.len() == records.len())
            .unwrap_or_else(|| LocalRTree::build(records.iter().map(|r| r.mbr()).collect()));
        let part = Arc::new((records, tree));
        // Accounted size: parsed records + tree rects dominate; the text
        // itself is the floor.
        let bytes =
            (data.len() + part.0.len() * std::mem::size_of::<R>() + part.1.len() * 32) as u64;
        dfs.cache().put_at(path, part.clone(), bytes, epoch);
        (part, false)
    }
}

/// The partition cell of a split (panics when the split is not spatial —
/// a programming error in an operation).
pub fn split_cell(split: &InputSplit) -> Rect {
    let m = split.mbr.expect("spatial split carries its partition cell");
    Rect::new(m[0], m[1], m[2], m[3])
}

/// Reference-point duplicate avoidance: with disjoint partitioning and
/// replication, a result involving rectangles `a` and `b` is reported
/// only by the partition that *owns* the bottom-left corner of `a ∩ b`.
///
/// Both `a` and `b` overlap every partition that can see the pair, and
/// the corner lies inside both, so exactly one of the partitions
/// processing the pair owns it — each result is reported exactly once.
pub fn reference_point(a: &Rect, b: &Rect) -> Option<Point> {
    a.intersection(b).map(|i| Point::new(i.x1, i.y1))
}

/// True when `cell` owns the reference point of `a ∩ b` within
/// `universe` (see [`reference_point`]).
pub fn owns_pair(cell: &Rect, universe: &Rect, a: &Rect, b: &Rect) -> bool {
    match reference_point(a, b) {
        Some(p) => owns_point(cell, &p, universe),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sh_dfs::ClusterConfig;
    use sh_geom::Point;
    use sh_index::{PartitionKind, PartitionMeta};

    fn indexed_file(dfs: &Dfs) -> SpatialFile {
        dfs.write_string("/idx/part-00000", "1 1\n2 2\n").unwrap();
        dfs.write_string("/idx/part-00001", "60 60\n70 70\n")
            .unwrap();
        SpatialFile {
            dir: "/idx".into(),
            kind: PartitionKind::Grid,
            universe: Rect::new(0.0, 0.0, 100.0, 100.0),
            partitions: vec![
                PartitionMeta {
                    id: 0,
                    path: "/idx/part-00000".into(),
                    cell: [0.0, 0.0, 50.0, 50.0],
                    mbr: [1.0, 1.0, 2.0, 2.0],
                    records: 2,
                    bytes: 8,
                },
                PartitionMeta {
                    id: 1,
                    path: "/idx/part-00001".into(),
                    cell: [50.0, 50.0, 100.0, 100.0],
                    mbr: [60.0, 60.0, 70.0, 70.0],
                    records: 2,
                    bytes: 12,
                },
            ],
        }
    }

    #[test]
    fn splitter_applies_filter() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let f = indexed_file(&dfs);
        let all = SpatialFileSplitter::all_splits(&dfs, &f).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].partition_id, Some(0));
        let q = Rect::new(55.0, 55.0, 65.0, 65.0);
        let pruned =
            SpatialFileSplitter::splits(&dfs, &f, |m| m.mbr_rect().intersects(&q)).unwrap();
        assert_eq!(pruned.len(), 1);
        assert_eq!(pruned[0].partition_id, Some(1));
        assert_eq!(split_cell(&pruned[0]), Rect::new(50.0, 50.0, 100.0, 100.0));
    }

    #[test]
    fn record_reader_roundtrip_with_index() {
        let data = "1 2\n3 4\n5 6\n";
        let (records, tree) = SpatialRecordReader::with_index::<Point>(data);
        assert_eq!(records.len(), 3);
        assert_eq!(tree.len(), 3);
        let hits = tree.query(&Rect::new(2.0, 3.0, 4.0, 5.0));
        assert_eq!(hits, vec![1]);
    }

    #[test]
    fn local_index_path_derivation() {
        assert_eq!(
            local_index_path("/idx/part-00005").as_deref(),
            Some("/idx/_lidx-00005")
        );
        assert_eq!(local_index_path("/idx/_master"), None);
        assert_eq!(local_index_path("part-00001"), None); // no directory
    }

    #[test]
    fn open_indexed_caches_and_respects_invalidation() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        dfs.write_string("/idx/part-00000", "1 2\n3 4\n5 6\n")
            .unwrap();
        let data = dfs.read_to_string("/idx/part-00000").unwrap();

        let (part, hit) =
            SpatialRecordReader::open_indexed::<Point>(&dfs, "/idx/part-00000", &data);
        assert!(!hit, "first open is a miss");
        assert_eq!(part.0.len(), 3);
        assert_eq!(part.1.query(&Rect::new(2.0, 3.0, 4.0, 5.0)), vec![1]);

        let (again, hit) =
            SpatialRecordReader::open_indexed::<Point>(&dfs, "/idx/part-00000", &data);
        assert!(hit, "second open is a hit");
        assert!(Arc::ptr_eq(&part, &again), "hit returns the shared value");

        // Overwrite: delete + create must drop the entry.
        dfs.delete("/idx/part-00000");
        dfs.write_string("/idx/part-00000", "7 8\n").unwrap();
        let fresh = dfs.read_to_string("/idx/part-00000").unwrap();
        let (part2, hit) =
            SpatialRecordReader::open_indexed::<Point>(&dfs, "/idx/part-00000", &fresh);
        assert!(!hit, "overwrite invalidates");
        assert_eq!(part2.0.len(), 1);
    }

    #[test]
    fn open_indexed_uses_persisted_sidecar() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        dfs.write_string("/idx/part-00001", "1 1\n9 9\n").unwrap();
        let tree = LocalRTree::build(vec![
            Rect::new(1.0, 1.0, 1.0, 1.0),
            Rect::new(9.0, 9.0, 9.0, 9.0),
        ]);
        dfs.write_string("/idx/_lidx-00001", &tree.to_text())
            .unwrap();
        let data = dfs.read_to_string("/idx/part-00001").unwrap();
        let (part, _) = SpatialRecordReader::open_indexed::<Point>(&dfs, "/idx/part-00001", &data);
        assert_eq!(part.1.query(&Rect::new(0.0, 0.0, 5.0, 5.0)), vec![0]);

        // A stale sidecar (wrong cardinality) falls back to a rebuild.
        dfs.delete("/idx/part-00001");
        dfs.write_string("/idx/part-00001", "1 1\n9 9\n5 5\n")
            .unwrap();
        let data = dfs.read_to_string("/idx/part-00001").unwrap();
        let (part, _) = SpatialRecordReader::open_indexed::<Point>(&dfs, "/idx/part-00001", &data);
        assert_eq!(part.1.len(), 3, "stale sidecar ignored");
    }

    #[test]
    fn reference_point_is_owned_once() {
        let universe = Rect::new(0.0, 0.0, 100.0, 100.0);
        let cells = [
            Rect::new(0.0, 0.0, 50.0, 50.0),
            Rect::new(50.0, 0.0, 100.0, 50.0),
            Rect::new(0.0, 50.0, 50.0, 100.0),
            Rect::new(50.0, 50.0, 100.0, 100.0),
        ];
        // A pair of rects straddling the center: both replicated to all 4
        // cells; exactly one cell may report.
        let a = Rect::new(45.0, 45.0, 55.0, 55.0);
        let b = Rect::new(48.0, 48.0, 60.0, 60.0);
        let owners = cells
            .iter()
            .filter(|c| owns_pair(c, &universe, &a, &b))
            .count();
        assert_eq!(owners, 1);
        // Disjoint rects have no reference point.
        assert!(!owns_pair(
            &cells[0],
            &universe,
            &Rect::new(0.0, 0.0, 1.0, 1.0),
            &Rect::new(5.0, 5.0, 6.0, 6.0)
        ));
    }
}
