//! The spatial MapReduce layer: SpatialFileSplitter, SpatialRecordReader,
//! and the reference-point duplicate-avoidance rule.

use std::borrow::Cow;
use std::sync::Arc;

use sh_dfs::{Dfs, DfsError};
use sh_geom::{Point, Record, Rect};
use sh_index::{owns_point, LocalRTree};
use sh_mapreduce::InputSplit;

use crate::catalog::SpatialFile;
use crate::colblock::{self, ColumnarBlock};
use crate::opresult::OpError;

/// Sidecar path of a partition file: `.../part-NNNNN` →
/// `.../_lidx-NNNNN`. `None` for paths that are not partition files
/// (heap files, block-level splits) — those have no persisted index.
pub fn local_index_path(part_path: &str) -> Option<String> {
    let (dir, name) = part_path.rsplit_once('/')?;
    let suffix = name.strip_prefix("part-")?;
    Some(format!("{dir}/_lidx-{suffix}"))
}

/// SpatialFileSplitter: turns an indexed file into map-task splits, one
/// per partition that passes the *filter function* — the mechanism every
/// SpatialHadoop operation uses to prune partitions that cannot
/// contribute to its answer.
pub struct SpatialFileSplitter;

impl SpatialFileSplitter {
    /// One split per partition with `filter(meta) == true`. The split
    /// carries the partition id and boundary cell so the map function can
    /// apply partition-relative pruning rules.
    pub fn splits(
        dfs: &Dfs,
        file: &SpatialFile,
        mut filter: impl FnMut(&sh_index::PartitionMeta) -> bool,
    ) -> Result<Vec<InputSplit>, DfsError> {
        let mut out = Vec::new();
        for meta in &file.partitions {
            if !filter(meta) {
                continue;
            }
            let split = InputSplit::whole_file(dfs, &meta.path)?.with_partition(meta.id, meta.cell);
            out.push(split);
        }
        Ok(out)
    }

    /// All partitions (no filtering).
    pub fn all_splits(dfs: &Dfs, file: &SpatialFile) -> Result<Vec<InputSplit>, DfsError> {
        Self::splits(dfs, file, |_| true)
    }
}

/// Selectivity of a splitter decision: how many of the file's
/// partitions the filter function kept, and how many records those
/// surviving partitions hold. `records_emitted` is left at zero for the
/// operation to fill once the answer size is known.
pub fn splitter_selectivity(
    file: &SpatialFile,
    splits: &[sh_mapreduce::InputSplit],
) -> sh_trace::Selectivity {
    let kept: std::collections::BTreeSet<usize> =
        splits.iter().filter_map(|s| s.partition_id).collect();
    let records_scanned = file
        .partitions
        .iter()
        .filter(|m| kept.contains(&m.id))
        .map(|m| m.records)
        .sum();
    sh_trace::Selectivity::of_split(file.partitions.len(), splits.len(), records_scanned)
}

/// SpatialRecordReader: parses a split's text back into records and can
/// bulk-load the partition's local R-tree for index-assisted map
/// functions.
pub struct SpatialRecordReader;

impl SpatialRecordReader {
    /// Parses every line of a split as a record.
    ///
    /// Map tasks treat unparseable lines as data corruption; the task
    /// (and, without retry, the job) fails cleanly via
    /// [`sh_mapreduce::fail_corrupt`]. Loaders validate input, so this
    /// never fires on files written by this crate.
    pub fn records<R: Record>(data: &str) -> Vec<R> {
        data.lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| {
                R::parse_line(l)
                    .unwrap_or_else(|e| sh_mapreduce::fail_corrupt(format!("{e}: {l:?}")))
            })
            .collect()
    }

    /// Parses records and bulk-loads the local index over their MBRs.
    pub fn with_index<R: Record>(data: &str) -> (Vec<R>, LocalRTree) {
        let records = Self::records::<R>(data);
        let tree = LocalRTree::build(records.iter().map(|r| r.mbr()).collect());
        (records, tree)
    }

    /// Opens a partition for index-assisted processing through the
    /// per-node cache: a hit returns the parsed records + local tree
    /// without touching the text; a miss parses `data`, loads the
    /// persisted `_lidx-NNNNN` sidecar when one exists (falling back to
    /// an STR bulk-load for heap files or missing/corrupt sidecars), and
    /// caches the result keyed by `path`. Returns the shared partition
    /// and whether it was a cache hit.
    pub fn open_indexed<R: Record>(
        dfs: &Dfs,
        path: &str,
        data: &str,
    ) -> (Arc<(Vec<R>, LocalRTree)>, bool) {
        // Keyed by the partition path itself so the DFS's per-path
        // invalidation (delete/overwrite) hits this entry.
        if let Some(hit) = dfs.cache().get(path) {
            if let Ok(part) = hit.downcast::<(Vec<R>, LocalRTree)>() {
                return (part, true);
            }
        }
        // `data` was read before this point; if a concurrent job
        // invalidates the path (overwrite, node kill) while we parse,
        // the epoch check below drops the stale insert.
        let epoch = dfs.cache().epoch();
        let records = Self::records::<R>(data);
        let tree = load_sidecar(dfs, path, records.len())
            .unwrap_or_else(|| LocalRTree::build(records.iter().map(|r| r.mbr()).collect()));
        let part = Arc::new((records, tree));
        // Accounted size: parsed records + tree rects dominate; the text
        // itself is the floor.
        let bytes =
            (data.len() + part.0.len() * std::mem::size_of::<R>() + part.1.len() * 32) as u64;
        dfs.cache().put_at(path, part.clone(), bytes, epoch);
        (part, false)
    }

    /// Parses split bytes as records, sniffing the columnar-block header:
    /// `SHCB` data decodes through the binary path, anything else is
    /// treated as UTF-8 text. Corrupt bytes in either format are
    /// [`OpError::Corrupt`].
    pub fn records_bytes<R: Record>(data: &[u8]) -> Result<Vec<R>, OpError> {
        if colblock::is_binary(data) {
            return Ok(colblock::decode(data)?.records::<R>());
        }
        let text = std::str::from_utf8(data)
            .map_err(|e| OpError::Corrupt(format!("partition is not UTF-8 text: {e}")))?;
        sh_geom::text::parse_records(text).map_err(|e| OpError::Corrupt(e.to_string()))
    }

    /// Map-task variant of [`SpatialRecordReader::records_bytes`]:
    /// corrupt bytes fail the task (and the job) cleanly via
    /// [`sh_mapreduce::fail_corrupt`] instead of panicking the worker.
    pub fn task_records_bytes<R: Record>(split_path: &str, data: &[u8]) -> Vec<R> {
        match Self::records_bytes(data) {
            Ok(records) => records,
            Err(e) => sh_mapreduce::fail_corrupt(format!("{split_path}: {e}")),
        }
    }

    /// Format-sniffing, cache-backed partition open: the binary-capable
    /// superset of [`SpatialRecordReader::open_indexed`]. Binary blocks
    /// decode into shared coordinate columns (warm reads are zero-copy);
    /// text partitions take the existing parse path. Returns the
    /// partition and whether the cache was hit.
    pub fn open_indexed_bytes<R: Record>(
        dfs: &Dfs,
        path: &str,
        data: &[u8],
    ) -> Result<(Partition<R>, bool), OpError> {
        if !colblock::is_binary(data) {
            let text = std::str::from_utf8(data)
                .map_err(|e| OpError::Corrupt(format!("{path}: partition is not UTF-8: {e}")))?;
            let (part, hit) = Self::open_indexed::<R>(dfs, path, text);
            return Ok((Partition::Text(part), hit));
        }
        if let Some(hit) = dfs.cache().get(path) {
            if let Ok(part) = hit.downcast::<BinaryPartition>() {
                return Ok((Partition::Binary(part), true));
            }
        }
        let epoch = dfs.cache().epoch();
        let block = decode_binary(dfs, path, data)?;
        let tree = load_sidecar(dfs, path, block.count)
            .unwrap_or_else(|| LocalRTree::build((0..block.count).map(|i| block.mbr(i)).collect()));
        let bytes = (block.resident_bytes() + tree.len() * 32) as u64;
        let part = Arc::new(BinaryPartition { block, tree });
        dfs.cache().put_at(path, part.clone(), bytes, epoch);
        Ok((Partition::Binary(part), false))
    }

    /// Map-task variant of [`SpatialRecordReader::open_indexed_bytes`]:
    /// corrupt partition data fails the task cleanly.
    pub fn task_open_indexed_bytes<R: Record>(
        dfs: &Dfs,
        split_path: &str,
        data: &[u8],
    ) -> (Partition<R>, bool) {
        match Self::open_indexed_bytes(dfs, split_path, data) {
            Ok(v) => v,
            Err(e) => sh_mapreduce::fail_corrupt(format!("{split_path}: {e}")),
        }
    }

    /// Presents split bytes to a line-oriented map function as text
    /// whatever the stored layout: binary columnar blocks are
    /// materialized back into record lines (exact — `f64` round-trips
    /// through the text codec), text passes through borrowed. Corrupt
    /// bytes in either format fail the task cleanly. Operations with a
    /// native columnar path (range, distributed join, kNN) never pay
    /// the materialization.
    pub fn task_text<'a, R: Record>(split_path: &str, data: &'a [u8]) -> Cow<'a, str> {
        if colblock::is_binary(data) {
            let records = Self::task_records_bytes::<R>(split_path, data);
            let mut text = String::new();
            for r in &records {
                r.write_line(&mut text);
                text.push('\n');
            }
            return Cow::Owned(text);
        }
        match std::str::from_utf8(data) {
            Ok(t) => Cow::Borrowed(t),
            Err(e) => {
                sh_mapreduce::fail_corrupt(format!("{split_path}: input is not UTF-8 text: {e}"))
            }
        }
    }

    /// Two-input variant of [`SpatialRecordReader::task_text`]: cuts at
    /// the split's recorded byte offset, then converts each side
    /// independently — a pair split can mix a binary partition with a
    /// text side file.
    pub fn task_text_pair<'a, R: Record>(
        split: &InputSplit,
        data: &'a [u8],
    ) -> (Cow<'a, str>, Cow<'a, str>) {
        let (a, b) = split.split_data_bytes(data);
        (
            Self::task_text::<R>(&split.path, a),
            Self::task_text::<R>(&split.path, b),
        )
    }

    /// Opens a partition for a one-shot linear scan: no cache, no tree —
    /// the ablation path. Binary blocks keep their columnar layout so
    /// [`Partition::scan_filter`] still runs the zero-copy loop, and
    /// with `SET mmap on` they decode in place over the DFS spill
    /// mapping instead of copying columns out of `data`.
    pub fn open_scan<R: Record>(dfs: &Dfs, split_path: &str, data: &[u8]) -> Partition<R> {
        if colblock::is_binary(data) {
            match decode_binary(dfs, split_path, data) {
                Ok(block) => Partition::Binary(Arc::new(BinaryPartition {
                    tree: LocalRTree::build(Vec::new()),
                    block,
                })),
                Err(e) => sh_mapreduce::fail_corrupt(format!("{split_path}: {e}")),
            }
        } else {
            let records = Self::task_records_bytes::<R>(split_path, data);
            Partition::Text(Arc::new((records, LocalRTree::build(Vec::new()))))
        }
    }
}

/// Decodes an `SHCB` partition, preferring the zero-copy path: when the
/// DFS hands out an mmap-backed spill of the file (gated by the
/// `mmap_scans` knob), the columns are reinterpreted in place; the
/// coordinate-finiteness pass runs only the first time a given spill is
/// seen and is skipped on later scans of the same generation. Any
/// mapping, alignment, or endianness failure falls back to the owned
/// decode of `data` — byte-identical results either way, and corrupt
/// input is the same [`OpError::Corrupt`] on both paths.
fn decode_binary(dfs: &Dfs, path: &str, data: &[u8]) -> Result<ColumnarBlock, OpError> {
    if let Some(spill) = dfs.map_file_bytes(path, data) {
        let block = colblock::decode_mapped(spill.map, !spill.validated)?;
        if !spill.validated {
            dfs.mark_spill_validated(path);
        }
        return Ok(block);
    }
    colblock::decode(data)
}

/// Loads the persisted `_lidx` sidecar of `part_path`, sniffing binary
/// (`SHLX`) vs. text encodings. Returns `None` — caller rebuilds — when
/// the sidecar is missing, unreadable, corrupt, truncated, of the wrong
/// version, or stale (cardinality mismatch): the same fallback for every
/// failure mode, in either encoding.
fn load_sidecar(dfs: &Dfs, part_path: &str, expected_len: usize) -> Option<LocalRTree> {
    let p = local_index_path(part_path)?;
    if !dfs.exists(&p) {
        return None;
    }
    let raw = dfs.read_bytes(&p).ok()?;
    let tree = if LocalRTree::is_binary_sidecar(&raw) {
        LocalRTree::from_bytes(&raw).ok()?
    } else {
        LocalRTree::from_text(std::str::from_utf8(&raw).ok()?).ok()?
    };
    (tree.len() == expected_len).then_some(tree)
}

/// A partition opened through [`SpatialRecordReader::open_indexed_bytes`]:
/// parsed text records or decoded binary columns, each with the
/// partition's local R-tree, shared via the block cache.
pub enum Partition<R: Record> {
    /// Text partition: parsed records + tree.
    Text(Arc<(Vec<R>, LocalRTree)>),
    /// Binary partition: columnar block + tree.
    Binary(Arc<BinaryPartition>),
}

impl<R: Record> Clone for Partition<R> {
    fn clone(&self) -> Self {
        match self {
            Partition::Text(p) => Partition::Text(p.clone()),
            Partition::Binary(p) => Partition::Binary(p.clone()),
        }
    }
}

/// Decoded binary partition (see [`Partition::Binary`]).
pub struct BinaryPartition {
    /// Shared coordinate columns.
    pub block: ColumnarBlock,
    /// Local R-tree over the block's MBRs.
    pub tree: LocalRTree,
}

impl<R: Record> Partition<R> {
    /// Number of records in the partition.
    pub fn len(&self) -> usize {
        match self {
            Partition::Text(p) => p.0.len(),
            Partition::Binary(p) => p.block.count,
        }
    }

    /// True when the partition holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The partition's local R-tree.
    pub fn tree(&self) -> &LocalRTree {
        match self {
            Partition::Text(p) => &p.1,
            Partition::Binary(p) => &p.tree,
        }
    }

    /// MBR of record `i`.
    #[inline]
    pub fn mbr_of(&self, i: usize) -> Rect {
        match self {
            Partition::Text(p) => p.0[i].mbr(),
            Partition::Binary(p) => p.block.mbr(i),
        }
    }

    /// Materializes record `i`.
    pub fn record(&self, i: usize) -> R {
        match self {
            Partition::Text(p) => p.0[i].clone(),
            Partition::Binary(p) => p.block.record::<R>(i),
        }
    }

    /// Appends record `i`'s text encoding to `out` (result lines stay
    /// text in both formats, so outputs are byte-identical).
    pub fn write_record(&self, i: usize, out: &mut String) {
        match self {
            Partition::Text(p) => p.0[i].write_line(out),
            Partition::Binary(p) => p.block.record::<R>(i).write_line(out),
        }
    }

    /// Indices of records whose MBR intersects `q` without consulting
    /// the tree — text scans the parsed records, binary iterates the
    /// coordinate columns directly (the zero-copy hot loop).
    pub fn scan_filter(&self, q: &Rect) -> Vec<usize> {
        match self {
            Partition::Text(p) => {
                p.0.iter()
                    .enumerate()
                    .filter(|(_, r)| r.mbr().intersects(q))
                    .map(|(i, _)| i)
                    .collect()
            }
            Partition::Binary(p) => p.block.mbr_filter(q),
        }
    }

    /// [`Partition::scan_filter`] spread across the cluster slot pool:
    /// binary partitions above the [`crate::parscan::MIN_CHUNK`]
    /// threshold scan their coordinate columns in parallel chunks over
    /// opportunistically leased extra slots; text partitions and small
    /// blocks scan serially. Returns the (ascending, identical to the
    /// serial scan) hit indices plus the number of extra slots used.
    pub fn scan_filter_par(&self, dfs: &Dfs, q: &Rect) -> (Vec<usize>, usize) {
        match self {
            Partition::Binary(p) if p.block.count >= crate::parscan::MIN_CHUNK => {
                crate::parscan::parallel_chunks(
                    dfs.slots(),
                    p.block.count,
                    crate::parscan::MIN_CHUNK,
                    |start, end| p.block.mbr_filter_range(q, start, end),
                )
            }
            _ => (self.scan_filter(q), 0),
        }
    }

    /// [`Partition::records`][Self::record] for the whole partition,
    /// materialized across the slot pool (distributed join's
    /// materialization step). Identical to a serial materialization.
    pub fn records_par(&self, dfs: &Dfs) -> (Vec<R>, usize) {
        match self {
            Partition::Binary(p) if p.block.count >= crate::parscan::MIN_CHUNK => {
                crate::parscan::parallel_chunks(
                    dfs.slots(),
                    p.block.count,
                    crate::parscan::MIN_CHUNK,
                    |start, end| p.block.records_range::<R>(start, end),
                )
            }
            Partition::Binary(p) => (p.block.records::<R>(), 0),
            Partition::Text(p) => (p.0.clone(), 0),
        }
    }
}

/// The partition cell of a split (panics when the split is not spatial —
/// a programming error in an operation).
pub fn split_cell(split: &InputSplit) -> Rect {
    let m = split.mbr.expect("spatial split carries its partition cell");
    Rect::new(m[0], m[1], m[2], m[3])
}

/// Reference-point duplicate avoidance: with disjoint partitioning and
/// replication, a result involving rectangles `a` and `b` is reported
/// only by the partition that *owns* the bottom-left corner of `a ∩ b`.
///
/// Both `a` and `b` overlap every partition that can see the pair, and
/// the corner lies inside both, so exactly one of the partitions
/// processing the pair owns it — each result is reported exactly once.
pub fn reference_point(a: &Rect, b: &Rect) -> Option<Point> {
    a.intersection(b).map(|i| Point::new(i.x1, i.y1))
}

/// True when `cell` owns the reference point of `a ∩ b` within
/// `universe` (see [`reference_point`]).
pub fn owns_pair(cell: &Rect, universe: &Rect, a: &Rect, b: &Rect) -> bool {
    match reference_point(a, b) {
        Some(p) => owns_point(cell, &p, universe),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sh_dfs::ClusterConfig;
    use sh_geom::Point;
    use sh_index::{PartitionKind, PartitionMeta};

    fn indexed_file(dfs: &Dfs) -> SpatialFile {
        dfs.write_string("/idx/part-00000", "1 1\n2 2\n").unwrap();
        dfs.write_string("/idx/part-00001", "60 60\n70 70\n")
            .unwrap();
        SpatialFile {
            dir: "/idx".into(),
            kind: PartitionKind::Grid,
            universe: Rect::new(0.0, 0.0, 100.0, 100.0),
            partitions: vec![
                PartitionMeta {
                    id: 0,
                    path: "/idx/part-00000".into(),
                    cell: [0.0, 0.0, 50.0, 50.0],
                    mbr: [1.0, 1.0, 2.0, 2.0],
                    records: 2,
                    bytes: 8,
                },
                PartitionMeta {
                    id: 1,
                    path: "/idx/part-00001".into(),
                    cell: [50.0, 50.0, 100.0, 100.0],
                    mbr: [60.0, 60.0, 70.0, 70.0],
                    records: 2,
                    bytes: 12,
                },
            ],
        }
    }

    #[test]
    fn splitter_applies_filter() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let f = indexed_file(&dfs);
        let all = SpatialFileSplitter::all_splits(&dfs, &f).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].partition_id, Some(0));
        let q = Rect::new(55.0, 55.0, 65.0, 65.0);
        let pruned =
            SpatialFileSplitter::splits(&dfs, &f, |m| m.mbr_rect().intersects(&q)).unwrap();
        assert_eq!(pruned.len(), 1);
        assert_eq!(pruned[0].partition_id, Some(1));
        assert_eq!(split_cell(&pruned[0]), Rect::new(50.0, 50.0, 100.0, 100.0));
    }

    #[test]
    fn record_reader_roundtrip_with_index() {
        let data = "1 2\n3 4\n5 6\n";
        let (records, tree) = SpatialRecordReader::with_index::<Point>(data);
        assert_eq!(records.len(), 3);
        assert_eq!(tree.len(), 3);
        let hits = tree.query(&Rect::new(2.0, 3.0, 4.0, 5.0));
        assert_eq!(hits, vec![1]);
    }

    #[test]
    fn local_index_path_derivation() {
        assert_eq!(
            local_index_path("/idx/part-00005").as_deref(),
            Some("/idx/_lidx-00005")
        );
        assert_eq!(local_index_path("/idx/_master"), None);
        assert_eq!(local_index_path("part-00001"), None); // no directory
    }

    #[test]
    fn open_indexed_caches_and_respects_invalidation() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        dfs.write_string("/idx/part-00000", "1 2\n3 4\n5 6\n")
            .unwrap();
        let data = dfs.read_to_string("/idx/part-00000").unwrap();

        let (part, hit) =
            SpatialRecordReader::open_indexed::<Point>(&dfs, "/idx/part-00000", &data);
        assert!(!hit, "first open is a miss");
        assert_eq!(part.0.len(), 3);
        assert_eq!(part.1.query(&Rect::new(2.0, 3.0, 4.0, 5.0)), vec![1]);

        let (again, hit) =
            SpatialRecordReader::open_indexed::<Point>(&dfs, "/idx/part-00000", &data);
        assert!(hit, "second open is a hit");
        assert!(Arc::ptr_eq(&part, &again), "hit returns the shared value");

        // Overwrite: delete + create must drop the entry.
        dfs.delete("/idx/part-00000");
        dfs.write_string("/idx/part-00000", "7 8\n").unwrap();
        let fresh = dfs.read_to_string("/idx/part-00000").unwrap();
        let (part2, hit) =
            SpatialRecordReader::open_indexed::<Point>(&dfs, "/idx/part-00000", &fresh);
        assert!(!hit, "overwrite invalidates");
        assert_eq!(part2.0.len(), 1);
    }

    #[test]
    fn open_indexed_uses_persisted_sidecar() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        dfs.write_string("/idx/part-00001", "1 1\n9 9\n").unwrap();
        let tree = LocalRTree::build(vec![
            Rect::new(1.0, 1.0, 1.0, 1.0),
            Rect::new(9.0, 9.0, 9.0, 9.0),
        ]);
        dfs.write_string("/idx/_lidx-00001", &tree.to_text())
            .unwrap();
        let data = dfs.read_to_string("/idx/part-00001").unwrap();
        let (part, _) = SpatialRecordReader::open_indexed::<Point>(&dfs, "/idx/part-00001", &data);
        assert_eq!(part.1.query(&Rect::new(0.0, 0.0, 5.0, 5.0)), vec![0]);

        // A stale sidecar (wrong cardinality) falls back to a rebuild.
        dfs.delete("/idx/part-00001");
        dfs.write_string("/idx/part-00001", "1 1\n9 9\n5 5\n")
            .unwrap();
        let data = dfs.read_to_string("/idx/part-00001").unwrap();
        let (part, _) = SpatialRecordReader::open_indexed::<Point>(&dfs, "/idx/part-00001", &data);
        assert_eq!(part.1.len(), 3, "stale sidecar ignored");
    }

    fn write_bytes(dfs: &Dfs, path: &str, data: &[u8]) {
        let mut w = dfs.create(path).unwrap();
        w.write_chunk(data);
        w.close().unwrap();
    }

    #[test]
    fn open_indexed_bytes_dispatches_on_format_and_caches() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let pts = vec![
            Point::new(1.0, 2.0),
            Point::new(3.0, 4.0),
            Point::new(5.0, 6.0),
        ];
        let blob = colblock::encode(&pts).unwrap();
        write_bytes(&dfs, "/idx/part-00000", &blob);
        let data = dfs.read_bytes("/idx/part-00000").unwrap();
        let q = Rect::new(2.0, 3.0, 4.0, 5.0);

        let (part, hit) =
            SpatialRecordReader::open_indexed_bytes::<Point>(&dfs, "/idx/part-00000", &data)
                .unwrap();
        assert!(!hit, "first open is a miss");
        assert_eq!(part.len(), 3);
        assert_eq!(part.tree().query(&q), vec![1]);
        assert_eq!(part.scan_filter(&q), vec![1]);
        assert_eq!(part.record(1), Point::new(3.0, 4.0));

        let (again, hit) =
            SpatialRecordReader::open_indexed_bytes::<Point>(&dfs, "/idx/part-00000", &data)
                .unwrap();
        assert!(hit, "second open is a hit");
        match (&part, &again) {
            (Partition::Binary(a), Partition::Binary(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => panic!("binary partitions expected"),
        }

        // Text data takes the text path through the same entry point.
        dfs.write_string("/idx/part-00001", "1 2\n3 4\n5 6\n")
            .unwrap();
        let tdata = dfs.read_bytes("/idx/part-00001").unwrap();
        let (tpart, _) =
            SpatialRecordReader::open_indexed_bytes::<Point>(&dfs, "/idx/part-00001", &tdata)
                .unwrap();
        assert!(matches!(tpart, Partition::Text(_)));
        assert_eq!(tpart.scan_filter(&q), vec![1]);

        // Corrupt SHCB data (valid magic, truncated payload) is an error,
        // not a panic.
        assert!(matches!(
            SpatialRecordReader::open_indexed_bytes::<Point>(
                &dfs,
                "/idx/part-00002",
                &blob[..blob.len() - 3]
            ),
            Err(OpError::Corrupt(_))
        ));
    }

    #[test]
    fn corrupt_binary_sidecar_falls_back_to_rebuild() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let pts = vec![
            Point::new(1.0, 1.0),
            Point::new(9.0, 9.0),
            Point::new(5.0, 5.0),
        ];
        let blob = colblock::encode(&pts).unwrap();
        let good = LocalRTree::build(pts.iter().map(|p| Record::mbr(p)).collect()).to_bytes();
        let mut flipped = good.clone();
        flipped[4] ^= 0x7f; // version byte
        let cases: [(&str, &[u8]); 3] = [
            ("/f0/part-00000", &good[..4.min(good.len())]), // truncated header
            ("/f1/part-00000", &flipped),                   // wrong version
            ("/f2/part-00000", &good[..good.len() - 5]),    // truncated payload
        ];
        let q = Rect::new(0.0, 0.0, 6.0, 6.0);
        for (part_path, sidecar_bytes) in cases {
            write_bytes(&dfs, part_path, &blob);
            write_bytes(&dfs, &local_index_path(part_path).unwrap(), sidecar_bytes);
            let data = dfs.read_bytes(part_path).unwrap();
            let (part, _) =
                SpatialRecordReader::open_indexed_bytes::<Point>(&dfs, part_path, &data).unwrap();
            // The rebuilt tree still answers correctly.
            assert_eq!(part.tree().len(), 3, "{part_path}: rebuilt from records");
            let mut hits = part.tree().query(&q);
            hits.sort_unstable();
            assert_eq!(hits, vec![0, 2], "{part_path}");
        }

        // And a pristine binary sidecar is actually used, not rebuilt.
        write_bytes(&dfs, "/ok/part-00000", &blob);
        write_bytes(&dfs, "/ok/_lidx-00000", &good);
        let data = dfs.read_bytes("/ok/part-00000").unwrap();
        let (part, _) =
            SpatialRecordReader::open_indexed_bytes::<Point>(&dfs, "/ok/part-00000", &data)
                .unwrap();
        assert_eq!(part.tree().to_bytes(), good, "sidecar loaded verbatim");
    }

    #[test]
    fn reference_point_is_owned_once() {
        let universe = Rect::new(0.0, 0.0, 100.0, 100.0);
        let cells = [
            Rect::new(0.0, 0.0, 50.0, 50.0),
            Rect::new(50.0, 0.0, 100.0, 50.0),
            Rect::new(0.0, 50.0, 50.0, 100.0),
            Rect::new(50.0, 50.0, 100.0, 100.0),
        ];
        // A pair of rects straddling the center: both replicated to all 4
        // cells; exactly one cell may report.
        let a = Rect::new(45.0, 45.0, 55.0, 55.0);
        let b = Rect::new(48.0, 48.0, 60.0, 60.0);
        let owners = cells
            .iter()
            .filter(|c| owns_pair(c, &universe, &a, &b))
            .count();
        assert_eq!(owners, 1);
        // Disjoint rects have no reference point.
        assert!(!owns_pair(
            &cells[0],
            &universe,
            &Rect::new(0.0, 0.0, 1.0, 1.0),
            &Rect::new(5.0, 5.0, 6.0, 6.0)
        ));
    }
}
