//! Operation results and errors.

use std::fmt;

use sh_dfs::DfsError;
use sh_geom::ParseError;
use sh_mapreduce::{JobError, JobOutcome, SimBreakdown};
use sh_trace::{JobProfile, Selectivity};

/// Error surfaced by the operations layer.
#[derive(Debug)]
pub enum OpError {
    /// MapReduce job failure.
    Job(JobError),
    /// Direct DFS failure (driver-side reads/writes).
    Dfs(DfsError),
    /// Record parse failure in driver-side processing.
    Parse(ParseError),
    /// Master file is unreadable.
    Corrupt(String),
    /// The operation's preconditions are not met (e.g. a pruning-based
    /// operation over a non-disjoint index).
    Unsupported(String),
}

impl fmt::Display for OpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpError::Job(e) => write!(f, "job failed: {e}"),
            OpError::Dfs(e) => write!(f, "dfs error: {e}"),
            OpError::Parse(e) => write!(f, "{e}"),
            OpError::Corrupt(m) => write!(f, "corrupt index: {m}"),
            OpError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for OpError {}

impl From<JobError> for OpError {
    fn from(e: JobError) -> Self {
        match e {
            // A task that hit corrupt input surfaces under the same
            // error the driver-side readers use, honouring the codec.rs
            // contract regardless of which side spotted the bad bytes.
            JobError::CorruptInput(m) => OpError::Corrupt(m),
            e => OpError::Job(e),
        }
    }
}

impl From<DfsError> for OpError {
    fn from(e: DfsError) -> Self {
        OpError::Dfs(e)
    }
}

impl From<ParseError> for OpError {
    fn from(e: ParseError) -> Self {
        OpError::Parse(e)
    }
}

/// Result of a (possibly multi-job) distributed operation: the value plus
/// every job outcome, so experiments can report simulated cluster time
/// and counters.
#[derive(Clone, Debug)]
pub struct OpResult<T> {
    /// The operation's answer.
    pub value: T,
    /// Outcomes of the MapReduce jobs run, in order.
    pub jobs: Vec<JobOutcome>,
}

impl<T> OpResult<T> {
    /// Wraps a value computed with the given jobs.
    pub fn new(value: T, jobs: Vec<JobOutcome>) -> OpResult<T> {
        OpResult { value, jobs }
    }

    /// Total simulated cluster time across all jobs (multi-round
    /// operations pay the per-job startup repeatedly).
    pub fn sim(&self) -> SimBreakdown {
        self.jobs
            .iter()
            .fold(SimBreakdown::default(), |acc, j| acc.add(&j.sim))
    }

    /// Sum of a named counter across jobs.
    pub fn counter(&self, name: &str) -> u64 {
        self.jobs
            .iter()
            .map(|j| j.counters.get(name).copied().unwrap_or(0))
            .sum()
    }

    /// Total map tasks launched (≈ partitions processed).
    pub fn map_tasks(&self) -> usize {
        self.jobs.iter().map(|j| j.map_tasks).sum()
    }

    /// Number of MapReduce rounds.
    pub fn rounds(&self) -> usize {
        self.jobs.len()
    }

    /// Maps the value, keeping the job history.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> OpResult<U> {
        OpResult {
            value: f(self.value),
            jobs: self.jobs,
        }
    }

    /// Records the operation's splitter selectivity on the final job's
    /// profile and mirrors it into the global metrics registry under
    /// `op.*`.
    pub fn with_selectivity(mut self, sel: Selectivity) -> OpResult<T> {
        let g = sh_trace::global();
        g.counter_add("op.completed", 1);
        g.counter_add("op.partitions.scanned", sel.partitions_scanned);
        g.counter_add("op.partitions.pruned", sel.partitions_pruned);
        g.counter_add("op.records.scanned", sel.records_scanned);
        g.counter_add("op.records.emitted", sel.records_emitted);
        if let Some(job) = self.jobs.last_mut() {
            job.profile.selectivity = sel;
        }
        self
    }

    /// Selectivity summed across all jobs (set by [`with_selectivity`]).
    ///
    /// [`with_selectivity`]: OpResult::with_selectivity
    pub fn selectivity(&self) -> Selectivity {
        let mut acc = Selectivity::default();
        for j in &self.jobs {
            let s = &j.profile.selectivity;
            acc.partitions_total += s.partitions_total;
            acc.partitions_scanned += s.partitions_scanned;
            acc.partitions_pruned += s.partitions_pruned;
            acc.records_scanned += s.records_scanned;
            acc.records_emitted += s.records_emitted;
        }
        acc
    }

    /// Aggregated profile across all of the operation's jobs, named
    /// after the operation (multi-round ops sum their rounds).
    pub fn profile(&self, op: &str) -> JobProfile {
        let mut p = JobProfile::new(op);
        for j in &self.jobs {
            p.absorb(&j.profile);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_opresult_sums() {
        let r: OpResult<u32> = OpResult::new(7, Vec::new());
        assert_eq!(r.value, 7);
        assert_eq!(r.sim().total(), 0.0);
        assert_eq!(r.counter("anything"), 0);
        assert_eq!(r.rounds(), 0);
        let r = r.map(|v| v * 2);
        assert_eq!(r.value, 14);
    }
}
