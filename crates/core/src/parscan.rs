//! Intra-task parallel partition scans over the cluster slot pool.
//!
//! One big range or join task used to serialize its whole partition on
//! one core even when the rest of the cluster sat idle. This helper lets
//! a running task *opportunistically* widen: it already holds one slot,
//! and it tries to lease extra slots with the non-blocking
//! [`SlotPool::try_acquire`] — blocking would deadlock once every task
//! waited on every other task's slot. Zero extra slots means a plain
//! serial scan; the result is identical either way because chunks are
//! contiguous index ranges concatenated in order.

use std::sync::Arc;

use sh_dfs::SlotPool;

/// Records below this count are scanned serially — thread spawn and
/// slot-lease overhead beats the win on small partitions.
pub const MIN_CHUNK: usize = 8192;

/// Runs `f(start, end)` over contiguous chunks of `0..n`, in parallel
/// across opportunistically leased extra slots, and concatenates the
/// chunk results in index order (deterministic: equals `f(0, n)` for any
/// `f` that is a per-index map/filter).
///
/// Returns the concatenated results and the number of extra slots used
/// (0 = the scan ran serially on the caller's own slot).
pub fn parallel_chunks<T, F>(
    slots: &Arc<SlotPool>,
    n: usize,
    min_chunk: usize,
    f: F,
) -> (Vec<T>, usize)
where
    T: Send,
    F: Fn(usize, usize) -> Vec<T> + Sync,
{
    let min_chunk = min_chunk.max(1);
    if n == 0 {
        return (Vec::new(), 0);
    }
    // The caller's own slot covers one chunk; extras are best-effort.
    let max_extra = (n / min_chunk).saturating_sub(1);
    let mut leases = Vec::new();
    while leases.len() < max_extra {
        match slots.try_acquire() {
            Some(lease) => leases.push(lease),
            None => break,
        }
    }
    let extra = leases.len();
    if extra == 0 {
        return (f(0, n), 0);
    }
    let workers = extra + 1;
    let chunk = n.div_ceil(workers);
    let mut results: Vec<Vec<T>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (1..workers)
            .map(|w| {
                let start = (w * chunk).min(n);
                let end = ((w + 1) * chunk).min(n);
                scope.spawn(move || f(start, end))
            })
            .collect();
        results.push(f(0, chunk.min(n)));
        for h in handles {
            match h.join() {
                Ok(v) => results.push(v),
                // Re-raise worker panics (e.g. fail_corrupt payloads) on
                // the task thread so the executor's failure protocol sees
                // them unchanged.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    drop(leases);
    sh_trace::global().observe("scan.parallel.extra_slots", extra as u64);
    let mut out = Vec::with_capacity(results.iter().map(Vec::len).sum());
    for r in results {
        out.extend(r);
    }
    (out, extra)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(total: usize) -> Arc<SlotPool> {
        Arc::new(SlotPool::new(total))
    }

    fn evens(start: usize, end: usize) -> Vec<usize> {
        (start..end).filter(|i| i % 2 == 0).collect()
    }

    #[test]
    fn matches_serial_result_for_any_slot_budget() {
        let expected = evens(0, 100_000);
        for slots in [1, 2, 3, 8] {
            // Model real usage: the scanning task already holds its slot.
            let p = pool(slots);
            let _own = p.acquire();
            let (got, extra) = parallel_chunks(&p, 100_000, 1000, evens);
            assert_eq!(got, expected, "{slots} slots");
            assert!(extra < slots, "extra slots stay under the pool total");
        }
    }

    #[test]
    fn small_inputs_stay_serial() {
        let p = pool(8);
        let (got, extra) = parallel_chunks(&p, 100, MIN_CHUNK, evens);
        assert_eq!(got, evens(0, 100));
        assert_eq!(extra, 0, "below min_chunk nothing is leased");
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    fn empty_input() {
        let (got, extra) = parallel_chunks(&pool(4), 0, 1, evens);
        assert!(got.is_empty());
        assert_eq!(extra, 0);
    }

    #[test]
    fn exhausted_pool_degrades_to_serial() {
        let p = pool(1);
        let _held = p.acquire();
        let (got, extra) = parallel_chunks(&p, 50_000, 1000, evens);
        assert_eq!(got, evens(0, 50_000));
        assert_eq!(extra, 0, "no free slots → serial, never blocks");
    }

    #[test]
    fn leases_are_returned() {
        let p = pool(4);
        let (_, extra) = parallel_chunks(&p, 100_000, 1000, evens);
        assert!(extra > 0, "extra slots expected with a free pool");
        assert_eq!(p.in_use(), 0, "all leases returned");
        assert!(p.peak() <= 4);
    }
}
