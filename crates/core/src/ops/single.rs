//! Single-machine baselines.
//!
//! The "traditional algorithm" yardsticks of every experiment: the same
//! computational-geometry kernels the distributed operations use locally,
//! run over the whole dataset in one process, with wall-clock timing.
//! (The paper's baseline machine has 1 TB of RAM; ours has less, which
//! only strengthens the scalability contrast.)

use std::time::Instant;

use sh_geom::algorithms::closest_pair::{closest_pair, PointPair};
use sh_geom::algorithms::convex_hull::convex_hull;
use sh_geom::algorithms::farthest_pair::farthest_pair;
use sh_geom::algorithms::plane_sweep::plane_sweep_join;
use sh_geom::algorithms::skyline::skyline;
use sh_geom::algorithms::union::{boundary_union, total_length};
use sh_geom::algorithms::voronoi::VoronoiDiagram;
use sh_geom::{Point, Polygon, Record, Rect, Segment};

/// A baseline result with its wall-clock duration.
#[derive(Clone, Debug)]
pub struct Timed<T> {
    /// The computed result.
    pub value: T,
    /// Wall-clock seconds spent.
    pub seconds: f64,
}

fn timed<T>(f: impl FnOnce() -> T) -> Timed<T> {
    let t0 = Instant::now();
    let value = f();
    Timed {
        value,
        seconds: t0.elapsed().as_secs_f64(),
    }
}

/// Full-scan range query.
pub fn range_query<R: Record>(records: &[R], query: &Rect) -> Timed<Vec<R>> {
    timed(|| {
        records
            .iter()
            .filter(|r| r.mbr().intersects(query))
            .cloned()
            .collect()
    })
}

/// Full-scan k-nearest-neighbours (sorted by distance).
pub fn knn(points: &[Point], q: &Point, k: usize) -> Timed<Vec<Point>> {
    timed(|| {
        let mut with_d: Vec<(f64, Point)> = points.iter().map(|p| (p.distance_sq(q), *p)).collect();
        with_d.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp_xy(&b.1)));
        with_d.into_iter().take(k).map(|(_, p)| p).collect()
    })
}

/// Plane-sweep rectangle join.
pub fn spatial_join(left: &[Rect], right: &[Rect]) -> Timed<Vec<(usize, usize)>> {
    timed(|| plane_sweep_join(left, right))
}

/// Max-max skyline.
pub fn skyline_single(points: &[Point]) -> Timed<Vec<Point>> {
    timed(|| skyline(points))
}

/// Convex hull.
pub fn convex_hull_single(points: &[Point]) -> Timed<Vec<Point>> {
    timed(|| convex_hull(points))
}

/// Closest pair.
pub fn closest_pair_single(points: &[Point]) -> Timed<Option<PointPair>> {
    timed(|| closest_pair(points))
}

/// Farthest pair.
pub fn farthest_pair_single(points: &[Point]) -> Timed<Option<PointPair>> {
    timed(|| farthest_pair(points))
}

/// Polygon union (boundary segments).
pub fn union_single(polys: &[Polygon]) -> Timed<Vec<Segment>> {
    timed(|| boundary_union(polys))
}

/// Voronoi diagram.
pub fn voronoi_single(sites: &[Point]) -> Timed<VoronoiDiagram> {
    timed(|| VoronoiDiagram::build(sites))
}

/// Order-independent fingerprint of a union result (total boundary
/// length) used to compare distributed and single-machine answers.
pub fn union_fingerprint(segments: &[Segment]) -> f64 {
    total_length(segments)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_agree_with_geom_kernels() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 3.0),
            Point::new(5.0, 1.0),
            Point::new(1.0, 4.0),
        ];
        assert_eq!(skyline_single(&pts).value.len(), 3);
        assert_eq!(convex_hull_single(&pts).value.len(), 3); // (2,3) is interior
        assert!(closest_pair_single(&pts).value.is_some());
        assert!(farthest_pair_single(&pts).value.is_some());
        let r = range_query(&pts, &Rect::new(0.0, 0.0, 2.5, 3.5));
        assert_eq!(r.value.len(), 2);
        assert!(r.seconds >= 0.0);
    }

    #[test]
    fn knn_orders_by_distance() {
        let pts: Vec<Point> = (0..10).map(|i| Point::new(i as f64, 0.0)).collect();
        let got = knn(&pts, &Point::new(3.2, 0.0), 3).value;
        assert_eq!(
            got,
            vec![
                Point::new(3.0, 0.0),
                Point::new(4.0, 0.0),
                Point::new(2.0, 0.0)
            ]
        );
    }
}
