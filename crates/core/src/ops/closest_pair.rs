//! Closest pair of points.
//!
//! SpatialHadoop-only: the Hadoop heap-file version is either incorrect
//! (random partitioning can split the true pair) or needs a full presort,
//! as the paper discusses — so the distributed variant requires a
//! *disjoint* spatial index. Each partition computes its local closest
//! pair (distance δ) and forwards only the pair plus the points within δ
//! of its cell boundary; a single reducer finishes on that tiny candidate
//! set.

use sh_dfs::Dfs;
use sh_geom::algorithms::closest_pair::{closest_pair, PointPair};
use sh_geom::Point;
use sh_mapreduce::{InputSplit, JobBuilder, MapContext, Mapper, ReduceContext, Reducer};

use crate::catalog::SpatialFile;
use crate::mrlayer::{split_cell, SpatialFileSplitter, SpatialRecordReader};
use crate::opresult::{OpError, OpResult};

struct LocalClosestPairMapper;

impl Mapper for LocalClosestPairMapper {
    type K = u8;
    type V = (f64, f64);

    fn map(&self, split: &InputSplit, data: &str, ctx: &mut MapContext<u8, (f64, f64)>) {
        let cell = split_cell(split);
        let points = SpatialRecordReader::records::<Point>(data);
        let local = closest_pair(&points);
        let delta = local.map(|p| p.distance).unwrap_or(f64::INFINITY);
        let mut forwarded = 0u64;
        for p in &points {
            // Forward the pair's endpoints and everything within δ of the
            // cell boundary — only those can pair with a neighbour cell.
            let near_boundary = p.x - cell.x1 < delta
                || cell.x2 - p.x < delta
                || p.y - cell.y1 < delta
                || cell.y2 - p.y < delta;
            let in_pair = local
                .map(|pair| pair.a.approx_eq(p) || pair.b.approx_eq(p))
                .unwrap_or(false);
            if near_boundary || in_pair {
                ctx.emit(1, (p.x, p.y));
                forwarded += 1;
            }
        }
        ctx.counter("closestpair.candidates", forwarded);
        ctx.counter("closestpair.points", points.len() as u64);
    }

    fn map_bytes(&self, split: &InputSplit, data: &[u8], ctx: &mut MapContext<u8, (f64, f64)>) {
        let text = SpatialRecordReader::task_text::<Point>(&split.path, data);
        self.map(split, &text, ctx);
    }
}

struct GlobalClosestPairReducer;

impl Reducer for GlobalClosestPairReducer {
    type K = u8;
    type V = (f64, f64);

    fn reduce(&self, _key: &u8, values: Vec<(f64, f64)>, ctx: &mut ReduceContext) {
        let pts: Vec<Point> = values.iter().map(|&(x, y)| Point::new(x, y)).collect();
        if let Some(pair) = closest_pair(&pts) {
            ctx.output(format!(
                "{} {} {} {}",
                pair.a.x, pair.a.y, pair.b.x, pair.b.y
            ));
        }
    }
}

/// The *unsound* Hadoop heap-file closest pair the paper warns against:
/// each random split reports its local closest pair, a reducer takes the
/// minimum. Random partitioning can place the true pair in different
/// splits, where neither machine ever compares them — so this can return
/// a non-optimal pair. Provided (and tested) as the paper's negative
/// demonstration of why the operation needs a spatial partitioning.
pub fn closest_pair_hadoop_unsound(
    dfs: &Dfs,
    heap: &str,
    out_dir: &str,
) -> Result<OpResult<Option<PointPair>>, OpError> {
    struct NaiveLocalMapper;
    impl Mapper for NaiveLocalMapper {
        type K = u8;
        type V = (f64, f64, f64, f64);
        fn map(
            &self,
            _split: &InputSplit,
            data: &str,
            ctx: &mut MapContext<u8, (f64, f64, f64, f64)>,
        ) {
            let points = SpatialRecordReader::records::<Point>(data);
            if let Some(pair) = closest_pair(&points) {
                ctx.emit(1, (pair.a.x, pair.a.y, pair.b.x, pair.b.y));
            }
        }
    }
    struct MinReducer;
    impl Reducer for MinReducer {
        type K = u8;
        type V = (f64, f64, f64, f64);
        fn reduce(&self, _k: &u8, values: Vec<(f64, f64, f64, f64)>, ctx: &mut ReduceContext) {
            let best = values
                .into_iter()
                .map(|(ax, ay, bx, by)| PointPair::new(Point::new(ax, ay), Point::new(bx, by)))
                .min_by(|a, b| a.distance.total_cmp(&b.distance));
            if let Some(pair) = best {
                ctx.output(format!(
                    "{} {} {} {}",
                    pair.a.x, pair.a.y, pair.b.x, pair.b.y
                ));
            }
        }
    }
    let job = JobBuilder::new(dfs, &format!("closest-pair-unsound:{heap}"))
        .input_file(heap)?
        .mapper(NaiveLocalMapper)
        .reducer(MinReducer, 1)
        .output(out_dir)
        .build()?
        .run()?;
    let lines = job.read_output(dfs)?;
    let value = match lines.first() {
        None => None,
        Some(line) => {
            let v: Vec<f64> = line
                .split_ascii_whitespace()
                .map(|t| t.parse().map_err(|_| OpError::Corrupt(line.clone())))
                .collect::<Result<_, _>>()?;
            Some(PointPair::new(Point::new(v[0], v[1]), Point::new(v[2], v[3])).canonical())
        }
    };
    let emitted = value.is_some() as u64 * 2;
    let sel = sh_trace::Selectivity::full_scan(job.map_tasks, emitted);
    Ok(OpResult::new(value, vec![job]).with_selectivity(sel))
}

/// Distributed closest pair over a disjoint index.
pub fn closest_pair_spatial(
    dfs: &Dfs,
    file: &SpatialFile,
    out_dir: &str,
) -> Result<OpResult<Option<PointPair>>, OpError> {
    if !file.is_disjoint() {
        return Err(OpError::Unsupported(
            "closest pair requires a disjoint partitioning".into(),
        ));
    }
    let splits = SpatialFileSplitter::all_splits(dfs, file)?;
    let mut sel = crate::mrlayer::splitter_selectivity(file, &splits);
    let job = JobBuilder::new(dfs, &format!("closest-pair:{}", file.dir))
        .input_splits(splits)
        .mapper(LocalClosestPairMapper)
        .reducer(GlobalClosestPairReducer, 1)
        .output(out_dir)
        .build()?
        .run()?;
    let lines = job.read_output(dfs)?;
    let value = match lines.first() {
        None => None,
        Some(line) => {
            let v: Vec<f64> = line
                .split_ascii_whitespace()
                .map(|t| t.parse().map_err(|_| OpError::Corrupt(line.clone())))
                .collect::<Result<_, _>>()?;
            Some(PointPair::new(Point::new(v[0], v[1]), Point::new(v[2], v[3])).canonical())
        }
    };
    sel.records_emitted = value.is_some() as u64 * 2;
    Ok(OpResult::new(value, vec![job]).with_selectivity(sel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::single;
    use crate::storage::{build_index, upload};
    use sh_dfs::ClusterConfig;
    use sh_geom::Rect;
    use sh_index::PartitionKind;
    use sh_workload::{points, Distribution};

    fn run(dist: Distribution, seed: u64, kind: PartitionKind) {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let pts = points(3000, dist, &uni, seed);
        upload(&dfs, "/heap", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/heap", "/idx", kind)
            .unwrap()
            .value;
        let expected = single::closest_pair_single(&pts).value.unwrap();
        let got = closest_pair_spatial(&dfs, &file, "/out").unwrap();
        let pair = got.value.unwrap();
        assert!(
            (pair.distance - expected.distance).abs() < 1e-9,
            "{}: {} vs {}",
            dist.name(),
            pair.distance,
            expected.distance
        );
        // Pruning shipped only a fraction of the points to the reducer.
        assert!(
            got.counter("closestpair.candidates") < got.counter("closestpair.points"),
            "pruning must fire"
        );
    }

    #[test]
    fn matches_baseline_uniform_strplus() {
        run(Distribution::Uniform, 61, PartitionKind::StrPlus);
    }

    #[test]
    fn matches_baseline_gaussian_grid() {
        run(Distribution::Gaussian, 62, PartitionKind::Grid);
    }

    #[test]
    fn matches_baseline_osm_like_quadtree() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let pts = sh_workload::osm_like_points(2500, &uni, 5, 63);
        upload(&dfs, "/heap", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/heap", "/idx", PartitionKind::QuadTree)
            .unwrap()
            .value;
        let expected = single::closest_pair_single(&pts).value.unwrap();
        let got = closest_pair_spatial(&dfs, &file, "/out").unwrap();
        assert!((got.value.unwrap().distance - expected.distance).abs() < 1e-9);
    }

    #[test]
    fn pair_straddling_cells_is_found() {
        // Two points just across a partition boundary must win even when
        // each cell has its own closer-looking local pair.
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let mut pts = points(
            1000,
            Distribution::Uniform,
            &Rect::new(0.0, 0.0, 1000.0, 1000.0),
            64,
        );
        pts.push(Point::new(499.9999, 500.0));
        pts.push(Point::new(500.0001, 500.0));
        upload(&dfs, "/heap", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/heap", "/idx", PartitionKind::Grid)
            .unwrap()
            .value;
        let got = closest_pair_spatial(&dfs, &file, "/out").unwrap();
        assert!(got.value.unwrap().distance <= 0.0002 + 1e-9);
    }

    #[test]
    fn heap_variant_is_demonstrably_unsound() {
        // Adversarial layout: the two true closest points are separated
        // by enough filler records that the default per-block splitter
        // puts them in different splits.
        let dfs = Dfs::new(ClusterConfig::small_for_tests()); // 8 KiB blocks
        let mut pts: Vec<Point> = Vec::new();
        pts.push(Point::new(500.0, 500.0));
        // Filler points, far apart from each other (grid spacing 50).
        for i in 0..2500u32 {
            let gx = (i % 50) as f64 * 50.0;
            let gy = (i / 50) as f64 * 50.0;
            pts.push(Point::new(5_000.0 + gx, 5_000.0 + gy));
        }
        pts.push(Point::new(500.05, 500.0)); // true partner, ~blocks away
        upload(&dfs, "/adv", &pts).unwrap();
        assert!(dfs.stat("/adv").unwrap().num_blocks > 1, "needs >1 split");
        let truth = single::closest_pair_single(&pts).value.unwrap();
        assert!((truth.distance - 0.05).abs() < 1e-9);
        let got = closest_pair_hadoop_unsound(&dfs, "/adv", "/out-u")
            .unwrap()
            .value
            .unwrap();
        assert!(
            got.distance > truth.distance + 1.0,
            "the heap variant must miss the cross-split pair ({} vs {})",
            got.distance,
            truth.distance
        );
        // The spatial variant gets it right on the same data.
        let file = build_index::<Point>(&dfs, "/adv", "/adv-idx", PartitionKind::Grid)
            .unwrap()
            .value;
        let fixed = closest_pair_spatial(&dfs, &file, "/out-f")
            .unwrap()
            .value
            .unwrap();
        assert!((fixed.distance - truth.distance).abs() < 1e-9);
    }

    #[test]
    fn rejects_overlapping_index() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let pts = points(500, Distribution::Uniform, &uni, 65);
        upload(&dfs, "/heap", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/heap", "/idx", PartitionKind::ZCurve)
            .unwrap()
            .value;
        assert!(matches!(
            closest_pair_spatial(&dfs, &file, "/out"),
            Err(OpError::Unsupported(_))
        ));
    }
}
