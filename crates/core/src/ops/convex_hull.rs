//! Convex hull.
//!
//! * **Hadoop** — local hull per split, single-reducer global hull.
//! * **SpatialHadoop** — the filter step keeps only partitions that can
//!   contribute to one of the *four skylines* (max-max, max-min, min-max,
//!   min-min); interior partitions are never read.
//! * **Enhanced** — the Theorem-3 direction test: a local hull vertex
//!   survives only if some direction exists in which it beats its own
//!   hull neighbours *and* every other partition's bounding box. Each
//!   machine prunes independently; the driver merges the few survivors.

use std::f64::consts::{PI, TAU};

use sh_dfs::Dfs;
use sh_geom::algorithms::convex_hull::convex_hull;
use sh_geom::{Point, Record, Rect};
use sh_mapreduce::{
    InputSplit, JobBuilder, JobOutcome, MapContext, Mapper, ReduceContext, Reducer,
};

use crate::catalog::SpatialFile;
use crate::codec::{decode_rects, encode_rects};
use crate::mrlayer::{SpatialFileSplitter, SpatialRecordReader};
use crate::opresult::{OpError, OpResult};

struct LocalHullMapper;

impl Mapper for LocalHullMapper {
    type K = u8;
    type V = (f64, f64);

    fn map(&self, _split: &InputSplit, data: &str, ctx: &mut MapContext<u8, (f64, f64)>) {
        let points = SpatialRecordReader::records::<Point>(data);
        let hull = convex_hull(&points);
        ctx.counter("hull.local.kept", hull.len() as u64);
        for p in hull {
            ctx.emit(1, (p.x, p.y));
        }
    }

    fn map_bytes(&self, split: &InputSplit, data: &[u8], ctx: &mut MapContext<u8, (f64, f64)>) {
        let text = SpatialRecordReader::task_text::<Point>(&split.path, data);
        self.map(split, &text, ctx);
    }
}

struct GlobalHullReducer;

impl Reducer for GlobalHullReducer {
    type K = u8;
    type V = (f64, f64);

    fn reduce(&self, _key: &u8, values: Vec<(f64, f64)>, ctx: &mut ReduceContext) {
        let pts: Vec<Point> = values.iter().map(|&(x, y)| Point::new(x, y)).collect();
        for p in convex_hull(&pts) {
            ctx.output(p.to_line());
        }
    }
}

/// Hadoop convex hull: full scan + single-reducer merge.
pub fn hull_hadoop(dfs: &Dfs, heap: &str, out_dir: &str) -> Result<OpResult<Vec<Point>>, OpError> {
    let job = JobBuilder::new(dfs, &format!("hull-hadoop:{heap}"))
        .input_file(heap)?
        .mapper(LocalHullMapper)
        .reducer(GlobalHullReducer, 1)
        .output(out_dir)
        .build()?
        .run()?;
    let value = hull_from_output(dfs, &job)?;
    let sel = sh_trace::Selectivity::full_scan(job.map_tasks, value.len() as u64);
    Ok(OpResult::new(value, vec![job]).with_selectivity(sel))
}

/// The four-skyline partition filter: a partition survives if its MBR is
/// non-dominated in at least one of the four corner orientations.
pub fn hull_candidate_partitions(file: &SpatialFile) -> Vec<usize> {
    let mbrs: Vec<Rect> = file.partitions.iter().map(|m| m.mbr_rect()).collect();
    let flip = |r: &Rect, sx: f64, sy: f64| Rect::new(r.x1 * sx, r.y1 * sy, r.x2 * sx, r.y2 * sy);
    let mut keep = vec![false; mbrs.len()];
    for (sx, sy) in [(1.0, 1.0), (1.0, -1.0), (-1.0, 1.0), (-1.0, -1.0)] {
        let flipped: Vec<Rect> = mbrs.iter().map(|r| flip(r, sx, sy)).collect();
        for i in 0..flipped.len() {
            if !flipped
                .iter()
                .enumerate()
                .any(|(j, m)| j != i && m.dominates_rect(&flipped[i]))
            {
                keep[i] = true;
            }
        }
    }
    (0..mbrs.len())
        .filter(|&i| keep[i])
        .map(|i| file.partitions[i].id)
        .collect()
}

/// SpatialHadoop convex hull: four-skyline filter + local/global hull.
pub fn hull_spatial(
    dfs: &Dfs,
    file: &SpatialFile,
    out_dir: &str,
) -> Result<OpResult<Vec<Point>>, OpError> {
    let keep: std::collections::HashSet<usize> =
        hull_candidate_partitions(file).into_iter().collect();
    let pruned = file.partitions.len() - keep.len();
    let splits = SpatialFileSplitter::splits(dfs, file, |m| keep.contains(&m.id))?;
    let mut sel = crate::mrlayer::splitter_selectivity(file, &splits);
    let mut job = JobBuilder::new(dfs, &format!("hull-spatial:{}", file.dir))
        .input_splits(splits)
        .mapper(LocalHullMapper)
        .reducer(GlobalHullReducer, 1)
        .output(out_dir)
        .build()?
        .run()?;
    job.counters
        .insert("hull.partitions.pruned".into(), pruned as u64);
    let value = hull_from_output(dfs, &job)?;
    sel.records_emitted = value.len() as u64;
    Ok(OpResult::new(value, vec![job]).with_selectivity(sel))
}

// ------------------------------------------------------------ enhanced

/// Arc on the direction circle, `[start, end]` with `end >= start`,
/// angles unnormalized (callers normalize to start ∈ [0, 2π)).
#[derive(Clone, Copy, Debug)]
struct Arc {
    start: f64,
    end: f64,
}

fn normalize(a: f64) -> f64 {
    let mut a = a % TAU;
    if a < 0.0 {
        a += TAU;
    }
    a
}

/// True when the arcs jointly cover the whole circle.
fn arcs_cover_circle(arcs: &[Arc]) -> bool {
    // Split wrapping arcs at 0 and merge intervals on [0, 2π].
    let mut ivs: Vec<(f64, f64)> = Vec::with_capacity(arcs.len() + 2);
    for arc in arcs {
        if arc.end - arc.start >= TAU {
            return true;
        }
        let s = normalize(arc.start);
        let e = s + (arc.end - arc.start);
        if e <= TAU {
            ivs.push((s, e));
        } else {
            ivs.push((s, TAU));
            ivs.push((0.0, e - TAU));
        }
    }
    ivs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut covered_to = 0.0f64;
    for (s, e) in ivs {
        if s > covered_to + 1e-12 {
            return false;
        }
        covered_to = covered_to.max(e);
    }
    covered_to >= TAU - 1e-12
}

/// Infeasible directions of `t` w.r.t. a box `b`: directions in which
/// the *entire box* projects strictly ahead of `t` — only then is a real
/// record of that partition guaranteed to beat `t`, whatever its exact
/// position inside the box. (Using "some corner beats t" instead would
/// over-prune: corners are not data points.)
///
/// Geometrically: the intersection of the four corner half-circles, i.e.
/// the arc between the two directions perpendicular to the visibility
/// rays from `t` to the box (Fig. 16a of the paper).
fn infeasible_arc_for_box(t: &Point, b: &Rect) -> Option<Arc> {
    if b.contains_point(t) {
        // t inside the box: no direction has the whole box ahead, so
        // nothing is guaranteed — conservative empty arc.
        return None;
    }
    // Minimal enclosing arc of the four corner directions: sort, the
    // largest gap between consecutive angles delimits it.
    let mut sorted: Vec<f64> = b
        .corners()
        .iter()
        .map(|c| (c.y - t.y).atan2(c.x - t.x))
        .collect();
    sorted.sort_by(f64::total_cmp);
    let mut best_gap = TAU - (sorted[sorted.len() - 1] - sorted[0]);
    let mut start = sorted[sorted.len() - 1];
    for w in sorted.windows(2) {
        let gap = w[1] - w[0];
        if gap > best_gap {
            best_gap = gap;
            start = w[0];
        }
    }
    let extent = TAU - best_gap;
    if extent >= PI {
        return None; // degenerate: no direction sees the whole box ahead
    }
    // Corner directions span [span_start, span_start + extent]; the whole
    // box is ahead for directions within π/2 of *every* corner direction.
    let span_start = start + best_gap;
    let lo = span_start + extent - PI / 2.0;
    let hi = span_start + PI / 2.0;
    if hi <= lo {
        None
    } else {
        Some(Arc { start: lo, end: hi })
    }
}

/// Infeasible directions of hull vertex `t` w.r.t. its own partition:
/// everything outside the outward normal cone between its adjacent hull
/// edges.
fn infeasible_arc_own(prev: &Point, t: &Point, next: &Point) -> Arc {
    // Outward normal of ccw edge (a -> b) points right of the edge:
    // angle(b - a) - π/2.
    let n1 = (t.y - prev.y).atan2(t.x - prev.x) - PI / 2.0;
    let n2 = (next.y - t.y).atan2(next.x - t.x) - PI / 2.0;
    // Feasible cone: from n1 ccw to n2. Infeasible: from n2 ccw to n1.
    let n1 = normalize(n1);
    let mut n2 = normalize(n2);
    if n2 < n1 {
        n2 += TAU;
    }
    // Infeasible arc from n2 around to n1 + 2π.
    Arc {
        start: n2,
        end: n1 + TAU,
    }
}

struct EnhancedHullMapper;

impl Mapper for EnhancedHullMapper {
    type K = u8;
    type V = u8;

    fn map(&self, split: &InputSplit, data: &str, ctx: &mut MapContext<u8, u8>) {
        // The driver encoded the boxes, so decode failure is task-fatal
        // corruption.
        let boxes = decode_rects(split.aux.as_deref().unwrap_or(""))
            .expect("corrupt partition-box aux payload");
        let pruned_points = ctx.register_counter("hull.pruned.points");
        let candidates = ctx.register_counter("hull.candidates");
        let points = SpatialRecordReader::records::<Point>(data);
        let hull = convex_hull(&points);
        let n = hull.len();
        if n < 3 {
            for p in &hull {
                ctx.output(p.to_line());
            }
            return;
        }
        for i in 0..n {
            let t = hull[i];
            let prev = hull[(i + n - 1) % n];
            let next = hull[(i + 1) % n];
            let mut arcs = vec![infeasible_arc_own(&prev, &t, &next)];
            for b in &boxes {
                if let Some(a) = infeasible_arc_for_box(&t, b) {
                    arcs.push(a);
                }
            }
            if arcs_cover_circle(&arcs) {
                ctx.inc(pruned_points, 1);
            } else {
                ctx.output(t.to_line());
                ctx.inc(candidates, 1);
            }
        }
    }

    fn map_bytes(&self, split: &InputSplit, data: &[u8], ctx: &mut MapContext<u8, u8>) {
        let text = SpatialRecordReader::task_text::<Point>(&split.path, data);
        self.map(split, &text, ctx);
    }
}

/// Enhanced convex hull: Theorem-3 local pruning, tiny driver-side merge.
pub fn hull_enhanced(
    dfs: &Dfs,
    file: &SpatialFile,
    out_dir: &str,
) -> Result<OpResult<Vec<Point>>, OpError> {
    let keep: std::collections::HashSet<usize> =
        hull_candidate_partitions(file).into_iter().collect();
    let mut splits = Vec::new();
    for meta in &file.partitions {
        if !keep.contains(&meta.id) {
            continue;
        }
        let boxes: Vec<Rect> = file
            .partitions
            .iter()
            .filter(|m| m.id != meta.id && keep.contains(&m.id))
            .map(|m| m.mbr_rect())
            .collect();
        splits.push(
            InputSplit::whole_file(dfs, &meta.path)?
                .with_partition(meta.id, meta.cell)
                .with_aux(encode_rects(&boxes)),
        );
    }
    let mut sel = crate::mrlayer::splitter_selectivity(file, &splits);
    let job = JobBuilder::new(dfs, &format!("hull-enhanced:{}", file.dir))
        .input_splits(splits)
        .mapper(EnhancedHullMapper)
        .output(out_dir)
        .map_only()?
        .run()?;
    // Driver merge over the few surviving candidates.
    let candidates: Vec<Point> = crate::codec::parse_output_records(&job.read_output(dfs)?)?;
    let value = convex_hull(&candidates);
    sel.records_emitted = value.len() as u64;
    Ok(OpResult::new(value, vec![job]).with_selectivity(sel))
}

fn hull_from_output(dfs: &Dfs, job: &JobOutcome) -> Result<Vec<Point>, OpError> {
    let pts: Vec<Point> = crate::codec::parse_output_records(&job.read_output(dfs)?)?;
    // The reducer already emitted hull order, but part files may split
    // it; recompute for a canonical result.
    Ok(convex_hull(&pts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::single;
    use crate::storage::{build_index, upload};
    use sh_dfs::ClusterConfig;
    use sh_index::PartitionKind;
    use sh_workload::{points, Distribution};

    fn canon(v: &[Point]) -> Vec<(i64, i64)> {
        let mut c: Vec<(i64, i64)> = v
            .iter()
            .map(|p| ((p.x * 1e6) as i64, (p.y * 1e6) as i64))
            .collect();
        c.sort_unstable();
        c
    }

    fn run_all(dist: Distribution, seed: u64, n: usize) {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let pts = points(n, dist, &uni, seed);
        upload(&dfs, "/heap", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/heap", "/idx", PartitionKind::StrPlus)
            .unwrap()
            .value;
        let expected = single::convex_hull_single(&pts).value;

        let h = hull_hadoop(&dfs, "/heap", "/out-h").unwrap();
        assert_eq!(canon(&h.value), canon(&expected), "hadoop {}", dist.name());

        let s = hull_spatial(&dfs, &file, "/out-s").unwrap();
        assert_eq!(canon(&s.value), canon(&expected), "spatial {}", dist.name());

        let e = hull_enhanced(&dfs, &file, "/out-e").unwrap();
        assert_eq!(
            canon(&e.value),
            canon(&expected),
            "enhanced {}",
            dist.name()
        );
    }

    #[test]
    fn all_variants_match_baseline_uniform() {
        run_all(Distribution::Uniform, 51, 3000);
    }

    #[test]
    fn all_variants_match_baseline_gaussian() {
        run_all(Distribution::Gaussian, 52, 3000);
    }

    #[test]
    fn all_variants_match_baseline_circular_worst_case() {
        run_all(Distribution::Circular, 53, 2000);
    }

    #[test]
    fn spatial_prunes_interior_partitions() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let pts = points(6000, Distribution::Uniform, &uni, 54);
        upload(&dfs, "/heap", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/heap", "/idx", PartitionKind::StrPlus)
            .unwrap()
            .value;
        let s = hull_spatial(&dfs, &file, "/out").unwrap();
        assert!(
            s.counter("hull.partitions.pruned") > 0,
            "interior partitions should be pruned out of {}",
            file.partitions.len()
        );
    }

    #[test]
    fn enhanced_prunes_most_candidates() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let pts = points(4000, Distribution::Uniform, &uni, 55);
        upload(&dfs, "/heap", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/heap", "/idx", PartitionKind::StrPlus)
            .unwrap()
            .value;
        let e = hull_enhanced(&dfs, &file, "/out").unwrap();
        let survivors = e.counter("hull.candidates");
        let pruned = e.counter("hull.pruned.points");
        assert!(survivors >= e.value.len() as u64);
        assert!(pruned > 0, "theorem-3 pruning should fire");
    }

    #[test]
    fn arc_coverage_helper() {
        assert!(arcs_cover_circle(&[Arc {
            start: 0.0,
            end: TAU
        }]));
        assert!(arcs_cover_circle(&[
            Arc {
                start: 0.0,
                end: 4.0
            },
            Arc {
                start: 3.5,
                end: TAU + 0.1
            },
        ]));
        assert!(!arcs_cover_circle(&[
            Arc {
                start: 0.0,
                end: 3.0
            },
            Arc {
                start: 3.5,
                end: 6.0
            },
        ]));
        // Wrapping arc.
        assert!(arcs_cover_circle(&[
            Arc {
                start: 5.0,
                end: 5.0 + TAU * 0.75
            },
            Arc {
                start: 2.0,
                end: 5.5
            },
        ]));
    }

    #[test]
    fn box_arc_semantics() {
        let b = Rect::new(0.0, 0.0, 10.0, 10.0);
        // Interior point: nothing is guaranteed, no banned directions.
        assert!(infeasible_arc_for_box(&Point::new(5.0, 5.0), &b).is_none());
        // Point to the right of the box: directions pointing left (-x)
        // have the whole box ahead; +x stays feasible.
        let outside = infeasible_arc_for_box(&Point::new(20.0, 5.0), &b).unwrap();
        assert!(outside.end - outside.start < PI);
        let mid = normalize((outside.start + outside.end) / 2.0);
        assert!(
            (mid - PI).abs() < 0.5,
            "banned arc centred around -x, got {mid}"
        );
        assert!(!arcs_cover_circle(&[outside]));
    }
}
