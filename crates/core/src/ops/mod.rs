//! The operations layer.
//!
//! Each operation follows the five-step skeleton — *partition* (done once
//! at index-build time), *filter* (SpatialFileSplitter + a filter
//! function), *local processing* (map), *pruning* (early flush of final
//! results from the map side), *merging* (reduce / driver post-process) —
//! and comes in the variants the paper evaluates:
//!
//! | op | Hadoop | SpatialHadoop | enhanced |
//! |----|--------|----------------|----------|
//! | range query | full scan | partition pruning + local index | — |
//! | kNN | full scan, one round | single-partition + correctness loop | — |
//! | spatial join | SJMR | distributed join over two indexes | — |
//! | kNN join | — | two-round bound-and-refine | — |
//! | skyline | local+global skyline | + partition filter | output-sensitive |
//! | convex hull | local+global hull | + four-skyline filter | Theorem-3 pruning |
//! | union | local union + merge | spatially-clustered local union | cell-clipped, no merge |
//! | closest pair | — (incorrect on heap) | buffer-pruned single round | — |
//! | farthest pair | hull-based | pair-pruning over partitions | — |
//! | Voronoi | x-strip + driver merge | safe-cell early flush + 2-level merge | — |
//! | Delaunay | x-strip + driver merge | circumcircle-in-cell triangle flush | — |

pub mod aggregate;
pub mod closest_pair;
pub mod convex_hull;
pub mod delaunay;
pub mod farthest_pair;
pub mod join;
pub mod knn;
pub mod knn_join;
pub mod plot;
pub mod range;
pub mod single;
pub mod skyline;
pub mod union;
pub mod voronoi;
