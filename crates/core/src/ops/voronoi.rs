//! Voronoi diagram construction.
//!
//! * **Hadoop** — the state-of-the-art MapReduce algorithm the paper
//!   improves on: partition into vertical strips, build a partial diagram
//!   per strip, merge *everything* on one machine. The transferred
//!   partial diagrams are several times larger than the input, so the
//!   merge is the scalability wall.
//! * **SpatialHadoop** — the pruning algorithm: each partition builds its
//!   local diagram, flushes the *safe* cells (dangerous zone inside the
//!   partition) straight to the output, and forwards only the non-final
//!   sites plus their one-ring Delaunay neighbours (as non-output
//!   *witnesses*) to a per-column vertical merge; the vertical merge
//!   flushes what becomes safe within its column and forwards the rest to
//!   a final driver-side horizontal merge. Each merge level recomputes
//!   the diagram over its (tiny) received site set — exact because a
//!   pending site's final Delaunay neighbours are always among the
//!   forwarded sites (flushed cells are never adjacent to pending ones).
//!
//! Requires a disjoint, column-aligned partitioning (grid or STR+).

use std::time::Instant;

use sh_dfs::Dfs;
use sh_geom::algorithms::delaunay::Triangulation;
use sh_geom::algorithms::voronoi::{VoronoiCell, VoronoiDiagram};
use sh_geom::point::sort_dedup;
use sh_geom::{Point, Rect};
use sh_mapreduce::{
    InputSplit, JobBuilder, JobOutcome, MapContext, Mapper, ReduceContext, Reducer, SimBreakdown,
};

use crate::catalog::SpatialFile;
use crate::mrlayer::{split_cell, SpatialFileSplitter, SpatialRecordReader};
use crate::opresult::{OpError, OpResult};

/// A finalized Voronoi cell as the operation outputs it.
#[derive(Clone, Debug)]
pub struct VCell {
    /// The generating site.
    pub site: Point,
    /// Cell vertices (empty when unbounded).
    pub vertices: Vec<Point>,
    /// False when the cell extends to infinity.
    pub bounded: bool,
}

impl VCell {
    fn from_cell(c: &VoronoiCell) -> VCell {
        VCell {
            site: c.site,
            vertices: c.vertices.clone(),
            bounded: c.bounded,
        }
    }

    fn encode(&self) -> String {
        let mut s = format!(
            "C {} {} {} {}",
            self.site.x,
            self.site.y,
            u8::from(self.bounded),
            self.vertices.len()
        );
        for v in &self.vertices {
            s.push_str(&format!(" {} {}", v.x, v.y));
        }
        s
    }

    fn decode(line: &str) -> Result<VCell, OpError> {
        let toks: Vec<&str> = line.split_ascii_whitespace().collect();
        if toks.first() != Some(&"C") || toks.len() < 5 {
            return Err(OpError::Corrupt(format!("bad cell line: {line:?}")));
        }
        let f = |s: &str| -> Result<f64, OpError> {
            s.parse()
                .map_err(|_| OpError::Corrupt(format!("bad cell number {s:?}")))
        };
        let site = Point::new(f(toks[1])?, f(toks[2])?);
        let bounded = toks[3] == "1";
        let n: usize = toks[4]
            .parse()
            .map_err(|_| OpError::Corrupt(format!("bad vertex count in {line:?}")))?;
        let mut vertices = Vec::with_capacity(n);
        for i in 0..n {
            vertices.push(Point::new(f(toks[5 + 2 * i])?, f(toks[6 + 2 * i])?));
        }
        Ok(VCell {
            site,
            vertices,
            bounded,
        })
    }

    /// Canonical fingerprint for cross-implementation comparison.
    pub fn fingerprint(&self) -> (i64, i64, Vec<(i64, i64)>, bool) {
        let q = |v: f64| (v * 1e5).round() as i64;
        let mut verts: Vec<(i64, i64)> = self.vertices.iter().map(|p| (q(p.x), q(p.y))).collect();
        verts.sort_unstable();
        verts.dedup();
        (q(self.site.x), q(self.site.y), verts, self.bounded)
    }
}

/// True when the partition cells form full-height vertical columns
/// (cells sharing an x-interval tile the whole universe y-extent), which
/// is what the vertical-merge slab test requires.
fn columns_are_aligned(file: &SpatialFile) -> bool {
    use std::collections::HashMap;
    let mut columns: HashMap<(u64, u64), f64> = HashMap::new();
    for m in &file.partitions {
        *columns
            .entry((m.cell[0].to_bits(), m.cell[2].to_bits()))
            .or_insert(0.0) += m.cell[3] - m.cell[1];
    }
    let height = file.universe.height();
    columns
        .values()
        .all(|&h| (h - height).abs() <= 1e-6 * height.max(1.0))
}

/// Safety in x only (column-level test): every dangerous-zone circle
/// stays within the vertical slab `[x1, x2]`.
fn safe_in_slab(cell: &VoronoiCell, x1: f64, x2: f64) -> bool {
    if !cell.bounded {
        return false;
    }
    cell.vertices.iter().all(|v| {
        let r = v.distance(&cell.site);
        v.x - r >= x1 && v.x + r <= x2
    })
}

// ----------------------------------------------------------------- hadoop

struct StripMapper {
    universe: Rect,
    strips: usize,
}

impl Mapper for StripMapper {
    type K = u64;
    type V = (f64, f64);

    fn map(&self, _split: &InputSplit, data: &str, ctx: &mut MapContext<u64, (f64, f64)>) {
        let w = self.universe.width().max(1e-12);
        for p in SpatialRecordReader::records::<Point>(data) {
            let s = (((p.x - self.universe.x1) / w) * self.strips as f64)
                .floor()
                .clamp(0.0, self.strips as f64 - 1.0) as u64;
            ctx.emit(s, (p.x, p.y));
        }
    }

    fn map_bytes(&self, split: &InputSplit, data: &[u8], ctx: &mut MapContext<u64, (f64, f64)>) {
        let text = SpatialRecordReader::task_text::<Point>(&split.path, data);
        self.map(split, &text, ctx);
    }
}

struct StripVdReducer;

impl Reducer for StripVdReducer {
    type K = u64;
    type V = (f64, f64);

    fn reduce(&self, _strip: &u64, values: Vec<(f64, f64)>, ctx: &mut ReduceContext) {
        let mut sites: Vec<Point> = values.iter().map(|&(x, y)| Point::new(x, y)).collect();
        sort_dedup(&mut sites);
        // Build the partial diagram (the real compute cost) and transfer
        // it whole to the merge — the bottleneck this algorithm has.
        let vd = VoronoiDiagram::build(&sites);
        ctx.counter("voronoi.partial.cells", vd.cells.len() as u64);
        for c in &vd.cells {
            ctx.output(VCell::from_cell(c).encode());
        }
    }
}

/// Hadoop Voronoi: strip partitioning + single-machine merge (modelled as
/// a driver-side recomputation whose time and transfer volume are added
/// as a synthetic merge phase).
pub fn voronoi_hadoop(
    dfs: &Dfs,
    heap: &str,
    universe: &Rect,
    out_dir: &str,
) -> Result<OpResult<Vec<VCell>>, OpError> {
    let stat = dfs.stat(heap)?;
    let strips = (stat.len.div_ceil(dfs.config().block_size)).max(1) as usize;
    let job = JobBuilder::new(dfs, &format!("voronoi-hadoop:{heap}"))
        .input_file(heap)?
        .mapper(StripMapper {
            universe: *universe,
            strips,
        })
        .reducer(
            StripVdReducer,
            strips.min(dfs.config().total_reduce_slots()).max(1),
        )
        .output(out_dir)
        .build()?
        .run()?;
    // Driver-side merge: recompute over all sites of the partial
    // diagrams (the partial structure does not help a recomputation-free
    // merge; transferring and merging it is exactly the bottleneck).
    let partial_lines = job.read_output(dfs)?;
    let transferred: u64 = partial_lines.iter().map(|l| l.len() as u64 + 1).sum();
    let mut sites: Vec<Point> = partial_lines
        .iter()
        .map(|l| VCell::decode(l).map(|c| c.site))
        .collect::<Result<_, _>>()?;
    sort_dedup(&mut sites);
    let t0 = Instant::now();
    let vd = VoronoiDiagram::build(&sites);
    let merge_seconds = t0.elapsed().as_secs_f64();
    let cfg = dfs.config();
    let merge_phase = JobOutcome::synthetic(
        "voronoi-hadoop:driver-merge",
        out_dir,
        std::collections::BTreeMap::from([("voronoi.merge.bytes".to_string(), transferred)]),
        SimBreakdown {
            startup: 0.0,
            map: 0.0,
            shuffle: transferred as f64 / cfg.network_bandwidth,
            reduce: merge_seconds,
        },
        t0.elapsed(),
        0,
        1,
    );
    let value: Vec<VCell> = vd.cells.iter().map(VCell::from_cell).collect();
    let sel = sh_trace::Selectivity::full_scan(job.map_tasks, value.len() as u64);
    Ok(OpResult::new(value, vec![job, merge_phase]).with_selectivity(sel))
}

// ----------------------------------------------------------- spatialhadoop

/// Status tag for forwarded sites.
const PENDING: u8 = 0;
const WITNESS: u8 = 1;

struct LocalVdMapper;

impl Mapper for LocalVdMapper {
    type K = (u64, u64);
    type V = (u8, f64, f64);

    fn map(
        &self,
        split: &InputSplit,
        data: &str,
        ctx: &mut MapContext<(u64, u64), (u8, f64, f64)>,
    ) {
        let cell_rect = split_cell(split);
        // Column key: the partition cell's x-interval, bit-encoded — but
        // only when the driver marked the partitioning column-aligned
        // (grid/STR+). Otherwise everything shares a degenerate key whose
        // slab test never passes, so the vertical merge becomes a pure
        // forwarding stage and the driver merge finishes the job (the
        // quad-tree / k-d tree path).
        let aligned = split.aux.as_deref() == Some("aligned");
        let key = if aligned {
            (cell_rect.x1.to_bits(), cell_rect.x2.to_bits())
        } else {
            (0u64, 0u64)
        };
        let mut sites = SpatialRecordReader::records::<Point>(data);
        sort_dedup(&mut sites);
        ctx.counter("voronoi.sites", sites.len() as u64);
        let tri = Triangulation::build(&sites);
        let vd = VoronoiDiagram::from_triangulation(&tri);
        let rings = tri.neighbor_rings();
        let mut pending = vec![false; sites.len()];
        for c in &vd.cells {
            if c.is_safe(&cell_rect) {
                ctx.output(VCell::from_cell(c).encode());
                ctx.counter("voronoi.flushed.local", 1);
            } else {
                pending[c.site_ix] = true;
            }
        }
        // Forward pending sites plus their one-ring as witnesses.
        let mut witness = vec![false; sites.len()];
        for (i, &is_pending) in pending.iter().enumerate() {
            if is_pending {
                for &j in rings.get(i).map(|r| r.as_slice()).unwrap_or(&[]) {
                    if !pending[j] {
                        witness[j] = true;
                    }
                }
            }
        }
        for (i, s) in sites.iter().enumerate() {
            if pending[i] {
                ctx.emit(key, (PENDING, s.x, s.y));
                ctx.counter("voronoi.forwarded.pending", 1);
            } else if witness[i] {
                ctx.emit(key, (WITNESS, s.x, s.y));
                ctx.counter("voronoi.forwarded.witness", 1);
            }
        }
    }

    fn map_bytes(
        &self,
        split: &InputSplit,
        data: &[u8],
        ctx: &mut MapContext<(u64, u64), (u8, f64, f64)>,
    ) {
        let text = SpatialRecordReader::task_text::<Point>(&split.path, data);
        self.map(split, &text, ctx);
    }
}

struct VMergeReducer;

impl Reducer for VMergeReducer {
    type K = (u64, u64);
    type V = (u8, f64, f64);

    fn reduce(&self, key: &(u64, u64), values: Vec<(u8, f64, f64)>, ctx: &mut ReduceContext) {
        let (x1, x2) = (f64::from_bits(key.0), f64::from_bits(key.1));
        let (sites, pending) = dedup_sites(values);
        let tri = Triangulation::build(&sites);
        let vd = VoronoiDiagram::from_triangulation(&tri);
        let rings = tri.neighbor_rings();
        let mut still_pending = vec![false; sites.len()];
        for c in &vd.cells {
            if !pending[c.site_ix] {
                continue;
            }
            if safe_in_slab(c, x1, x2) {
                ctx.output(VCell::from_cell(c).encode());
                ctx.counter("voronoi.flushed.vmerge", 1);
            } else {
                still_pending[c.site_ix] = true;
            }
        }
        let mut witness = vec![false; sites.len()];
        for (i, &p) in still_pending.iter().enumerate() {
            if p {
                for &j in rings.get(i).map(|r| r.as_slice()).unwrap_or(&[]) {
                    if !still_pending[j] {
                        witness[j] = true;
                    }
                }
            }
        }
        for (i, s) in sites.iter().enumerate() {
            if still_pending[i] {
                ctx.side_output("_hmerge", format!("P {} {}", s.x, s.y));
            } else if witness[i] {
                ctx.side_output("_hmerge", format!("W {} {}", s.x, s.y));
            }
        }
    }
}

/// Deduplicates forwarded sites (pending status wins) and returns the
/// site list plus a pending mask aligned with it.
fn dedup_sites(values: Vec<(u8, f64, f64)>) -> (Vec<Point>, Vec<bool>) {
    let mut tagged: Vec<(Point, bool)> = values
        .into_iter()
        .map(|(t, x, y)| (Point::new(x, y), t == PENDING))
        .collect();
    tagged.sort_by(|a, b| a.0.cmp_xy(&b.0).then(b.1.cmp(&a.1)));
    tagged.dedup_by(|a, b| {
        if a.0.approx_eq(&b.0) {
            b.1 |= a.1;
            true
        } else {
            false
        }
    });
    let sites: Vec<Point> = tagged.iter().map(|(p, _)| *p).collect();
    let pending: Vec<bool> = tagged.iter().map(|(_, p)| *p).collect();
    (sites, pending)
}

/// SpatialHadoop Voronoi: local safe-cell flush → vertical merge →
/// driver horizontal merge.
pub fn voronoi_spatial(
    dfs: &Dfs,
    file: &SpatialFile,
    out_dir: &str,
) -> Result<OpResult<Vec<VCell>>, OpError> {
    if !file.is_disjoint() {
        return Err(OpError::Unsupported(
            "voronoi_spatial requires a disjoint partitioning".into(),
        ));
    }
    // Column-aligned partitionings (grid/STR+) get the paper's vertical
    // merge; others (quad-tree, k-d tree) skip straight to the driver
    // merge, which the same exactness argument covers.
    let aligned = columns_are_aligned(file);
    let mut splits = SpatialFileSplitter::all_splits(dfs, file)?;
    let mut sel = crate::mrlayer::splitter_selectivity(file, &splits);
    if aligned {
        for s in &mut splits {
            s.aux = Some("aligned".into());
        }
    }
    let columns: std::collections::HashSet<(u64, u64)> = if aligned {
        file.partitions
            .iter()
            .map(|m| (m.cell[0].to_bits(), m.cell[2].to_bits()))
            .collect()
    } else {
        std::iter::once((0u64, 0u64)).collect()
    };
    let job = JobBuilder::new(dfs, &format!("voronoi-spatial:{}", file.dir))
        .input_splits(splits)
        .mapper(LocalVdMapper)
        .pair_size(|_, _| 17)
        .reducer(
            VMergeReducer,
            columns.len().min(dfs.config().total_reduce_slots()).max(1),
        )
        .output(out_dir)
        .build()?
        .run()?;

    // Horizontal merge on the driver over the forwarded remainder.
    let hmerge_path = format!("{out_dir}/_hmerge");
    let mut h_cells: Vec<VCell> = Vec::new();
    let mut h_outcome: Option<JobOutcome> = None;
    if dfs.exists(&hmerge_path) {
        let text = dfs.read_to_string(&hmerge_path)?;
        let transferred = text.len() as u64;
        let values: Vec<(u8, f64, f64)> = text
            .lines()
            .map(|l| {
                let toks: Vec<&str> = l.split_ascii_whitespace().collect();
                let tag = if toks[0] == "P" { PENDING } else { WITNESS };
                (
                    tag,
                    toks[1].parse().expect("hmerge x"),
                    toks[2].parse().expect("hmerge y"),
                )
            })
            .collect();
        let t0 = Instant::now();
        let (sites, pending) = dedup_sites(values);
        let vd = VoronoiDiagram::build(&sites);
        for c in &vd.cells {
            if pending[c.site_ix] {
                h_cells.push(VCell::from_cell(c));
            }
        }
        let cfg = dfs.config();
        h_outcome = Some(JobOutcome::synthetic(
            "voronoi-spatial:h-merge",
            out_dir,
            std::collections::BTreeMap::from([
                ("voronoi.hmerge.bytes".to_string(), transferred),
                ("voronoi.flushed.hmerge".to_string(), h_cells.len() as u64),
            ]),
            SimBreakdown {
                startup: 0.0,
                map: 0.0,
                shuffle: transferred as f64 / cfg.network_bandwidth,
                reduce: t0.elapsed().as_secs_f64(),
            },
            t0.elapsed(),
            0,
            1,
        ));
    }

    let mut value: Vec<VCell> = job
        .read_output(dfs)?
        .iter()
        .map(|l| VCell::decode(l))
        .collect::<Result<_, _>>()?;
    value.extend(h_cells);
    let mut jobs = vec![job];
    jobs.extend(h_outcome);
    sel.records_emitted = value.len() as u64;
    Ok(OpResult::new(value, jobs).with_selectivity(sel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::single;
    use crate::storage::{build_index, upload};
    use sh_dfs::ClusterConfig;
    use sh_index::PartitionKind;
    use sh_workload::{osm_like_points, points, Distribution};

    fn canon(cells: &[VCell]) -> Vec<(i64, i64, Vec<(i64, i64)>, bool)> {
        let mut f: Vec<_> = cells.iter().map(VCell::fingerprint).collect();
        f.sort();
        f
    }

    fn canon_vd(vd: &VoronoiDiagram) -> Vec<(i64, i64, Vec<(i64, i64)>, bool)> {
        let cells: Vec<VCell> = vd.cells.iter().map(VCell::from_cell).collect();
        canon(&cells)
    }

    fn run_spatial(n: usize, seed: u64, kind: PartitionKind, dist: Distribution) {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let mut pts = points(n, dist, &uni, seed);
        sort_dedup(&mut pts);
        upload(&dfs, "/heap", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/heap", "/idx", kind)
            .unwrap()
            .value;
        let expected = single::voronoi_single(&pts).value;
        let got = voronoi_spatial(&dfs, &file, "/out").unwrap();
        assert_eq!(got.value.len(), pts.len(), "one cell per site");
        assert_eq!(canon(&got.value), canon_vd(&expected), "{}", kind.name());
        // The whole point: most cells are finalized before any merge.
        let local = got.counter("voronoi.flushed.local");
        assert!(
            local as f64 > 0.5 * pts.len() as f64,
            "local flush too weak: {local}/{n}"
        );
    }

    #[test]
    fn spatial_matches_single_machine_grid_uniform() {
        run_spatial(1500, 91, PartitionKind::Grid, Distribution::Uniform);
    }

    #[test]
    fn spatial_matches_single_machine_strplus_uniform() {
        run_spatial(1500, 92, PartitionKind::StrPlus, Distribution::Uniform);
    }

    #[test]
    fn spatial_matches_single_machine_gaussian() {
        run_spatial(1200, 93, PartitionKind::StrPlus, Distribution::Gaussian);
    }

    #[test]
    fn spatial_matches_single_machine_osm_like() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let mut pts = osm_like_points(1200, &uni, 4, 94);
        sort_dedup(&mut pts);
        upload(&dfs, "/heap", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/heap", "/idx", PartitionKind::Grid)
            .unwrap()
            .value;
        let expected = single::voronoi_single(&pts).value;
        let got = voronoi_spatial(&dfs, &file, "/out").unwrap();
        assert_eq!(canon(&got.value), canon_vd(&expected));
    }

    #[test]
    fn hadoop_matches_single_machine() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let mut pts = points(800, Distribution::Uniform, &uni, 95);
        sort_dedup(&mut pts);
        upload(&dfs, "/heap", &pts).unwrap();
        let expected = single::voronoi_single(&pts).value;
        let got = voronoi_hadoop(&dfs, "/heap", &uni, "/out").unwrap();
        assert_eq!(canon(&got.value), canon_vd(&expected));
        // The merge transferred the whole (inflated) diagram.
        assert!(got.counter("voronoi.merge.bytes") > 0);
    }

    #[test]
    fn quadtree_and_kdtree_partitionings_are_exact_via_driver_merge() {
        for kind in [PartitionKind::QuadTree, PartitionKind::KdTree] {
            let dfs = Dfs::new(ClusterConfig::small_for_tests());
            let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
            let mut pts = osm_like_points(1000, &uni, 4, 96);
            sort_dedup(&mut pts);
            upload(&dfs, "/heap", &pts).unwrap();
            let file = build_index::<Point>(&dfs, "/heap", "/idx", kind)
                .unwrap()
                .value;
            let got = voronoi_spatial(&dfs, &file, "/out").unwrap();
            let expected = single::voronoi_single(&pts).value;
            assert_eq!(canon(&got.value), canon_vd(&expected), "{}", kind.name());
            // Local flush still fires; the v-merge flush does not.
            assert!(got.counter("voronoi.flushed.local") > 0, "{}", kind.name());
            assert_eq!(got.counter("voronoi.flushed.vmerge"), 0, "{}", kind.name());
            crate::storage::delete_dir(&dfs, "/out");
            crate::storage::delete_dir(&dfs, "/idx");
            dfs.delete("/heap");
        }
    }

    #[test]
    fn rejects_overlapping_partitionings() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let pts = points(500, Distribution::Uniform, &uni, 97);
        upload(&dfs, "/heap", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/heap", "/idx", PartitionKind::Hilbert)
            .unwrap()
            .value;
        assert!(matches!(
            voronoi_spatial(&dfs, &file, "/out"),
            Err(OpError::Unsupported(_))
        ));
    }

    #[test]
    fn cell_encoding_roundtrip() {
        let c = VCell {
            site: Point::new(1.5, 2.5),
            vertices: vec![
                Point::new(0.0, 0.0),
                Point::new(3.0, 0.0),
                Point::new(1.5, 4.0),
            ],
            bounded: true,
        };
        let d = VCell::decode(&c.encode()).unwrap();
        assert_eq!(d.fingerprint(), c.fingerprint());
        assert!(VCell::decode("garbage").is_err());
    }
}
