//! Farthest pair (diameter).
//!
//! * **Hadoop** — hull-based: every split forwards its local convex hull,
//!   one reducer runs rotating calipers over the collected hull points
//!   (the merge is the bottleneck on circular data).
//! * **SpatialHadoop** ([`farthest_pair_spatial`]) — hull-based with the
//!   four-skyline partition filter: only hull-candidate partitions are
//!   read at all. The right plan when the hull is small (uniform,
//!   Gaussian, real map data).
//! * **Pair-pruning** ([`farthest_pair_pairs`]) — the paper's §8.2
//!   fallback for hull-heavy data (circular worst case): for every pair
//!   of partitions compute a guaranteed *lower* bound (farthest parallel
//!   sides of the two minimal MBRs) and an *upper* bound (max corner
//!   distance); any pair whose upper bound is below the greatest lower
//!   bound can never win and is never read. This avoids ever collecting
//!   the full hull on one machine.

use std::collections::HashSet;

use sh_dfs::Dfs;
use sh_geom::algorithms::closest_pair::PointPair;
use sh_geom::algorithms::convex_hull::convex_hull;
use sh_geom::algorithms::farthest_pair::farthest_pair_on_hull;
use sh_geom::Point;
use sh_mapreduce::{InputSplit, JobBuilder, MapContext, Mapper, ReduceContext, Reducer};

use crate::catalog::SpatialFile;
use crate::mrlayer::SpatialRecordReader;
use crate::opresult::{OpError, OpResult};

struct HullForwardMapper;

impl Mapper for HullForwardMapper {
    type K = u8;
    type V = (f64, f64);

    fn map(&self, _split: &InputSplit, data: &str, ctx: &mut MapContext<u8, (f64, f64)>) {
        let points = SpatialRecordReader::records::<Point>(data);
        for p in convex_hull(&points) {
            ctx.emit(1, (p.x, p.y));
        }
    }

    fn map_bytes(&self, split: &InputSplit, data: &[u8], ctx: &mut MapContext<u8, (f64, f64)>) {
        let text = SpatialRecordReader::task_text::<Point>(&split.path, data);
        self.map(split, &text, ctx);
    }
}

struct CalipersReducer;

impl Reducer for CalipersReducer {
    type K = u8;
    type V = (f64, f64);

    fn reduce(&self, _key: &u8, values: Vec<(f64, f64)>, ctx: &mut ReduceContext) {
        let pts: Vec<Point> = values.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let hull = convex_hull(&pts);
        if let Some(pair) = farthest_pair_on_hull(&hull) {
            ctx.output(format!(
                "{} {} {} {}",
                pair.a.x, pair.a.y, pair.b.x, pair.b.y
            ));
        }
    }
}

/// Hadoop farthest pair: hull forwarding + single-reducer calipers.
pub fn farthest_pair_hadoop(
    dfs: &Dfs,
    heap: &str,
    out_dir: &str,
) -> Result<OpResult<Option<PointPair>>, OpError> {
    let job = JobBuilder::new(dfs, &format!("fp-hadoop:{heap}"))
        .input_file(heap)?
        .mapper(HullForwardMapper)
        .reducer(CalipersReducer, 1)
        .output(out_dir)
        .build()?
        .run()?;
    let value = parse_pair(dfs, &job)?;
    let sel = sh_trace::Selectivity::full_scan(job.map_tasks, value.is_some() as u64 * 2);
    Ok(OpResult::new(value, vec![job]).with_selectivity(sel))
}

struct PairFarthestMapper;

impl Mapper for PairFarthestMapper {
    type K = u8;
    type V = (f64, f64, f64, f64);

    fn map(&self, split: &InputSplit, data: &str, ctx: &mut MapContext<u8, (f64, f64, f64, f64)>) {
        self.map_bytes(split, data.as_bytes(), ctx);
    }

    fn map_bytes(
        &self,
        split: &InputSplit,
        data: &[u8],
        ctx: &mut MapContext<u8, (f64, f64, f64, f64)>,
    ) {
        let (a_text, b_text) = SpatialRecordReader::task_text_pair::<Point>(split, data);
        let mut points = SpatialRecordReader::records::<Point>(&a_text);
        points.extend(SpatialRecordReader::records::<Point>(&b_text));
        let hull = convex_hull(&points);
        if let Some(pair) = farthest_pair_on_hull(&hull) {
            ctx.emit(1, (pair.a.x, pair.a.y, pair.b.x, pair.b.y));
        }
    }
}

struct MaxPairReducer;

impl Reducer for MaxPairReducer {
    type K = u8;
    type V = (f64, f64, f64, f64);

    fn reduce(&self, _key: &u8, values: Vec<(f64, f64, f64, f64)>, ctx: &mut ReduceContext) {
        let best = values
            .iter()
            .map(|&(ax, ay, bx, by)| PointPair::new(Point::new(ax, ay), Point::new(bx, by)))
            .max_by(|a, b| a.distance.total_cmp(&b.distance));
        if let Some(pair) = best {
            ctx.output(format!(
                "{} {} {} {}",
                pair.a.x, pair.a.y, pair.b.x, pair.b.y
            ));
        }
    }
}

/// SpatialHadoop farthest pair: four-skyline partition filter + local
/// hulls + single-reducer rotating calipers. The default plan (hull is
/// small on most data).
pub fn farthest_pair_spatial(
    dfs: &Dfs,
    file: &SpatialFile,
    out_dir: &str,
) -> Result<OpResult<Option<PointPair>>, OpError> {
    let keep: std::collections::HashSet<usize> =
        crate::ops::convex_hull::hull_candidate_partitions(file)
            .into_iter()
            .collect();
    let pruned = file.partitions.len() - keep.len();
    let splits = crate::mrlayer::SpatialFileSplitter::splits(dfs, file, |m| keep.contains(&m.id))?;
    let mut sel = crate::mrlayer::splitter_selectivity(file, &splits);
    let mut job = JobBuilder::new(dfs, &format!("fp-spatial:{}", file.dir))
        .input_splits(splits)
        .mapper(HullForwardMapper)
        .reducer(CalipersReducer, 1)
        .output(out_dir)
        .build()?
        .run()?;
    job.counters
        .insert("fp.partitions.pruned".into(), pruned as u64);
    let value = parse_pair(dfs, &job)?;
    sel.records_emitted = value.is_some() as u64 * 2;
    Ok(OpResult::new(value, vec![job]).with_selectivity(sel))
}

/// Pair-pruning farthest pair (the paper's fallback when the hull is too
/// large for a single-machine merge): two-pass lower/upper-bound filter
/// over partition pairs, then one map task per surviving pair.
pub fn farthest_pair_pairs(
    dfs: &Dfs,
    file: &SpatialFile,
    out_dir: &str,
) -> Result<OpResult<Option<PointPair>>, OpError> {
    let n = file.partitions.len();
    // Pass 1: greatest lower bound over all (unordered) partition pairs,
    // including a partition with itself.
    let mut glb = 0.0f64;
    for i in 0..n {
        for j in i..n {
            let a = file.partitions[i].mbr_rect();
            let b = file.partitions[j].mbr_rect();
            let lb = if i == j {
                // A minimal MBR guarantees points on opposite sides.
                a.width().max(a.height())
            } else {
                a.min_guaranteed_distance_rect(&b)
            };
            glb = glb.max(lb);
        }
    }
    // Pass 2: keep pairs whose upper bound can still reach the GLB.
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for i in 0..n {
        for j in i..n {
            let a = file.partitions[i].mbr_rect();
            let b = file.partitions[j].mbr_rect();
            if a.max_distance_rect(&b) >= glb - 1e-9 {
                pairs.push((i, j));
            }
        }
    }
    let total_pairs = n * (n + 1) / 2;

    // Build one two-partition split per surviving pair. A partition's
    // blocks may appear in several splits — that re-read is the price of
    // pairwise processing, as in the paper.
    let mut touched: HashSet<usize> = HashSet::new();
    let mut splits = Vec::with_capacity(pairs.len());
    for &(i, j) in &pairs {
        touched.insert(i);
        touched.insert(j);
        let pa = &file.partitions[i];
        let left = InputSplit::whole_file(dfs, &pa.path)?;
        if i == j {
            splits.push(left.with_partition(pa.id, pa.cell));
            continue;
        }
        let pb = &file.partitions[j];
        let right = InputSplit::whole_file(dfs, &pb.path)?;
        let first_bytes = left.len();
        let mut blocks = left.blocks;
        blocks.extend(right.blocks);
        splits.push(InputSplit {
            path: format!("{}+{}", pa.path, pb.path),
            blocks,
            tag: 0,
            partition_id: Some(i * n + j),
            mbr: Some(pa.cell),
            first_input_bytes: Some(first_bytes),
            aux: None,
        });
    }
    let mut job = JobBuilder::new(dfs, &format!("fp-spatial:{}", file.dir))
        .input_splits(splits)
        .mapper(PairFarthestMapper)
        .reducer(MaxPairReducer, 1)
        .output(out_dir)
        .build()?
        .run()?;
    job.counters
        .insert("fp.pairs.considered".into(), total_pairs as u64);
    job.counters
        .insert("fp.pairs.processed".into(), pairs.len() as u64);
    let value = parse_pair(dfs, &job)?;
    // Selectivity counts partition *pairs*: the unit the two-pass
    // bound filter prunes.
    let mut sel = sh_trace::Selectivity::of_split(total_pairs, pairs.len(), 0);
    sel.records_emitted = value.is_some() as u64 * 2;
    Ok(OpResult::new(value, vec![job]).with_selectivity(sel))
}

fn parse_pair(dfs: &Dfs, job: &sh_mapreduce::JobOutcome) -> Result<Option<PointPair>, OpError> {
    let lines = job.read_output(dfs)?;
    match lines.first() {
        None => Ok(None),
        Some(line) => {
            let v: Vec<f64> = line
                .split_ascii_whitespace()
                .map(|t| t.parse().map_err(|_| OpError::Corrupt(line.clone())))
                .collect::<Result<_, _>>()?;
            Ok(Some(
                PointPair::new(Point::new(v[0], v[1]), Point::new(v[2], v[3])).canonical(),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::single;
    use crate::storage::{build_index, upload};
    use sh_dfs::ClusterConfig;
    use sh_geom::Rect;
    use sh_index::PartitionKind;
    use sh_workload::{points, Distribution};

    fn run(dist: Distribution, seed: u64) {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let pts = points(2500, dist, &uni, seed);
        upload(&dfs, "/heap", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/heap", "/idx", PartitionKind::StrPlus)
            .unwrap()
            .value;
        let expected = single::farthest_pair_single(&pts).value.unwrap();

        let h = farthest_pair_hadoop(&dfs, "/heap", "/out-h").unwrap();
        assert!(
            (h.value.unwrap().distance - expected.distance).abs() < 1e-9,
            "hadoop {}",
            dist.name()
        );

        let s = farthest_pair_spatial(&dfs, &file, "/out-s").unwrap();
        assert!(
            (s.value.unwrap().distance - expected.distance).abs() < 1e-9,
            "spatial {}",
            dist.name()
        );
        assert!(
            s.counter("fp.partitions.pruned") > 0,
            "{}: the four-skyline filter must prune interior partitions",
            dist.name()
        );

        let pp = farthest_pair_pairs(&dfs, &file, "/out-p").unwrap();
        assert!(
            (pp.value.unwrap().distance - expected.distance).abs() < 1e-9,
            "pairs {}",
            dist.name()
        );
        assert!(
            pp.counter("fp.pairs.processed") < pp.counter("fp.pairs.considered"),
            "{}: pair pruning must fire ({} of {})",
            dist.name(),
            pp.counter("fp.pairs.processed"),
            pp.counter("fp.pairs.considered")
        );
    }

    #[test]
    fn matches_baseline_uniform() {
        run(Distribution::Uniform, 71);
    }

    #[test]
    fn matches_baseline_gaussian() {
        run(Distribution::Gaussian, 72);
    }

    #[test]
    fn matches_baseline_circular_worst_case() {
        // Circular data maximizes the hull; correctness must hold even
        // though pruning is less effective.
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let pts = points(2000, Distribution::Circular, &uni, 73);
        upload(&dfs, "/heap", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/heap", "/idx", PartitionKind::Grid)
            .unwrap()
            .value;
        let expected = single::farthest_pair_single(&pts).value.unwrap();
        let s = farthest_pair_pairs(&dfs, &file, "/out").unwrap();
        assert!((s.value.unwrap().distance - expected.distance).abs() < 1e-9);
    }
}
