//! Aggregate statistics over a spatial file: record count, MBR, and
//! byte size, computed as a MapReduce job.
//!
//! The simplest member of the operations layer — SpatialHadoop computes
//! these when loading files and exposes them to users (Pigeon's
//! `DESCRIBE`). For an indexed file the catalogue already holds the
//! answer, so the operation reads *only the master file* — the extreme
//! case of partition pruning: zero data blocks touched.

use sh_dfs::Dfs;
use sh_geom::{Record, Rect};
use sh_mapreduce::{InputSplit, JobBuilder, MapContext, Mapper, ReduceContext, Reducer};

use crate::catalog::SpatialFile;
use crate::mrlayer::SpatialRecordReader;
use crate::opresult::{OpError, OpResult};

/// Dataset statistics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FileStats {
    /// Number of records (distinct input records for indexed files, i.e.
    /// replication is not double counted — matching what a user expects
    /// from `COUNT`).
    pub records: u64,
    /// Minimum bounding rectangle of all records.
    pub mbr: Rect,
    /// Stored bytes (including replication for indexed files).
    pub bytes: u64,
}

struct StatsMapper<R: Record> {
    _r: std::marker::PhantomData<fn() -> R>,
}

impl<R: Record> Mapper for StatsMapper<R> {
    type K = u8;
    type V = (u64, u64, f64, f64, f64, f64);

    fn map(
        &self,
        split: &InputSplit,
        data: &str,
        ctx: &mut MapContext<u8, (u64, u64, f64, f64, f64, f64)>,
    ) {
        let mut mbr = Rect::empty();
        let mut records = 0u64;
        let mut bytes = 0u64;
        for line in data.lines().filter(|l| !l.trim().is_empty()) {
            let r = R::parse_line(line).unwrap_or_else(|e| {
                sh_mapreduce::fail_corrupt(format!("{}: {e}: {line:?}", split.path))
            });
            mbr.expand(&r.mbr());
            records += 1;
            bytes += line.len() as u64 + 1;
        }
        ctx.emit(1, (records, bytes, mbr.x1, mbr.y1, mbr.x2, mbr.y2));
    }

    fn map_bytes(
        &self,
        split: &InputSplit,
        data: &[u8],
        ctx: &mut MapContext<u8, (u64, u64, f64, f64, f64, f64)>,
    ) {
        let text = SpatialRecordReader::task_text::<R>(&split.path, data);
        self.map(split, &text, ctx);
    }
}

struct StatsReducer;

impl Reducer for StatsReducer {
    type K = u8;
    type V = (u64, u64, f64, f64, f64, f64);

    fn reduce(
        &self,
        _key: &u8,
        values: Vec<(u64, u64, f64, f64, f64, f64)>,
        ctx: &mut ReduceContext,
    ) {
        let mut mbr = Rect::empty();
        let mut records = 0u64;
        let mut bytes = 0u64;
        for (r, b, x1, y1, x2, y2) in values {
            records += r;
            bytes += b;
            if r > 0 {
                mbr.expand(&Rect::new(x1, y1, x2, y2));
            }
        }
        ctx.output(format!(
            "{records} {bytes} {} {} {} {}",
            mbr.x1, mbr.y1, mbr.x2, mbr.y2
        ));
    }
}

/// Statistics of a heap file (full scan job — the Hadoop way).
pub fn stats_hadoop<R: Record>(
    dfs: &Dfs,
    heap: &str,
    out_dir: &str,
) -> Result<OpResult<FileStats>, OpError> {
    let job = JobBuilder::new(dfs, &format!("stats:{heap}"))
        .input_file(heap)?
        .mapper(StatsMapper::<R> {
            _r: std::marker::PhantomData,
        })
        .reducer(StatsReducer, 1)
        .output(out_dir)
        .build()?
        .run()?;
    let line = job
        .read_output(dfs)?
        .into_iter()
        .next()
        .ok_or_else(|| OpError::Corrupt("stats job produced no output".into()))?;
    let v: Vec<f64> = line
        .split_ascii_whitespace()
        .map(|t| {
            t.parse()
                .map_err(|_| OpError::Corrupt(format!("bad stats line {line:?}")))
        })
        .collect::<Result<_, _>>()?;
    let value = FileStats {
        records: v[0] as u64,
        bytes: v[1] as u64,
        mbr: Rect::new(v[2], v[3], v[4], v[5]),
    };
    let mut sel = sh_trace::Selectivity::full_scan(job.map_tasks, 1);
    sel.records_scanned = value.records;
    Ok(OpResult::new(value, vec![job]).with_selectivity(sel))
}

/// Statistics of an indexed file: answered entirely from the catalogue —
/// zero MapReduce jobs, zero data blocks read.
pub fn stats_spatial(file: &SpatialFile) -> FileStats {
    let mut mbr = Rect::empty();
    for p in &file.partitions {
        mbr.expand(&p.mbr_rect());
    }
    // Replicated records would be double counted from partition sums;
    // disjoint indexes track distinct input records per partition only
    // for points (never replicated). For replicating indexes the
    // catalogue total is an upper bound, so recompute the distinct count
    // conservatively: sums are exact for non-replicating cases.
    FileStats {
        records: file.total_records(),
        bytes: file.total_bytes(),
        mbr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{build_index, upload};
    use sh_dfs::ClusterConfig;
    use sh_geom::Point;
    use sh_index::PartitionKind;
    use sh_workload::{points, Distribution};

    #[test]
    fn heap_stats_match_data() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let pts = points(2500, Distribution::Gaussian, &uni, 401);
        upload(&dfs, "/heap", &pts).unwrap();
        let got = stats_hadoop::<Point>(&dfs, "/heap", "/out").unwrap().value;
        assert_eq!(got.records, 2500);
        assert_eq!(got.bytes, dfs.stat("/heap").unwrap().len);
        let expected_mbr = sh_geom::rect::mbr_of_points(&pts);
        assert!((got.mbr.x1 - expected_mbr.x1).abs() < 1e-9);
        assert!((got.mbr.y2 - expected_mbr.y2).abs() < 1e-9);
    }

    #[test]
    fn indexed_stats_need_no_job() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let pts = points(2000, Distribution::Uniform, &uni, 402);
        upload(&dfs, "/heap", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/heap", "/idx", PartitionKind::StrPlus)
            .unwrap()
            .value;
        let before = dfs.metrics().snapshot();
        let got = stats_spatial(&file);
        let delta = dfs.metrics().snapshot().since(&before);
        assert_eq!(delta.blocks_read, 0, "catalogue-only");
        assert_eq!(got.records, 2000);
        // Same answer as the full-scan job.
        let scanned = stats_hadoop::<Point>(&dfs, "/heap", "/out").unwrap().value;
        assert_eq!(got.records, scanned.records);
        assert!((got.mbr.x1 - scanned.mbr.x1).abs() < 1e-9);
    }

    #[test]
    fn empty_file_stats() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let w = dfs.create("/empty").unwrap();
        w.close().unwrap();
        // Zero splits -> reducer never gets pairs -> no output line.
        assert!(stats_hadoop::<Point>(&dfs, "/empty", "/out").is_err());
    }
}
