//! Plot: render a dataset into a raster image as a MapReduce job —
//! SpatialHadoop's visualization operation (the single-level plot of its
//! HadoopViz companion system).
//!
//! Each map task rasterizes its partition into a density tile over the
//! global pixel grid (record counts per pixel); tiles are merged by
//! pixel-wise addition — first across reducers (each owns a horizontal
//! band of the image), then trivially concatenated. The distributed
//! raster is bit-for-bit identical to a single-machine rasterization.
//!
//! The output is a portable graymap (PGM, text variant): viewable
//! everywhere, no image dependency needed.

use sh_dfs::Dfs;
use sh_geom::{Record, Rect};
use sh_mapreduce::{InputSplit, JobBuilder, MapContext, Mapper, ReduceContext, Reducer};

use crate::catalog::SpatialFile;
use crate::mrlayer::{SpatialFileSplitter, SpatialRecordReader};
use crate::opresult::{OpError, OpResult};

/// A density raster: `width x height` pixel counts, row 0 at the top.
#[derive(Clone, Debug, PartialEq)]
pub struct Raster {
    /// Pixels per row.
    pub width: usize,
    /// Rows.
    pub height: usize,
    /// Row-major record counts.
    pub pixels: Vec<u32>,
}

impl Raster {
    /// All-zero raster.
    pub fn new(width: usize, height: usize) -> Raster {
        Raster {
            width,
            height,
            pixels: vec![0; width * height],
        }
    }

    /// Accumulates `other` pixel-wise.
    pub fn add(&mut self, other: &Raster) {
        assert_eq!(
            self.pixels.len(),
            other.pixels.len(),
            "raster shapes differ"
        );
        for (a, b) in self.pixels.iter_mut().zip(&other.pixels) {
            *a += *b;
        }
    }

    /// Total records plotted.
    pub fn total(&self) -> u64 {
        self.pixels.iter().map(|&v| v as u64).sum()
    }

    /// Renders as a text PGM (grayscale, log-scaled so sparse pixels stay
    /// visible, dense clusters saturate).
    pub fn to_pgm(&self) -> String {
        let max = self.pixels.iter().copied().max().unwrap_or(0).max(1);
        let scale = 255.0 / ((max as f64) + 1.0).ln();
        let mut out = format!("P2\n{} {}\n255\n", self.width, self.height);
        for row in self.pixels.chunks(self.width) {
            let mut line = String::with_capacity(self.width * 4);
            for (i, &v) in row.iter().enumerate() {
                if i > 0 {
                    line.push(' ');
                }
                let g = (((v as f64) + 1.0).ln() * scale).round() as u32;
                line.push_str(&g.min(255).to_string());
            }
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

/// Rasterizes records into `raster` (each record brightens the pixel of
/// its MBR center).
fn rasterize<R: Record>(records: impl Iterator<Item = R>, universe: &Rect, raster: &mut Raster) {
    let w = universe.width().max(1e-12);
    let h = universe.height().max(1e-12);
    for r in records {
        let c = r.mbr().center();
        let px = (((c.x - universe.x1) / w) * raster.width as f64)
            .floor()
            .clamp(0.0, raster.width as f64 - 1.0) as usize;
        // Row 0 at the top: flip y.
        let py_up = (((c.y - universe.y1) / h) * raster.height as f64)
            .floor()
            .clamp(0.0, raster.height as f64 - 1.0) as usize;
        let py = raster.height - 1 - py_up;
        raster.pixels[py * raster.width + px] += 1;
    }
}

struct PlotMapper<R: Record> {
    universe: Rect,
    width: usize,
    height: usize,
    _r: std::marker::PhantomData<fn() -> R>,
}

impl<R: Record> Mapper for PlotMapper<R> {
    type K = u32;
    /// `(row, x-offset, counts for the partition's pixel window)` — a
    /// partition only ships the span of columns it actually lit, like
    /// HadoopViz tiles.
    type V = (u32, Vec<u32>);

    fn map(&self, split: &InputSplit, data: &str, ctx: &mut MapContext<u32, (u32, Vec<u32>)>) {
        let mut tile = Raster::new(self.width, self.height);
        let records = data.lines().filter(|l| !l.trim().is_empty()).map(|l| {
            R::parse_line(l).unwrap_or_else(|e| {
                sh_mapreduce::fail_corrupt(format!("{}: {e}: {l:?}", split.path))
            })
        });
        rasterize(records, &self.universe, &mut tile);
        for (row_ix, row) in tile.pixels.chunks(self.width).enumerate() {
            let Some(first) = row.iter().position(|&v| v > 0) else {
                continue;
            };
            let last = row.iter().rposition(|&v| v > 0).unwrap_or(first);
            ctx.emit(row_ix as u32, (first as u32, row[first..=last].to_vec()));
        }
    }

    fn map_bytes(
        &self,
        split: &InputSplit,
        data: &[u8],
        ctx: &mut MapContext<u32, (u32, Vec<u32>)>,
    ) {
        let text = SpatialRecordReader::task_text::<R>(&split.path, data);
        self.map(split, &text, ctx);
    }
}

struct RowMergeReducer {
    width: usize,
}

impl Reducer for RowMergeReducer {
    type K = u32;
    type V = (u32, Vec<u32>);

    fn reduce(&self, row: &u32, values: Vec<(u32, Vec<u32>)>, ctx: &mut ReduceContext) {
        let mut merged = vec![0u32; self.width];
        for (offset, span) in values {
            for (i, v) in span.into_iter().enumerate() {
                merged[offset as usize + i] += v;
            }
        }
        let mut line = format!("ROW {row}");
        for v in merged {
            line.push(' ');
            line.push_str(&v.to_string());
        }
        ctx.output(line);
    }
}

/// Plots an indexed file into a `width x height` density raster and
/// writes the PGM image to `{out_dir}/image.pgm` in the DFS.
pub fn plot_spatial<R: Record>(
    dfs: &Dfs,
    file: &SpatialFile,
    width: usize,
    height: usize,
    out_dir: &str,
) -> Result<OpResult<Raster>, OpError> {
    let splits = SpatialFileSplitter::all_splits(dfs, file)?;
    let mut sel = crate::mrlayer::splitter_selectivity(file, &splits);
    let job = JobBuilder::new(dfs, &format!("plot:{}", file.dir))
        .input_splits(splits)
        .mapper(PlotMapper::<R> {
            universe: file.universe,
            width,
            height,
            _r: std::marker::PhantomData,
        })
        .pair_size(move |_, (_, v): &(u32, Vec<u32>)| 8 + 4 * v.len())
        .reducer(
            RowMergeReducer { width },
            dfs.config().total_reduce_slots().clamp(1, height.max(1)),
        )
        .output(out_dir)
        .build()?
        .run()?;
    // Assemble the raster from the per-row outputs.
    let mut raster = Raster::new(width, height);
    for line in job.read_output(dfs)? {
        let mut it = line.split_ascii_whitespace();
        match it.next() {
            Some("ROW") => {}
            other => return Err(OpError::Corrupt(format!("bad plot row tag {other:?}"))),
        }
        let row: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| OpError::Corrupt("bad plot row index".into()))?;
        for (col, tok) in it.enumerate() {
            let v: u32 = tok
                .parse()
                .map_err(|_| OpError::Corrupt(format!("bad pixel {tok:?}")))?;
            raster.pixels[row * width + col] = v;
        }
    }
    dfs.write_string(&format!("{out_dir}/image.pgm"), &raster.to_pgm())?;
    sel.records_emitted = raster.total();
    Ok(OpResult::new(raster, vec![job]).with_selectivity(sel))
}

// ---------------------------------------------------------- tile pyramid

/// A multilevel tile pyramid (web-map style): level `l` covers the
/// universe with `2^l x 2^l` tiles of `tile_px x tile_px` pixels each.
/// Only non-empty tiles are materialized.
#[derive(Clone, Debug, PartialEq)]
pub struct TilePyramid {
    /// Number of levels (level ids `0..levels`).
    pub levels: usize,
    /// Pixels per tile side.
    pub tile_px: usize,
    /// Non-empty tiles keyed by `(level, tile_x, tile_y)`; `tile_y` 0 at
    /// the top.
    pub tiles: std::collections::BTreeMap<(u8, u32, u32), Raster>,
}

impl TilePyramid {
    /// Records plotted at a level (identical across levels).
    pub fn total_at(&self, level: u8) -> u64 {
        self.tiles
            .iter()
            .filter(|((l, _, _), _)| *l == level)
            .map(|(_, t)| t.total())
            .sum()
    }
}

struct PyramidMapper<R: Record> {
    universe: Rect,
    levels: usize,
    tile_px: usize,
    _r: std::marker::PhantomData<fn() -> R>,
}

impl<R: Record> Mapper for PyramidMapper<R> {
    type K = (u8, u32, u32);
    type V = Vec<u32>;

    fn map(&self, split: &InputSplit, data: &str, ctx: &mut MapContext<(u8, u32, u32), Vec<u32>>) {
        use std::collections::HashMap;
        let w = self.universe.width().max(1e-12);
        let h = self.universe.height().max(1e-12);
        let mut tiles: HashMap<(u8, u32, u32), Vec<u32>> = HashMap::new();
        for line in data.lines().filter(|l| !l.trim().is_empty()) {
            let c = R::parse_line(line)
                .unwrap_or_else(|e| {
                    sh_mapreduce::fail_corrupt(format!("{}: {e}: {line:?}", split.path))
                })
                .mbr()
                .center();
            for level in 0..self.levels {
                let res = (1usize << level) * self.tile_px; // pixels per axis
                let px = (((c.x - self.universe.x1) / w) * res as f64)
                    .floor()
                    .clamp(0.0, res as f64 - 1.0) as usize;
                let py_up = (((c.y - self.universe.y1) / h) * res as f64)
                    .floor()
                    .clamp(0.0, res as f64 - 1.0) as usize;
                let py = res - 1 - py_up; // row 0 at the top
                let key = (
                    level as u8,
                    (px / self.tile_px) as u32,
                    (py / self.tile_px) as u32,
                );
                let tile = tiles
                    .entry(key)
                    .or_insert_with(|| vec![0; self.tile_px * self.tile_px]);
                tile[(py % self.tile_px) * self.tile_px + (px % self.tile_px)] += 1;
            }
        }
        for (key, tile) in tiles {
            ctx.emit(key, tile);
        }
    }

    fn map_bytes(
        &self,
        split: &InputSplit,
        data: &[u8],
        ctx: &mut MapContext<(u8, u32, u32), Vec<u32>>,
    ) {
        let text = SpatialRecordReader::task_text::<R>(&split.path, data);
        self.map(split, &text, ctx);
    }
}

struct TileMergeReducer {
    tile_px: usize,
}

impl Reducer for TileMergeReducer {
    type K = (u8, u32, u32);
    type V = Vec<u32>;

    fn reduce(&self, key: &(u8, u32, u32), values: Vec<Vec<u32>>, ctx: &mut ReduceContext) {
        let mut merged = vec![0u32; self.tile_px * self.tile_px];
        for v in values {
            for (a, b) in merged.iter_mut().zip(&v) {
                *a += *b;
            }
        }
        let mut line = format!("TILE {} {} {}", key.0, key.1, key.2);
        for v in merged {
            line.push(' ');
            line.push_str(&v.to_string());
        }
        ctx.output(line);
    }
}

/// Renders the multilevel tile pyramid of an indexed file; each tile is
/// also written as `{out_dir}/tile-{level}-{x}-{y}.pgm`.
pub fn plot_pyramid<R: Record>(
    dfs: &Dfs,
    file: &SpatialFile,
    levels: usize,
    tile_px: usize,
    out_dir: &str,
) -> Result<OpResult<TilePyramid>, OpError> {
    let splits = SpatialFileSplitter::all_splits(dfs, file)?;
    let mut sel = crate::mrlayer::splitter_selectivity(file, &splits);
    let job = JobBuilder::new(dfs, &format!("plot-pyramid:{}", file.dir))
        .input_splits(splits)
        .mapper(PyramidMapper::<R> {
            universe: file.universe,
            levels,
            tile_px,
            _r: std::marker::PhantomData,
        })
        .pair_size(move |_, v: &Vec<u32>| 9 + 4 * v.len())
        .reducer(
            TileMergeReducer { tile_px },
            dfs.config().total_reduce_slots().max(1),
        )
        .output(out_dir)
        .build()?
        .run()?;
    let mut pyramid = TilePyramid {
        levels,
        tile_px,
        tiles: std::collections::BTreeMap::new(),
    };
    for line in job.read_output(dfs)? {
        let mut it = line.split_ascii_whitespace();
        match it.next() {
            Some("TILE") => {}
            other => return Err(OpError::Corrupt(format!("bad tile tag {other:?}"))),
        }
        let parse = |t: Option<&str>| -> Result<u32, OpError> {
            t.and_then(|t| t.parse().ok())
                .ok_or_else(|| OpError::Corrupt(format!("bad tile header in {line:?}")))
        };
        let level = parse(it.next())? as u8;
        let tx = parse(it.next())?;
        let ty = parse(it.next())?;
        let mut raster = Raster::new(tile_px, tile_px);
        for (i, tok) in it.enumerate() {
            raster.pixels[i] = tok
                .parse()
                .map_err(|_| OpError::Corrupt(format!("bad tile pixel {tok:?}")))?;
        }
        dfs.write_string(
            &format!("{out_dir}/tile-{level}-{tx}-{ty}.pgm"),
            &raster.to_pgm(),
        )?;
        pyramid.tiles.insert((level, tx, ty), raster);
    }
    sel.records_emitted = pyramid.tiles.len() as u64;
    Ok(OpResult::new(pyramid, vec![job]).with_selectivity(sel))
}

/// Single-machine rasterization baseline.
pub fn plot_single<R: Record>(
    records: &[R],
    universe: &Rect,
    width: usize,
    height: usize,
) -> Raster {
    let mut raster = Raster::new(width, height);
    rasterize(records.iter().cloned(), universe, &mut raster);
    raster
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{build_index, upload};
    use sh_dfs::ClusterConfig;
    use sh_geom::Point;
    use sh_index::PartitionKind;
    use sh_workload::{osm_like_points, points, Distribution};

    #[test]
    fn distributed_raster_matches_single_machine_exactly() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let pts = osm_like_points(4000, &uni, 6, 501);
        upload(&dfs, "/heap", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/heap", "/idx", PartitionKind::Grid)
            .unwrap()
            .value;
        let got = plot_spatial::<Point>(&dfs, &file, 64, 48, "/plot").unwrap();
        // The distributed universe comes from the sample-derived index
        // universe; use the same for the baseline.
        let expected = plot_single(&pts, &file.universe, 64, 48);
        assert_eq!(got.value, expected, "bit-for-bit identical raster");
        assert_eq!(got.value.total(), pts.len() as u64);
        assert!(dfs.exists("/plot/image.pgm"));
    }

    #[test]
    fn pgm_is_well_formed() {
        let mut r = Raster::new(4, 2);
        r.pixels[0] = 10;
        r.pixels[7] = 1;
        let pgm = r.to_pgm();
        let mut lines = pgm.lines();
        assert_eq!(lines.next(), Some("P2"));
        assert_eq!(lines.next(), Some("4 2"));
        assert_eq!(lines.next(), Some("255"));
        let rows: Vec<&str> = lines.collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].split_whitespace().count(), 4);
        // Brightest pixel maps near 255; empty pixels to 0.
        let first: Vec<u32> = rows[0]
            .split_whitespace()
            .map(|t| t.parse().unwrap())
            .collect();
        assert!(first[0] > 200);
        assert_eq!(first[1], 0);
    }

    #[test]
    fn raster_accumulation() {
        let mut a = Raster::new(2, 2);
        let mut b = Raster::new(2, 2);
        a.pixels[0] = 1;
        b.pixels[0] = 2;
        b.pixels[3] = 5;
        a.add(&b);
        assert_eq!(a.pixels, vec![3, 0, 0, 5]);
        assert_eq!(a.total(), 8);
    }

    #[test]
    fn rect_records_plot_by_center() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let rs = sh_workload::rects(800, &uni, 40.0, 502);
        upload(&dfs, "/rects", &rs).unwrap();
        let file = build_index::<Rect>(&dfs, "/rects", "/ridx", PartitionKind::Str)
            .unwrap()
            .value;
        let got = plot_spatial::<Rect>(&dfs, &file, 32, 32, "/plot").unwrap();
        // STR never replicates, so every record appears exactly once.
        assert_eq!(got.value.total(), rs.len() as u64);
        let expected = plot_single(&rs, &file.universe, 32, 32);
        assert_eq!(got.value, expected);
    }

    #[test]
    fn pyramid_levels_are_consistent() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let pts = osm_like_points(3000, &uni, 5, 504);
        upload(&dfs, "/heap", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/heap", "/idx", PartitionKind::StrPlus)
            .unwrap()
            .value;
        let levels = 3usize;
        let tile_px = 16usize;
        let got = plot_pyramid::<Point>(&dfs, &file, levels, tile_px, "/pyr").unwrap();
        // (1) Every level plots every record exactly once.
        for l in 0..levels as u8 {
            assert_eq!(got.value.total_at(l), pts.len() as u64, "level {l}");
        }
        // (2) Level 0 equals the flat plot at the same resolution.
        let flat = plot_single(&pts, &file.universe, tile_px, tile_px);
        assert_eq!(got.value.tiles[&(0, 0, 0)], flat);
        // (3) Parent pixels equal the sum of their 2x2 children: compose
        // full-resolution rasters per level and downsample.
        let full = |level: u8| -> Raster {
            let res = (1usize << level) * tile_px;
            let mut img = Raster::new(res, res);
            for ((l, tx, ty), tile) in &got.value.tiles {
                if *l != level {
                    continue;
                }
                for py in 0..tile_px {
                    for px in 0..tile_px {
                        let gx = *tx as usize * tile_px + px;
                        let gy = *ty as usize * tile_px + py;
                        img.pixels[gy * res + gx] = tile.pixels[py * tile_px + px];
                    }
                }
            }
            img
        };
        for level in 0..(levels as u8 - 1) {
            let parent = full(level);
            let child = full(level + 1);
            let res = parent.width;
            for y in 0..res {
                for x in 0..res {
                    let sum = child.pixels[(2 * y) * 2 * res + 2 * x]
                        + child.pixels[(2 * y) * 2 * res + 2 * x + 1]
                        + child.pixels[(2 * y + 1) * 2 * res + 2 * x]
                        + child.pixels[(2 * y + 1) * 2 * res + 2 * x + 1];
                    assert_eq!(
                        parent.pixels[y * res + x],
                        sum,
                        "level {level} pixel ({x},{y})"
                    );
                }
            }
        }
        // Tile files exist for non-empty tiles.
        assert!(dfs.exists("/pyr/tile-0-0-0.pgm"));
    }

    #[test]
    fn uniform_data_fills_the_canvas() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let pts = points(5000, Distribution::Uniform, &uni, 503);
        upload(&dfs, "/heap", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/heap", "/idx", PartitionKind::StrPlus)
            .unwrap()
            .value;
        let got = plot_spatial::<Point>(&dfs, &file, 16, 16, "/plot").unwrap();
        let occupied = got.value.pixels.iter().filter(|&&v| v > 0).count();
        assert_eq!(occupied, 256, "every pixel hit by uniform data");
    }
}
