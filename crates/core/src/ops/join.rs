//! Spatial join: all intersecting pairs between two rectangle datasets.
//!
//! * **SJMR** (Spatial Join with MapReduce) — the Hadoop algorithm for
//!   unindexed inputs: mappers replicate each record to the uniform grid
//!   cells it overlaps, one reducer per cell runs a plane-sweep join, and
//!   the reference-point rule keeps each result pair reported once.
//! * **Distributed join (DJ)** — the SpatialHadoop algorithm for two
//!   *indexed* inputs: the driver matches overlapping partition pairs of
//!   the two global indexes, one map task joins each pair with a plane
//!   sweep — no shuffle at all.

use sh_dfs::Dfs;
use sh_geom::algorithms::plane_sweep::{plane_sweep_join, plane_sweep_join_into};
use sh_geom::Rect;
use sh_index::grid::GridPartitioning;
use sh_index::owns_point;
use sh_mapreduce::{
    InputSplit, JobBuilder, JobOutcome, MapContext, Mapper, ReduceContext, Reducer,
};

use crate::catalog::SpatialFile;
use crate::codec::{decode_pair, write_pair};
use crate::mrlayer::{reference_point, Partition, SpatialRecordReader};
use crate::opresult::{OpError, OpResult};
use sh_trace::Selectivity;

// ------------------------------------------------------------------ SJMR

struct SjmrMapper {
    grid: GridPartitioning,
}

impl Mapper for SjmrMapper {
    type K = u64;
    type V = (u32, [f64; 4]);

    fn map(&self, split: &InputSplit, data: &str, ctx: &mut MapContext<u64, (u32, [f64; 4])>) {
        let replicated = ctx.register_counter("sjmr.replicated");
        for r in SpatialRecordReader::records::<Rect>(data) {
            for cell in self.grid.assign(&r) {
                ctx.emit(cell as u64, (split.tag, [r.x1, r.y1, r.x2, r.y2]));
                ctx.inc(replicated, 1);
            }
        }
    }

    fn map_bytes(
        &self,
        split: &InputSplit,
        data: &[u8],
        ctx: &mut MapContext<u64, (u32, [f64; 4])>,
    ) {
        let text = SpatialRecordReader::task_text::<Rect>(&split.path, data);
        self.map(split, &text, ctx);
    }
}

struct SjmrReducer {
    grid: GridPartitioning,
}

impl Reducer for SjmrReducer {
    type K = u64;
    type V = (u32, [f64; 4]);

    fn reduce(&self, cell_id: &u64, values: Vec<(u32, [f64; 4])>, ctx: &mut ReduceContext) {
        let cell = self.grid.cell(*cell_id as usize);
        let universe = self.grid.universe;
        let mut left = Vec::new();
        let mut right = Vec::new();
        for (tag, c) in values {
            let r = Rect::new(c[0], c[1], c[2], c[3]);
            if tag == 0 {
                left.push(r);
            } else {
                right.push(r);
            }
        }
        let mut results = 0u64;
        let mut line = String::with_capacity(80);
        plane_sweep_join_into(&left, &right, |i, j| {
            // Reference-point rule: only the grid cell owning the
            // bottom-left corner of the intersection reports the pair.
            if let Some(rp) = reference_point(&left[i], &right[j]) {
                if owns_point(&cell, &rp, &universe) {
                    line.clear();
                    write_pair(&mut line, &left[i], &right[j]);
                    ctx.output(line.clone());
                    results += 1;
                }
            }
        });
        ctx.counter("join.results", results);
    }
}

/// SJMR over two heap files. `universe` must cover both inputs;
/// `grid_cells` controls the partitioning grain (≈ one cell per reducer).
pub fn sjmr(
    dfs: &Dfs,
    left: &str,
    right: &str,
    universe: &Rect,
    grid_cells: usize,
    out_dir: &str,
) -> Result<OpResult<Vec<(Rect, Rect)>>, OpError> {
    let grid = GridPartitioning::build(*universe, grid_cells);
    let mut splits = InputSplit::from_file(dfs, left)?;
    splits.extend(
        InputSplit::from_file(dfs, right)?
            .into_iter()
            .map(|s| s.with_tag(1)),
    );
    let reducers = grid.len().min(dfs.config().total_reduce_slots()).max(1);
    let job = JobBuilder::new(dfs, &format!("sjmr:{left}:{right}"))
        .input_splits(splits)
        .mapper(SjmrMapper { grid: grid.clone() })
        .pair_size(|_, _| 8 + 4 + 32)
        .reducer(SjmrReducer { grid }, reducers)
        .output(out_dir)
        .build()?
        .run()?;
    let value = parse_output(dfs, &job)?;
    let sel = Selectivity::full_scan(job.map_tasks, value.len() as u64);
    Ok(OpResult::new(value, vec![job]).with_selectivity(sel))
}

// ------------------------------------------------------- distributed join

struct DjMapper {
    dfs: Dfs,
    dedup_left: bool,
    dedup_right: bool,
}

impl Mapper for DjMapper {
    type K = u8;
    type V = u8;

    fn map(&self, split: &InputSplit, data: &str, ctx: &mut MapContext<u8, u8>) {
        self.map_bytes(split, data.as_bytes(), ctx);
    }

    fn map_bytes(&self, split: &InputSplit, data: &[u8], ctx: &mut MapContext<u8, u8>) {
        let cache_hits = ctx.register_counter("cache.hits");
        let cache_misses = ctx.register_counter("cache.misses");
        let (left_data, right_data) = split.split_data_bytes(data);
        // A partition typically appears in several overlapping pairs, so
        // each side goes through the per-node cache independently.
        let (path_a, path_b) = split
            .path
            .split_once('+')
            .expect("dj split path is pathA+pathB");
        let (lpart, left_hit) =
            SpatialRecordReader::task_open_indexed_bytes::<Rect>(&self.dfs, path_a, left_data);
        let (rpart, right_hit) =
            SpatialRecordReader::task_open_indexed_bytes::<Rect>(&self.dfs, path_b, right_data);
        for hit in [left_hit, right_hit] {
            ctx.inc(if hit { cache_hits } else { cache_misses }, 1);
        }
        // The plane sweep wants rect slices; binary partitions
        // materialize theirs from the coordinate columns, spread across
        // any idle worker slots for big partitions.
        let (left_owned, right_owned);
        let mut extra_slots = 0;
        let left: &[Rect] = match &lpart {
            Partition::Text(p) => &p.0,
            Partition::Binary(_) => {
                let (recs, extra) = lpart.records_par(&self.dfs);
                extra_slots += extra;
                left_owned = recs;
                &left_owned
            }
        };
        let right: &[Rect] = match &rpart {
            Partition::Text(p) => &p.0,
            Partition::Binary(_) => {
                let (recs, extra) = rpart.records_par(&self.dfs);
                extra_slots += extra;
                right_owned = recs;
                &right_owned
            }
        };
        if extra_slots > 0 {
            let par = ctx.register_counter("scan.parallel.extra_slots");
            ctx.inc(par, extra_slots as u64);
        }
        // aux carries: cellA(4) cellB(4) uniA(4) uniB(4)
        let aux: Vec<f64> = split
            .aux
            .as_deref()
            .expect("dj split carries cell metadata")
            .split_ascii_whitespace()
            .map(|t| t.parse().expect("dj aux"))
            .collect();
        let cell_a = Rect::new(aux[0], aux[1], aux[2], aux[3]);
        let cell_b = Rect::new(aux[4], aux[5], aux[6], aux[7]);
        let uni_a = Rect::new(aux[8], aux[9], aux[10], aux[11]);
        let uni_b = Rect::new(aux[12], aux[13], aux[14], aux[15]);
        let mut results = 0u64;
        let mut line = String::with_capacity(80);
        plane_sweep_join_into(left, right, |i, j| {
            if let Some(rp) = reference_point(&left[i], &right[j]) {
                if self.dedup_left && !owns_point(&cell_a, &rp, &uni_a) {
                    return;
                }
                if self.dedup_right && !owns_point(&cell_b, &rp, &uni_b) {
                    return;
                }
                line.clear();
                write_pair(&mut line, &left[i], &right[j]);
                ctx.output(line.clone());
                results += 1;
            }
        });
        ctx.counter("join.results", results);
    }
}

/// Driver-side filter step shared by all distributed-join flavours:
/// build one two-input split per partition pair that can share a result.
fn pair_splits(dfs: &Dfs, a: &SpatialFile, b: &SpatialFile) -> Result<Vec<InputSplit>, OpError> {
    // Pair partitions whose *effective regions*
    // can share a result. For a disjoint index the effective region is
    // the partition cell (every record is replicated to every cell it
    // overlaps, and the reference-point rule assigns each result pair to
    // the cell owning its reference point); for an overlapping index it
    // is the data MBR. When both sides are disjoint, a zero-area (edge)
    // intersection can never own a reference point under the half-open
    // rule, so such pairs are pruned too — this is what keeps the pair
    // count near-linear instead of pairing every cell with all its
    // neighbours.
    let both_disjoint = a.is_disjoint() && b.is_disjoint();
    let region = |f: &SpatialFile, m: &sh_index::PartitionMeta| {
        if f.is_disjoint() {
            m.cell_rect()
        } else {
            m.mbr_rect()
        }
    };
    let regions_a: Vec<Rect> = a.partitions.iter().map(|m| region(a, m)).collect();
    let regions_b: Vec<Rect> = b.partitions.iter().map(|m| region(b, m)).collect();
    let mut pairs = plane_sweep_join(&regions_a, &regions_b);
    if both_disjoint {
        pairs.retain(|&(i, j)| {
            match regions_a[i].intersection(&regions_b[j]) {
                None => false,
                Some(x) if x.area() > 0.0 => true,
                // Degenerate edge intersections only matter on the
                // closed universe maximum boundaries.
                Some(x) => {
                    (x.width() == 0.0 && (x.x1 >= a.universe.x2 || x.x1 >= b.universe.x2))
                        || (x.height() == 0.0 && (x.y1 >= a.universe.y2 || x.y1 >= b.universe.y2))
                }
            }
        });
    }

    let mut splits = Vec::with_capacity(pairs.len());
    for (i, j) in &pairs {
        let pa = &a.partitions[*i];
        let pb = &b.partitions[*j];
        let left = InputSplit::whole_file(dfs, &pa.path)?;
        let right = InputSplit::whole_file(dfs, &pb.path)?;
        let first_bytes = left.len();
        let mut blocks = left.blocks;
        blocks.extend(right.blocks);
        let aux = format!(
            "{} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
            pa.cell[0],
            pa.cell[1],
            pa.cell[2],
            pa.cell[3],
            pb.cell[0],
            pb.cell[1],
            pb.cell[2],
            pb.cell[3],
            a.universe.x1,
            a.universe.y1,
            a.universe.x2,
            a.universe.y2,
            b.universe.x1,
            b.universe.y1,
            b.universe.x2,
            b.universe.y2,
        );
        splits.push(InputSplit {
            path: format!("{}+{}", pa.path, pb.path),
            blocks,
            tag: 0,
            partition_id: Some(i * b.partitions.len() + j),
            mbr: Some(pa.cell),
            first_input_bytes: Some(first_bytes),
            aux: Some(aux),
        });
    }
    Ok(splits)
}

/// Distributed join over two indexed files (the SpatialHadoop operation).
pub fn distributed_join(
    dfs: &Dfs,
    a: &SpatialFile,
    b: &SpatialFile,
    out_dir: &str,
) -> Result<OpResult<Vec<(Rect, Rect)>>, OpError> {
    let splits = pair_splits(dfs, a, b)?;
    let total_pairs = a.partitions.len() * b.partitions.len();
    let processed = splits.len();
    let mut job = JobBuilder::new(dfs, &format!("dj:{}:{}", a.dir, b.dir))
        .input_splits(splits)
        .mapper(DjMapper {
            dfs: dfs.clone(),
            dedup_left: a.is_disjoint(),
            dedup_right: b.is_disjoint(),
        })
        .output(out_dir)
        .map_only()?
        .run()?;
    job.counters
        .insert("join.pairs.considered".into(), total_pairs as u64);
    job.counters
        .insert("join.pairs.processed".into(), processed as u64);
    let value = parse_output(dfs, &job)?;
    // Selectivity counts partition *pairs*: the unit the filter step
    // prunes in a distributed join.
    let mut sel = Selectivity::of_split(total_pairs, processed, 0);
    sel.records_emitted = value.len() as u64;
    Ok(OpResult::new(value, vec![job]).with_selectivity(sel))
}

// -------------------------------------------------- polygon overlap join

struct PolygonDjMapper {
    dedup_left: bool,
    dedup_right: bool,
}

impl Mapper for PolygonDjMapper {
    type K = u8;
    type V = u8;

    fn map(&self, split: &InputSplit, data: &str, ctx: &mut MapContext<u8, u8>) {
        use sh_geom::Polygon;
        let (left_text, right_text) = split.split_data(data);
        let left = SpatialRecordReader::records::<Polygon>(left_text);
        let right = SpatialRecordReader::records::<Polygon>(right_text);
        let left_mbrs: Vec<Rect> = left.iter().map(sh_geom::Record::mbr).collect();
        let right_mbrs: Vec<Rect> = right.iter().map(sh_geom::Record::mbr).collect();
        let aux: Vec<f64> = split
            .aux
            .as_deref()
            .expect("dj split carries cell metadata")
            .split_ascii_whitespace()
            .map(|t| t.parse().expect("dj aux"))
            .collect();
        let cell_a = Rect::new(aux[0], aux[1], aux[2], aux[3]);
        let cell_b = Rect::new(aux[4], aux[5], aux[6], aux[7]);
        let uni_a = Rect::new(aux[8], aux[9], aux[10], aux[11]);
        let uni_b = Rect::new(aux[12], aux[13], aux[14], aux[15]);
        let mut results = 0u64;
        // MBR plane sweep as the filter, exact polygon test as the
        // refinement — the classic filter-and-refine join.
        plane_sweep_join_into(&left_mbrs, &right_mbrs, |i, j| {
            if let Some(rp) = reference_point(&left_mbrs[i], &right_mbrs[j]) {
                if self.dedup_left && !owns_point(&cell_a, &rp, &uni_a) {
                    return;
                }
                if self.dedup_right && !owns_point(&cell_b, &rp, &uni_b) {
                    return;
                }
                ctx.counter("join.refine.candidates", 1);
                if left[i].intersects(&right[j]) {
                    ctx.output(format!(
                        "{} | {}",
                        sh_geom::Record::to_line(&left[i]),
                        sh_geom::Record::to_line(&right[j])
                    ));
                    results += 1;
                }
            }
        });
        ctx.counter("join.results", results);
    }
}

/// Distributed *polygon* overlap join over two indexed polygon files —
/// the paper's motivating workload (e.g. lakes x parks): MBR sweep as
/// the filter step, exact polygon intersection as the refinement.
pub fn polygon_join(
    dfs: &Dfs,
    a: &SpatialFile,
    b: &SpatialFile,
    out_dir: &str,
) -> Result<OpResult<Vec<(sh_geom::Polygon, sh_geom::Polygon)>>, OpError> {
    let splits = pair_splits(dfs, a, b)?;
    let total_pairs = a.partitions.len() * b.partitions.len();
    let processed = splits.len();
    let job = JobBuilder::new(dfs, &format!("polyjoin:{}:{}", a.dir, b.dir))
        .input_splits(splits)
        .mapper(PolygonDjMapper {
            dedup_left: a.is_disjoint(),
            dedup_right: b.is_disjoint(),
        })
        .output(out_dir)
        .map_only()?
        .run()?;
    let mut value = Vec::new();
    for line in job.read_output(dfs)? {
        let (l, r) = line
            .split_once(" | ")
            .ok_or_else(|| OpError::Corrupt(format!("bad polygon pair: {line:?}")))?;
        value.push((
            <sh_geom::Polygon as sh_geom::Record>::parse_line(l).map_err(OpError::from)?,
            <sh_geom::Polygon as sh_geom::Record>::parse_line(r).map_err(OpError::from)?,
        ));
    }
    let mut sel = Selectivity::of_split(total_pairs, processed, 0);
    sel.records_emitted = value.len() as u64;
    Ok(OpResult::new(value, vec![job]).with_selectivity(sel))
}

fn parse_output(dfs: &Dfs, job: &JobOutcome) -> Result<Vec<(Rect, Rect)>, OpError> {
    job.read_output(dfs)?
        .iter()
        .map(|l| decode_pair(l))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::single;
    use crate::storage::{build_index, upload};
    use sh_dfs::ClusterConfig;
    use sh_index::PartitionKind;
    use sh_workload::rects;

    fn canon(mut v: Vec<(Rect, Rect)>) -> Vec<String> {
        let mut out: Vec<String> = v
            .drain(..)
            .map(|(a, b)| crate::codec::encode_pair(&a, &b))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    fn expected_pairs(left: &[Rect], right: &[Rect]) -> Vec<(Rect, Rect)> {
        single::spatial_join(left, right)
            .value
            .into_iter()
            .map(|(i, j)| (left[i], right[j]))
            .collect()
    }

    #[test]
    fn sjmr_matches_baseline_without_duplicates() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let left = rects(800, &uni, 40.0, 1);
        let right = rects(800, &uni, 40.0, 2);
        upload(&dfs, "/l", &left).unwrap();
        upload(&dfs, "/r", &right).unwrap();
        let got = sjmr(&dfs, "/l", "/r", &uni, 16, "/out").unwrap();
        let expected = expected_pairs(&left, &right);
        assert!(!expected.is_empty());
        // Exact multiset equality: reference point rule removed dups.
        let mut got_lines: Vec<String> = got
            .value
            .iter()
            .map(|(a, b)| crate::codec::encode_pair(a, b))
            .collect();
        got_lines.sort();
        let mut exp_lines: Vec<String> = expected
            .iter()
            .map(|(a, b)| crate::codec::encode_pair(a, b))
            .collect();
        exp_lines.sort();
        assert_eq!(got_lines, exp_lines);
        assert!(
            got.counter("sjmr.replicated") > 1600 - 1,
            "replication happened"
        );
    }

    #[test]
    fn distributed_join_matches_baseline_disjoint_indexes() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let left = rects(700, &uni, 50.0, 3);
        let right = rects(700, &uni, 50.0, 4);
        upload(&dfs, "/l", &left).unwrap();
        upload(&dfs, "/r", &right).unwrap();
        let fa = build_index::<Rect>(&dfs, "/l", "/ia", PartitionKind::Grid)
            .unwrap()
            .value;
        let fb = build_index::<Rect>(&dfs, "/r", "/ib", PartitionKind::Grid)
            .unwrap()
            .value;
        let got = distributed_join(&dfs, &fa, &fb, "/out").unwrap();
        assert_eq!(
            canon(got.value.clone()),
            canon(expected_pairs(&left, &right))
        );
        // Exactly once each (no dup elimination needed in canon).
        assert_eq!(got.value.len(), expected_pairs(&left, &right).len());
    }

    #[test]
    fn distributed_join_matches_baseline_overlapping_indexes() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let left = rects(600, &uni, 30.0, 5);
        let right = rects(600, &uni, 30.0, 6);
        upload(&dfs, "/l", &left).unwrap();
        upload(&dfs, "/r", &right).unwrap();
        let fa = build_index::<Rect>(&dfs, "/l", "/ia", PartitionKind::Str)
            .unwrap()
            .value;
        let fb = build_index::<Rect>(&dfs, "/r", "/ib", PartitionKind::Str)
            .unwrap()
            .value;
        let got = distributed_join(&dfs, &fa, &fb, "/out").unwrap();
        assert_eq!(got.value.len(), expected_pairs(&left, &right).len());
        assert_eq!(
            canon(got.value.clone()),
            canon(expected_pairs(&left, &right))
        );
        // The filter step pruned some partition pairs.
        assert!(got.counter("join.pairs.processed") < got.counter("join.pairs.considered"));
    }

    #[test]
    fn mixed_disjoint_and_overlapping() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let left = rects(500, &uni, 40.0, 7);
        let right = rects(500, &uni, 40.0, 8);
        upload(&dfs, "/l", &left).unwrap();
        upload(&dfs, "/r", &right).unwrap();
        let fa = build_index::<Rect>(&dfs, "/l", "/ia", PartitionKind::StrPlus)
            .unwrap()
            .value;
        let fb = build_index::<Rect>(&dfs, "/r", "/ib", PartitionKind::Hilbert)
            .unwrap()
            .value;
        let got = distributed_join(&dfs, &fa, &fb, "/out").unwrap();
        assert_eq!(got.value.len(), expected_pairs(&left, &right).len());
    }

    #[test]
    fn polygon_join_matches_exact_baseline() {
        use sh_geom::Polygon;
        use sh_workload::osm_like_polygons;
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let lakes = osm_like_polygons(150, &uni, 25.0, 10);
        let parks = osm_like_polygons(150, &uni, 25.0, 11);
        upload(&dfs, "/lakes", &lakes).unwrap();
        upload(&dfs, "/parks", &parks).unwrap();
        let fa = build_index::<Polygon>(&dfs, "/lakes", "/il", PartitionKind::Grid)
            .unwrap()
            .value;
        let fb = build_index::<Polygon>(&dfs, "/parks", "/ip", PartitionKind::Grid)
            .unwrap()
            .value;
        let got = polygon_join(&dfs, &fa, &fb, "/out").unwrap();
        // Exact baseline: nested loop with the true polygon test.
        let mut expected = 0usize;
        for l in &lakes {
            for p in &parks {
                if l.intersects(p) {
                    expected += 1;
                }
            }
        }
        assert_eq!(got.value.len(), expected);
        assert!(expected > 0, "workload must produce overlaps");
        // Every reported pair really overlaps.
        for (l, p) in &got.value {
            assert!(l.intersects(p));
        }
        // The MBR filter admitted more candidates than true results.
        assert!(got.counter("join.refine.candidates") >= got.value.len() as u64);
    }

    #[test]
    fn polygon_join_mixed_index_kinds() {
        use sh_geom::Polygon;
        use sh_workload::osm_like_polygons;
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let a = osm_like_polygons(120, &uni, 30.0, 12);
        let b = osm_like_polygons(120, &uni, 30.0, 13);
        upload(&dfs, "/a", &a).unwrap();
        upload(&dfs, "/b", &b).unwrap();
        let fa = build_index::<Polygon>(&dfs, "/a", "/ia", PartitionKind::StrPlus)
            .unwrap()
            .value;
        let fb = build_index::<Polygon>(&dfs, "/b", "/ib", PartitionKind::Str)
            .unwrap()
            .value;
        let got = polygon_join(&dfs, &fa, &fb, "/out").unwrap();
        let mut expected = 0usize;
        for l in &a {
            for p in &b {
                if l.intersects(p) {
                    expected += 1;
                }
            }
        }
        assert_eq!(got.value.len(), expected);
    }

    #[test]
    fn empty_sides_yield_empty_result() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 100.0, 100.0);
        let left = rects(50, &uni, 5.0, 9);
        let right = vec![Rect::new(90.0, 90.0, 91.0, 91.0)];
        upload(&dfs, "/l", &left).unwrap();
        upload(&dfs, "/r", &right).unwrap();
        let got = sjmr(&dfs, "/l", "/r", &uni, 4, "/out").unwrap();
        assert_eq!(
            canon(got.value.clone()),
            canon(expected_pairs(&left, &right))
        );
    }
}
