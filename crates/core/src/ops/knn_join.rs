//! kNN join: for every point of `R`, its `k` nearest neighbours in `S`.
//!
//! The partition-based two-round algorithm of the MapReduce kNN-join
//! literature the paper builds on (Lu et al., Zhang et al.):
//!
//! * **Round 1** — each `R` partition is paired with the `S` partitions
//!   overlapping its cell. The local candidates give every point `r` an
//!   upper bound `δ_r` on its true k-th-neighbour distance. Points whose
//!   `δ_r`-circle stays inside the already-seen `S` partitions are
//!   **final** and written immediately (the pruning step); the rest are
//!   spilled, per partition, with the exact set of extra `S` partitions
//!   their circles touch.
//! * **Round 2** — one task per `R` partition with pending points reads
//!   those points plus every `S` partition any of their circles touches
//!   and recomputes the exact answer.
//!
//! On clustered data almost everything finishes in round 1; only points
//! near partition boundaries pay the second round.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

use sh_dfs::Dfs;
use sh_geom::point::sort_dedup;
use sh_geom::{Point, Record, Rect};
use sh_index::LocalRTree;
use sh_mapreduce::{InputSplit, JobBuilder, MapContext, Mapper};

use crate::catalog::SpatialFile;
use crate::mrlayer::SpatialRecordReader;
use crate::opresult::{OpError, OpResult};

/// One joined row: the `R` point and its neighbours, nearest first.
#[derive(Clone, Debug)]
pub struct KnnRow {
    /// The query-side point.
    pub r: Point,
    /// Its k nearest `S` points, nearest first.
    pub neighbors: Vec<Point>,
}

impl KnnRow {
    fn encode(&self) -> String {
        let mut s = format!("R {} {} {}", self.r.x, self.r.y, self.neighbors.len());
        for n in &self.neighbors {
            let _ = write!(s, " {} {}", n.x, n.y);
        }
        s
    }

    fn decode(line: &str) -> Result<KnnRow, OpError> {
        let toks: Vec<&str> = line.split_ascii_whitespace().collect();
        if toks.first() != Some(&"R") || toks.len() < 4 {
            return Err(OpError::Corrupt(format!("bad knn-join row: {line:?}")));
        }
        let f = |i: usize| -> Result<f64, OpError> {
            toks[i]
                .parse()
                .map_err(|_| OpError::Corrupt(format!("bad number {:?}", toks[i])))
        };
        let r = Point::new(f(1)?, f(2)?);
        let n: usize = toks[3]
            .parse()
            .map_err(|_| OpError::Corrupt(format!("bad count in {line:?}")))?;
        let mut neighbors = Vec::with_capacity(n);
        for i in 0..n {
            neighbors.push(Point::new(f(4 + 2 * i)?, f(5 + 2 * i)?));
        }
        Ok(KnnRow { r, neighbors })
    }
}

/// Exact kNN of `q` against deduplicated `sites` (nearest first).
fn exact_knn(sites: &[Point], tree: &LocalRTree, q: &Point, k: usize) -> Vec<Point> {
    tree.knn(q, k).into_iter().map(|(i, _)| sites[i]).collect()
}

struct Round1Mapper {
    k: usize,
}

impl Mapper for Round1Mapper {
    type K = u8;
    type V = u8;

    fn map(&self, split: &InputSplit, data: &str, ctx: &mut MapContext<u8, u8>) {
        self.map_bytes(split, data.as_bytes(), ctx);
    }

    fn map_bytes(&self, split: &InputSplit, data: &[u8], ctx: &mut MapContext<u8, u8>) {
        let pid = split.partition_id.expect("spatial split");
        let (r_text, s_text) = SpatialRecordReader::task_text_pair::<Point>(split, data);
        let r_points: Vec<Point> = parse_points(&r_text);
        let mut s_points: Vec<Point> = parse_points(&s_text);
        sort_dedup(&mut s_points);
        let tree = LocalRTree::build(s_points.iter().map(|p| p.to_rect()).collect());

        // aux: `m id1..idm  (id x1 y1 x2 y2)*` — the included S partition
        // ids, then every S partition's id + data MBR.
        let aux: Vec<f64> = split
            .aux
            .as_deref()
            .expect("knn-join split carries partition metadata")
            .split_ascii_whitespace()
            .map(|t| t.parse().expect("knn-join aux"))
            .collect();
        let m = aux[0] as usize;
        let included: HashSet<usize> = aux[1..1 + m].iter().map(|&v| v as usize).collect();
        let all_s: Vec<(usize, Rect)> = aux[1 + m..]
            .chunks_exact(5)
            .map(|c| (c[0] as usize, Rect::new(c[1], c[2], c[3], c[4])))
            .collect();

        for r in &r_points {
            let local = exact_knn(&s_points, &tree, r, self.k);
            let delta = if local.len() < self.k {
                f64::INFINITY
            } else {
                local.last().map(|p| p.distance(r)).unwrap_or(f64::INFINITY)
            };
            let extra: Vec<usize> = all_s
                .iter()
                .filter(|(id, mbr)| !included.contains(id) && mbr.min_distance(r) < delta)
                .map(|(id, _)| *id)
                .collect();
            if extra.is_empty() {
                ctx.output(
                    KnnRow {
                        r: *r,
                        neighbors: local,
                    }
                    .encode(),
                );
                ctx.counter("knnjoin.final.round1", 1);
            } else {
                ctx.side_output(&format!("_pending-{pid:05}"), r.to_line());
                for id in extra.iter().chain(included.iter()) {
                    ctx.side_output("_needs", format!("{pid} {id}"));
                }
                ctx.counter("knnjoin.pending", 1);
            }
        }
    }
}

struct Round2Mapper {
    k: usize,
}

impl Mapper for Round2Mapper {
    type K = u8;
    type V = u8;

    fn map(&self, split: &InputSplit, data: &str, ctx: &mut MapContext<u8, u8>) {
        self.map_bytes(split, data.as_bytes(), ctx);
    }

    fn map_bytes(&self, split: &InputSplit, data: &[u8], ctx: &mut MapContext<u8, u8>) {
        let (pending_text, s_text) = SpatialRecordReader::task_text_pair::<Point>(split, data);
        let pending: Vec<Point> = parse_points(&pending_text);
        let mut s_points: Vec<Point> = parse_points(&s_text);
        sort_dedup(&mut s_points);
        let tree = LocalRTree::build(s_points.iter().map(|p| p.to_rect()).collect());
        for r in &pending {
            let neighbors = exact_knn(&s_points, &tree, r, self.k);
            ctx.output(KnnRow { r: *r, neighbors }.encode());
            ctx.counter("knnjoin.final.round2", 1);
        }
    }
}

fn parse_points(text: &str) -> Vec<Point> {
    SpatialRecordReader::records::<Point>(text)
}

/// Distributed kNN join (`R` must be a disjoint index; `S` any index).
pub fn knn_join_spatial(
    dfs: &Dfs,
    r_file: &SpatialFile,
    s_file: &SpatialFile,
    k: usize,
    out_dir: &str,
) -> Result<OpResult<Vec<KnnRow>>, OpError> {
    if !r_file.is_disjoint() {
        return Err(OpError::Unsupported(
            "knn join requires a disjoint partitioning of R".into(),
        ));
    }
    // Shared aux payload: every S partition's id + data MBR.
    let mut all_s = String::new();
    for s in &s_file.partitions {
        let _ = write!(
            all_s,
            " {} {} {} {} {}",
            s.id, s.mbr[0], s.mbr[1], s.mbr[2], s.mbr[3]
        );
    }

    // Round 1 splits: each R partition + the S partitions overlapping
    // its cell.
    let mut splits = Vec::new();
    for rp in &r_file.partitions {
        let cell = rp.cell_rect();
        let included: Vec<&sh_index::PartitionMeta> = s_file
            .partitions
            .iter()
            .filter(|sp| sp.mbr_rect().intersects(&cell))
            .collect();
        let r_split = InputSplit::whole_file(dfs, &rp.path)?;
        let first_bytes = r_split.len();
        let mut blocks = r_split.blocks;
        let mut aux = format!("{}", included.len());
        for sp in &included {
            let _ = write!(aux, " {}", sp.id);
            blocks.extend(InputSplit::whole_file(dfs, &sp.path)?.blocks);
        }
        aux.push_str(&all_s);
        splits.push(InputSplit {
            path: rp.path.clone(),
            blocks,
            tag: 0,
            partition_id: Some(rp.id),
            mbr: Some(rp.cell),
            first_input_bytes: Some(first_bytes),
            aux: Some(aux),
        });
    }
    let round1 = JobBuilder::new(dfs, &format!("knnjoin:{}:{}", r_file.dir, s_file.dir))
        .input_splits(splits)
        .mapper(Round1Mapper { k })
        .output(out_dir)
        .map_only()?
        .run()?;
    let mut rows: Vec<KnnRow> = round1
        .read_output(dfs)?
        .iter()
        .map(|l| KnnRow::decode(l))
        .collect::<Result<_, _>>()?;
    let mut jobs = vec![round1];

    // Round 2 over the pending points, if any.
    let needs_path = format!("{out_dir}/_needs");
    if dfs.exists(&needs_path) {
        let mut needs: HashMap<usize, HashSet<usize>> = HashMap::new();
        for line in dfs.read_to_string(&needs_path)?.lines() {
            let mut it = line.split_ascii_whitespace();
            let pid: usize = it.next().unwrap().parse().expect("pid");
            let sid: usize = it.next().unwrap().parse().expect("sid");
            needs.entry(pid).or_default().insert(sid);
        }
        let mut splits = Vec::new();
        let mut pids: Vec<usize> = needs.keys().copied().collect();
        pids.sort_unstable();
        for pid in pids {
            let pending_path = format!("{out_dir}/_pending-{pid:05}");
            let pending_split = InputSplit::whole_file(dfs, &pending_path)?;
            let first_bytes = pending_split.len();
            let mut blocks = pending_split.blocks;
            let mut sids: Vec<usize> = needs[&pid].iter().copied().collect();
            sids.sort_unstable();
            for sid in sids {
                if let Some(sp) = s_file.partitions.iter().find(|m| m.id == sid) {
                    blocks.extend(InputSplit::whole_file(dfs, &sp.path)?.blocks);
                }
            }
            splits.push(InputSplit {
                path: pending_path,
                blocks,
                tag: 0,
                partition_id: Some(pid),
                mbr: None,
                first_input_bytes: Some(first_bytes),
                aux: None,
            });
        }
        let round2 = JobBuilder::new(dfs, &format!("knnjoin-round2:{}", r_file.dir))
            .input_splits(splits)
            .mapper(Round2Mapper { k })
            .output(&format!("{out_dir}/round2"))
            .map_only()?
            .run()?;
        rows.extend(
            round2
                .read_output(dfs)?
                .iter()
                .map(|l| KnnRow::decode(l))
                .collect::<Result<Vec<_>, _>>()?,
        );
        jobs.push(round2);
        // Clean the intermediate spill files (keep the part outputs).
        for path in dfs.list(&format!("{out_dir}/_")) {
            dfs.delete(&path);
        }
    }
    rows.sort_by(|a, b| a.r.cmp_xy(&b.r));
    // Every R partition is scanned; pruning happens on the S side per
    // R partition, so report R-partition coverage here.
    let mut sel = sh_trace::Selectivity::of_split(
        r_file.partitions.len(),
        r_file.partitions.len(),
        r_file.total_records(),
    );
    sel.records_emitted = rows.len() as u64;
    Ok(OpResult::new(rows, jobs).with_selectivity(sel))
}

/// Single-machine baseline: exact kNN of every `R` point against `S`.
pub fn knn_join_single(r: &[Point], s: &[Point], k: usize) -> Vec<KnnRow> {
    let mut s_dedup = s.to_vec();
    sort_dedup(&mut s_dedup);
    let tree = LocalRTree::build(s_dedup.iter().map(|p| p.to_rect()).collect());
    let mut rows: Vec<KnnRow> = r
        .iter()
        .map(|q| KnnRow {
            r: *q,
            neighbors: exact_knn(&s_dedup, &tree, q, k),
        })
        .collect();
    rows.sort_by(|a, b| a.r.cmp_xy(&b.r));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{build_index, upload};
    use sh_dfs::ClusterConfig;
    use sh_index::PartitionKind;
    use sh_workload::{osm_like_points, points, Distribution};

    /// Distance profiles are tie-robust: compare sorted neighbour
    /// distances per R point.
    fn profiles(rows: &[KnnRow]) -> Vec<(i64, i64, Vec<i64>)> {
        rows.iter()
            .map(|row| {
                let mut d: Vec<i64> = row
                    .neighbors
                    .iter()
                    .map(|n| (n.distance(&row.r) * 1e6).round() as i64)
                    .collect();
                d.sort_unstable();
                (
                    (row.r.x * 1e6).round() as i64,
                    (row.r.y * 1e6).round() as i64,
                    d,
                )
            })
            .collect()
    }

    fn run(r_kind: PartitionKind, s_kind: PartitionKind, k: usize, seed: u64) {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let r = points(800, Distribution::Uniform, &uni, seed);
        let s = points(1200, Distribution::Uniform, &uni, seed + 1);
        upload(&dfs, "/r", &r).unwrap();
        upload(&dfs, "/s", &s).unwrap();
        let rf = build_index::<Point>(&dfs, "/r", "/ri", r_kind)
            .unwrap()
            .value;
        let sf = build_index::<Point>(&dfs, "/s", "/si", s_kind)
            .unwrap()
            .value;
        let got = knn_join_spatial(&dfs, &rf, &sf, k, "/out").unwrap();
        assert_eq!(got.value.len(), r.len(), "one row per R point");
        let expected = knn_join_single(&r, &s, k);
        assert_eq!(profiles(&got.value), profiles(&expected));
    }

    #[test]
    fn matches_baseline_grid_grid() {
        run(PartitionKind::Grid, PartitionKind::Grid, 3, 301);
    }

    #[test]
    fn matches_baseline_strplus_str() {
        run(PartitionKind::StrPlus, PartitionKind::Str, 5, 302);
    }

    #[test]
    fn matches_baseline_large_k_crossing_partitions() {
        // k large enough that circles cross partitions everywhere.
        run(PartitionKind::Grid, PartitionKind::Grid, 40, 303);
    }

    #[test]
    fn clustered_data_mostly_finishes_in_round_one() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let r = osm_like_points(600, &uni, 4, 304);
        let s = osm_like_points(1500, &uni, 4, 305);
        upload(&dfs, "/r", &r).unwrap();
        upload(&dfs, "/s", &s).unwrap();
        let rf = build_index::<Point>(&dfs, "/r", "/ri", PartitionKind::StrPlus)
            .unwrap()
            .value;
        let sf = build_index::<Point>(&dfs, "/s", "/si", PartitionKind::StrPlus)
            .unwrap()
            .value;
        let got = knn_join_spatial(&dfs, &rf, &sf, 3, "/out").unwrap();
        let expected = knn_join_single(&r, &s, 3);
        assert_eq!(profiles(&got.value), profiles(&expected));
        let round1 = got.counter("knnjoin.final.round1");
        let pending = got.counter("knnjoin.pending");
        assert!(
            round1 > pending,
            "round 1 should finalize the majority: {round1} vs {pending}"
        );
    }

    #[test]
    fn rejects_overlapping_r_index() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let pts = points(300, Distribution::Uniform, &uni, 306);
        upload(&dfs, "/r", &pts).unwrap();
        upload(&dfs, "/s", &pts).unwrap();
        let rf = build_index::<Point>(&dfs, "/r", "/ri", PartitionKind::ZCurve)
            .unwrap()
            .value;
        let sf = build_index::<Point>(&dfs, "/s", "/si", PartitionKind::Grid)
            .unwrap()
            .value;
        assert!(matches!(
            knn_join_spatial(&dfs, &rf, &sf, 3, "/out"),
            Err(OpError::Unsupported(_))
        ));
    }

    #[test]
    fn row_encoding_roundtrip() {
        let row = KnnRow {
            r: Point::new(1.0, 2.0),
            neighbors: vec![Point::new(3.0, 4.0), Point::new(5.0, 6.0)],
        };
        let d = KnnRow::decode(&row.encode()).unwrap();
        assert_eq!(d.r, row.r);
        assert_eq!(d.neighbors, row.neighbors);
        assert!(KnnRow::decode("garbage").is_err());
    }
}
