//! k-nearest-neighbours query.
//!
//! * **Hadoop** — one full-scan round: every split reports its local
//!   top-k, a single reducer merges.
//! * **SpatialHadoop** — starts from the single partition containing the
//!   query point and answers from its local index; if the circle through
//!   the k-th neighbour pokes outside the processed partitions, further
//!   rounds fetch only the partitions the circle touches. Selective
//!   queries finish in one round over one partition — the source of the
//!   order-of-magnitude throughput gap in experiments E5/E6.

use std::collections::HashSet;
use std::marker::PhantomData;

use sh_dfs::Dfs;
use sh_geom::{Point, Record};
use sh_mapreduce::{
    InputSplit, JobBuilder, JobOutcome, MapContext, Mapper, ReduceContext, Reducer,
};

use crate::catalog::SpatialFile;
use crate::mrlayer::{SpatialFileSplitter, SpatialRecordReader};
use crate::opresult::{OpError, OpResult};
use sh_trace::Selectivity;

/// Local top-k of a point set (ascending distance; ties by coordinates).
fn local_top_k(points: &[Point], q: &Point, k: usize) -> Vec<Point> {
    let mut with_d: Vec<(f64, Point)> = points.iter().map(|p| (p.distance_sq(q), *p)).collect();
    with_d.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp_xy(&b.1)));
    with_d.into_iter().take(k).map(|(_, p)| p).collect()
}

struct KnnScanMapper {
    q: Point,
    k: usize,
}

impl Mapper for KnnScanMapper {
    type K = u8;
    type V = (f64, f64);

    fn map(&self, _split: &InputSplit, data: &str, ctx: &mut MapContext<u8, (f64, f64)>) {
        let points = SpatialRecordReader::records::<Point>(data);
        for p in local_top_k(&points, &self.q, self.k) {
            ctx.emit(1, (p.x, p.y));
        }
    }

    fn map_bytes(&self, split: &InputSplit, data: &[u8], ctx: &mut MapContext<u8, (f64, f64)>) {
        let text = SpatialRecordReader::task_text::<Point>(&split.path, data);
        self.map(split, &text, ctx);
    }
}

struct KnnMergeReducer {
    q: Point,
    k: usize,
}

impl Reducer for KnnMergeReducer {
    type K = u8;
    type V = (f64, f64);

    fn reduce(&self, _key: &u8, values: Vec<(f64, f64)>, ctx: &mut ReduceContext) {
        let candidates: Vec<Point> = values.iter().map(|&(x, y)| Point::new(x, y)).collect();
        for p in local_top_k(&candidates, &self.q, self.k) {
            ctx.output(p.to_line());
        }
    }
}

/// Full-scan kNN over a heap file (the Hadoop baseline, one round).
pub fn knn_hadoop(
    dfs: &Dfs,
    heap: &str,
    q: &Point,
    k: usize,
    out_dir: &str,
) -> Result<OpResult<Vec<Point>>, OpError> {
    let job = JobBuilder::new(dfs, &format!("knn-hadoop:{heap}"))
        .input_file(heap)?
        .mapper(KnnScanMapper { q: *q, k })
        .reducer(KnnMergeReducer { q: *q, k }, 1)
        .output(out_dir)
        .build()?
        .run()?;
    let value = parse_points(dfs, &job)?;
    let sel = Selectivity::full_scan(job.map_tasks, value.len() as u64);
    Ok(OpResult::new(value, vec![job]).with_selectivity(sel))
}

struct KnnIndexMapper<R: Record> {
    dfs: Dfs,
    q: Point,
    k: usize,
    _r: PhantomData<fn() -> R>,
}

impl<R: Record> Mapper for KnnIndexMapper<R> {
    type K = u8;
    type V = u8;

    fn map(&self, split: &InputSplit, data: &str, ctx: &mut MapContext<u8, u8>) {
        self.map_bytes(split, data.as_bytes(), ctx);
    }

    fn map_bytes(&self, split: &InputSplit, data: &[u8], ctx: &mut MapContext<u8, u8>) {
        // One cached open gives both the records and the local tree,
        // text or binary alike.
        let (part, hit) =
            SpatialRecordReader::task_open_indexed_bytes::<Point>(&self.dfs, &split.path, data);
        let h = ctx.register_counter(if hit { "cache.hits" } else { "cache.misses" });
        ctx.inc(h, 1);
        // The local index answers the kNN directly (best-first search).
        let mut line = String::with_capacity(48);
        for (i, _) in part.tree().knn(&self.q, self.k) {
            line.clear();
            part.write_record(i, &mut line);
            ctx.output(line.clone());
        }
    }
}

/// Index-assisted kNN with the correctness loop (the SpatialHadoop
/// operation). The result carries one [`JobOutcome`] per round; the
/// round count is what experiment E6 reports as k grows.
pub fn knn_spatial(
    dfs: &Dfs,
    file: &SpatialFile,
    q: &Point,
    k: usize,
    out_dir: &str,
) -> Result<OpResult<Vec<Point>>, OpError> {
    let mut jobs: Vec<JobOutcome> = Vec::new();
    let mut processed: HashSet<usize> = HashSet::new();
    let mut candidates: Vec<Point> = Vec::new();
    let total_records = file.total_records();

    // Round 1: the partition containing (or nearest to) the query point.
    let first = file
        .partitions
        .iter()
        .min_by(|a, b| {
            a.cell_rect()
                .min_distance(q)
                .total_cmp(&b.cell_rect().min_distance(q))
        })
        .ok_or_else(|| OpError::Unsupported("knn over an empty index".into()))?
        .id;
    let mut frontier: Vec<usize> = vec![first];
    let mut round = 0usize;
    loop {
        round += 1;
        let frontier_set: HashSet<usize> = frontier.iter().copied().collect();
        let splits = SpatialFileSplitter::splits(dfs, file, |m| frontier_set.contains(&m.id))?;
        let job = JobBuilder::new(dfs, &format!("knn-spatial:{}:round{round}", file.dir))
            .input_splits(splits)
            .mapper(KnnIndexMapper::<Point> {
                dfs: dfs.clone(),
                q: *q,
                k,
                _r: PhantomData,
            })
            .output(&format!("{out_dir}/round-{round}"))
            .map_only()?
            .run()?;
        candidates.extend(parse_points(dfs, &job)?);
        jobs.push(job);
        processed.extend(frontier_set.iter().copied());

        let best = local_top_k(&candidates, q, k);
        // Termination: either we already hold every record, or the circle
        // through the k-th neighbour is covered by processed partitions.
        let enough = best.len() as u64 >= k.min(total_records as usize) as u64;
        let radius = if best.len() < k {
            f64::INFINITY
        } else {
            best.last().map(|p| p.distance(q)).unwrap_or(f64::INFINITY)
        };
        let needs: Vec<usize> = if radius.is_finite() {
            file.partitions
                .iter()
                .filter(|m| !processed.contains(&m.id))
                .filter(|m| m.mbr_rect().min_distance(q) < radius)
                .map(|m| m.id)
                .collect()
        } else {
            // Fewer than k points seen: expand outward to the nearest
            // unprocessed partitions until they plausibly hold the
            // missing neighbours (2x safety factor), instead of scanning
            // everything. The loop re-checks coverage, so this stays
            // exact.
            let missing = 2 * (k - best.len()) as u64;
            let mut nearest: Vec<&sh_index::PartitionMeta> = file
                .partitions
                .iter()
                .filter(|m| !processed.contains(&m.id))
                .collect();
            nearest.sort_by(|a, b| {
                a.mbr_rect()
                    .min_distance(q)
                    .total_cmp(&b.mbr_rect().min_distance(q))
            });
            let mut picked = Vec::new();
            let mut expected = 0u64;
            for m in nearest {
                picked.push(m.id);
                expected += m.records;
                if expected >= missing {
                    break;
                }
            }
            picked
        };
        if (enough && needs.is_empty()) || (processed.len() == file.partitions.len()) {
            let mut result = best;
            result.truncate(k);
            let records_scanned = file
                .partitions
                .iter()
                .filter(|m| processed.contains(&m.id))
                .map(|m| m.records)
                .sum();
            let mut sel =
                Selectivity::of_split(file.partitions.len(), processed.len(), records_scanned);
            sel.records_emitted = result.len() as u64;
            return Ok(OpResult::new(result, jobs).with_selectivity(sel));
        }
        frontier = if needs.is_empty() {
            // Not enough points seen yet: widen to the nearest
            // unprocessed partition.
            file.partitions
                .iter()
                .filter(|m| !processed.contains(&m.id))
                .min_by(|a, b| {
                    a.cell_rect()
                        .min_distance(q)
                        .total_cmp(&b.cell_rect().min_distance(q))
                })
                .map(|m| vec![m.id])
                .unwrap_or_default()
        } else {
            needs
        };
    }
}

fn parse_points(dfs: &Dfs, job: &JobOutcome) -> Result<Vec<Point>, OpError> {
    crate::codec::parse_output_records(&job.read_output(dfs)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::single;
    use crate::storage::{build_index, upload};
    use sh_dfs::ClusterConfig;
    use sh_geom::Rect;
    use sh_index::PartitionKind;
    use sh_workload::{points, Distribution};

    fn canon(v: &[Point]) -> Vec<(i64, i64)> {
        v.iter()
            .map(|p| ((p.x * 1e6) as i64, (p.y * 1e6) as i64))
            .collect()
    }

    fn setup() -> (Dfs, Vec<Point>, SpatialFile) {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let pts = points(3000, Distribution::Uniform, &uni, 31);
        upload(&dfs, "/heap", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/heap", "/idx", PartitionKind::StrPlus)
            .unwrap()
            .value;
        (dfs, pts, file)
    }

    #[test]
    fn hadoop_knn_matches_baseline() {
        let (dfs, pts, _) = setup();
        let q = Point::new(400.0, 400.0);
        let expected = single::knn(&pts, &q, 10).value;
        let got = knn_hadoop(&dfs, "/heap", &q, 10, "/out").unwrap();
        assert_eq!(canon(&got.value), canon(&expected));
    }

    #[test]
    fn spatial_knn_matches_baseline_and_prunes() {
        let (dfs, pts, file) = setup();
        let q = Point::new(400.0, 400.0);
        for k in [1usize, 10, 50] {
            let expected = single::knn(&pts, &q, k).value;
            let got = knn_spatial(&dfs, &file, &q, k, &format!("/out-{k}")).unwrap();
            assert_eq!(canon(&got.value), canon(&expected), "k={k}");
            assert!(
                got.map_tasks() < file.partitions.len(),
                "k={k}: knn must not scan everything"
            );
        }
    }

    #[test]
    fn spatial_knn_near_boundary_needs_more_rounds_but_stays_correct() {
        let (dfs, pts, file) = setup();
        // A query right at a partition boundary region.
        let q = Point::new(500.0, 500.0);
        let expected = single::knn(&pts, &q, 25).value;
        let got = knn_spatial(&dfs, &file, &q, 25, "/out-b").unwrap();
        assert_eq!(canon(&got.value), canon(&expected));
        assert!(got.rounds() >= 1);
    }

    #[test]
    fn k_larger_than_dataset_returns_everything() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 100.0, 100.0);
        let pts = points(40, Distribution::Uniform, &uni, 5);
        upload(&dfs, "/small", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/small", "/sidx", PartitionKind::Grid)
            .unwrap()
            .value;
        let q = Point::new(50.0, 50.0);
        let got = knn_spatial(&dfs, &file, &q, 1000, "/out").unwrap();
        assert_eq!(got.value.len(), 40);
    }

    #[test]
    fn results_are_deterministic_across_runs() {
        let run_once = || {
            let (dfs, _, file) = setup();
            let q = Point::new(123.0, 789.0);
            knn_spatial(&dfs, &file, &q, 15, "/det").unwrap().value
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(canon(&a), canon(&b));
    }

    #[test]
    fn query_outside_universe_works() {
        let (dfs, pts, file) = setup();
        let q = Point::new(-500.0, -500.0);
        let expected = single::knn(&pts, &q, 5).value;
        let got = knn_spatial(&dfs, &file, &q, 5, "/out-o").unwrap();
        assert_eq!(canon(&got.value), canon(&expected));
    }
}
