//! Range query: all records intersecting a query rectangle.
//!
//! * **Hadoop** — map-only full scan of the heap file: every block is
//!   read, every record tested.
//! * **SpatialHadoop** — the SpatialFileSplitter prunes partitions whose
//!   data MBR misses the query; surviving partitions are searched through
//!   their local R-tree; replicated records (disjoint indexes) are
//!   deduplicated with the reference-point rule so each result is
//!   reported exactly once.

use std::marker::PhantomData;

use sh_dfs::Dfs;
use sh_geom::{Record, Rect};
use sh_index::owns_point;
use sh_mapreduce::{InputSplit, JobBuilder, MapContext, Mapper};

use crate::catalog::SpatialFile;
use crate::mrlayer::{split_cell, splitter_selectivity, SpatialFileSplitter, SpatialRecordReader};
use crate::opresult::{OpError, OpResult};
use sh_trace::Selectivity;

struct ScanMapper<R: Record> {
    query: Rect,
    _r: PhantomData<fn() -> R>,
}

impl<R: Record> Mapper for ScanMapper<R> {
    type K = u8;
    type V = u8;

    fn map(&self, split: &InputSplit, data: &str, ctx: &mut MapContext<u8, u8>) {
        let results = ctx.register_counter("range.results");
        for line in data.lines().filter(|l| !l.trim().is_empty()) {
            let r = R::parse_line(line).unwrap_or_else(|e| {
                sh_mapreduce::fail_corrupt(format!("{}: {e}: {line:?}", split.path))
            });
            if r.mbr().intersects(&self.query) {
                ctx.output(line.to_string());
                ctx.inc(results, 1);
            }
        }
    }

    fn map_bytes(&self, split: &InputSplit, data: &[u8], ctx: &mut MapContext<u8, u8>) {
        let text = SpatialRecordReader::task_text::<R>(&split.path, data);
        self.map(split, &text, ctx);
    }
}

struct IndexedMapper<R: Record> {
    dfs: Dfs,
    query: Rect,
    universe: Rect,
    dedup: bool,
    local_index: bool,
    _r: PhantomData<fn() -> R>,
}

impl<R: Record> Mapper for IndexedMapper<R> {
    type K = u8;
    type V = u8;

    fn map(&self, split: &InputSplit, data: &str, ctx: &mut MapContext<u8, u8>) {
        self.map_bytes(split, data.as_bytes(), ctx);
    }

    fn map_bytes(&self, split: &InputSplit, data: &[u8], ctx: &mut MapContext<u8, u8>) {
        let cell = split_cell(split);
        let results = ctx.register_counter("range.results");
        let dup_skipped = ctx.register_counter("range.duplicates.skipped");
        let (part, hits) = if self.local_index {
            // Cached path: decoded partition + persisted local tree,
            // shared across queries over the same partition.
            let (part, hit) =
                SpatialRecordReader::task_open_indexed_bytes::<R>(&self.dfs, &split.path, data);
            let h = ctx.register_counter(if hit { "cache.hits" } else { "cache.misses" });
            ctx.inc(h, 1);
            let hits = part.tree().query(&self.query);
            (part, hits)
        } else {
            // Ablation: linear scan of the partition, no cache. Binary
            // blocks scan their coordinate columns directly (mmap-backed
            // when `SET mmap on`), spread across any idle worker slots.
            let part = SpatialRecordReader::open_scan::<R>(&self.dfs, &split.path, data);
            let (hits, extra) = part.scan_filter_par(&self.dfs, &self.query);
            if extra > 0 {
                let par = ctx.register_counter("scan.parallel.extra_slots");
                ctx.inc(par, extra as u64);
            }
            (part, hits)
        };
        let mut line = String::with_capacity(48);
        for i in hits {
            let mbr = part.mbr_of(i);
            if self.dedup {
                // Reference point of record ∩ query: exactly one replica
                // holder owns it among the partitions overlapping both.
                let inter = mbr
                    .intersection(&self.query)
                    .expect("R-tree reported an intersecting record");
                let rp = inter.bottom_left();
                if !owns_point(&cell, &rp, &self.universe) {
                    ctx.inc(dup_skipped, 1);
                    continue;
                }
            }
            line.clear();
            part.write_record(i, &mut line);
            ctx.output(line.clone());
            ctx.inc(results, 1);
        }
    }
}

/// Full-scan range query over a heap file (the Hadoop baseline).
pub fn range_hadoop<R: Record>(
    dfs: &Dfs,
    heap: &str,
    query: &Rect,
    out_dir: &str,
) -> Result<OpResult<Vec<R>>, OpError> {
    let job = JobBuilder::new(dfs, &format!("range-hadoop:{heap}"))
        .input_file(heap)?
        .mapper(ScanMapper::<R> {
            query: *query,
            _r: PhantomData,
        })
        .output(out_dir)
        .map_only()?
        .run()?;
    let value = parse_output::<R>(dfs, &job)?;
    let sel = Selectivity::full_scan(job.map_tasks, value.len() as u64);
    Ok(OpResult::new(value, vec![job]).with_selectivity(sel))
}

/// Ablation switches for [`range_spatial_with`] (DESIGN.md §5).
#[derive(Clone, Copy, Debug)]
pub struct RangeOptions {
    /// Apply the SpatialFileSplitter filter step (partition pruning).
    pub filter: bool,
    /// Search each partition through its local R-tree instead of a
    /// linear scan of its records.
    pub local_index: bool,
}

impl Default for RangeOptions {
    fn default() -> Self {
        RangeOptions {
            filter: true,
            local_index: true,
        }
    }
}

/// Index-assisted range query (the SpatialHadoop operation).
pub fn range_spatial<R: Record>(
    dfs: &Dfs,
    file: &SpatialFile,
    query: &Rect,
    out_dir: &str,
) -> Result<OpResult<Vec<R>>, OpError> {
    range_spatial_with::<R>(dfs, file, query, out_dir, RangeOptions::default())
}

/// Range query with explicit ablation options.
pub fn range_spatial_with<R: Record>(
    dfs: &Dfs,
    file: &SpatialFile,
    query: &Rect,
    out_dir: &str,
    options: RangeOptions,
) -> Result<OpResult<Vec<R>>, OpError> {
    let splits = SpatialFileSplitter::splits(dfs, file, |m| {
        !options.filter || m.mbr_rect().intersects(query)
    })?;
    let pruned = file.partitions.len() - splits.len();
    let mut sel = splitter_selectivity(file, &splits);
    let job = JobBuilder::new(dfs, &format!("range-spatial:{}", file.dir))
        .input_splits(splits)
        .mapper(IndexedMapper::<R> {
            dfs: dfs.clone(),
            query: *query,
            universe: file.universe,
            dedup: file.is_disjoint(),
            local_index: options.local_index,
            _r: PhantomData,
        })
        .output(out_dir)
        .map_only()?
        .run()?;
    let mut job = job;
    job.counters
        .insert("range.partitions.pruned".into(), pruned as u64);
    let value = parse_output::<R>(dfs, &job)?;
    sel.records_emitted = value.len() as u64;
    Ok(OpResult::new(value, vec![job]).with_selectivity(sel))
}

fn parse_output<R: Record>(dfs: &Dfs, job: &sh_mapreduce::JobOutcome) -> Result<Vec<R>, OpError> {
    crate::codec::parse_output_records(&job.read_output(dfs)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{build_index, upload};
    use sh_dfs::ClusterConfig;
    use sh_geom::Point;
    use sh_index::PartitionKind;
    use sh_workload::{points, rects, Distribution};

    fn canon_points(mut v: Vec<Point>) -> Vec<(i64, i64)> {
        v.sort_by(Point::cmp_xy);
        v.iter()
            .map(|p| ((p.x * 1e6) as i64, (p.y * 1e6) as i64))
            .collect()
    }

    #[test]
    fn hadoop_and_spatial_agree_with_baseline_points() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let pts = points(4000, Distribution::Uniform, &uni, 21);
        upload(&dfs, "/heap", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/heap", "/idx", PartitionKind::StrPlus)
            .unwrap()
            .value;
        let query = Rect::new(200.0, 300.0, 340.0, 460.0);
        let expected = crate::ops::single::range_query(&pts, &query).value;
        assert!(!expected.is_empty());

        let h = range_hadoop::<Point>(&dfs, "/heap", &query, "/out-h").unwrap();
        assert_eq!(
            canon_points(h.value.clone()),
            canon_points(expected.clone())
        );

        let s = range_spatial::<Point>(&dfs, &file, &query, "/out-s").unwrap();
        assert_eq!(canon_points(s.value.clone()), canon_points(expected));

        // Pruning must have kicked in: fewer map tasks than partitions.
        assert!(s.map_tasks() < file.partitions.len());
        assert!(s.counter("range.partitions.pruned") > 0);
        // And the spatial job reads fewer bytes.
        assert!(
            s.counter("map.input.bytes.local") + s.counter("map.input.bytes.remote")
                < h.counter("map.input.bytes.local") + h.counter("map.input.bytes.remote")
        );
    }

    #[test]
    fn replicated_rects_are_deduplicated() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let rs = rects(1200, &uni, 80.0, 3);
        upload(&dfs, "/rects", &rs).unwrap();
        let file = build_index::<Rect>(&dfs, "/rects", "/ridx", PartitionKind::Grid)
            .unwrap()
            .value;
        assert!(file.total_records() > rs.len() as u64, "needs replication");
        let query = Rect::new(100.0, 100.0, 500.0, 500.0);
        let expected = crate::ops::single::range_query(&rs, &query).value;
        let got = range_spatial::<Rect>(&dfs, &file, &query, "/out").unwrap();
        let canon = |mut v: Vec<Rect>| {
            v.sort_by(|a, b| {
                a.x1.total_cmp(&b.x1)
                    .then(a.y1.total_cmp(&b.y1))
                    .then(a.x2.total_cmp(&b.x2))
                    .then(a.y2.total_cmp(&b.y2))
            });
            v
        };
        assert_eq!(canon(got.value.clone()), canon(expected));
        assert!(got.counter("range.duplicates.skipped") > 0);
    }

    #[test]
    fn empty_result_is_fine() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let pts = points(500, Distribution::Uniform, &uni, 4);
        upload(&dfs, "/heap", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/heap", "/idx", PartitionKind::Grid)
            .unwrap()
            .value;
        let query = Rect::new(5000.0, 5000.0, 6000.0, 6000.0);
        let got = range_spatial::<Point>(&dfs, &file, &query, "/out").unwrap();
        assert!(got.value.is_empty());
        assert_eq!(got.map_tasks(), 0, "all partitions pruned");
    }

    #[test]
    fn generic_records_segments_and_polygons() {
        use sh_geom::{Polygon, Segment};
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        // Road-like segments.
        let segs: Vec<Segment> = points(600, Distribution::Uniform, &uni, 91)
            .chunks(2)
            .filter(|c| c.len() == 2)
            .map(|c| Segment::new(c[0], c[1]))
            .collect();
        upload(&dfs, "/segs", &segs).unwrap();
        let sfile = build_index::<Segment>(&dfs, "/segs", "/sidx", PartitionKind::Grid)
            .unwrap()
            .value;
        let query = Rect::new(200.0, 200.0, 400.0, 400.0);
        let got = range_spatial::<Segment>(&dfs, &sfile, &query, "/souts").unwrap();
        let expected = crate::ops::single::range_query(&segs, &query).value;
        assert_eq!(got.value.len(), expected.len());

        // Polygon records.
        let polys = sh_workload::osm_like_polygons(300, &uni, 15.0, 92);
        upload(&dfs, "/polys", &polys).unwrap();
        let pfile = build_index::<Polygon>(&dfs, "/polys", "/pidx", PartitionKind::StrPlus)
            .unwrap()
            .value;
        let got = range_spatial::<Polygon>(&dfs, &pfile, &query, "/poutp").unwrap();
        let expected = crate::ops::single::range_query(&polys, &query).value;
        assert_eq!(got.value.len(), expected.len());
    }

    #[test]
    fn ablation_options_do_not_change_results() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let pts = points(2000, Distribution::Uniform, &uni, 93);
        upload(&dfs, "/heap", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/heap", "/idx", PartitionKind::Grid)
            .unwrap()
            .value;
        let query = Rect::new(100.0, 100.0, 600.0, 600.0);
        let reference = range_spatial::<Point>(&dfs, &file, &query, "/o-ref").unwrap();
        for (i, opts) in [
            RangeOptions {
                filter: false,
                local_index: true,
            },
            RangeOptions {
                filter: true,
                local_index: false,
            },
            RangeOptions {
                filter: false,
                local_index: false,
            },
        ]
        .into_iter()
        .enumerate()
        {
            let got =
                range_spatial_with::<Point>(&dfs, &file, &query, &format!("/o-{i}"), opts).unwrap();
            assert_eq!(
                canon_points(got.value),
                canon_points(reference.value.clone()),
                "{opts:?}"
            );
        }
    }

    #[test]
    fn overlapping_index_works_without_dedup() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let pts = points(2000, Distribution::Gaussian, &uni, 8);
        upload(&dfs, "/heap", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/heap", "/idx", PartitionKind::Str)
            .unwrap()
            .value;
        let query = Rect::new(300.0, 300.0, 700.0, 700.0);
        let expected = crate::ops::single::range_query(&pts, &query).value;
        let got = range_spatial::<Point>(&dfs, &file, &query, "/out").unwrap();
        assert_eq!(canon_points(got.value.clone()), canon_points(expected));
    }
}
