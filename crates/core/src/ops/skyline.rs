//! Skyline (maximal points).
//!
//! * **Hadoop** — every split computes its local skyline (a massive
//!   reduction), one reducer merges.
//! * **SpatialHadoop** — adds the *filter* step: a partition whose MBR is
//!   dominated by another partition's MBR cannot contribute and is never
//!   read. Uniform data leaves only the handful of partitions along the
//!   top-right staircase.
//! * **Output-sensitive** — for disjoint indexes: the driver computes the
//!   global *dominance-power set* from partition MBR corners (top-left +
//!   bottom-right per partition); each mapper prunes its local skyline
//!   against it and writes surviving points straight to the output — no
//!   merge step, so the operation scales even when the skyline itself is
//!   huge (anti-correlated data).

use sh_dfs::Dfs;
use sh_geom::algorithms::skyline::{not_dominated, skyline};
use sh_geom::{Point, Record, Rect};
use sh_mapreduce::{
    InputSplit, JobBuilder, JobOutcome, MapContext, Mapper, ReduceContext, Reducer,
};

use crate::catalog::SpatialFile;
use crate::codec::{decode_points, encode_points};
use crate::mrlayer::{SpatialFileSplitter, SpatialRecordReader};
use crate::opresult::{OpError, OpResult};

struct LocalSkylineMapper;

impl Mapper for LocalSkylineMapper {
    type K = u8;
    type V = (f64, f64);

    fn map(&self, _split: &InputSplit, data: &str, ctx: &mut MapContext<u8, (f64, f64)>) {
        let points = SpatialRecordReader::records::<Point>(data);
        let local = skyline(&points);
        ctx.counter("skyline.local.kept", local.len() as u64);
        for p in local {
            ctx.emit(1, (p.x, p.y));
        }
    }

    fn map_bytes(&self, split: &InputSplit, data: &[u8], ctx: &mut MapContext<u8, (f64, f64)>) {
        let text = SpatialRecordReader::task_text::<Point>(&split.path, data);
        self.map(split, &text, ctx);
    }
}

struct GlobalSkylineReducer;

impl Reducer for GlobalSkylineReducer {
    type K = u8;
    type V = (f64, f64);

    fn reduce(&self, _key: &u8, values: Vec<(f64, f64)>, ctx: &mut ReduceContext) {
        let pts: Vec<Point> = values.iter().map(|&(x, y)| Point::new(x, y)).collect();
        for p in skyline(&pts) {
            ctx.output(p.to_line());
        }
    }
}

struct IdentityPointMapper;

impl Mapper for IdentityPointMapper {
    type K = u8;
    type V = (f64, f64);

    fn map(&self, _split: &InputSplit, data: &str, ctx: &mut MapContext<u8, (f64, f64)>) {
        for p in SpatialRecordReader::records::<Point>(data) {
            ctx.emit(1, (p.x, p.y));
        }
    }

    fn map_bytes(&self, split: &InputSplit, data: &[u8], ctx: &mut MapContext<u8, (f64, f64)>) {
        let text = SpatialRecordReader::task_text::<Point>(&split.path, data);
        self.map(split, &text, ctx);
    }
}

/// Ablation: skyline *without* the map-side local-skyline reduction —
/// every input point is shuffled to the single reducer. Demonstrates
/// that the local pruning step is what makes the Hadoop skyline viable
/// at all (DESIGN.md §5).
pub fn skyline_hadoop_naive(
    dfs: &Dfs,
    heap: &str,
    out_dir: &str,
) -> Result<OpResult<Vec<Point>>, OpError> {
    let job = JobBuilder::new(dfs, &format!("skyline-naive:{heap}"))
        .input_file(heap)?
        .mapper(IdentityPointMapper)
        .reducer(GlobalSkylineReducer, 1)
        .output(out_dir)
        .build()?
        .run()?;
    let value = sorted_points(dfs, &job)?;
    let sel = sh_trace::Selectivity::full_scan(job.map_tasks, value.len() as u64);
    Ok(OpResult::new(value, vec![job]).with_selectivity(sel))
}

/// Hadoop skyline: full scan, local skyline per split, single-reducer
/// merge.
pub fn skyline_hadoop(
    dfs: &Dfs,
    heap: &str,
    out_dir: &str,
) -> Result<OpResult<Vec<Point>>, OpError> {
    let job = JobBuilder::new(dfs, &format!("skyline-hadoop:{heap}"))
        .input_file(heap)?
        .mapper(LocalSkylineMapper)
        .reducer(GlobalSkylineReducer, 1)
        .output(out_dir)
        .build()?
        .run()?;
    let value = sorted_points(dfs, &job)?;
    let sel = sh_trace::Selectivity::full_scan(job.map_tasks, value.len() as u64);
    Ok(OpResult::new(value, vec![job]).with_selectivity(sel))
}

/// The partition filter: keeps only partitions whose MBR is not
/// dominated by any other partition's MBR.
pub fn non_dominated_partitions(file: &SpatialFile) -> Vec<usize> {
    let mbrs: Vec<Rect> = file.partitions.iter().map(|m| m.mbr_rect()).collect();
    (0..mbrs.len())
        .filter(|&i| {
            !mbrs
                .iter()
                .enumerate()
                .any(|(j, m)| j != i && m.dominates_rect(&mbrs[i]))
        })
        .map(|i| file.partitions[i].id)
        .collect()
}

/// SpatialHadoop skyline: partition filter + local/global skyline.
pub fn skyline_spatial(
    dfs: &Dfs,
    file: &SpatialFile,
    out_dir: &str,
) -> Result<OpResult<Vec<Point>>, OpError> {
    let keep: std::collections::HashSet<usize> =
        non_dominated_partitions(file).into_iter().collect();
    let pruned = file.partitions.len() - keep.len();
    let splits = SpatialFileSplitter::splits(dfs, file, |m| keep.contains(&m.id))?;
    let mut sel = crate::mrlayer::splitter_selectivity(file, &splits);
    let mut job = JobBuilder::new(dfs, &format!("skyline-spatial:{}", file.dir))
        .input_splits(splits)
        .mapper(LocalSkylineMapper)
        .reducer(GlobalSkylineReducer, 1)
        .output(out_dir)
        .build()?
        .run()?;
    job.counters
        .insert("skyline.partitions.pruned".into(), pruned as u64);
    let value = sorted_points(dfs, &job)?;
    sel.records_emitted = value.len() as u64;
    Ok(OpResult::new(value, vec![job]).with_selectivity(sel))
}

struct OutputSensitiveMapper;

impl Mapper for OutputSensitiveMapper {
    type K = u8;
    type V = u8;

    fn map(&self, split: &InputSplit, data: &str, ctx: &mut MapContext<u8, u8>) {
        // aux = the dominance-power set of all *other* partitions. The
        // driver encoded it, so decode failure is task-fatal corruption.
        let sky_c = decode_points(split.aux.as_deref().unwrap_or(""))
            .expect("corrupt dominance-power aux payload");
        let flushed = ctx.register_counter("skyline.flushed");
        let pruned = ctx.register_counter("skyline.pruned.points");
        let points = SpatialRecordReader::records::<Point>(data);
        let local = skyline(&points);
        for p in local {
            if not_dominated(&p, &sky_c) {
                ctx.output(p.to_line());
                ctx.inc(flushed, 1);
            } else {
                ctx.inc(pruned, 1);
            }
        }
    }

    fn map_bytes(&self, split: &InputSplit, data: &[u8], ctx: &mut MapContext<u8, u8>) {
        let text = SpatialRecordReader::task_text::<Point>(&split.path, data);
        self.map(split, &text, ctx);
    }
}

/// Output-sensitive skyline (disjoint indexes only): map-only, each
/// machine writes its part of the final skyline directly.
pub fn skyline_output_sensitive(
    dfs: &Dfs,
    file: &SpatialFile,
    out_dir: &str,
) -> Result<OpResult<Vec<Point>>, OpError> {
    if !file.is_disjoint() {
        return Err(OpError::Unsupported(
            "output-sensitive skyline requires a disjoint partitioning".into(),
        ));
    }
    let keep: std::collections::HashSet<usize> =
        non_dominated_partitions(file).into_iter().collect();
    let mut splits = Vec::new();
    for meta in &file.partitions {
        if !keep.contains(&meta.id) {
            continue;
        }
        // Dominance-power set of every *other* partition: top-left and
        // bottom-right corners of their data MBRs, reduced to a skyline
        // (Theorem 4 caps the useful subset; the skyline is even
        // smaller).
        let mut dp: Vec<Point> = Vec::new();
        for other in &file.partitions {
            if other.id == meta.id {
                continue;
            }
            let m = other.mbr_rect();
            dp.push(m.top_left());
            dp.push(m.bottom_right());
        }
        let sky_c = skyline(&dp);
        let split = InputSplit::whole_file(dfs, &meta.path)?
            .with_partition(meta.id, meta.cell)
            .with_aux(encode_points(&sky_c));
        splits.push(split);
    }
    let mut sel = crate::mrlayer::splitter_selectivity(file, &splits);
    let job = JobBuilder::new(dfs, &format!("skyline-os:{}", file.dir))
        .input_splits(splits)
        .mapper(OutputSensitiveMapper)
        .output(out_dir)
        .map_only()?
        .run()?;
    let value = sorted_points(dfs, &job)?;
    sel.records_emitted = value.len() as u64;
    Ok(OpResult::new(value, vec![job]).with_selectivity(sel))
}

fn sorted_points(dfs: &Dfs, job: &JobOutcome) -> Result<Vec<Point>, OpError> {
    let mut pts: Vec<Point> = crate::codec::parse_output_records(&job.read_output(dfs)?)?;
    pts.sort_by(Point::cmp_xy);
    Ok(pts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::single;
    use crate::storage::{build_index, upload};
    use sh_dfs::ClusterConfig;
    use sh_index::PartitionKind;
    use sh_workload::{points, Distribution};

    fn canon(v: &[Point]) -> Vec<(i64, i64)> {
        v.iter()
            .map(|p| ((p.x * 1e6) as i64, (p.y * 1e6) as i64))
            .collect()
    }

    fn run_all(dist: Distribution, seed: u64) {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let pts = points(3000, dist, &uni, seed);
        upload(&dfs, "/heap", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/heap", "/idx", PartitionKind::StrPlus)
            .unwrap()
            .value;
        let mut expected = single::skyline_single(&pts).value;
        expected.sort_by(Point::cmp_xy);

        let h = skyline_hadoop(&dfs, "/heap", "/out-h").unwrap();
        assert_eq!(canon(&h.value), canon(&expected), "hadoop, {}", dist.name());

        let s = skyline_spatial(&dfs, &file, "/out-s").unwrap();
        assert_eq!(
            canon(&s.value),
            canon(&expected),
            "spatial, {}",
            dist.name()
        );

        let os = skyline_output_sensitive(&dfs, &file, "/out-os").unwrap();
        assert_eq!(canon(&os.value), canon(&expected), "os, {}", dist.name());
    }

    #[test]
    fn all_variants_match_baseline_uniform() {
        run_all(Distribution::Uniform, 41);
    }

    #[test]
    fn all_variants_match_baseline_gaussian() {
        run_all(Distribution::Gaussian, 42);
    }

    #[test]
    fn all_variants_match_baseline_correlated() {
        run_all(Distribution::Correlated, 43);
    }

    #[test]
    fn all_variants_match_baseline_anti_correlated() {
        run_all(Distribution::AntiCorrelated, 44);
    }

    #[test]
    fn spatial_prunes_partitions_on_uniform_data() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let pts = points(5000, Distribution::Uniform, &uni, 45);
        upload(&dfs, "/heap", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/heap", "/idx", PartitionKind::StrPlus)
            .unwrap()
            .value;
        let s = skyline_spatial(&dfs, &file, "/out").unwrap();
        assert!(
            s.counter("skyline.partitions.pruned") > 0,
            "uniform data must allow pruning ({} partitions)",
            file.partitions.len()
        );
        assert!(s.map_tasks() < file.partitions.len());
    }

    #[test]
    fn output_sensitive_rejects_overlapping_index() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let pts = points(1000, Distribution::Uniform, &uni, 46);
        upload(&dfs, "/heap", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/heap", "/idx", PartitionKind::Str)
            .unwrap()
            .value;
        assert!(matches!(
            skyline_output_sensitive(&dfs, &file, "/out"),
            Err(OpError::Unsupported(_))
        ));
    }

    #[test]
    fn output_sensitive_never_merges() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let pts = points(4000, Distribution::AntiCorrelated, &uni, 47);
        upload(&dfs, "/heap", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/heap", "/idx", PartitionKind::Grid)
            .unwrap()
            .value;
        let os = skyline_output_sensitive(&dfs, &file, "/out").unwrap();
        assert_eq!(os.jobs[0].reduce_tasks, 0, "map-only by construction");
        // Worst case: nearly everything is on the skyline, and it is all
        // written from the map side.
        assert!(os.value.len() > 3000);
    }
}
