//! Polygon union.
//!
//! The union's boundary is represented as a bag of segments throughout
//! (see `sh_geom::algorithms::union`), which is what makes the enhanced
//! variant possible at all:
//!
//! * **Hadoop** — each split unions its (random) polygons locally; one
//!   reducer merges the per-task boundary *regions*. Random placement
//!   removes few interior edges locally, so the merge is heavy.
//! * **SpatialHadoop** — same plan over a spatially-partitioned file
//!   (overlapping technique, one copy per polygon): adjacent polygons
//!   meet in the same partition, local union removes most interior
//!   edges, the merge input shrinks dramatically.
//! * **Enhanced** — over a *disjoint* index with replication: each cell
//!   unions every polygon touching it and clips the result to the cell.
//!   Cells tile the plane, so the concatenated clipped boundaries *are*
//!   the final answer — no merge step at all, map-only.

use sh_dfs::Dfs;
use sh_geom::algorithms::union::{boundary_union, union_regions, SegmentRegion};
use sh_geom::float::EPS;
use sh_geom::{Polygon, Record, Segment};
use sh_mapreduce::{
    InputSplit, JobBuilder, JobOutcome, MapContext, Mapper, ReduceContext, Reducer,
};

use crate::catalog::SpatialFile;
use crate::mrlayer::{split_cell, SpatialFileSplitter, SpatialRecordReader};
use crate::opresult::{OpError, OpResult};

struct LocalUnionMapper;

impl Mapper for LocalUnionMapper {
    type K = u8;
    /// `(region id, ax, ay, bx, by)` — the region id groups one map
    /// task's segments back into a coherent boundary at the reducer.
    type V = (u64, f64, f64, f64, f64);

    fn map(
        &self,
        split: &InputSplit,
        data: &str,
        ctx: &mut MapContext<u8, (u64, f64, f64, f64, f64)>,
    ) {
        let region_id = split.blocks.first().map(|b| b.id.0).unwrap_or(0);
        let polys = SpatialRecordReader::records::<Polygon>(data);
        let edges_in: usize = polys.iter().map(Polygon::len).sum();
        let segments = boundary_union(&polys);
        ctx.counter("union.edges.in", edges_in as u64);
        ctx.counter("union.segments.into.merge", segments.len() as u64);
        for s in segments {
            ctx.emit(1, (region_id, s.a.x, s.a.y, s.b.x, s.b.y));
        }
    }
}

struct RegionMergeReducer;

impl Reducer for RegionMergeReducer {
    type K = u8;
    type V = (u64, f64, f64, f64, f64);

    fn reduce(&self, _key: &u8, values: Vec<(u64, f64, f64, f64, f64)>, ctx: &mut ReduceContext) {
        use std::collections::BTreeMap;
        let mut regions: BTreeMap<u64, Vec<Segment>> = BTreeMap::new();
        for (rid, ax, ay, bx, by) in values {
            regions.entry(rid).or_default().push(Segment::new(
                sh_geom::Point::new(ax, ay),
                sh_geom::Point::new(bx, by),
            ));
        }
        let regions: Vec<SegmentRegion> = regions.into_values().map(SegmentRegion::new).collect();
        for s in union_regions(&regions) {
            ctx.output(s.to_line());
        }
    }
}

/// Hadoop polygon union over a heap file.
pub fn union_hadoop(
    dfs: &Dfs,
    heap: &str,
    out_dir: &str,
) -> Result<OpResult<Vec<Segment>>, OpError> {
    let job = JobBuilder::new(dfs, &format!("union-hadoop:{heap}"))
        .input_file(heap)?
        .mapper(LocalUnionMapper)
        .pair_size(|_, _| 40)
        .reducer(RegionMergeReducer, 1)
        .output(out_dir)
        .build()?
        .run()?;
    let value = parse_segments(dfs, &job)?;
    let sel = sh_trace::Selectivity::full_scan(job.map_tasks, value.len() as u64);
    Ok(OpResult::new(value, vec![job]).with_selectivity(sel))
}

/// SpatialHadoop polygon union over a *non-disjoint* spatial index (one
/// copy per polygon, spatially clustered).
pub fn union_spatial(
    dfs: &Dfs,
    file: &SpatialFile,
    out_dir: &str,
) -> Result<OpResult<Vec<Segment>>, OpError> {
    if file.is_disjoint() {
        return Err(OpError::Unsupported(
            "union_spatial needs a non-replicating (overlapping) index; \
             use union_enhanced for disjoint indexes"
                .into(),
        ));
    }
    let splits = SpatialFileSplitter::all_splits(dfs, file)?;
    let mut sel = crate::mrlayer::splitter_selectivity(file, &splits);
    let job = JobBuilder::new(dfs, &format!("union-spatial:{}", file.dir))
        .input_splits(splits)
        .mapper(LocalUnionMapper)
        .pair_size(|_, _| 40)
        .reducer(RegionMergeReducer, 1)
        .output(out_dir)
        .build()?
        .run()?;
    let value = parse_segments(dfs, &job)?;
    sel.records_emitted = value.len() as u64;
    Ok(OpResult::new(value, vec![job]).with_selectivity(sel))
}

struct EnhancedUnionMapper;

impl Mapper for EnhancedUnionMapper {
    type K = u8;
    type V = u8;

    fn map(&self, split: &InputSplit, data: &str, ctx: &mut MapContext<u8, u8>) {
        let cell = split_cell(split);
        let polys = SpatialRecordReader::records::<Polygon>(data);
        let segments = boundary_union(&polys);
        for s in segments {
            // Prune to the cell; drop pieces lying exactly on the cell's
            // upper boundaries so the neighbouring cell (which owns them
            // half-open) reports them instead.
            let Some(clipped) = s.clip(&cell) else {
                ctx.counter("union.segments.clipped", 1);
                continue;
            };
            let on_x2 = (clipped.a.x - cell.x2).abs() < EPS && (clipped.b.x - cell.x2).abs() < EPS;
            let on_y2 = (clipped.a.y - cell.y2).abs() < EPS && (clipped.b.y - cell.y2).abs() < EPS;
            if on_x2 || on_y2 {
                ctx.counter("union.segments.clipped", 1);
                continue;
            }
            ctx.output(clipped.to_line());
            ctx.counter("union.segments.flushed", 1);
        }
    }
}

/// Enhanced union: disjoint index with replication, map-only, no merge.
pub fn union_enhanced(
    dfs: &Dfs,
    file: &SpatialFile,
    out_dir: &str,
) -> Result<OpResult<Vec<Segment>>, OpError> {
    if !file.is_disjoint() {
        return Err(OpError::Unsupported(
            "enhanced union requires a disjoint partitioning".into(),
        ));
    }
    let splits = SpatialFileSplitter::all_splits(dfs, file)?;
    let mut sel = crate::mrlayer::splitter_selectivity(file, &splits);
    let job = JobBuilder::new(dfs, &format!("union-enhanced:{}", file.dir))
        .input_splits(splits)
        .mapper(EnhancedUnionMapper)
        .output(out_dir)
        .map_only()?
        .run()?;
    let value = parse_segments(dfs, &job)?;
    sel.records_emitted = value.len() as u64;
    Ok(OpResult::new(value, vec![job]).with_selectivity(sel))
}

fn parse_segments(dfs: &Dfs, job: &JobOutcome) -> Result<Vec<Segment>, OpError> {
    job.read_output(dfs)?
        .iter()
        .map(|l| Segment::parse_line(l).map_err(OpError::from))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::single;
    use crate::storage::{build_index, upload};
    use sh_dfs::ClusterConfig;
    use sh_geom::algorithms::union::total_length;
    use sh_geom::Rect;
    use sh_index::PartitionKind;
    use sh_workload::osm_like_polygons;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-3 * a.abs().max(b.abs()).max(1.0)
    }

    fn setup(n: usize, seed: u64) -> (Dfs, Vec<Polygon>) {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let polys = osm_like_polygons(n, &uni, 8.0, seed);
        upload(&dfs, "/polys", &polys).unwrap();
        (dfs, polys)
    }

    #[test]
    fn hadoop_union_matches_single_machine() {
        let (dfs, polys) = setup(300, 81);
        let expected = total_length(&single::union_single(&polys).value);
        let got = union_hadoop(&dfs, "/polys", "/out").unwrap();
        assert!(
            close(total_length(&got.value), expected),
            "{} vs {expected}",
            total_length(&got.value)
        );
    }

    #[test]
    fn spatial_union_matches_and_shrinks_merge_input() {
        let (dfs, polys) = setup(400, 82);
        let expected = total_length(&single::union_single(&polys).value);

        let h = union_hadoop(&dfs, "/polys", "/out-h").unwrap();
        let file = build_index::<Polygon>(&dfs, "/polys", "/idx", PartitionKind::Str)
            .unwrap()
            .value;
        let s = union_spatial(&dfs, &file, "/out-s").unwrap();
        assert!(close(total_length(&s.value), expected));
        // Spatial clustering removes more interior edges before the merge.
        assert!(
            s.counter("union.segments.into.merge") <= h.counter("union.segments.into.merge"),
            "spatial {} vs hadoop {}",
            s.counter("union.segments.into.merge"),
            h.counter("union.segments.into.merge")
        );
    }

    #[test]
    fn enhanced_union_matches_without_merge() {
        let (dfs, polys) = setup(400, 83);
        let expected = total_length(&single::union_single(&polys).value);
        let file = build_index::<Polygon>(&dfs, "/polys", "/idx", PartitionKind::StrPlus)
            .unwrap()
            .value;
        let e = union_enhanced(&dfs, &file, "/out-e").unwrap();
        assert!(
            close(total_length(&e.value), expected),
            "{} vs {expected}",
            total_length(&e.value)
        );
        assert_eq!(e.jobs[0].reduce_tasks, 0, "map-only by construction");
    }

    #[test]
    fn variant_precondition_errors() {
        let (dfs, _) = setup(100, 84);
        let disjoint = build_index::<Polygon>(&dfs, "/polys", "/d", PartitionKind::Grid)
            .unwrap()
            .value;
        let overlapping = build_index::<Polygon>(&dfs, "/polys", "/o", PartitionKind::Hilbert)
            .unwrap()
            .value;
        assert!(matches!(
            union_spatial(&dfs, &disjoint, "/x1"),
            Err(OpError::Unsupported(_))
        ));
        assert!(matches!(
            union_enhanced(&dfs, &overlapping, "/x2"),
            Err(OpError::Unsupported(_))
        ));
    }
}
