//! Delaunay triangulation (the Voronoi diagram's dual, constructed
//! distributively with the same safe-region machinery).
//!
//! * **Hadoop** — vertical strips, local triangulations, single-machine
//!   merge (modelled as a driver recomputation, like the Hadoop Voronoi).
//! * **SpatialHadoop** — per partition: triangulate locally and *flush
//!   every triangle whose circumcircle lies inside the partition cell* —
//!   no site outside the cell can ever invalidate it (the empty-
//!   circumcircle property is witnessed entirely inside the cell).
//!   Non-final sites (Voronoi-unsafe) plus their one-ring travel to a
//!   driver merge that recomputes only the boundary strip and emits the
//!   remaining triangles, skipping exactly those the map side already
//!   flushed. The result is cell-for-cell identical to a single-machine
//!   triangulation.

use std::time::Instant;

use sh_dfs::Dfs;
use sh_geom::algorithms::delaunay::{circumcenter, Triangulation};
use sh_geom::algorithms::voronoi::VoronoiDiagram;
use sh_geom::point::sort_dedup;
use sh_geom::{Point, Rect};
use sh_mapreduce::{InputSplit, JobBuilder, JobOutcome, MapContext, Mapper, SimBreakdown};

use crate::catalog::SpatialFile;
use crate::mrlayer::{split_cell, SpatialFileSplitter, SpatialRecordReader};
use crate::opresult::{OpError, OpResult};

/// One output triangle.
#[derive(Clone, Copy, Debug)]
pub struct Tri(pub [Point; 3]);

impl Tri {
    fn encode(&self) -> String {
        let [a, b, c] = self.0;
        format!("T {} {} {} {} {} {}", a.x, a.y, b.x, b.y, c.x, c.y)
    }

    fn decode(line: &str) -> Result<Tri, OpError> {
        let toks: Vec<&str> = line.split_ascii_whitespace().collect();
        if toks.first() != Some(&"T") || toks.len() != 7 {
            return Err(OpError::Corrupt(format!("bad triangle line: {line:?}")));
        }
        let f = |i: usize| -> Result<f64, OpError> {
            toks[i]
                .parse()
                .map_err(|_| OpError::Corrupt(format!("bad triangle number {:?}", toks[i])))
        };
        Ok(Tri([
            Point::new(f(1)?, f(2)?),
            Point::new(f(3)?, f(4)?),
            Point::new(f(5)?, f(6)?),
        ]))
    }

    /// Canonical fingerprint: sorted quantized vertices.
    pub fn fingerprint(&self) -> [(i64, i64); 3] {
        let q = |v: f64| (v * 1e6).round() as i64;
        let mut vs = self.0.map(|p| (q(p.x), q(p.y)));
        vs.sort_unstable();
        vs
    }
}

/// True when the circumcircle of `(a, b, c)` lies inside `cell`.
fn circumcircle_inside(a: &Point, b: &Point, c: &Point, cell: &Rect) -> bool {
    match circumcenter(a, b, c) {
        None => false,
        Some(cc) => {
            let r = cc.distance(a);
            cc.x - r >= cell.x1 && cc.x + r <= cell.x2 && cc.y - r >= cell.y1 && cc.y + r <= cell.y2
        }
    }
}

struct LocalDtMapper;

impl Mapper for LocalDtMapper {
    type K = u8;
    /// `(tag, partition id, x, y)` — tag 0 = pending, 1 = witness.
    type V = (u8, u64, f64, f64);

    fn map(&self, split: &InputSplit, data: &str, ctx: &mut MapContext<u8, (u8, u64, f64, f64)>) {
        let cell = split_cell(split);
        let pid = split.partition_id.expect("spatial split") as u64;
        let mut sites = SpatialRecordReader::records::<Point>(data);
        sort_dedup(&mut sites);
        ctx.counter("delaunay.sites", sites.len() as u64);
        let tri = Triangulation::build(&sites);
        // Flush final triangles: empty circumcircle witnessed inside the
        // cell.
        for t in tri.triangles() {
            let [a, b, c] = t.map(|i| sites[i]);
            if circumcircle_inside(&a, &b, &c, &cell) {
                ctx.output(Tri([a, b, c]).encode());
                ctx.counter("delaunay.flushed.local", 1);
            }
        }
        // Forward boundary sites (Voronoi-unsafe) + one-ring witnesses.
        let vd = VoronoiDiagram::from_triangulation(&tri);
        let rings = tri.neighbor_rings();
        let mut pending = vec![false; sites.len()];
        for c in &vd.cells {
            if !c.is_safe(&cell) {
                pending[c.site_ix] = true;
            }
        }
        let mut witness = vec![false; sites.len()];
        for (i, &is_pending) in pending.iter().enumerate() {
            if is_pending {
                for &j in rings.get(i).map(|r| r.as_slice()).unwrap_or(&[]) {
                    if !pending[j] {
                        witness[j] = true;
                    }
                }
            }
        }
        for (i, s) in sites.iter().enumerate() {
            if pending[i] {
                ctx.emit(1, (0, pid, s.x, s.y));
                ctx.counter("delaunay.forwarded", 1);
            } else if witness[i] {
                ctx.emit(1, (1, pid, s.x, s.y));
                ctx.counter("delaunay.forwarded", 1);
            }
        }
    }

    fn map_bytes(
        &self,
        split: &InputSplit,
        data: &[u8],
        ctx: &mut MapContext<u8, (u8, u64, f64, f64)>,
    ) {
        let text = SpatialRecordReader::task_text::<Point>(&split.path, data);
        self.map(split, &text, ctx);
    }
}

/// Collecting reducer: the merge runs on the driver, so the lone reducer
/// just forwards the site set as a side file.
struct ForwardReducer;

impl sh_mapreduce::Reducer for ForwardReducer {
    type K = u8;
    type V = (u8, u64, f64, f64);

    fn reduce(
        &self,
        _key: &u8,
        values: Vec<(u8, u64, f64, f64)>,
        ctx: &mut sh_mapreduce::ReduceContext,
    ) {
        for (tag, pid, x, y) in values {
            ctx.side_output("_merge", format!("{tag} {pid} {x} {y}"));
        }
    }
}

/// SpatialHadoop Delaunay triangulation over a disjoint point index.
pub fn delaunay_spatial(
    dfs: &Dfs,
    file: &SpatialFile,
    out_dir: &str,
) -> Result<OpResult<Vec<Tri>>, OpError> {
    if !file.is_disjoint() {
        return Err(OpError::Unsupported(
            "delaunay_spatial requires a disjoint partitioning".into(),
        ));
    }
    let splits = SpatialFileSplitter::all_splits(dfs, file)?;
    let mut sel = crate::mrlayer::splitter_selectivity(file, &splits);
    let job = JobBuilder::new(dfs, &format!("delaunay-spatial:{}", file.dir))
        .input_splits(splits)
        .mapper(LocalDtMapper)
        .pair_size(|_, _| 25)
        .reducer(ForwardReducer, 1)
        .output(out_dir)
        .build()?
        .run()?;

    // Driver merge over the boundary strip.
    let mut triangles: Vec<Tri> = job
        .read_output(dfs)?
        .iter()
        .map(|l| Tri::decode(l))
        .collect::<Result<_, _>>()?;
    let merge_path = format!("{out_dir}/_merge");
    let mut jobs = vec![job];
    if dfs.exists(&merge_path) {
        let text = dfs.read_to_string(&merge_path)?;
        let t0 = Instant::now();
        let mut entries: Vec<(bool, u64, Point)> = Vec::new();
        for line in text.lines() {
            let toks: Vec<&str> = line.split_ascii_whitespace().collect();
            entries.push((
                toks[0] == "0",
                toks[1].parse().expect("pid"),
                Point::new(toks[2].parse().expect("x"), toks[3].parse().expect("y")),
            ));
        }
        // Dedup (pending wins) keyed on coordinates.
        entries.sort_by(|a, b| a.2.cmp_xy(&b.2).then(b.0.cmp(&a.0)));
        entries.dedup_by(|a, b| {
            if a.2.approx_eq(&b.2) {
                b.0 |= a.0;
                true
            } else {
                false
            }
        });
        let sites: Vec<Point> = entries.iter().map(|e| e.2).collect();
        let pending: Vec<bool> = entries.iter().map(|e| e.0).collect();
        let pids: Vec<u64> = entries.iter().map(|e| e.1).collect();
        let cell_of_pid = |pid: u64| -> Rect {
            file.partitions
                .iter()
                .find(|m| m.id as u64 == pid)
                .map(|m| m.cell_rect())
                .unwrap_or_else(Rect::empty)
        };
        let tri = Triangulation::build(&sites);
        let mut emitted = 0u64;
        for t in tri.triangles() {
            // Emit triangles touching a pending site, except those the
            // map side already flushed (all vertices in one partition
            // with the circumcircle inside that partition's cell).
            if !t.iter().any(|&i| pending[i]) {
                continue;
            }
            let [a, b, c] = t.map(|i| sites[i]);
            let same_pid = pids[t[0]] == pids[t[1]] && pids[t[1]] == pids[t[2]];
            if same_pid && circumcircle_inside(&a, &b, &c, &cell_of_pid(pids[t[0]])) {
                continue; // already flushed by that partition
            }
            triangles.push(Tri([a, b, c]));
            emitted += 1;
        }
        let cfg = dfs.config();
        jobs.push(JobOutcome::synthetic(
            "delaunay-spatial:driver-merge",
            out_dir,
            std::collections::BTreeMap::from([("delaunay.flushed.merge".to_string(), emitted)]),
            SimBreakdown {
                startup: 0.0,
                map: 0.0,
                shuffle: text.len() as f64 / cfg.network_bandwidth,
                reduce: t0.elapsed().as_secs_f64(),
            },
            t0.elapsed(),
            0,
            1,
        ));
    }
    sel.records_emitted = triangles.len() as u64;
    Ok(OpResult::new(triangles, jobs).with_selectivity(sel))
}

struct StripDtMapper {
    universe: Rect,
    strips: usize,
}

impl Mapper for StripDtMapper {
    type K = u64;
    type V = (f64, f64);

    fn map(&self, _split: &InputSplit, data: &str, ctx: &mut MapContext<u64, (f64, f64)>) {
        let w = self.universe.width().max(1e-12);
        for p in SpatialRecordReader::records::<Point>(data) {
            let s = (((p.x - self.universe.x1) / w) * self.strips as f64)
                .floor()
                .clamp(0.0, self.strips as f64 - 1.0) as u64;
            ctx.emit(s, (p.x, p.y));
        }
    }

    fn map_bytes(&self, split: &InputSplit, data: &[u8], ctx: &mut MapContext<u64, (f64, f64)>) {
        let text = SpatialRecordReader::task_text::<Point>(&split.path, data);
        self.map(split, &text, ctx);
    }
}

struct StripDtReducer;

impl sh_mapreduce::Reducer for StripDtReducer {
    type K = u64;
    type V = (f64, f64);

    fn reduce(&self, _strip: &u64, values: Vec<(f64, f64)>, ctx: &mut sh_mapreduce::ReduceContext) {
        let mut sites: Vec<Point> = values.iter().map(|&(x, y)| Point::new(x, y)).collect();
        sort_dedup(&mut sites);
        let tri = Triangulation::build(&sites);
        // Transfer the whole partial triangulation (the merge bottleneck).
        for t in tri.triangles() {
            let [a, b, c] = t.map(|i| sites[i]);
            ctx.output(Tri([a, b, c]).encode());
        }
    }
}

/// Hadoop Delaunay: strips + single-machine merge (driver recomputation
/// over all sites of the transferred partial triangulations).
pub fn delaunay_hadoop(
    dfs: &Dfs,
    heap: &str,
    universe: &Rect,
    out_dir: &str,
) -> Result<OpResult<Vec<Tri>>, OpError> {
    let stat = dfs.stat(heap)?;
    let strips = (stat.len.div_ceil(dfs.config().block_size)).max(1) as usize;
    let job = JobBuilder::new(dfs, &format!("delaunay-hadoop:{heap}"))
        .input_file(heap)?
        .mapper(StripDtMapper {
            universe: *universe,
            strips,
        })
        .reducer(
            StripDtReducer,
            strips.min(dfs.config().total_reduce_slots()).max(1),
        )
        .output(out_dir)
        .build()?
        .run()?;
    let lines = job.read_output(dfs)?;
    let transferred: u64 = lines.iter().map(|l| l.len() as u64 + 1).sum();
    let mut sites: Vec<Point> = Vec::new();
    for l in &lines {
        sites.extend(Tri::decode(l)?.0);
    }
    sort_dedup(&mut sites);
    let t0 = Instant::now();
    let tri = Triangulation::build(&sites);
    let value: Vec<Tri> = tri
        .triangles()
        .into_iter()
        .map(|t| Tri(t.map(|i| sites[i])))
        .collect();
    let cfg = dfs.config();
    let merge = JobOutcome::synthetic(
        "delaunay-hadoop:driver-merge",
        out_dir,
        std::collections::BTreeMap::from([("delaunay.merge.bytes".to_string(), transferred)]),
        SimBreakdown {
            startup: 0.0,
            map: 0.0,
            shuffle: transferred as f64 / cfg.network_bandwidth,
            reduce: t0.elapsed().as_secs_f64(),
        },
        t0.elapsed(),
        0,
        1,
    );
    let sel = sh_trace::Selectivity::full_scan(job.map_tasks, value.len() as u64);
    Ok(OpResult::new(value, vec![job, merge]).with_selectivity(sel))
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::storage::{build_index, upload};
    use sh_dfs::ClusterConfig;
    use sh_index::PartitionKind;
    use sh_workload::{osm_like_points, points, Distribution};

    fn canon(tris: &[Tri]) -> Vec<[(i64, i64); 3]> {
        let mut f: Vec<_> = tris.iter().map(Tri::fingerprint).collect();
        f.sort();
        f.dedup();
        f
    }

    fn reference(pts: &[Point]) -> Vec<[(i64, i64); 3]> {
        let tri = Triangulation::build(pts);
        let tris: Vec<Tri> = tri
            .triangles()
            .into_iter()
            .map(|t| Tri(t.map(|i| pts[i])))
            .collect();
        canon(&tris)
    }

    fn run_spatial(n: usize, seed: u64, kind: PartitionKind) {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let mut pts = points(n, Distribution::Uniform, &uni, seed);
        sort_dedup(&mut pts);
        upload(&dfs, "/heap", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/heap", "/idx", kind)
            .unwrap()
            .value;
        let got = delaunay_spatial(&dfs, &file, "/out").unwrap();
        assert_eq!(canon(&got.value), reference(&pts), "{}", kind.name());
        assert_eq!(
            canon(&got.value).len(),
            got.value.len(),
            "no duplicate triangles emitted"
        );
        assert!(
            got.counter("delaunay.flushed.local") > 0,
            "local flush fired"
        );
    }

    #[test]
    fn spatial_matches_single_machine_grid() {
        run_spatial(1200, 201, PartitionKind::Grid);
    }

    #[test]
    fn spatial_matches_single_machine_strplus() {
        run_spatial(1200, 202, PartitionKind::StrPlus);
    }

    #[test]
    fn spatial_matches_single_machine_quadtree_skewed() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let mut pts = osm_like_points(1000, &uni, 4, 203);
        sort_dedup(&mut pts);
        upload(&dfs, "/heap", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/heap", "/idx", PartitionKind::QuadTree)
            .unwrap()
            .value;
        let got = delaunay_spatial(&dfs, &file, "/out").unwrap();
        assert_eq!(canon(&got.value), reference(&pts));
    }

    #[test]
    fn hadoop_matches_single_machine() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let mut pts = points(700, Distribution::Uniform, &uni, 204);
        sort_dedup(&mut pts);
        upload(&dfs, "/heap", &pts).unwrap();
        let got = delaunay_hadoop(&dfs, "/heap", &uni, "/out").unwrap();
        assert_eq!(canon(&got.value), reference(&pts));
        assert!(got.counter("delaunay.merge.bytes") > 0);
    }

    #[test]
    fn rejects_overlapping_index() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let pts = points(300, Distribution::Uniform, &uni, 205);
        upload(&dfs, "/heap", &pts).unwrap();
        let file = build_index::<Point>(&dfs, "/heap", "/idx", PartitionKind::Str)
            .unwrap()
            .value;
        assert!(matches!(
            delaunay_spatial(&dfs, &file, "/out"),
            Err(OpError::Unsupported(_))
        ));
    }

    #[test]
    fn triangle_encoding_roundtrip() {
        let t = Tri([
            Point::new(0.0, 0.0),
            Point::new(2.5, 0.0),
            Point::new(1.0, 3.0),
        ]);
        let d = Tri::decode(&t.encode()).unwrap();
        assert_eq!(d.fingerprint(), t.fingerprint());
        assert!(Tri::decode("nope").is_err());
    }
}
