//! Abstract syntax of Pigeon scripts.

use sh_core::storage::BlockFormat;
use sh_geom::{Point, Rect};
use sh_index::PartitionKind;

/// Record type of a dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordType {
    Point,
    Rectangle,
    Polygon,
}

impl RecordType {
    /// Parses a type name (`POINT`, `RECTANGLE`, `POLYGON`).
    pub fn parse(s: &str) -> Option<RecordType> {
        match s.to_ascii_uppercase().as_str() {
            "POINT" => Some(RecordType::Point),
            "RECTANGLE" | "RECT" => Some(RecordType::Rectangle),
            "POLYGON" => Some(RecordType::Polygon),
            _ => None,
        }
    }
}

/// One statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `v = LOAD '<path>' AS <type>;`
    Load {
        var: String,
        path: String,
        rtype: RecordType,
    },
    /// `v = IMPORT '<host path>' AS <type> INTO '<dfs path>';` — ingest
    /// a real file from the host filesystem into the simulated DFS
    /// (whitespace- or comma-separated coordinates, one record per line).
    Import {
        var: String,
        host_path: String,
        rtype: RecordType,
        path: String,
    },
    /// `v = GENERATE <n> <type> <distribution> INTO '<path>';`
    Generate {
        var: String,
        n: usize,
        rtype: RecordType,
        distribution: String,
        path: String,
    },
    /// `v = DELAUNAY <src>;`
    Delaunay { var: String, src: String },
    /// `v = INDEX <src> AS <technique> INTO '<path>' [FORMAT text|binary];`
    Index {
        var: String,
        src: String,
        kind: PartitionKind,
        path: String,
        format: BlockFormat,
    },
    /// `v = FILTER <src> BY Overlaps(RECTANGLE(x1, y1, x2, y2));`
    RangeFilter {
        var: String,
        src: String,
        query: Rect,
    },
    /// `v = KNN <src> POINT(x, y) K <k>;`
    Knn {
        var: String,
        src: String,
        q: Point,
        k: usize,
    },
    /// `v = JOIN <left>, <right> PREDICATE Overlaps;`
    Join {
        var: String,
        left: String,
        right: String,
    },
    /// `v = KNNJOIN <left>, <right> K <k>;`
    KnnJoin {
        var: String,
        left: String,
        right: String,
        k: usize,
    },
    /// `v = SKYLINE <src>;`
    Skyline { var: String, src: String },
    /// `v = CONVEXHULL <src>;`
    ConvexHull { var: String, src: String },
    /// `v = CLOSESTPAIR <src>;`
    ClosestPair { var: String, src: String },
    /// `v = FARTHESTPAIR <src>;`
    FarthestPair { var: String, src: String },
    /// `v = UNION <src>;`
    Union { var: String, src: String },
    /// `v = VORONOI <src>;`
    Voronoi { var: String, src: String },
    /// `DUMP <src>;`
    Dump { src: String },
    /// `DESCRIBE <src>;` — dataset statistics (count, MBR, bytes).
    Describe { src: String },
    /// `PLOT <src> WIDTH <w> HEIGHT <h> INTO '<path>';` — render a
    /// density image of an indexed dataset (written as PGM in the DFS).
    Plot {
        src: String,
        width: usize,
        height: usize,
        path: String,
    },
    /// `PLOTPYRAMID <src> LEVELS <l> TILE <px> INTO '<path>';` — render
    /// the multilevel tile pyramid (one PGM per non-empty tile).
    PlotPyramid {
        src: String,
        levels: usize,
        tile_px: usize,
        path: String,
    },
    /// `STORE <src> INTO '<path>';`
    Store { src: String, path: String },
    /// `PROFILE <statement>` — run the inner statement and dump the
    /// rendered [`JobProfile`](sh_trace::JobProfile) of the jobs it ran.
    Profile(Box<Stmt>),
    /// `SET <option> <value>;` — adjust the cluster's fault-tolerance
    /// policy for subsequent jobs (e.g. `SET retries 6;`,
    /// `SET speculative true;`, `SET fault_plan 'fail:0@0;kill:2';`).
    /// The value is kept as raw text; the executor interprets it per
    /// option.
    Set { key: String, value: String },
    /// `SUBMIT <statement>` — hand the inner statement to the job
    /// scheduler and continue immediately; any binding, dump output, and
    /// profile it produces land in the session at the matching `WAIT`.
    Submit(Box<Stmt>),
    /// `JOBS;` — dump one line per scheduler job (id, tenant, name,
    /// state).
    Jobs,
    /// `WAIT <id>;` — block until submitted job `<id>` finishes and
    /// merge its binding and dump output into the session.
    Wait { id: u64 },
    /// `STATS;` — dump current counter rates, gauges, and histogram
    /// percentiles from the session's time-series sampler.
    Stats,
    /// `EVENTS [n] [FILTER <kind>];` — dump the last `n` (default 20)
    /// journaled engine events, optionally restricted to kinds starting
    /// with `<kind>` (so `FILTER task` matches `task.retry`).
    Events {
        n: Option<usize>,
        filter: Option<String>,
    },
    /// `EXPLAIN ANALYZE <statement>` — run the inner statement and dump
    /// a waterfall rendering of its span tree with the critical path
    /// marked and the dominant phase summarized.
    ExplainAnalyze(Box<Stmt>),
    /// `SCRUB;` / `SCRUB '<path>';` / `SCRUB <var>;` — checksum every
    /// live replica under the target (the whole namespace when omitted;
    /// an indexed variable scrubs its index directory), quarantine and
    /// re-replicate rotten ones, and dump the report.
    Scrub { target: Option<ScrubTarget> },
}

/// What a `SCRUB` statement walks.
#[derive(Clone, Debug, PartialEq)]
pub enum ScrubTarget {
    /// A literal DFS path prefix: `SCRUB '/idx/points';`.
    Path(String),
    /// A bound variable: `SCRUB points;` scrubs the files behind it.
    Var(String),
}

/// A parsed script.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Script {
    pub stmts: Vec<Stmt>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_type_parsing() {
        assert_eq!(RecordType::parse("point"), Some(RecordType::Point));
        assert_eq!(RecordType::parse("RECT"), Some(RecordType::Rectangle));
        assert_eq!(RecordType::parse("Polygon"), Some(RecordType::Polygon));
        assert_eq!(RecordType::parse("line"), None);
    }
}
