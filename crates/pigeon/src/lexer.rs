//! Tokenizer for Pigeon scripts.

use std::fmt;

/// A lexical token with its line number (1-based) for error reporting.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Bare identifier or keyword (case-preserved; keyword matching is
    /// case-insensitive).
    Ident(String),
    /// Single-quoted string literal (quotes stripped).
    Str(String),
    /// Numeric literal.
    Num(f64),
    Equals,
    Comma,
    Semicolon,
    LParen,
    RParen,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::Num(n) => write!(f, "{n}"),
            TokenKind::Equals => write!(f, "="),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
        }
    }
}

/// Lexer error: an unexpected character or unterminated string.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    pub message: String,
    pub line: usize,
}

/// Tokenizes a script. `--` starts a comment running to end of line.
pub fn tokenize(source: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let mut chars = source.chars().peekable();
    let mut line = 1usize;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '-' => {
                chars.next();
                if chars.peek() == Some(&'-') {
                    // Comment to end of line.
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else if chars.peek().map(|c| c.is_ascii_digit()).unwrap_or(false) {
                    let n = lex_number(&mut chars, true, line)?;
                    tokens.push(Token { kind: n, line });
                } else {
                    return Err(LexError {
                        message: "unexpected '-'".into(),
                        line,
                    });
                }
            }
            '=' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::Equals,
                    line,
                });
            }
            ',' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    line,
                });
            }
            ';' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::Semicolon,
                    line,
                });
            }
            '(' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    line,
                });
            }
            ')' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    line,
                });
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => break,
                        Some('\n') | None => {
                            return Err(LexError {
                                message: "unterminated string literal".into(),
                                line,
                            })
                        }
                        Some(c) => s.push(c),
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let n = lex_number(&mut chars, false, line)?;
                tokens.push(Token { kind: n, line });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '+' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(s),
                    line,
                });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character {other:?}"),
                    line,
                })
            }
        }
    }
    Ok(tokens)
}

fn lex_number(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    negative: bool,
    line: usize,
) -> Result<TokenKind, LexError> {
    let mut s = String::new();
    if negative {
        s.push('-');
    }
    while let Some(&c) = chars.peek() {
        if c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' {
            s.push(c);
            chars.next();
        } else {
            break;
        }
    }
    s.parse::<f64>().map(TokenKind::Num).map_err(|_| LexError {
        message: format!("bad number literal {s:?}"),
        line,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_statement() {
        assert_eq!(
            kinds("pts = LOAD '/data' AS POINT;"),
            vec![
                TokenKind::Ident("pts".into()),
                TokenKind::Equals,
                TokenKind::Ident("LOAD".into()),
                TokenKind::Str("/data".into()),
                TokenKind::Ident("AS".into()),
                TokenKind::Ident("POINT".into()),
                TokenKind::Semicolon,
            ]
        );
    }

    #[test]
    fn numbers_including_negative_and_float() {
        assert_eq!(
            kinds("POINT(1.5, -2)"),
            vec![
                TokenKind::Ident("POINT".into()),
                TokenKind::LParen,
                TokenKind::Num(1.5),
                TokenKind::Comma,
                TokenKind::Num(-2.0),
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let toks = tokenize("a = b; -- comment ; ignored\nc = d;").unwrap();
        assert_eq!(toks.len(), 8);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks.last().unwrap().line, 2);
    }

    #[test]
    fn str_plus_ident() {
        assert_eq!(kinds("STR+"), vec![TokenKind::Ident("STR+".into())]);
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a @ b").is_err());
        assert!(tokenize("- x").is_err());
    }
}
