//! Script execution: routing statements to the operations layer.

use std::collections::HashMap;
use std::fmt;

use sh_core::ops;
use sh_core::storage;
use sh_core::{OpError, OpResult, SpatialFile};
use sh_dfs::{Dfs, FaultPlan};
use sh_geom::{Point, Polygon, Record, Rect};
use sh_mapreduce::{JobHandle, JobScheduler, SchedConfig, SchedPolicy};
use sh_trace::{Event, JobProfile, Sampler, Waterfall};

use crate::ast::{RecordType, Script, ScrubTarget, Stmt};

/// Errors from parsing or executing a script.
#[derive(Debug)]
pub enum PigeonError {
    /// Syntax error with its line number.
    Parse { message: String, line: usize },
    /// Reference to an unbound variable.
    Undefined(String),
    /// Statement applied to a value of the wrong kind.
    Type(String),
    /// Underlying operation failure.
    Op(OpError),
    /// A `SUBMIT`ted job failed (reported at `WAIT`).
    Job(String),
}

impl fmt::Display for PigeonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PigeonError::Parse { message, line } => {
                write!(f, "syntax error on line {line}: {message}")
            }
            PigeonError::Undefined(v) => write!(f, "undefined dataset: {v}"),
            PigeonError::Type(m) => write!(f, "type error: {m}"),
            PigeonError::Op(e) => write!(f, "execution error: {e}"),
            PigeonError::Job(m) => write!(f, "job error: {m}"),
        }
    }
}

impl std::error::Error for PigeonError {}

impl From<OpError> for PigeonError {
    fn from(e: OpError) -> Self {
        PigeonError::Op(e)
    }
}

impl From<sh_dfs::DfsError> for PigeonError {
    fn from(e: sh_dfs::DfsError) -> Self {
        PigeonError::Op(OpError::Dfs(e))
    }
}

/// A bound value in the script environment.
#[derive(Clone, Debug)]
pub enum Value {
    /// An unindexed file in the DFS.
    Heap { path: String, rtype: RecordType },
    /// A spatially-indexed file.
    Indexed {
        file: SpatialFile,
        rtype: RecordType,
    },
    /// Materialized result lines (one record per line).
    Result(Vec<String>),
}

/// The Pigeon execution engine: an environment of named datasets over a
/// simulated cluster.
static OUT_SEQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

pub struct Pigeon {
    dfs: Dfs,
    /// Engine-owned session backing the classic single-client entry
    /// points ([`Pigeon::execute`], [`crate::run_script`]); servers hand
    /// [`Pigeon::execute_with`] one [`SessionCtx`] per connection.
    session: SessionCtx,
    /// Multi-job scheduler, created by the first `SUBMIT` (or shared
    /// across engines via [`Pigeon::with_scheduler`]).
    sched: Option<JobScheduler>,
    /// Admission config the scheduler is created with (`SET sched_*`
    /// before the first `SUBMIT`).
    sched_cfg: SchedConfig,
    /// Time-series sampler over the global registry, started lazily by
    /// the first `STATS;` (so short-lived engines — e.g. the per-job
    /// engines `SUBMIT` spawns — never pay for a sampling thread).
    sampler: Option<Sampler>,
    /// Background integrity scrubber (`SET scrub_interval <ms>;`);
    /// stopped and joined when replaced, disabled, or the engine drops.
    scrubber: Option<Scrubber>,
}

/// Per-client execution state: variable bindings, in-flight `SUBMIT`s,
/// and the knobs `SET` scopes to a single session. Each server
/// connection owns one — so one client's `SET` never changes another's
/// answers — while the CLI driver uses the engine's default session.
#[derive(Default)]
pub struct SessionCtx {
    /// Named datasets bound by this session's statements.
    pub vars: HashMap<String, Value>,
    /// Aggregated profile of the most recent statement that ran jobs;
    /// consumed by `PROFILE <statement>`.
    last_profile: Option<JobProfile>,
    /// Submitted-but-unwaited jobs by scheduler job id.
    pending: HashMap<u64, JobHandle<Result<StmtOutput, String>>>,
    /// Slow-query threshold (`SET slow_query_ms <n>;`); 0 disables.
    slow_query_ms: u64,
    /// Rendered profiles of statements that tripped the slow-query
    /// threshold, drained into the dump output after each statement.
    slow_log: Vec<String>,
    /// `SET result_limit <n>;`: cap on rows a single `DUMP` emits
    /// (0 = unlimited). Session-local by design — the observable proof
    /// that one connection's `SET` cannot leak into another's output.
    result_limit: usize,
}

impl SessionCtx {
    /// An empty session with default knobs.
    pub fn new() -> SessionCtx {
        SessionCtx::default()
    }

    /// A session seeded with this one's bindings and knobs but none of
    /// its in-flight state — what a new server connection starts from.
    pub fn fork(&self) -> SessionCtx {
        SessionCtx {
            vars: self.vars.clone(),
            slow_query_ms: self.slow_query_ms,
            result_limit: self.result_limit,
            ..SessionCtx::default()
        }
    }

    /// Looks up a bound value.
    pub fn get(&self, var: &str) -> Option<&Value> {
        self.vars.get(var)
    }

    fn lookup(&self, var: &str) -> Result<&Value, PigeonError> {
        self.vars
            .get(var)
            .ok_or_else(|| PigeonError::Undefined(var.to_string()))
    }

    /// Unwraps an operation result, stashing its aggregated profile so a
    /// surrounding `PROFILE` statement can report it. Statements whose
    /// wall-clock exceeds `SET slow_query_ms` land their full rendered
    /// profile in the slow-query log and journal a `query.slow` event.
    fn take<T>(&mut self, op: &str, r: OpResult<T>) -> T {
        let profile = r.profile(op);
        if self.slow_query_ms > 0 {
            let wall_ms = profile.wall.as_millis() as u64;
            if wall_ms >= self.slow_query_ms {
                sh_trace::events::emit(
                    "query.slow",
                    vec![("op", op.to_string()), ("wall_ms", wall_ms.to_string())],
                );
                self.slow_log.push(format!(
                    "slow query: {op} took {wall_ms}ms (threshold {}ms)",
                    self.slow_query_ms
                ));
                self.slow_log
                    .extend(profile.render().lines().map(str::to_string));
            }
        }
        self.last_profile = Some(profile);
        r.value
    }

    /// Applies a finished statement's outcome to this session: installs
    /// the binding, stashes the profile, and returns the dump lines.
    pub fn absorb(&mut self, out: StmtOutput) -> Vec<String> {
        if let Some((var, val)) = out.binding {
            self.vars.insert(var, val);
        }
        self.last_profile = out.profile;
        out.dumped
    }
}

/// What a statement run off-thread hands back: the variable it bound
/// (if any), whatever it dumped, and the profile of the jobs it ran.
/// Fed back into its session with [`SessionCtx::absorb`].
pub struct StmtOutput {
    binding: Option<(String, Value)>,
    dumped: Vec<String>,
    profile: Option<JobProfile>,
}

/// Outcome of [`Pigeon::admit_stmt`]: the statement either ran inline,
/// was queued behind a ticket, or was rejected by admission control.
pub enum Admission {
    /// Ran synchronously; here are its dump lines.
    Done(Vec<String>),
    /// The scheduler queue is full — back off and retry.
    Busy,
    /// Queued or running; redeem the ticket for the outcome.
    Pending(StmtTicket),
}

/// A claim on a statement executing through the scheduler.
pub struct StmtTicket {
    sched: JobScheduler,
    handle: JobHandle<Result<StmtOutput, String>>,
}

impl StmtTicket {
    /// Scheduler job id running this statement.
    pub fn id(&self) -> u64 {
        self.handle.id
    }

    /// Non-blocking check: `None` while still queued or running.
    pub fn poll(&self) -> Option<Result<StmtOutput, PigeonError>> {
        self.handle.try_join().map(flatten_job)
    }

    /// Blocks until the statement finishes.
    pub fn wait(self) -> Result<StmtOutput, PigeonError> {
        flatten_job(self.handle.join())
    }

    /// Best-effort cancellation: dequeues the statement if it has not
    /// started yet (a running statement completes normally — its result
    /// is simply never absorbed). True if the queue slot was reclaimed.
    pub fn cancel(&self) -> bool {
        self.sched.cancel(self.handle.id)
    }
}

fn flatten_job(
    r: Result<Result<StmtOutput, String>, sh_mapreduce::SchedError>,
) -> Result<StmtOutput, PigeonError> {
    match r {
        Ok(Ok(out)) => Ok(out),
        Ok(Err(msg)) => Err(PigeonError::Job(msg)),
        Err(e) => Err(PigeonError::Job(e.to_string())),
    }
}

impl Pigeon {
    /// Creates an engine over the given DFS.
    pub fn new(dfs: &Dfs) -> Pigeon {
        Pigeon {
            dfs: dfs.clone(),
            session: SessionCtx::default(),
            sched: None,
            sched_cfg: SchedConfig::default(),
            sampler: None,
            scrubber: None,
        }
    }

    /// Creates an engine that shares an existing scheduler instead of
    /// lazily creating its own — how the server gives every connection
    /// one admission-controlled queue. `SET sched_*` knobs are rejected
    /// on such engines (the scheduler already exists).
    pub fn with_scheduler(dfs: &Dfs, sched: &JobScheduler) -> Pigeon {
        let mut engine = Pigeon::new(dfs);
        engine.sched = Some(sched.clone());
        engine
    }

    /// The engine's scheduler, created on first use.
    fn scheduler(&mut self) -> &JobScheduler {
        if self.sched.is_none() {
            self.sched = Some(JobScheduler::new(&self.dfs, self.sched_cfg));
        }
        self.sched.as_ref().expect("scheduler just created")
    }

    /// Profile of the last statement that ran jobs, if any.
    pub fn last_profile(&self) -> Option<&JobProfile> {
        self.session.last_profile.as_ref()
    }

    /// Looks up a bound value in the engine's own session.
    pub fn get(&self, var: &str) -> Option<&Value> {
        self.session.get(var)
    }

    fn out_dir(&mut self, op: &str) -> String {
        let seq = OUT_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        format!("/pigeon/{op}-{seq}")
    }

    /// Executes a script against the engine's own session; returns the
    /// concatenated lines of all `DUMP` statements in order.
    pub fn execute(&mut self, script: &Script) -> Result<Vec<String>, PigeonError> {
        let mut sess = std::mem::take(&mut self.session);
        let r = self.execute_with(&mut sess, script);
        self.session = sess;
        r
    }

    /// Executes a script against a caller-owned session (one per server
    /// connection).
    pub fn execute_with(
        &mut self,
        sess: &mut SessionCtx,
        script: &Script,
    ) -> Result<Vec<String>, PigeonError> {
        let mut dumped = Vec::new();
        for stmt in &script.stmts {
            self.execute_stmt(sess, stmt, &mut dumped)?;
            // Auto-dump profiles that tripped `SET slow_query_ms`.
            dumped.append(&mut sess.slow_log);
        }
        Ok(dumped)
    }

    /// Admits one statement for a session: statements that run cluster
    /// jobs go through the scheduler — so admission control applies and
    /// the caller can poll, stream, or cancel — while everything else
    /// runs inline. `QueueFull` surfaces as [`Admission::Busy`] rather
    /// than an error; it is the server's 429 path.
    pub fn admit_stmt(
        &mut self,
        sess: &mut SessionCtx,
        stmt: &Stmt,
        tenant: &str,
    ) -> Result<Admission, PigeonError> {
        if !stmt_runs_jobs(stmt) {
            let mut dumped = Vec::new();
            self.execute_stmt(sess, stmt, &mut dumped)?;
            dumped.append(&mut sess.slow_log);
            return Ok(Admission::Done(dumped));
        }
        let name = stmt_verb(stmt);
        let closure = job_closure(stmt.clone(), sess.vars.clone(), sess.slow_query_ms);
        let sched = self.scheduler().clone();
        match sched.submit_as(tenant, name, closure) {
            Ok(handle) => Ok(Admission::Pending(StmtTicket { sched, handle })),
            Err(sh_mapreduce::SchedError::QueueFull) => Ok(Admission::Busy),
            Err(e) => Err(PigeonError::Job(e.to_string())),
        }
    }

    /// The universe of a points dataset (needed by heap-file fallbacks);
    /// derived from the index when available.
    fn universe_of(&self, value: &Value) -> Result<Rect, PigeonError> {
        match value {
            Value::Indexed { file, .. } => Ok(file.universe),
            Value::Heap { path, .. } => {
                // Driver-side scan for the MBR (cheap relative to jobs).
                let text = self.dfs.read_to_string(path)?;
                let mut mbr = Rect::empty();
                for line in text.lines().filter(|l| !l.trim().is_empty()) {
                    let p = Point::parse_line(line).map_err(OpError::from)?;
                    mbr.expand_point(&p);
                }
                Ok(mbr)
            }
            Value::Result(_) => Err(PigeonError::Type(
                "expected a dataset, found a result set".into(),
            )),
        }
    }

    fn execute_stmt(
        &mut self,
        sess: &mut SessionCtx,
        stmt: &Stmt,
        dumped: &mut Vec<String>,
    ) -> Result<(), PigeonError> {
        match stmt {
            Stmt::Load { var, path, rtype } => {
                if !self.dfs.exists(path) {
                    return Err(PigeonError::Undefined(format!("no such file {path}")));
                }
                sess.vars.insert(
                    var.clone(),
                    Value::Heap {
                        path: path.clone(),
                        rtype: *rtype,
                    },
                );
            }
            Stmt::Import {
                var,
                host_path,
                rtype,
                path,
            } => {
                let text = std::fs::read_to_string(host_path).map_err(|e| {
                    PigeonError::Type(format!("cannot read host file {host_path}: {e}"))
                })?;
                let mut writer = self.dfs.create(path)?;
                let mut imported = 0usize;
                for (lineno, raw) in text.lines().enumerate() {
                    let line = raw
                        .trim()
                        .replace(',', " ")
                        .split_whitespace()
                        .collect::<Vec<_>>()
                        .join(" ");
                    if line.is_empty() || line.starts_with('#') {
                        continue;
                    }
                    // Validate against the declared type before storing.
                    let ok = match rtype {
                        RecordType::Point => Point::parse_line(&line).is_ok(),
                        RecordType::Rectangle => Rect::parse_line(&line).is_ok(),
                        RecordType::Polygon => Polygon::parse_line(&line).is_ok(),
                    };
                    if !ok {
                        return Err(PigeonError::Type(format!(
                            "{host_path}:{}: not a valid {rtype:?} record: {raw:?}",
                            lineno + 1
                        )));
                    }
                    writer.write_line(&line);
                    imported += 1;
                }
                writer.close()?;
                if imported == 0 {
                    return Err(PigeonError::Type(format!("{host_path}: no records")));
                }
                sess.vars.insert(
                    var.clone(),
                    Value::Heap {
                        path: path.clone(),
                        rtype: *rtype,
                    },
                );
            }
            Stmt::Generate {
                var,
                n,
                rtype,
                distribution,
                path,
            } => {
                use sh_workload::Distribution as D;
                let universe = sh_workload::default_universe();
                let seed = 0xBEEF ^ (*n as u64);
                match rtype {
                    RecordType::Point => {
                        let dist = match distribution.as_str() {
                            "uniform" => Some(D::Uniform),
                            "gaussian" => Some(D::Gaussian),
                            "correlated" => Some(D::Correlated),
                            "anticorrelated" | "anti" => Some(D::AntiCorrelated),
                            "circular" => Some(D::Circular),
                            "osm" | "osmlike" => None,
                            other => {
                                return Err(PigeonError::Type(format!(
                                    "unknown distribution {other}"
                                )))
                            }
                        };
                        let pts = match dist {
                            Some(d) => sh_workload::points(*n, d, &universe, seed),
                            None => sh_workload::osm_like_points(*n, &universe, 8, seed),
                        };
                        storage::upload(&self.dfs, path, &pts)?;
                    }
                    RecordType::Rectangle => {
                        let rs = sh_workload::rects(*n, &universe, universe.width() * 0.005, seed);
                        storage::upload(&self.dfs, path, &rs)?;
                    }
                    RecordType::Polygon => {
                        let ps = sh_workload::osm_like_polygons(
                            *n,
                            &universe,
                            universe.width() * 0.008,
                            seed,
                        );
                        storage::upload(&self.dfs, path, &ps)?;
                    }
                }
                sess.vars.insert(
                    var.clone(),
                    Value::Heap {
                        path: path.clone(),
                        rtype: *rtype,
                    },
                );
            }
            Stmt::Delaunay { var, src } => {
                let out = self.out_dir("delaunay");
                let tris = match sess.lookup(src)?.clone() {
                    Value::Indexed { file, rtype } => {
                        expect_points(src, rtype)?;
                        let r = ops::delaunay::delaunay_spatial(&self.dfs, &file, &out)?;
                        sess.take("delaunay", r)
                    }
                    Value::Heap { path, rtype } => {
                        expect_points(src, rtype)?;
                        let uni = self.universe_of(&Value::Heap {
                            path: path.clone(),
                            rtype,
                        })?;
                        let r = ops::delaunay::delaunay_hadoop(&self.dfs, &path, &uni, &out)?;
                        sess.take("delaunay", r)
                    }
                    Value::Result(_) => {
                        return Err(PigeonError::Type("DELAUNAY over a result set".into()))
                    }
                };
                let lines = tris
                    .iter()
                    .map(|t| {
                        format!(
                            "{} {} | {} {} | {} {}",
                            t.0[0].x, t.0[0].y, t.0[1].x, t.0[1].y, t.0[2].x, t.0[2].y
                        )
                    })
                    .collect();
                sess.vars.insert(var.clone(), Value::Result(lines));
            }
            Stmt::Index {
                var,
                src,
                kind,
                path,
                format,
            } => {
                let (heap, rtype) = match sess.lookup(src)? {
                    Value::Heap { path, rtype } => (path.clone(), *rtype),
                    _ => {
                        return Err(PigeonError::Type(format!(
                            "INDEX expects a loaded heap file, {src} is not one"
                        )))
                    }
                };
                let r = match rtype {
                    RecordType::Point => {
                        storage::build_index_fmt::<Point>(&self.dfs, &heap, path, *kind, *format)?
                    }
                    RecordType::Rectangle => {
                        storage::build_index_fmt::<Rect>(&self.dfs, &heap, path, *kind, *format)?
                    }
                    RecordType::Polygon => {
                        storage::build_index_fmt::<Polygon>(&self.dfs, &heap, path, *kind, *format)?
                    }
                };
                let file = sess.take("index", r);
                sess.vars
                    .insert(var.clone(), Value::Indexed { file, rtype });
            }
            Stmt::RangeFilter { var, src, query } => {
                let out = self.out_dir("range");
                let lines = match sess.lookup(src)?.clone() {
                    Value::Indexed { file, rtype } => match rtype {
                        RecordType::Point => {
                            let r =
                                ops::range::range_spatial::<Point>(&self.dfs, &file, query, &out)?;
                            to_lines(&sess.take("range", r))
                        }
                        RecordType::Rectangle => {
                            let r =
                                ops::range::range_spatial::<Rect>(&self.dfs, &file, query, &out)?;
                            to_lines(&sess.take("range", r))
                        }
                        RecordType::Polygon => {
                            let r = ops::range::range_spatial::<Polygon>(
                                &self.dfs, &file, query, &out,
                            )?;
                            to_lines(&sess.take("range", r))
                        }
                    },
                    Value::Heap { path, rtype } => match rtype {
                        RecordType::Point => {
                            let r =
                                ops::range::range_hadoop::<Point>(&self.dfs, &path, query, &out)?;
                            to_lines(&sess.take("range", r))
                        }
                        RecordType::Rectangle => {
                            let r =
                                ops::range::range_hadoop::<Rect>(&self.dfs, &path, query, &out)?;
                            to_lines(&sess.take("range", r))
                        }
                        RecordType::Polygon => {
                            let r =
                                ops::range::range_hadoop::<Polygon>(&self.dfs, &path, query, &out)?;
                            to_lines(&sess.take("range", r))
                        }
                    },
                    Value::Result(_) => {
                        return Err(PigeonError::Type("FILTER over a result set".into()))
                    }
                };
                sess.vars.insert(var.clone(), Value::Result(lines));
            }
            Stmt::Knn { var, src, q, k } => {
                let out = self.out_dir("knn");
                let pts = match sess.lookup(src)?.clone() {
                    Value::Indexed { file, rtype } => {
                        expect_points(src, rtype)?;
                        let r = ops::knn::knn_spatial(&self.dfs, &file, q, *k, &out)?;
                        sess.take("knn", r)
                    }
                    Value::Heap { path, rtype } => {
                        expect_points(src, rtype)?;
                        let r = ops::knn::knn_hadoop(&self.dfs, &path, q, *k, &out)?;
                        sess.take("knn", r)
                    }
                    Value::Result(_) => {
                        return Err(PigeonError::Type("KNN over a result set".into()))
                    }
                };
                sess.vars.insert(var.clone(), Value::Result(to_lines(&pts)));
            }
            Stmt::Join { var, left, right } => {
                let out = self.out_dir("join");
                let l = sess.lookup(left)?.clone();
                let r = sess.lookup(right)?.clone();
                let pairs = match (l, r) {
                    (
                        Value::Indexed {
                            file: fa,
                            rtype: ta,
                        },
                        Value::Indexed {
                            file: fb,
                            rtype: tb,
                        },
                    ) => {
                        expect_rects(left, ta)?;
                        expect_rects(right, tb)?;
                        let r = ops::join::distributed_join(&self.dfs, &fa, &fb, &out)?;
                        sess.take("join", r)
                    }
                    (
                        Value::Heap {
                            path: pa,
                            rtype: ta,
                        },
                        Value::Heap {
                            path: pb,
                            rtype: tb,
                        },
                    ) => {
                        expect_rects(left, ta)?;
                        expect_rects(right, tb)?;
                        // Universe for the SJMR grid: union of both MBRs.
                        let ua = self.universe_of(&Value::Heap {
                            path: pa.clone(),
                            rtype: ta,
                        });
                        // Heap rect files need a rect-aware scan; reuse
                        // stored MBR from a quick driver read.
                        let mut uni = Rect::empty();
                        for path in [&pa, &pb] {
                            let text = self.dfs.read_to_string(path)?;
                            for line in text.lines().filter(|l| !l.trim().is_empty()) {
                                uni.expand(&Rect::parse_line(line).map_err(OpError::from)?);
                            }
                        }
                        drop(ua);
                        let r = ops::join::sjmr(&self.dfs, &pa, &pb, &uni, 16, &out)?;
                        sess.take("join", r)
                    }
                    _ => {
                        return Err(PigeonError::Type(
                            "JOIN needs two heap files or two indexed files".into(),
                        ))
                    }
                };
                let lines = pairs
                    .iter()
                    .map(|(a, b)| format!("{} | {}", a.to_line(), b.to_line()))
                    .collect();
                sess.vars.insert(var.clone(), Value::Result(lines));
            }
            Stmt::KnnJoin {
                var,
                left,
                right,
                k,
            } => {
                let out = self.out_dir("knnjoin");
                let (l, r) = (sess.lookup(left)?.clone(), sess.lookup(right)?.clone());
                let rows = match (l, r) {
                    (
                        Value::Indexed {
                            file: fa,
                            rtype: ta,
                        },
                        Value::Indexed {
                            file: fb,
                            rtype: tb,
                        },
                    ) => {
                        expect_points(left, ta)?;
                        expect_points(right, tb)?;
                        let r = ops::knn_join::knn_join_spatial(&self.dfs, &fa, &fb, *k, &out)?;
                        sess.take("knnjoin", r)
                    }
                    _ => {
                        return Err(PigeonError::Type(
                            "KNNJOIN needs two indexed POINT datasets".into(),
                        ))
                    }
                };
                let lines = rows
                    .iter()
                    .map(|row| {
                        let mut s = format!("{} {} |", row.r.x, row.r.y);
                        for n in &row.neighbors {
                            s.push_str(&format!(" {} {}", n.x, n.y));
                        }
                        s
                    })
                    .collect();
                sess.vars.insert(var.clone(), Value::Result(lines));
            }
            Stmt::Skyline { var, src } => {
                let out = self.out_dir("skyline");
                let pts = match sess.lookup(src)?.clone() {
                    Value::Indexed { file, rtype } => {
                        expect_points(src, rtype)?;
                        let r = ops::skyline::skyline_spatial(&self.dfs, &file, &out)?;
                        sess.take("skyline", r)
                    }
                    Value::Heap { path, rtype } => {
                        expect_points(src, rtype)?;
                        let r = ops::skyline::skyline_hadoop(&self.dfs, &path, &out)?;
                        sess.take("skyline", r)
                    }
                    Value::Result(_) => {
                        return Err(PigeonError::Type("SKYLINE over a result set".into()))
                    }
                };
                sess.vars.insert(var.clone(), Value::Result(to_lines(&pts)));
            }
            Stmt::ConvexHull { var, src } => {
                let out = self.out_dir("hull");
                let pts = match sess.lookup(src)?.clone() {
                    Value::Indexed { file, rtype } => {
                        expect_points(src, rtype)?;
                        let r = ops::convex_hull::hull_spatial(&self.dfs, &file, &out)?;
                        sess.take("convexhull", r)
                    }
                    Value::Heap { path, rtype } => {
                        expect_points(src, rtype)?;
                        let r = ops::convex_hull::hull_hadoop(&self.dfs, &path, &out)?;
                        sess.take("convexhull", r)
                    }
                    Value::Result(_) => {
                        return Err(PigeonError::Type("CONVEXHULL over a result set".into()))
                    }
                };
                sess.vars.insert(var.clone(), Value::Result(to_lines(&pts)));
            }
            Stmt::ClosestPair { var, src } => {
                let out = self.out_dir("cp");
                let pair = match sess.lookup(src)?.clone() {
                    Value::Indexed { file, rtype } => {
                        expect_points(src, rtype)?;
                        let r = ops::closest_pair::closest_pair_spatial(&self.dfs, &file, &out)?;
                        sess.take("closestpair", r)
                    }
                    _ => {
                        return Err(PigeonError::Type(
                            "CLOSESTPAIR requires an indexed dataset".into(),
                        ))
                    }
                };
                let lines = pair
                    .map(|p| {
                        vec![format!(
                            "{} | {} | {}",
                            p.a.to_line(),
                            p.b.to_line(),
                            p.distance
                        )]
                    })
                    .unwrap_or_default();
                sess.vars.insert(var.clone(), Value::Result(lines));
            }
            Stmt::FarthestPair { var, src } => {
                let out = self.out_dir("fp");
                let pair = match sess.lookup(src)?.clone() {
                    Value::Indexed { file, rtype } => {
                        expect_points(src, rtype)?;
                        let r = ops::farthest_pair::farthest_pair_spatial(&self.dfs, &file, &out)?;
                        sess.take("farthestpair", r)
                    }
                    Value::Heap { path, rtype } => {
                        expect_points(src, rtype)?;
                        let r = ops::farthest_pair::farthest_pair_hadoop(&self.dfs, &path, &out)?;
                        sess.take("farthestpair", r)
                    }
                    Value::Result(_) => {
                        return Err(PigeonError::Type("FARTHESTPAIR over a result set".into()))
                    }
                };
                let lines = pair
                    .map(|p| {
                        vec![format!(
                            "{} | {} | {}",
                            p.a.to_line(),
                            p.b.to_line(),
                            p.distance
                        )]
                    })
                    .unwrap_or_default();
                sess.vars.insert(var.clone(), Value::Result(lines));
            }
            Stmt::Union { var, src } => {
                let out = self.out_dir("union");
                let segs = match sess.lookup(src)?.clone() {
                    Value::Indexed { file, rtype } => {
                        if rtype != RecordType::Polygon {
                            return Err(PigeonError::Type(format!(
                                "UNION expects polygons, {src} is not"
                            )));
                        }
                        if file.is_disjoint() {
                            let r = ops::union::union_enhanced(&self.dfs, &file, &out)?;
                            sess.take("union", r)
                        } else {
                            let r = ops::union::union_spatial(&self.dfs, &file, &out)?;
                            sess.take("union", r)
                        }
                    }
                    Value::Heap { path, rtype } => {
                        if rtype != RecordType::Polygon {
                            return Err(PigeonError::Type(format!(
                                "UNION expects polygons, {src} is not"
                            )));
                        }
                        let r = ops::union::union_hadoop(&self.dfs, &path, &out)?;
                        sess.take("union", r)
                    }
                    Value::Result(_) => {
                        return Err(PigeonError::Type("UNION over a result set".into()))
                    }
                };
                sess.vars
                    .insert(var.clone(), Value::Result(to_lines(&segs)));
            }
            Stmt::Voronoi { var, src } => {
                let out = self.out_dir("voronoi");
                let cells = match sess.lookup(src)?.clone() {
                    Value::Indexed { file, rtype } => {
                        expect_points(src, rtype)?;
                        let r = ops::voronoi::voronoi_spatial(&self.dfs, &file, &out)?;
                        sess.take("voronoi", r)
                    }
                    Value::Heap { path, rtype } => {
                        expect_points(src, rtype)?;
                        let uni = self.universe_of(&Value::Heap {
                            path: path.clone(),
                            rtype,
                        })?;
                        let r = ops::voronoi::voronoi_hadoop(&self.dfs, &path, &uni, &out)?;
                        sess.take("voronoi", r)
                    }
                    Value::Result(_) => {
                        return Err(PigeonError::Type("VORONOI over a result set".into()))
                    }
                };
                let lines = cells
                    .iter()
                    .map(|c| {
                        format!(
                            "{} {} cell[{} vertices]",
                            c.site.x,
                            c.site.y,
                            c.vertices.len()
                        )
                    })
                    .collect();
                sess.vars.insert(var.clone(), Value::Result(lines));
            }
            Stmt::Describe { src } => {
                let stats = match sess.lookup(src)?.clone() {
                    Value::Indexed { file, .. } => ops::aggregate::stats_spatial(&file),
                    Value::Heap { path, rtype } => {
                        let out = self.out_dir("describe");
                        let r = match rtype {
                            RecordType::Point => {
                                ops::aggregate::stats_hadoop::<Point>(&self.dfs, &path, &out)?
                            }
                            RecordType::Rectangle => {
                                ops::aggregate::stats_hadoop::<Rect>(&self.dfs, &path, &out)?
                            }
                            RecordType::Polygon => {
                                ops::aggregate::stats_hadoop::<Polygon>(&self.dfs, &path, &out)?
                            }
                        };
                        sess.take("describe", r)
                    }
                    Value::Result(lines) => {
                        dumped.push(format!("result set: {} rows", lines.len()));
                        return Ok(());
                    }
                };
                dumped.push(format!(
                    "{src}: {} records, {} bytes, mbr [{}, {}] x [{}, {}]",
                    stats.records,
                    stats.bytes,
                    stats.mbr.x1,
                    stats.mbr.x2,
                    stats.mbr.y1,
                    stats.mbr.y2
                ));
            }
            Stmt::Plot {
                src,
                width,
                height,
                path,
            } => {
                let (file, rtype) = match sess.lookup(src)?.clone() {
                    Value::Indexed { file, rtype } => (file, rtype),
                    _ => return Err(PigeonError::Type("PLOT requires an indexed dataset".into())),
                };
                let r = match rtype {
                    RecordType::Point => {
                        ops::plot::plot_spatial::<Point>(&self.dfs, &file, *width, *height, path)?
                    }
                    RecordType::Rectangle => {
                        ops::plot::plot_spatial::<Rect>(&self.dfs, &file, *width, *height, path)?
                    }
                    RecordType::Polygon => {
                        ops::plot::plot_spatial::<Polygon>(&self.dfs, &file, *width, *height, path)?
                    }
                };
                sess.take("plot", r);
            }
            Stmt::PlotPyramid {
                src,
                levels,
                tile_px,
                path,
            } => {
                let (file, rtype) = match sess.lookup(src)?.clone() {
                    Value::Indexed { file, rtype } => (file, rtype),
                    _ => {
                        return Err(PigeonError::Type(
                            "PLOTPYRAMID requires an indexed dataset".into(),
                        ))
                    }
                };
                let r = match rtype {
                    RecordType::Point => {
                        ops::plot::plot_pyramid::<Point>(&self.dfs, &file, *levels, *tile_px, path)?
                    }
                    RecordType::Rectangle => {
                        ops::plot::plot_pyramid::<Rect>(&self.dfs, &file, *levels, *tile_px, path)?
                    }
                    RecordType::Polygon => ops::plot::plot_pyramid::<Polygon>(
                        &self.dfs, &file, *levels, *tile_px, path,
                    )?,
                };
                sess.take("plotpyramid", r);
            }
            Stmt::Dump { src } => {
                let start = dumped.len();
                match sess.lookup(src)? {
                    Value::Result(lines) => dumped.extend(lines.iter().cloned()),
                    Value::Heap { path, .. } => {
                        let text = self.dfs.read_to_string(path)?;
                        dumped.extend(text.lines().map(str::to_string));
                    }
                    Value::Indexed { file, .. } => {
                        dumped.push(format!(
                            "indexed file {} ({}; {} partitions, {} records)",
                            file.dir,
                            file.kind.name(),
                            file.partitions.len(),
                            file.total_records()
                        ));
                    }
                }
                // Session-local row cap (`SET result_limit <n>;`).
                let limit = sess.result_limit;
                let emitted = dumped.len() - start;
                if limit > 0 && emitted > limit {
                    dumped.truncate(start + limit);
                    dumped.push(format!(
                        "... ({} rows truncated by result_limit {limit})",
                        emitted - limit
                    ));
                }
            }
            Stmt::Profile(inner) => {
                sess.last_profile = None;
                self.execute_stmt(sess, inner, dumped)?;
                match sess.last_profile.take() {
                    Some(p) => dumped.extend(p.render().lines().map(str::to_string)),
                    None => dumped.push("profile: statement ran no jobs".to_string()),
                }
            }
            Stmt::ExplainAnalyze(inner) => {
                sess.last_profile = None;
                self.execute_stmt(sess, inner, dumped)?;
                match sess.last_profile.take() {
                    Some(p) => match &p.spans {
                        Some(root) => {
                            dumped.push(format!("explain analyze: {}", p.job));
                            dumped
                                .extend(format!("{}", Waterfall(root)).lines().map(str::to_string));
                        }
                        None => {
                            dumped.push("explain analyze: statement recorded no spans".to_string())
                        }
                    },
                    None => dumped.push("explain analyze: statement ran no jobs".to_string()),
                }
            }
            Stmt::Stats => {
                let sampler = self.sampler.get_or_insert_with(|| {
                    Sampler::start(sh_trace::global(), std::time::Duration::from_millis(200))
                });
                // Force a fresh sample so STATS reflects the statements
                // that just ran, not the last background tick.
                sampler.tick();
                dumped.extend(sampler.render().lines().map(str::to_string));
            }
            Stmt::Events { n, filter } => {
                let events = sh_trace::journal().recent(n.unwrap_or(20), filter.as_deref());
                if events.is_empty() {
                    dumped.push("events: none recorded".to_string());
                } else {
                    dumped.extend(events.iter().map(Event::render));
                }
            }
            Stmt::Set { key, value } => self.apply_set(sess, key, value)?,
            Stmt::Submit(inner) => {
                forbid_nested_async(inner)?;
                let stmt = (**inner).clone();
                let name = stmt_verb(&stmt).to_string();
                // The job sees a snapshot of the environment; its own
                // bindings come back at WAIT, so concurrent jobs cannot
                // race on the variable table.
                let closure = job_closure(stmt, sess.vars.clone(), sess.slow_query_ms);
                let handle = self
                    .scheduler()
                    .submit(&name, closure)
                    .map_err(|e| PigeonError::Job(e.to_string()))?;
                dumped.push(format!("submitted job {} ({name})", handle.id));
                sess.pending.insert(handle.id, handle);
            }
            Stmt::Jobs => match &self.sched {
                Some(sched) => {
                    for j in sched.jobs() {
                        dumped.push(format!(
                            "job {} {} [{}]: {}",
                            j.id, j.name, j.tenant, j.state
                        ));
                    }
                }
                None => dumped.push("no jobs submitted".to_string()),
            },
            Stmt::Wait { id } => {
                let handle = sess
                    .pending
                    .remove(id)
                    .ok_or_else(|| PigeonError::Type(format!("WAIT {id}: no such pending job")))?;
                match handle.join() {
                    Ok(Ok(outcome)) => dumped.extend(sess.absorb(outcome)),
                    Ok(Err(msg)) => return Err(PigeonError::Job(format!("job {id}: {msg}"))),
                    Err(e) => return Err(PigeonError::Job(format!("job {id}: {e}"))),
                }
            }
            Stmt::Scrub { target } => {
                let prefix = match target {
                    None => String::new(),
                    Some(ScrubTarget::Path(p)) => p.clone(),
                    Some(ScrubTarget::Var(v)) => match sess.lookup(v)? {
                        Value::Heap { path, .. } => path.clone(),
                        Value::Indexed { file, .. } => file.dir.clone(),
                        Value::Result(_) => {
                            return Err(PigeonError::Type(format!(
                                "SCRUB {v}: result sets have no storage to scrub"
                            )))
                        }
                    },
                };
                dumped.push(self.dfs.scrub(&prefix).to_string());
            }
            Stmt::Store { src, path } => {
                let lines = match sess.lookup(src)? {
                    Value::Result(lines) => lines.clone(),
                    _ => {
                        return Err(PigeonError::Type(
                            "STORE expects a computed result set".into(),
                        ))
                    }
                };
                let mut w = self.dfs.create(path)?;
                for line in &lines {
                    w.write_line(line);
                }
                w.close()?;
            }
        }
        Ok(())
    }

    /// Admission knobs configure the scheduler at creation; changing
    /// them afterwards would silently not apply.
    fn require_no_scheduler(&self, key: &str) -> Result<(), PigeonError> {
        if self.sched.is_some() {
            return Err(PigeonError::Type(format!(
                "SET {key} must precede the first SUBMIT"
            )));
        }
        Ok(())
    }

    /// Applies a `SET <option> <value>;`. Most knobs configure the
    /// cluster (shared by every session); `slow_query_ms` and
    /// `result_limit` are session-local.
    fn apply_set(
        &mut self,
        sess: &mut SessionCtx,
        key: &str,
        value: &str,
    ) -> Result<(), PigeonError> {
        let num = |v: &str| {
            v.parse::<u64>().map_err(|_| {
                PigeonError::Type(format!(
                    "SET {key} expects a non-negative integer, got {v:?}"
                ))
            })
        };
        let flag = |v: &str| match v.to_ascii_lowercase().as_str() {
            "true" | "on" | "1" => Ok(true),
            "false" | "off" | "0" => Ok(false),
            _ => Err(PigeonError::Type(format!(
                "SET {key} expects true/false, got {v:?}"
            ))),
        };
        match key.to_ascii_lowercase().as_str() {
            "retries" | "max_task_attempts" => {
                let n = num(value)?.max(1) as usize;
                self.dfs.update_ft_options(|ft| ft.max_task_attempts = n);
            }
            "blacklist_threshold" | "node_blacklist_threshold" => {
                let n = num(value)?.max(1) as usize;
                self.dfs
                    .update_ft_options(|ft| ft.node_blacklist_threshold = n);
            }
            "worker_threads" => {
                // 0 restores the default (available parallelism).
                let n = num(value)? as usize;
                let threads = if n == 0 { None } else { Some(n) };
                self.dfs.update_ft_options(|ft| ft.worker_threads = threads);
            }
            "retry_backoff_ms" => {
                let ms = num(value)?;
                self.dfs.update_ft_options(|ft| ft.retry_backoff_ms = ms);
            }
            "speculative" | "speculative_execution" => {
                let on = flag(value)?;
                self.dfs
                    .update_ft_options(|ft| ft.speculative_execution = on);
            }
            "speculation_threshold_ms" => {
                let ms = num(value)?;
                self.dfs
                    .update_ft_options(|ft| ft.speculation_threshold_ms = ms);
            }
            "fault_plan" => {
                let plan = FaultPlan::parse(value).map_err(PigeonError::Type)?;
                self.dfs.update_ft_options(|ft| ft.fault_plan = plan);
            }
            "mmap" | "mmap_scans" => {
                // Zero-copy read path: binary scans view mmap-backed
                // spill files in place instead of decoding owned buffers.
                let on = flag(value)?;
                self.dfs.update_ft_options(|ft| ft.mmap_scans = on);
            }
            "cache_budget" | "cache_budget_bytes" => {
                // Byte budget of the per-node block cache; 0 disables it.
                self.dfs.cache().set_budget(num(value)?);
            }
            "sched_slots" => {
                // Cluster-wide worker-slot pool; shared by every job.
                self.dfs.slots().set_total(num(value)?.max(1) as usize);
            }
            "sched_policy" => {
                self.require_no_scheduler(key)?;
                self.sched_cfg.policy = SchedPolicy::parse(value).map_err(PigeonError::Type)?;
            }
            "sched_max_inflight" => {
                self.require_no_scheduler(key)?;
                self.sched_cfg.max_in_flight = num(value)?.max(1) as usize;
            }
            "sched_queue_cap" => {
                self.require_no_scheduler(key)?;
                self.sched_cfg.queue_cap = num(value)?.max(1) as usize;
            }
            "telemetry_log" => {
                // JSONL sink for the event journal; `none`/`off` detaches.
                let path = match value.to_ascii_lowercase().as_str() {
                    "none" | "off" => None,
                    _ => Some(value),
                };
                sh_trace::journal()
                    .set_log_path(path)
                    .map_err(PigeonError::Type)?;
            }
            "slow_query_ms" => {
                // Statements slower than this auto-dump their profile;
                // 0 disables the slow-query log. Session-local.
                sess.slow_query_ms = num(value)?;
            }
            "result_limit" | "result_limit_rows" => {
                // Per-session cap on rows a DUMP emits; 0 is unlimited.
                sess.result_limit = num(value)? as usize;
            }
            "scrub_interval" | "scrub_interval_ms" => {
                // Background integrity scrubber period; 0 stops it. Runs
                // through the job scheduler as the low-priority "scrub"
                // tenant so fair-share keeps it from starving queries.
                let ms = num(value)?;
                self.scrubber = None; // stop and join any previous one
                if ms > 0 {
                    if self.sched.is_none() {
                        self.sched = Some(JobScheduler::new(&self.dfs, self.sched_cfg));
                    }
                    let sched = self.sched.as_ref().expect("scheduler just created").clone();
                    self.scrubber =
                        Some(Scrubber::start(sched, std::time::Duration::from_millis(ms)));
                }
            }
            other => {
                return Err(PigeonError::Type(format!(
                    "unknown SET option {other} (expected retries, blacklist_threshold, \
                     worker_threads, retry_backoff_ms, speculative, \
                     speculation_threshold_ms, cache_budget, fault_plan, mmap, \
                     sched_slots, sched_policy, sched_max_inflight, sched_queue_cap, \
                     telemetry_log, slow_query_ms, result_limit, or scrub_interval)"
                )))
            }
        }
        Ok(())
    }
}

fn to_lines<R: Record>(records: &[R]) -> Vec<String> {
    records.iter().map(Record::to_line).collect()
}

/// Scheduler jobs run whole statements; letting them submit or wait on
/// further jobs would deadlock a full queue on itself.
fn forbid_nested_async(stmt: &Stmt) -> Result<(), PigeonError> {
    match stmt {
        Stmt::Submit(_) | Stmt::Jobs | Stmt::Wait { .. } => Err(PigeonError::Type(
            "SUBMIT cannot wrap SUBMIT, JOBS, or WAIT".into(),
        )),
        Stmt::Profile(inner) | Stmt::ExplainAnalyze(inner) => forbid_nested_async(inner),
        _ => Ok(()),
    }
}

/// The variable a statement binds, if any.
fn target_var(stmt: &Stmt) -> Option<&str> {
    match stmt {
        Stmt::Load { var, .. }
        | Stmt::Import { var, .. }
        | Stmt::Generate { var, .. }
        | Stmt::Delaunay { var, .. }
        | Stmt::Index { var, .. }
        | Stmt::RangeFilter { var, .. }
        | Stmt::Knn { var, .. }
        | Stmt::Join { var, .. }
        | Stmt::KnnJoin { var, .. }
        | Stmt::Skyline { var, .. }
        | Stmt::ConvexHull { var, .. }
        | Stmt::ClosestPair { var, .. }
        | Stmt::FarthestPair { var, .. }
        | Stmt::Union { var, .. }
        | Stmt::Voronoi { var, .. } => Some(var),
        Stmt::Profile(inner) | Stmt::ExplainAnalyze(inner) => target_var(inner),
        _ => None,
    }
}

/// Short scheduler-facing name for a submitted statement.
fn stmt_verb(stmt: &Stmt) -> &'static str {
    match stmt {
        Stmt::Load { .. } => "load",
        Stmt::Import { .. } => "import",
        Stmt::Generate { .. } => "generate",
        Stmt::Delaunay { .. } => "delaunay",
        Stmt::Index { .. } => "index",
        Stmt::RangeFilter { .. } => "range",
        Stmt::Knn { .. } => "knn",
        Stmt::Join { .. } => "join",
        Stmt::KnnJoin { .. } => "knnjoin",
        Stmt::Skyline { .. } => "skyline",
        Stmt::ConvexHull { .. } => "convexhull",
        Stmt::ClosestPair { .. } => "closestpair",
        Stmt::FarthestPair { .. } => "farthestpair",
        Stmt::Union { .. } => "union",
        Stmt::Voronoi { .. } => "voronoi",
        Stmt::Dump { .. } => "dump",
        Stmt::Describe { .. } => "describe",
        Stmt::Plot { .. } => "plot",
        Stmt::PlotPyramid { .. } => "plotpyramid",
        Stmt::Store { .. } => "store",
        Stmt::Profile(inner) => stmt_verb(inner),
        Stmt::ExplainAnalyze(inner) => stmt_verb(inner),
        Stmt::Set { .. } => "set",
        Stmt::Submit(_) => "submit",
        Stmt::Jobs => "jobs",
        Stmt::Wait { .. } => "wait",
        Stmt::Stats => "stats",
        Stmt::Events { .. } => "events",
        Stmt::Scrub { .. } => "scrub",
    }
}

/// Whether a statement launches cluster jobs — the criterion
/// [`Pigeon::admit_stmt`] uses to route it through the scheduler so
/// admission control (and thus server back-pressure) applies to it.
/// Bookkeeping statements (`LOAD`, `SET`, `DUMP`, `WAIT`, ...) run
/// inline: they finish in microseconds and `DUMP`/`WAIT` need the live
/// session state a snapshot could not provide.
pub fn stmt_runs_jobs(stmt: &Stmt) -> bool {
    match stmt {
        Stmt::Import { .. }
        | Stmt::Generate { .. }
        | Stmt::Delaunay { .. }
        | Stmt::Index { .. }
        | Stmt::RangeFilter { .. }
        | Stmt::Knn { .. }
        | Stmt::Join { .. }
        | Stmt::KnnJoin { .. }
        | Stmt::Skyline { .. }
        | Stmt::ConvexHull { .. }
        | Stmt::ClosestPair { .. }
        | Stmt::FarthestPair { .. }
        | Stmt::Union { .. }
        | Stmt::Voronoi { .. }
        | Stmt::Describe { .. }
        | Stmt::Plot { .. }
        | Stmt::PlotPyramid { .. }
        | Stmt::Scrub { .. } => true,
        Stmt::Profile(inner) | Stmt::ExplainAnalyze(inner) => stmt_runs_jobs(inner),
        Stmt::Load { .. }
        | Stmt::Dump { .. }
        | Stmt::Store { .. }
        | Stmt::Set { .. }
        | Stmt::Submit(_)
        | Stmt::Jobs
        | Stmt::Wait { .. }
        | Stmt::Stats
        | Stmt::Events { .. } => false,
    }
}

/// Packages a statement for scheduler execution: the closure builds a
/// throwaway engine over a snapshot of the session's bindings and
/// returns the statement's outcome for later [`SessionCtx::absorb`].
fn job_closure(
    stmt: Stmt,
    vars: HashMap<String, Value>,
    slow_query_ms: u64,
) -> impl FnOnce(&Dfs) -> Result<StmtOutput, String> + Send + 'static {
    move |dfs| {
        let mut engine = Pigeon::new(dfs);
        let mut sess = SessionCtx {
            vars,
            slow_query_ms,
            ..SessionCtx::default()
        };
        let mut dumped = Vec::new();
        engine
            .execute_stmt(&mut sess, &stmt, &mut dumped)
            .map_err(|e| e.to_string())?;
        // Slow-query profiles travel with the job's dump output.
        dumped.append(&mut sess.slow_log);
        let binding = target_var(&stmt)
            .and_then(|v| sess.vars.get(v).map(|val| (v.to_string(), val.clone())));
        Ok(StmtOutput {
            binding,
            dumped,
            profile: sess.last_profile.take(),
        })
    }
}

/// Background integrity scrubber: one thread that periodically submits a
/// whole-namespace scrub through the job scheduler under the "scrub"
/// tenant. Fair-share admission keeps it from starving query jobs; a
/// full queue just skips that round. Dropping the handle stops and joins
/// the thread.
struct Scrubber {
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Scrubber {
    fn start(sched: JobScheduler, interval: std::time::Duration) -> Scrubber {
        use std::sync::atomic::{AtomicBool, Ordering};
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let watch = std::sync::Arc::clone(&stop);
        let handle = std::thread::spawn(move || loop {
            // Sleep in short slices so `SET scrub_interval 0;` (or the
            // engine dropping) stops the thread promptly.
            let mut slept = std::time::Duration::ZERO;
            while slept < interval {
                if watch.load(Ordering::Relaxed) {
                    return;
                }
                let slice = std::time::Duration::from_millis(10).min(interval - slept);
                std::thread::sleep(slice);
                slept += slice;
            }
            if watch.load(Ordering::Relaxed) {
                return;
            }
            match sched.submit_as("scrub", "scrub", |dfs| dfs.scrub("")) {
                Ok(handle) => {
                    let _ = handle.join();
                }
                Err(_) => {
                    // Queue full or scheduler shut down: skip this round.
                }
            }
        });
        Scrubber {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Scrubber {
    fn drop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn expect_points(var: &str, rtype: RecordType) -> Result<(), PigeonError> {
    if rtype == RecordType::Point {
        Ok(())
    } else {
        Err(PigeonError::Type(format!("{var} must be a POINT dataset")))
    }
}

fn expect_rects(var: &str, rtype: RecordType) -> Result<(), PigeonError> {
    if rtype == RecordType::Rectangle {
        Ok(())
    } else {
        Err(PigeonError::Type(format!(
            "{var} must be a RECTANGLE dataset"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_script;
    use sh_core::storage::upload;
    use sh_dfs::ClusterConfig;
    use sh_workload::{points, rects, Distribution};

    fn dfs_with_points() -> (Dfs, Vec<Point>) {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let pts = points(1500, Distribution::Uniform, &uni, 101);
        upload(&dfs, "/data/points", &pts).unwrap();
        (dfs, pts)
    }

    #[test]
    fn end_to_end_range_query() {
        let (dfs, pts) = dfs_with_points();
        let out = run_script(
            &dfs,
            "p = LOAD '/data/points' AS POINT;\n\
             i = INDEX p AS grid INTO '/idx/p';\n\
             r = FILTER i BY Overlaps(RECTANGLE(100, 100, 300, 300));\n\
             DUMP r;",
        )
        .unwrap();
        let expected = pts
            .iter()
            .filter(|p| Rect::new(100.0, 100.0, 300.0, 300.0).contains_point(p))
            .count();
        assert_eq!(out.len(), expected);
    }

    #[test]
    fn index_format_binary_matches_text_results() {
        let (dfs, _) = dfs_with_points();
        let text = run_script(
            &dfs,
            "p = LOAD '/data/points' AS POINT;\n\
             i = INDEX p AS str+ INTO '/idx/t' FORMAT text;\n\
             r = FILTER i BY Overlaps(RECTANGLE(100, 100, 300, 300));\n\
             DUMP r;",
        )
        .unwrap();
        let bin = run_script(
            &dfs,
            "p = LOAD '/data/points' AS POINT;\n\
             i = INDEX p AS str+ INTO '/idx/b' FORMAT binary;\n\
             r = FILTER i BY Overlaps(RECTANGLE(100, 100, 300, 300));\n\
             DUMP r;",
        )
        .unwrap();
        let sorted = |mut v: Vec<String>| {
            v.sort();
            v
        };
        assert!(!text.is_empty());
        assert_eq!(sorted(text), sorted(bin));
        // The binary partition files really are columnar blocks.
        let part = dfs
            .list("/idx/b/")
            .into_iter()
            .find(|p| p.contains("/part-"))
            .expect("binary index has partitions");
        let raw = dfs.read_bytes(&part).unwrap();
        assert!(sh_core::colblock::is_binary(&raw));
    }

    #[test]
    fn ops_over_binary_index_match_text() {
        // KNN and SKYLINE read partitions through the generic mapper path,
        // so they must transparently decode columnar blocks.
        let (dfs, _) = dfs_with_points();
        let script = |idx: &str, fmt: &str| {
            format!(
                "p = LOAD '/data/points' AS POINT;\n\
                 i = INDEX p AS str+ INTO '{idx}' FORMAT {fmt};\n\
                 n = KNN i POINT(500, 500) K 7;\n\
                 s = SKYLINE i;\n\
                 DUMP n;\n\
                 DUMP s;"
            )
        };
        let text = run_script(&dfs, &script("/ops/t", "text")).unwrap();
        let bin = run_script(&dfs, &script("/ops/b", "binary")).unwrap();
        let sorted = |mut v: Vec<String>| {
            v.sort();
            v
        };
        assert!(!text.is_empty());
        assert_eq!(sorted(text), sorted(bin));
    }

    #[test]
    fn binary_format_rejects_polygons() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 100.0, 100.0);
        let polys = sh_workload::osm_like_polygons(50, &uni, 10.0, 7);
        upload(&dfs, "/polys", &polys).unwrap();
        let err = run_script(
            &dfs,
            "p = LOAD '/polys' AS POLYGON;\n\
             i = INDEX p AS grid INTO '/idx' FORMAT binary;",
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("binary block format"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn end_to_end_knn_and_store() {
        let (dfs, _) = dfs_with_points();
        let out = run_script(
            &dfs,
            "p = LOAD '/data/points' AS POINT;\n\
             i = INDEX p AS str+ INTO '/idx/p';\n\
             n = KNN i POINT(500, 500) K 7;\n\
             STORE n INTO '/out/nn';\n\
             DUMP n;",
        )
        .unwrap();
        assert_eq!(out.len(), 7);
        assert_eq!(dfs.read_to_string("/out/nn").unwrap().lines().count(), 7);
    }

    #[test]
    fn end_to_end_join() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let uni = Rect::new(0.0, 0.0, 500.0, 500.0);
        upload(&dfs, "/l", &rects(200, &uni, 30.0, 1)).unwrap();
        upload(&dfs, "/r", &rects(200, &uni, 30.0, 2)).unwrap();
        let indexed = run_script(
            &dfs,
            "a = LOAD '/l' AS RECTANGLE;\n\
             b = LOAD '/r' AS RECTANGLE;\n\
             ia = INDEX a AS grid INTO '/ia';\n\
             ib = INDEX b AS grid INTO '/ib';\n\
             j = JOIN ia, ib PREDICATE Overlaps;\n\
             DUMP j;",
        )
        .unwrap();
        let heap = run_script(
            &dfs,
            "a = LOAD '/l' AS RECTANGLE;\n\
             b = LOAD '/r' AS RECTANGLE;\n\
             j = JOIN a, b PREDICATE Overlaps;\n\
             DUMP j;",
        )
        .unwrap();
        let mut a = indexed.clone();
        let mut b = heap.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "DJ and SJMR must agree");
        assert!(!a.is_empty());
    }

    #[test]
    fn cg_operations_run() {
        let (dfs, pts) = dfs_with_points();
        let out = run_script(
            &dfs,
            "p = LOAD '/data/points' AS POINT;\n\
             i = INDEX p AS grid INTO '/idx/p';\n\
             s = SKYLINE i;\n\
             h = CONVEXHULL i;\n\
             c = CLOSESTPAIR i;\n\
             f = FARTHESTPAIR i;\n\
             DUMP c;\n\
             DUMP f;",
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        let _ = pts;
    }

    #[test]
    fn profile_statement_dumps_rendered_profile() {
        let (dfs, _) = dfs_with_points();
        let out = run_script(
            &dfs,
            "p = LOAD '/data/points' AS POINT;\n\
             i = INDEX p AS grid INTO '/idx/p';\n\
             PROFILE r = FILTER i BY Overlaps(RECTANGLE(100, 100, 300, 300));",
        )
        .unwrap();
        let text = out.join("\n");
        assert!(text.contains("job profile: range"), "{text}");
        assert!(text.contains("splitter:"), "{text}");
        assert!(text.contains("dfs:"), "{text}");

        // A statement that runs no jobs still reports something sensible.
        let out = run_script(&dfs, "p = LOAD '/data/points' AS POINT;\nPROFILE DUMP p;").unwrap();
        assert!(
            out.last().unwrap().contains("ran no jobs"),
            "{:?}",
            out.last()
        );
    }

    #[test]
    fn set_statements_adjust_fault_tolerance_options() {
        let (dfs, _) = dfs_with_points();
        run_script(
            &dfs,
            "SET retries 6;\n\
             SET blacklist_threshold 2;\n\
             SET worker_threads 3;\n\
             SET speculative true;\n\
             SET speculation_threshold_ms 99;\n\
             SET retry_backoff_ms 0;\n\
             SET cache_budget 1048576;\n\
             SET mmap on;\n\
             SET fault_plan 'fail:0@0;kill:1';",
        )
        .unwrap();
        assert_eq!(dfs.cache().budget(), 1_048_576);
        let ft = dfs.ft_options();
        assert_eq!(ft.max_task_attempts, 6);
        assert_eq!(ft.node_blacklist_threshold, 2);
        assert_eq!(ft.worker_threads, Some(3));
        assert!(ft.speculative_execution);
        assert_eq!(ft.speculation_threshold_ms, 99);
        assert_eq!(ft.retry_backoff_ms, 0);
        assert!(ft.mmap_scans);
        assert_eq!(ft.fault_plan.to_string(), "fail:0@0;kill:1");
        // `worker_threads 0` restores auto; `fault_plan none` clears;
        // `mmap_scans` is the long-form alias.
        run_script(
            &dfs,
            "SET worker_threads 0;\nSET fault_plan none;\nSET mmap_scans off;",
        )
        .unwrap();
        let ft = dfs.ft_options();
        assert_eq!(ft.worker_threads, None);
        assert!(ft.fault_plan.is_empty());
        assert!(!ft.mmap_scans);
        // Unknown options and malformed values are type errors.
        assert!(matches!(
            run_script(&dfs, "SET frobnicate 1;"),
            Err(PigeonError::Type(_))
        ));
        assert!(matches!(
            run_script(&dfs, "SET retries many;"),
            Err(PigeonError::Type(_))
        ));
        assert!(matches!(
            run_script(&dfs, "SET fault_plan 'explode:7';"),
            Err(PigeonError::Type(_))
        ));
    }

    #[test]
    fn injected_faults_show_up_in_profiles() {
        let (dfs, _) = dfs_with_points();
        let out = run_script(
            &dfs,
            "p = LOAD '/data/points' AS POINT;\n\
             i = INDEX p AS grid INTO '/idx/p';\n\
             SET retry_backoff_ms 0;\n\
             SET fault_plan 'fail:0@0';\n\
             PROFILE r = FILTER i BY Overlaps(RECTANGLE(100, 100, 300, 300));",
        )
        .unwrap();
        let text = out.join("\n");
        assert!(text.contains("faults:"), "{text}");
        assert!(text.contains("1 retries"), "{text}");
    }

    #[test]
    fn submit_wait_runs_statements_asynchronously() {
        let (dfs, pts) = dfs_with_points();
        let out = run_script(
            &dfs,
            "p = LOAD '/data/points' AS POINT;\n\
             i = INDEX p AS grid INTO '/idx/p';\n\
             SUBMIT r = FILTER i BY Overlaps(RECTANGLE(100, 100, 300, 300));\n\
             SUBMIT n = KNN i POINT(500, 500) K 5;\n\
             WAIT 0;\n\
             WAIT 1;\n\
             JOBS;\n\
             DUMP r;\n\
             DUMP n;",
        )
        .unwrap();
        let text = out.join("\n");
        assert!(text.contains("submitted job 0 (range)"), "{text}");
        assert!(text.contains("submitted job 1 (knn)"), "{text}");
        assert!(text.contains("job 0 range [default]: done"), "{text}");
        assert!(text.contains("job 1 knn [default]: done"), "{text}");
        // The async range result matches the serial expectation exactly.
        let expected = pts
            .iter()
            .filter(|p| Rect::new(100.0, 100.0, 300.0, 300.0).contains_point(p))
            .count();
        // 2 submit lines + 2 JOBS lines + range rows + 5 knn rows.
        assert_eq!(out.len(), 4 + expected + 5);
    }

    #[test]
    fn wait_surfaces_the_jobs_profile_and_errors() {
        let (dfs, _) = dfs_with_points();
        // PROFILE WAIT renders the profile the submitted job produced.
        let out = run_script(
            &dfs,
            "p = LOAD '/data/points' AS POINT;\n\
             i = INDEX p AS grid INTO '/idx/p';\n\
             SUBMIT r = FILTER i BY Overlaps(RECTANGLE(100, 100, 300, 300));\n\
             PROFILE WAIT 0;",
        )
        .unwrap();
        let text = out.join("\n");
        assert!(text.contains("job profile: range"), "{text}");
        // A failing submitted statement reports at WAIT, not SUBMIT.
        let err = run_script(&dfs, "SUBMIT x = SKYLINE missing;\nWAIT 0;").unwrap_err();
        assert!(matches!(err, PigeonError::Job(_)), "{err}");
        assert!(err.to_string().contains("missing"), "{err}");
        // Waiting twice (or for an unknown id) is a type error.
        let err = run_script(&dfs, "WAIT 99;").unwrap_err();
        assert!(matches!(err, PigeonError::Type(_)), "{err}");
    }

    #[test]
    fn submit_cannot_nest_async_statements() {
        let (dfs, _) = dfs_with_points();
        for script in [
            "SUBMIT SUBMIT s = SKYLINE p;",
            "SUBMIT JOBS;",
            "SUBMIT WAIT 0;",
            "SUBMIT PROFILE WAIT 0;",
        ] {
            let err = run_script(&dfs, script).unwrap_err();
            assert!(matches!(err, PigeonError::Type(_)), "{script}: {err}");
        }
    }

    #[test]
    fn sched_set_options_configure_scheduler_and_slots() {
        let (dfs, _) = dfs_with_points();
        run_script(&dfs, "SET sched_slots 3;").unwrap();
        assert_eq!(dfs.slots().total(), 3);
        // Admission knobs must precede the first SUBMIT.
        let err = run_script(
            &dfs,
            "p = LOAD '/data/points' AS POINT;\n\
             SET sched_policy fair;\n\
             SET sched_max_inflight 2;\n\
             SET sched_queue_cap 8;\n\
             SUBMIT s = SKYLINE p;\n\
             WAIT 0;\n\
             SET sched_policy fifo;",
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("must precede the first SUBMIT"),
            "{err}"
        );
        assert!(matches!(
            run_script(&dfs, "SET sched_policy roundrobin;"),
            Err(PigeonError::Type(_))
        ));
    }

    #[test]
    fn jobs_without_scheduler_reports_empty() {
        let (dfs, _) = dfs_with_points();
        let out = run_script(&dfs, "JOBS;").unwrap();
        assert_eq!(out, vec!["no jobs submitted".to_string()]);
    }

    #[test]
    fn type_errors_are_reported() {
        let (dfs, _) = dfs_with_points();
        let err = run_script(
            &dfs,
            "p = LOAD '/data/points' AS RECTANGLE;\n\
             n = KNN p POINT(1, 1) K 2;",
        )
        .unwrap_err();
        assert!(matches!(err, PigeonError::Type(_)), "{err}");
        let err = run_script(&dfs, "DUMP nothing;").unwrap_err();
        assert!(matches!(err, PigeonError::Undefined(_)));
        let err = run_script(&dfs, "x = LOAD '/missing' AS POINT;").unwrap_err();
        assert!(matches!(err, PigeonError::Undefined(_)));
    }

    #[test]
    fn plot_statement_writes_pgm() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        run_script(
            &dfs,
            "p = GENERATE 1000 POINT gaussian INTO '/pl/p';\n\
             i = INDEX p AS grid INTO '/pl/idx';\n\
             PLOT i WIDTH 32 HEIGHT 32 INTO '/pl/img';",
        )
        .unwrap();
        let pgm = dfs.read_to_string("/pl/img/image.pgm").unwrap();
        assert!(pgm.starts_with("P2\n32 32\n255\n"));
    }

    #[test]
    fn import_statement_reads_host_files() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let tmp = std::env::temp_dir().join("pigeon-import-test.csv");
        std::fs::write(&tmp, "# comment\n1.5, 2.5\n3.0, 4.0\n\n5.0 6.0\n").unwrap();
        let script = format!(
            "p = IMPORT '{}' AS POINT INTO '/imp/points';\nDUMP p;",
            tmp.display()
        );
        let out = run_script(&dfs, &script).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], "1.5 2.5");
        std::fs::remove_file(&tmp).ok();

        // Bad rows are rejected with a line number.
        std::fs::write(&tmp, "1.0 2.0\nnot a point\n").unwrap();
        let script = format!("p = IMPORT '{}' AS POINT INTO '/imp/bad';", tmp.display());
        let err = run_script(&dfs, &script).unwrap_err();
        assert!(err.to_string().contains(":2:"), "{err}");
        std::fs::remove_file(&tmp).ok();
    }

    #[test]
    fn plot_pyramid_statement_writes_tiles() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        run_script(
            &dfs,
            "p = GENERATE 800 POINT osm INTO '/py/p';\n\
             i = INDEX p AS grid INTO '/py/idx';\n\
             PLOTPYRAMID i LEVELS 2 TILE 16 INTO '/py/tiles';",
        )
        .unwrap();
        assert!(dfs.exists("/py/tiles/tile-0-0-0.pgm"));
        // Level 1 has up to 4 tiles; at least one exists.
        assert!(!dfs.list("/py/tiles/tile-1-").is_empty());
    }

    #[test]
    fn describe_statement() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let out = run_script(
            &dfs,
            "p = GENERATE 500 POINT uniform INTO '/d/p';\n\
             i = INDEX p AS grid INTO '/d/idx';\n\
             DESCRIBE p;\n\
             DESCRIBE i;",
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert!(out[0].contains("500 records"), "{}", out[0]);
        assert!(out[1].contains("500 records"), "{}", out[1]);
    }

    #[test]
    fn knnjoin_statement_end_to_end() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let out = run_script(
            &dfs,
            "a = GENERATE 300 POINT uniform INTO '/kj/a';\n\
             b = GENERATE 500 POINT gaussian INTO '/kj/b';\n\
             ia = INDEX a AS grid INTO '/kj/ia';\n\
             ib = INDEX b AS grid INTO '/kj/ib';\n\
             j = KNNJOIN ia, ib K 3;\n\
             DUMP j;",
        )
        .unwrap();
        assert_eq!(out.len(), 300, "one row per left point");
        assert!(out[0].contains('|'));
    }

    #[test]
    fn generate_and_delaunay_end_to_end() {
        let dfs = Dfs::new(ClusterConfig::small_for_tests());
        let out = run_script(
            &dfs,
            "p = GENERATE 400 POINT uniform INTO '/gen/p';\n\
             i = INDEX p AS grid INTO '/gen/idx';\n\
             t = DELAUNAY i;\n\
             DUMP t;",
        )
        .unwrap();
        // 2n - h - 2 triangles; just check plausibility and format.
        assert!(out.len() > 500, "{} triangles", out.len());
        assert!(out[0].contains('|'));
        assert!(dfs.exists("/gen/p"));
    }

    #[test]
    fn dump_indexed_shows_catalogue_summary() {
        let (dfs, _) = dfs_with_points();
        let out = run_script(
            &dfs,
            "p = LOAD '/data/points' AS POINT;\n\
             i = INDEX p AS quadtree INTO '/idx/q';\n\
             DUMP i;",
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].contains("quadtree"), "{}", out[0]);
    }

    #[test]
    fn explain_analyze_renders_a_waterfall_with_critical_path() {
        let (dfs, _) = dfs_with_points();
        let out = run_script(
            &dfs,
            "p = LOAD '/data/points' AS POINT;\n\
             i = INDEX p AS grid INTO '/idx/p';\n\
             EXPLAIN ANALYZE r = FILTER i BY Overlaps(RECTANGLE(100, 100, 300, 300));",
        )
        .unwrap();
        let text = out.join("\n");
        assert!(text.contains("explain analyze:"), "{text}");
        assert!(text.contains("waterfall"), "{text}");
        assert!(text.contains('█'), "bars must be drawn: {text}");
        assert!(text.contains("critical path (◆):"), "{text}");
        assert!(text.contains("dominant phase:"), "{text}");
        // The range query's map wave must appear as a span row.
        assert!(text.contains("map-wave"), "{text}");
        // The binding still happened even though the statement was wrapped.
        let err = run_script(&dfs, "EXPLAIN ANALYZE STATS;");
        assert!(
            err.unwrap().join("\n").contains("ran no jobs"),
            "job-less statements explain to a notice"
        );
    }

    #[test]
    fn stats_and_events_return_live_data_after_a_workload() {
        let (dfs, _) = dfs_with_points();
        let out = run_script(
            &dfs,
            "p = LOAD '/data/points' AS POINT;\n\
             i = INDEX p AS grid INTO '/idx/p';\n\
             r = FILTER i BY Overlaps(RECTANGLE(100, 100, 300, 300));\n\
             STATS;\n\
             EVENTS 50;\n\
             EVENTS 50 FILTER job;",
        )
        .unwrap();
        let text = out.join("\n");
        // STATS reports the registry the jobs above just fed.
        assert!(text.contains("stats: "), "{text}");
        assert!(text.contains("job.wall.micros"), "{text}");
        assert!(text.contains("p99"), "{text}");
        // EVENTS shows journaled engine events, newest runs included.
        assert!(text.contains("job.started"), "{text}");
        assert!(text.contains("job.finished"), "{text}");
        // The filtered view drops non-job kinds.
        let filtered: Vec<&str> = out
            .iter()
            .filter(|l| l.starts_with('#'))
            .map(String::as_str)
            .collect();
        assert!(!filtered.is_empty(), "{text}");
    }

    #[test]
    fn events_filter_restricts_kinds() {
        let (dfs, _) = dfs_with_points();
        let out = run_script(
            &dfs,
            "p = LOAD '/data/points' AS POINT;\n\
             i = INDEX p AS grid INTO '/idx/p';\n\
             EVENTS 100 FILTER cache;",
        )
        .unwrap();
        assert!(!out.is_empty());
        for line in out.iter().filter(|l| l.starts_with('#')) {
            assert!(line.contains(" cache."), "non-cache event leaked: {line}");
        }
    }

    #[test]
    fn slow_query_log_auto_dumps_profiles() {
        let (dfs, _) = dfs_with_points();
        // Threshold 0ms is disabled; 1ms-threshold with a real index
        // build (which takes more than a millisecond) must trip.
        let out = run_script(
            &dfs,
            "SET slow_query_ms 10000;\n\
             p = LOAD '/data/points' AS POINT;\n\
             i = INDEX p AS grid INTO '/idx/slowoff';",
        )
        .unwrap();
        assert!(
            !out.iter().any(|l| l.starts_with("slow query:")),
            "10s threshold must not trip: {out:?}"
        );
        let out = run_script(
            &dfs,
            "SET slow_query_ms 1;\n\
             p = LOAD '/data/points' AS POINT;\n\
             i = INDEX p AS grid INTO '/idx/slowon';\n\
             r = FILTER i BY Overlaps(RECTANGLE(100, 100, 300, 300));",
        )
        .unwrap();
        let slow: Vec<&String> = out
            .iter()
            .filter(|l| l.starts_with("slow query:"))
            .collect();
        assert!(!slow.is_empty(), "1ms threshold must trip: {out:?}");
        // The full rendered profile follows the slow-query header.
        assert!(out.iter().any(|l| l.starts_with("job profile:")), "{out:?}");
        // The journal records the slow query too.
        assert!(sh_trace::journal().count("query.slow") >= 1);
    }

    #[test]
    fn telemetry_log_sink_streams_jsonl() {
        let (dfs, _) = dfs_with_points();
        let path =
            std::env::temp_dir().join(format!("sh-pigeon-telemetry-{}.jsonl", std::process::id()));
        let path_s = path.to_string_lossy().to_string();
        let _ = std::fs::remove_file(&path);
        run_script(
            &dfs,
            &format!(
                "SET telemetry_log '{path_s}';\n\
                 p = LOAD '/data/points' AS POINT;\n\
                 i = INDEX p AS grid INTO '/idx/tl';\n\
                 SET telemetry_log none;"
            ),
        )
        .unwrap();
        assert_eq!(sh_trace::journal().log_path(), None, "sink detached");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.is_empty());
        for line in text.lines() {
            let v = sh_trace::json::parse(line).expect("every JSONL line parses");
            assert!(v.get("kind").is_some());
        }
        assert!(text.contains("job.started"), "jobs were journaled");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unknown_set_option_lists_telemetry_keys() {
        let (dfs, _) = dfs_with_points();
        let err = run_script(&dfs, "SET frobnicate 1;").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("telemetry_log"), "{msg}");
        assert!(msg.contains("slow_query_ms"), "{msg}");
        assert!(msg.contains("mmap"), "{msg}");
        assert!(msg.contains("scrub_interval"), "{msg}");
    }

    #[test]
    fn scrub_statement_reports_and_heals() {
        let (dfs, _) = dfs_with_points();
        let mut engine = Pigeon::new(&dfs);
        let run = |engine: &mut Pigeon, src: &str| {
            engine.execute(&crate::parser::parse(src).unwrap()).unwrap()
        };
        let baseline = run(
            &mut engine,
            "p = LOAD '/data/points' AS POINT;\n\
             i = INDEX p AS grid INTO '/idx/scrub';\n\
             r = FILTER i BY Overlaps(RECTANGLE(100, 100, 300, 300));\n\
             DUMP r;",
        );
        // Rot the primary replica of every partition, then scrub by path.
        let mut hit = 0;
        for part in dfs.list("/idx/scrub/") {
            hit += dfs.corrupt_replica(&part, 0, sh_dfs::CorruptKind::Flip);
        }
        assert!(hit > 0);
        let out = run(&mut engine, "SCRUB '/idx/scrub';\nSCRUB '/idx/scrub';");
        assert_eq!(out.len(), 2);
        assert!(
            out[0].contains(&format!("{hit} corrupt, {hit} repaired, 0 unrecoverable")),
            "first pass heals every fault: {}",
            out[0]
        );
        assert!(
            out[1].contains("0 corrupt, 0 repaired, 0 unrecoverable"),
            "second pass is clean: {}",
            out[1]
        );
        // Var-form scrub resolves the indexed binding to its directory.
        let via_var = run(&mut engine, "SCRUB i;");
        assert!(via_var[0].contains("0 corrupt"), "{}", via_var[0]);
        // The healed index answers exactly like before the corruption.
        let mut after = run(
            &mut engine,
            "r2 = FILTER i BY Overlaps(RECTANGLE(100, 100, 300, 300));\nDUMP r2;",
        );
        let mut base = baseline;
        after.sort();
        base.sort();
        assert_eq!(after, base);
    }

    #[test]
    fn background_scrubber_heals_without_queries() {
        let (dfs, _) = dfs_with_points();
        run_script(
            &dfs,
            "p = LOAD '/data/points' AS POINT;\n\
             i = INDEX p AS grid INTO '/idx/bg';",
        )
        .unwrap();
        let mut hit = 0;
        for part in dfs.list("/idx/bg/") {
            hit += dfs.corrupt_replica(&part, 0, sh_dfs::CorruptKind::Truncate);
        }
        assert!(hit > 0);
        let before = dfs.metrics().snapshot();
        let script = crate::parser::parse("SET scrub_interval 20;").unwrap();
        let mut engine = Pigeon::new(&dfs);
        engine.execute(&script).unwrap();
        // Wait for at least one scrub round to find and heal the rot.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let delta = dfs.metrics().snapshot().since(&before);
            if delta.repaired_replicas >= hit as u64 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "background scrubber never healed the corruption"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        // Disabling stops the thread (and Drop would too).
        let off = crate::parser::parse("SET scrub_interval 0;").unwrap();
        engine.execute(&off).unwrap();
        let report = dfs.scrub("/idx/bg/");
        assert_eq!(report.corrupt, 0, "nothing left to heal");
    }
}
