//! Recursive-descent parser for Pigeon.

use sh_core::storage::BlockFormat;
use sh_geom::{Point, Rect};
use sh_index::PartitionKind;

use crate::ast::{RecordType, Script, ScrubTarget, Stmt};
use crate::exec::PigeonError;
use crate::lexer::{tokenize, Token, TokenKind};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn err(&self, msg: impl Into<String>) -> PigeonError {
        PigeonError::Parse {
            message: msg.into(),
            line: self.line(),
        }
    }

    fn next(&mut self) -> Result<TokenKind, PigeonError> {
        let t = self
            .tokens
            .get(self.pos)
            .map(|t| t.kind.clone())
            .ok_or_else(|| self.err("unexpected end of script"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), PigeonError> {
        let t = self.next()?;
        if &t == kind {
            Ok(())
        } else {
            Err(self.err(format!("expected {kind}, found {t}")))
        }
    }

    /// Consumes a case-insensitive keyword.
    fn keyword(&mut self, kw: &str) -> Result<(), PigeonError> {
        match self.next()? {
            TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(self.err(format!("expected {kw}, found {other}"))),
        }
    }

    fn ident(&mut self) -> Result<String, PigeonError> {
        match self.next()? {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn string(&mut self) -> Result<String, PigeonError> {
        match self.next()? {
            TokenKind::Str(s) => Ok(s),
            other => Err(self.err(format!("expected string literal, found {other}"))),
        }
    }

    fn number(&mut self) -> Result<f64, PigeonError> {
        match self.next()? {
            TokenKind::Num(n) => Ok(n),
            other => Err(self.err(format!("expected number, found {other}"))),
        }
    }

    /// `RECTANGLE(x1, y1, x2, y2)`
    fn rectangle(&mut self) -> Result<Rect, PigeonError> {
        self.keyword("RECTANGLE")?;
        self.expect(&TokenKind::LParen)?;
        let x1 = self.number()?;
        self.expect(&TokenKind::Comma)?;
        let y1 = self.number()?;
        self.expect(&TokenKind::Comma)?;
        let x2 = self.number()?;
        self.expect(&TokenKind::Comma)?;
        let y2 = self.number()?;
        self.expect(&TokenKind::RParen)?;
        Ok(Rect::new(x1, y1, x2, y2))
    }

    /// `POINT(x, y)`
    fn point(&mut self) -> Result<Point, PigeonError> {
        self.keyword("POINT")?;
        self.expect(&TokenKind::LParen)?;
        let x = self.number()?;
        self.expect(&TokenKind::Comma)?;
        let y = self.number()?;
        self.expect(&TokenKind::RParen)?;
        Ok(Point::new(x, y))
    }

    fn statement(&mut self) -> Result<Stmt, PigeonError> {
        let first = self.ident()?;
        // Non-assignment statements.
        if first.eq_ignore_ascii_case("PROFILE") {
            // The inner statement consumes its own terminating semicolon.
            return Ok(Stmt::Profile(Box::new(self.statement()?)));
        }
        if first.eq_ignore_ascii_case("SUBMIT") {
            // Like PROFILE: the inner statement consumes its own
            // terminating semicolon.
            return Ok(Stmt::Submit(Box::new(self.statement()?)));
        }
        if first.eq_ignore_ascii_case("EXPLAIN") {
            self.keyword("ANALYZE")?;
            // Like PROFILE: the inner statement consumes its own
            // terminating semicolon.
            return Ok(Stmt::ExplainAnalyze(Box::new(self.statement()?)));
        }
        if first.eq_ignore_ascii_case("STATS") {
            self.expect(&TokenKind::Semicolon)?;
            return Ok(Stmt::Stats);
        }
        if first.eq_ignore_ascii_case("EVENTS") {
            let n = match self.peek() {
                Some(TokenKind::Num(_)) => {
                    let n = self.number()?;
                    if n.fract() != 0.0 || n < 0.0 {
                        return Err(self.err(format!("EVENTS expects a count, found {n}")));
                    }
                    Some(n as usize)
                }
                _ => None,
            };
            let filter = match self.peek() {
                Some(TokenKind::Ident(s)) if s.eq_ignore_ascii_case("FILTER") => {
                    self.next()?;
                    Some(match self.next()? {
                        TokenKind::Ident(s) => s,
                        TokenKind::Str(s) => s,
                        other => {
                            return Err(self.err(format!("expected an event kind, found {other}")))
                        }
                    })
                }
                _ => None,
            };
            self.expect(&TokenKind::Semicolon)?;
            return Ok(Stmt::Events { n, filter });
        }
        if first.eq_ignore_ascii_case("JOBS") {
            self.expect(&TokenKind::Semicolon)?;
            return Ok(Stmt::Jobs);
        }
        if first.eq_ignore_ascii_case("SCRUB") {
            let target = match self.peek() {
                Some(TokenKind::Str(_)) => Some(ScrubTarget::Path(self.string()?)),
                Some(TokenKind::Ident(_)) => Some(ScrubTarget::Var(self.ident()?)),
                _ => None,
            };
            self.expect(&TokenKind::Semicolon)?;
            return Ok(Stmt::Scrub { target });
        }
        if first.eq_ignore_ascii_case("WAIT") {
            let n = self.number()?;
            if n.fract() != 0.0 || n < 0.0 {
                return Err(self.err(format!("WAIT expects a job id, found {n}")));
            }
            self.expect(&TokenKind::Semicolon)?;
            return Ok(Stmt::Wait { id: n as u64 });
        }
        if first.eq_ignore_ascii_case("SET") {
            let key = self.ident()?;
            let value = match self.next()? {
                TokenKind::Num(n) if n.fract() == 0.0 => (n as i64).to_string(),
                TokenKind::Num(n) => n.to_string(),
                TokenKind::Str(s) => s,
                TokenKind::Ident(s) => s,
                other => return Err(self.err(format!("expected a SET value, found {other}"))),
            };
            self.expect(&TokenKind::Semicolon)?;
            return Ok(Stmt::Set { key, value });
        }
        if first.eq_ignore_ascii_case("DUMP") {
            let src = self.ident()?;
            self.expect(&TokenKind::Semicolon)?;
            return Ok(Stmt::Dump { src });
        }
        if first.eq_ignore_ascii_case("DESCRIBE") {
            let src = self.ident()?;
            self.expect(&TokenKind::Semicolon)?;
            return Ok(Stmt::Describe { src });
        }
        if first.eq_ignore_ascii_case("PLOTPYRAMID") {
            let src = self.ident()?;
            self.keyword("LEVELS")?;
            let levels = self.number()? as usize;
            self.keyword("TILE")?;
            let tile_px = self.number()? as usize;
            self.keyword("INTO")?;
            let path = self.string()?;
            self.expect(&TokenKind::Semicolon)?;
            return Ok(Stmt::PlotPyramid {
                src,
                levels,
                tile_px,
                path,
            });
        }
        if first.eq_ignore_ascii_case("PLOT") {
            let src = self.ident()?;
            self.keyword("WIDTH")?;
            let width = self.number()? as usize;
            self.keyword("HEIGHT")?;
            let height = self.number()? as usize;
            self.keyword("INTO")?;
            let path = self.string()?;
            self.expect(&TokenKind::Semicolon)?;
            return Ok(Stmt::Plot {
                src,
                width,
                height,
                path,
            });
        }
        if first.eq_ignore_ascii_case("STORE") {
            let src = self.ident()?;
            self.keyword("INTO")?;
            let path = self.string()?;
            self.expect(&TokenKind::Semicolon)?;
            return Ok(Stmt::Store { src, path });
        }
        // Assignments: `var = VERB ...;`
        let var = first;
        self.expect(&TokenKind::Equals)?;
        let verb = self.ident()?;
        let stmt = match verb.to_ascii_uppercase().as_str() {
            "LOAD" => {
                let path = self.string()?;
                self.keyword("AS")?;
                let tname = self.ident()?;
                let rtype = RecordType::parse(&tname)
                    .ok_or_else(|| self.err(format!("unknown record type {tname}")))?;
                Stmt::Load { var, path, rtype }
            }
            "INDEX" => {
                let src = self.ident()?;
                self.keyword("AS")?;
                let kname = self.ident()?;
                let kind = PartitionKind::parse(&kname)
                    .ok_or_else(|| self.err(format!("unknown index technique {kname}")))?;
                self.keyword("INTO")?;
                let path = self.string()?;
                // Optional layout clause: `FORMAT text|binary`.
                let mut format = BlockFormat::Text;
                if matches!(self.peek(), Some(TokenKind::Ident(s)) if s.eq_ignore_ascii_case("FORMAT"))
                {
                    self.keyword("FORMAT")?;
                    let fname = self.ident()?;
                    format = match fname.to_ascii_lowercase().as_str() {
                        "text" => BlockFormat::Text,
                        "binary" => BlockFormat::Binary,
                        _ => return Err(self.err(format!("unknown block format {fname}"))),
                    };
                }
                Stmt::Index {
                    var,
                    src,
                    kind,
                    path,
                    format,
                }
            }
            "FILTER" => {
                let src = self.ident()?;
                self.keyword("BY")?;
                self.keyword("Overlaps")?;
                self.expect(&TokenKind::LParen)?;
                let query = self.rectangle()?;
                self.expect(&TokenKind::RParen)?;
                Stmt::RangeFilter { var, src, query }
            }
            "KNN" => {
                let src = self.ident()?;
                let q = self.point()?;
                self.keyword("K")?;
                let k = self.number()? as usize;
                Stmt::Knn { var, src, q, k }
            }
            "JOIN" => {
                let left = self.ident()?;
                self.expect(&TokenKind::Comma)?;
                let right = self.ident()?;
                self.keyword("PREDICATE")?;
                self.keyword("Overlaps")?;
                Stmt::Join { var, left, right }
            }
            "KNNJOIN" => {
                let left = self.ident()?;
                self.expect(&TokenKind::Comma)?;
                let right = self.ident()?;
                self.keyword("K")?;
                let k = self.number()? as usize;
                Stmt::KnnJoin {
                    var,
                    left,
                    right,
                    k,
                }
            }
            "SKYLINE" => Stmt::Skyline {
                var,
                src: self.ident()?,
            },
            "CONVEXHULL" => Stmt::ConvexHull {
                var,
                src: self.ident()?,
            },
            "CLOSESTPAIR" => Stmt::ClosestPair {
                var,
                src: self.ident()?,
            },
            "FARTHESTPAIR" => Stmt::FarthestPair {
                var,
                src: self.ident()?,
            },
            "UNION" => Stmt::Union {
                var,
                src: self.ident()?,
            },
            "VORONOI" => Stmt::Voronoi {
                var,
                src: self.ident()?,
            },
            "DELAUNAY" => Stmt::Delaunay {
                var,
                src: self.ident()?,
            },
            "IMPORT" => {
                let host_path = self.string()?;
                self.keyword("AS")?;
                let tname = self.ident()?;
                let rtype = RecordType::parse(&tname)
                    .ok_or_else(|| self.err(format!("unknown record type {tname}")))?;
                self.keyword("INTO")?;
                let path = self.string()?;
                Stmt::Import {
                    var,
                    host_path,
                    rtype,
                    path,
                }
            }
            "GENERATE" => {
                let n = self.number()? as usize;
                let tname = self.ident()?;
                let rtype = RecordType::parse(&tname)
                    .ok_or_else(|| self.err(format!("unknown record type {tname}")))?;
                let distribution = self.ident()?.to_ascii_lowercase();
                self.keyword("INTO")?;
                let path = self.string()?;
                Stmt::Generate {
                    var,
                    n,
                    rtype,
                    distribution,
                    path,
                }
            }
            other => return Err(self.err(format!("unknown operation {other}"))),
        };
        self.expect(&TokenKind::Semicolon)?;
        Ok(stmt)
    }
}

/// Parses a full script.
pub fn parse(source: &str) -> Result<Script, PigeonError> {
    let tokens = tokenize(source).map_err(|e| PigeonError::Parse {
        message: e.message,
        line: e.line,
    })?;
    let mut p = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    while p.peek().is_some() {
        stmts.push(p.statement()?);
    }
    Ok(Script { stmts })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_script_parses() {
        let script = parse(
            "pts = LOAD '/data/p' AS POINT;\n\
             idx = INDEX pts AS STR+ INTO '/idx/p';\n\
             sel = FILTER idx BY Overlaps(RECTANGLE(0, 0, 10, 10));\n\
             nn  = KNN idx POINT(5, 5) K 3;\n\
             j   = JOIN idx, idx PREDICATE Overlaps;\n\
             s   = SKYLINE idx;\n\
             DUMP s;\n\
             STORE nn INTO '/out/nn';",
        )
        .unwrap();
        assert_eq!(script.stmts.len(), 8);
        assert!(matches!(script.stmts[0], Stmt::Load { .. }));
        assert!(matches!(
            script.stmts[1],
            Stmt::Index {
                kind: PartitionKind::StrPlus,
                ..
            }
        ));
        assert!(matches!(script.stmts[3], Stmt::Knn { k: 3, .. }));
        assert!(matches!(script.stmts.last(), Some(Stmt::Store { .. })));
    }

    #[test]
    fn index_format_clause() {
        // No clause → text.
        let s = parse("i = INDEX p AS grid INTO '/idx';").unwrap();
        assert!(matches!(
            s.stmts[0],
            Stmt::Index {
                format: BlockFormat::Text,
                ..
            }
        ));
        let s = parse("i = INDEX p AS str+ INTO '/idx' FORMAT binary;").unwrap();
        assert!(matches!(
            s.stmts[0],
            Stmt::Index {
                format: BlockFormat::Binary,
                ..
            }
        ));
        let s = parse("i = INDEX p AS grid INTO '/idx' FORMAT TEXT;").unwrap();
        assert!(matches!(
            s.stmts[0],
            Stmt::Index {
                format: BlockFormat::Text,
                ..
            }
        ));
        assert!(parse("i = INDEX p AS grid INTO '/idx' FORMAT parquet;").is_err());
    }

    #[test]
    fn generate_and_delaunay_parse() {
        let s = parse(
            "d = GENERATE 5000 POINT uniform INTO '/gen/p';\n\
             i = INDEX d AS grid INTO '/gen/idx';\n\
             t = DELAUNAY i;\n\
             DUMP t;",
        )
        .unwrap();
        assert_eq!(s.stmts.len(), 4);
        assert!(matches!(
            s.stmts[0],
            Stmt::Generate {
                n: 5000,
                rtype: RecordType::Point,
                ..
            }
        ));
        assert!(matches!(s.stmts[2], Stmt::Delaunay { .. }));
    }

    #[test]
    fn profile_wraps_any_statement() {
        let s = parse(
            "PROFILE r = FILTER i BY Overlaps(RECTANGLE(0, 0, 10, 10));\n\
             profile DUMP r;",
        )
        .unwrap();
        assert_eq!(s.stmts.len(), 2);
        match &s.stmts[0] {
            Stmt::Profile(inner) => assert!(matches!(**inner, Stmt::RangeFilter { .. })),
            other => panic!("unexpected {other:?}"),
        }
        match &s.stmts[1] {
            Stmt::Profile(inner) => assert!(matches!(**inner, Stmt::Dump { .. })),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn set_statements_parse() {
        let s = parse(
            "SET retries 6;\n\
             set speculative true;\n\
             SET fault_plan 'fail:0@0;kill:2';",
        )
        .unwrap();
        assert_eq!(
            s.stmts[0],
            Stmt::Set {
                key: "retries".into(),
                value: "6".into()
            }
        );
        assert_eq!(
            s.stmts[1],
            Stmt::Set {
                key: "speculative".into(),
                value: "true".into()
            }
        );
        assert_eq!(
            s.stmts[2],
            Stmt::Set {
                key: "fault_plan".into(),
                value: "fail:0@0;kill:2".into()
            }
        );
        assert!(parse("SET retries;").is_err());
    }

    #[test]
    fn submit_jobs_wait_parse() {
        let s = parse(
            "SUBMIT r = FILTER i BY Overlaps(RECTANGLE(0, 0, 10, 10));\n\
             submit PROFILE n = KNN i POINT(5, 5) K 3;\n\
             JOBS;\n\
             WAIT 0;\n\
             wait 1;",
        )
        .unwrap();
        assert_eq!(s.stmts.len(), 5);
        match &s.stmts[0] {
            Stmt::Submit(inner) => assert!(matches!(**inner, Stmt::RangeFilter { .. })),
            other => panic!("unexpected {other:?}"),
        }
        match &s.stmts[1] {
            Stmt::Submit(inner) => assert!(matches!(**inner, Stmt::Profile(_))),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.stmts[2], Stmt::Jobs);
        assert_eq!(s.stmts[3], Stmt::Wait { id: 0 });
        assert_eq!(s.stmts[4], Stmt::Wait { id: 1 });
        // WAIT needs a whole non-negative job id and JOBS takes nothing.
        assert!(parse("WAIT 1.5;").is_err());
        assert!(parse("WAIT x;").is_err());
        assert!(parse("JOBS i;").is_err());
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let s = parse("a = load '/x' as point;\ndump a;").unwrap();
        assert_eq!(s.stmts.len(), 2);
    }

    #[test]
    fn error_reports_line() {
        let err = parse("a = LOAD '/x' AS POINT;\nb = FROBNICATE a;").unwrap_err();
        match err {
            PigeonError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn parses_scrub() {
        let s = parse("SCRUB;\nSCRUB '/idx/points';\nSCRUB points;").unwrap();
        assert_eq!(s.stmts[0], Stmt::Scrub { target: None });
        assert_eq!(
            s.stmts[1],
            Stmt::Scrub {
                target: Some(ScrubTarget::Path("/idx/points".to_string()))
            }
        );
        assert_eq!(
            s.stmts[2],
            Stmt::Scrub {
                target: Some(ScrubTarget::Var("points".to_string()))
            }
        );
        assert!(parse("SCRUB 5;").is_err());
    }

    #[test]
    fn rejects_malformed_geometry() {
        assert!(parse("a = FILTER x BY Overlaps(RECTANGLE(1, 2, 3));").is_err());
        assert!(parse("a = KNN x POINT(1) K 2;").is_err());
        assert!(parse("a = LOAD '/x' AS TRIANGLE;").is_err());
    }

    #[test]
    fn parses_stats_and_events() {
        let s =
            parse("STATS;\nEVENTS;\nEVENTS 5;\nEVENTS 5 FILTER task;\nEVENTS FILTER 'task.retry';")
                .unwrap();
        assert_eq!(s.stmts[0], Stmt::Stats);
        assert_eq!(
            s.stmts[1],
            Stmt::Events {
                n: None,
                filter: None
            }
        );
        assert_eq!(
            s.stmts[2],
            Stmt::Events {
                n: Some(5),
                filter: None
            }
        );
        assert_eq!(
            s.stmts[3],
            Stmt::Events {
                n: Some(5),
                filter: Some("task".to_string())
            }
        );
        assert_eq!(
            s.stmts[4],
            Stmt::Events {
                n: None,
                filter: Some("task.retry".to_string())
            }
        );
        assert!(parse("EVENTS 1.5;").is_err());
        assert!(parse("EVENTS 5 FILTER;").is_err());
    }

    #[test]
    fn parses_explain_analyze() {
        let s =
            parse("EXPLAIN ANALYZE r = FILTER i BY Overlaps(RECTANGLE(0, 0, 10, 10));").unwrap();
        match &s.stmts[0] {
            Stmt::ExplainAnalyze(inner) => match inner.as_ref() {
                Stmt::RangeFilter { var, .. } => assert_eq!(var, "r"),
                other => panic!("unexpected inner {other:?}"),
            },
            other => panic!("unexpected stmt {other:?}"),
        }
        // ANALYZE is mandatory; bare EXPLAIN is an error.
        assert!(parse("EXPLAIN r = FILTER i BY Overlaps(RECTANGLE(0, 0, 1, 1));").is_err());
    }
}
