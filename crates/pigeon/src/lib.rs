//! # sh-pigeon — the language layer
//!
//! SpatialHadoop's top layer is *Pigeon*, a high-level language with
//! OGC-flavoured spatial primitives compiled down to MapReduce
//! operations. This crate implements a small, faithful dialect:
//!
//! ```text
//! pts     = LOAD '/data/points' AS POINT;
//! idx     = INDEX pts AS STR+ INTO '/idx/points';
//! in_box  = FILTER idx BY Overlaps(RECTANGLE(10, 10, 400, 300));
//! near    = KNN idx POINT(120, 80) K 10;
//! pairs   = JOIN ileft, iright PREDICATE Overlaps;
//! sky     = SKYLINE idx;
//! hull    = CONVEXHULL idx;
//! cp      = CLOSESTPAIR idx;
//! fp      = FARTHESTPAIR idx;
//! u       = UNION ipolys;
//! vd      = VORONOI idx;
//! STORE near INTO '/out/near';
//! DUMP sky;
//! ```
//!
//! A script is parsed to an AST ([`ast::Stmt`]) and executed against a
//! simulated cluster by [`exec::Pigeon`], which routes each statement to
//! the corresponding `sh-core` operation — queries on indexed datasets
//! use the SpatialHadoop variant, queries on heap files fall back to the
//! Hadoop variant, exactly like the real system.

pub mod ast;
pub mod exec;
pub mod lexer;
pub mod parser;

pub use ast::{RecordType, Script, ScrubTarget, Stmt};
pub use exec::{
    stmt_runs_jobs, Admission, Pigeon, PigeonError, SessionCtx, StmtOutput, StmtTicket, Value,
};

/// Parses and executes a script, returning the lines produced by its
/// `DUMP` statements.
pub fn run_script(dfs: &sh_dfs::Dfs, source: &str) -> Result<Vec<String>, PigeonError> {
    let script = parser::parse(source)?;
    let mut engine = Pigeon::new(dfs);
    engine.execute(&script)
}
