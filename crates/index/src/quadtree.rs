//! Quad-tree partitioning: recursive four-way splits of overfull cells.

use serde::{Deserialize, Serialize};
use sh_geom::{Point, Rect};

/// Disjoint partitioning whose cells are the leaves of a point-region
/// quad-tree built over the sample: a cell splits into four quadrants
/// whenever it holds more than the per-partition capacity. Skewed data
/// gets deep subdivisions exactly where it is dense.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QuadTreePartitioning {
    /// Universe the leaves cover.
    pub universe: Rect,
    /// Leaf cells; disjoint and covering the universe.
    pub cells: Vec<Rect>,
}

impl QuadTreePartitioning {
    /// Builds leaves so that each holds at most `⌈sample/target⌉` sample
    /// points (bounded depth guards against pathological duplicates).
    pub fn build(sample: &[Point], universe: Rect, target: usize) -> QuadTreePartitioning {
        let capacity = (sample.len() / target.max(1)).max(1);
        let mut cells = Vec::new();
        let idx: Vec<usize> = (0..sample.len()).collect();
        split(sample, &idx, universe, capacity, 0, &mut cells);
        QuadTreePartitioning { universe, cells }
    }
}

const MAX_DEPTH: usize = 16;

fn split(
    sample: &[Point],
    members: &[usize],
    cell: Rect,
    capacity: usize,
    depth: usize,
    out: &mut Vec<Rect>,
) {
    if members.len() <= capacity || depth >= MAX_DEPTH {
        out.push(cell);
        return;
    }
    let c = cell.center();
    let quadrants = [
        Rect::new(cell.x1, cell.y1, c.x, c.y),
        Rect::new(c.x, cell.y1, cell.x2, c.y),
        Rect::new(cell.x1, c.y, c.x, cell.y2),
        Rect::new(c.x, c.y, cell.x2, cell.y2),
    ];
    // Half-open ownership: strictly-below-center goes to the low
    // quadrant, so boundary points are not double counted.
    let mut buckets: [Vec<usize>; 4] = Default::default();
    for &i in members {
        let p = &sample[i];
        let right = p.x >= c.x;
        let top = p.y >= c.y;
        let q = (top as usize) * 2 + right as usize;
        buckets[q].push(i);
    }
    for (q, quadrant) in quadrants.into_iter().enumerate() {
        split(sample, &buckets[q], quadrant, capacity, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::owns_point;
    use rand::prelude::*;

    fn skewed_sample(n: usize, seed: u64) -> Vec<Point> {
        // Dense cluster near the origin plus sparse background.
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                if i % 4 == 0 {
                    Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0))
                } else {
                    Point::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0))
                }
            })
            .collect()
    }

    #[test]
    fn cells_are_disjoint_and_cover() {
        let uni = Rect::new(0.0, 0.0, 100.0, 100.0);
        let q = QuadTreePartitioning::build(&skewed_sample(1000, 1), uni, 10);
        let total: f64 = q.cells.iter().map(Rect::area).sum();
        assert!((total - uni.area()).abs() < 1e-6, "cells must tile");
        for i in 0..q.cells.len() {
            for j in (i + 1)..q.cells.len() {
                let inter = q.cells[i].intersection(&q.cells[j]);
                assert!(inter.is_none_or(|r| r.area() < 1e-9), "overlap {i},{j}");
            }
        }
    }

    #[test]
    fn skew_gets_finer_cells() {
        let uni = Rect::new(0.0, 0.0, 100.0, 100.0);
        let q = QuadTreePartitioning::build(&skewed_sample(2000, 2), uni, 16);
        // The smallest cell must be inside the dense corner.
        let smallest = q
            .cells
            .iter()
            .min_by(|a, b| a.area().total_cmp(&b.area()))
            .unwrap();
        assert!(smallest.x2 <= 30.0 && smallest.y2 <= 30.0, "{smallest}");
        // And it must be smaller than the largest by a lot.
        let largest = q
            .cells
            .iter()
            .max_by(|a, b| a.area().total_cmp(&b.area()))
            .unwrap();
        assert!(largest.area() / smallest.area() >= 16.0);
    }

    #[test]
    fn uniform_data_splits_evenly() {
        let uni = Rect::new(0.0, 0.0, 100.0, 100.0);
        let mut rng = StdRng::seed_from_u64(3);
        let pts: Vec<Point> = (0..1024)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        let q = QuadTreePartitioning::build(&pts, uni, 16);
        // Roughly a 4x4 to 8x8 subdivision.
        assert!(
            q.cells.len() >= 16 && q.cells.len() <= 64,
            "{}",
            q.cells.len()
        );
    }

    #[test]
    fn every_sample_point_has_one_owner() {
        let uni = Rect::new(0.0, 0.0, 100.0, 100.0);
        let pts = skewed_sample(500, 4);
        let q = QuadTreePartitioning::build(&pts, uni, 8);
        for p in &pts {
            let owners = q.cells.iter().filter(|c| owns_point(c, p, &uni)).count();
            assert_eq!(owners, 1, "{p}");
        }
    }

    #[test]
    fn empty_sample_is_single_cell() {
        let uni = Rect::new(0.0, 0.0, 1.0, 1.0);
        let q = QuadTreePartitioning::build(&[], uni, 8);
        assert_eq!(q.cells.len(), 1);
        assert_eq!(q.cells[0], uni);
    }
}
