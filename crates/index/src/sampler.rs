//! Reservoir sampling for index bulk-loading.
//!
//! SpatialHadoop builds its global index from a small random sample of
//! the input (≈1% by default) so partition boundaries can be computed on
//! the master without scanning the file into memory. Algorithm R keeps a
//! uniform sample in one pass over a stream of unknown length.

use rand::prelude::*;

/// One-pass uniform reservoir sample of size at most `k` (Algorithm R),
/// deterministic for a given `seed`.
pub fn reservoir_sample<T, I>(items: I, k: usize, seed: u64) -> Vec<T>
where
    I: IntoIterator<Item = T>,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut reservoir: Vec<T> = Vec::with_capacity(k.min(1024));
    if k == 0 {
        return reservoir;
    }
    for (i, item) in items.into_iter().enumerate() {
        if i < k {
            reservoir.push(item);
        } else {
            let j = rng.gen_range(0..=i);
            if j < k {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

/// Sample size for an input of `records` records: `ratio` of the input,
/// clamped to `[min, max]` (SpatialHadoop defaults: 1%, at least 1k, at
/// most 100k sample points) — and never more than the input itself,
/// so tiny files don't report a "sample" larger than the file.
pub fn sample_size(records: u64, ratio: f64) -> usize {
    let want = ((records as f64 * ratio) as usize).clamp(1_000, 100_000);
    want.min(records.min(usize::MAX as u64) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_streams_pass_through() {
        let s = reservoir_sample(0..5, 10, 1);
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn size_is_capped() {
        let s = reservoir_sample(0..10_000, 100, 1);
        assert_eq!(s.len(), 100);
        // All sampled elements come from the stream.
        assert!(s.iter().all(|&x| x < 10_000));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = reservoir_sample(0..10_000, 50, 7);
        let b = reservoir_sample(0..10_000, 50, 7);
        let c = reservoir_sample(0..10_000, 50, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn roughly_uniform() {
        // Sample 1000 of 10000 many times; the mean of sampled values
        // should hover near 5000.
        let mut means = Vec::new();
        for seed in 0..20 {
            let s = reservoir_sample(0u64..10_000, 1000, seed);
            means.push(s.iter().sum::<u64>() as f64 / s.len() as f64);
        }
        let grand = means.iter().sum::<f64>() / means.len() as f64;
        assert!((grand - 5000.0).abs() < 200.0, "grand mean {grand}");
    }

    #[test]
    fn sample_size_clamps() {
        assert_eq!(sample_size(1_000_000, 0.01), 10_000);
        assert_eq!(sample_size(1_000_000_000, 0.01), 100_000);
        assert_eq!(sample_size(50_000, 0.01), 1_000, "minimum floor applies");
    }

    #[test]
    fn sample_size_never_exceeds_the_input() {
        // Regression: the 1k floor used to win over the record count, so
        // a 10-record file reported a 1000-point "sample".
        assert_eq!(sample_size(10, 0.01), 10);
        assert_eq!(sample_size(999, 0.5), 999);
        assert_eq!(sample_size(1_000, 0.01), 1_000);
        assert_eq!(sample_size(0, 0.01), 0);
    }

    #[test]
    fn zero_k_is_empty() {
        assert!(reservoir_sample(0..100, 0, 1).is_empty());
    }
}
