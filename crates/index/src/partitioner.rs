//! The global-partitioning abstraction shared by all seven techniques.

use serde::{Deserialize, Serialize};
use sh_geom::{Point, Rect};

use crate::curve::{HilbertPartitioning, ZCurvePartitioning};
use crate::grid::GridPartitioning;
use crate::kdtree::KdTreePartitioning;
use crate::quadtree::QuadTreePartitioning;
use crate::str::{StrPartitioning, StrPlusPartitioning};

/// Which partitioning technique built a global index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionKind {
    /// Uniform grid (disjoint, skew-blind).
    Grid,
    /// Point-region quad-tree leaves (disjoint, skew-adaptive).
    QuadTree,
    /// K-d tree median splits (disjoint, best load balance).
    KdTree,
    /// Sort-Tile-Recursive seeds (overlapping, no replication).
    Str,
    /// STR cut lines kept as disjoint cells (R+-tree semantics).
    StrPlus,
    /// Z-order (Morton) curve ranges (overlapping).
    ZCurve,
    /// Hilbert curve ranges (overlapping, best curve locality).
    Hilbert,
}

impl PartitionKind {
    /// All techniques, in the order the experiments sweep them.
    pub const ALL: [PartitionKind; 7] = [
        PartitionKind::Grid,
        PartitionKind::QuadTree,
        PartitionKind::KdTree,
        PartitionKind::Str,
        PartitionKind::StrPlus,
        PartitionKind::ZCurve,
        PartitionKind::Hilbert,
    ];

    /// Display name used in reports and the Pigeon language.
    pub fn name(&self) -> &'static str {
        match self {
            PartitionKind::Grid => "grid",
            PartitionKind::QuadTree => "quadtree",
            PartitionKind::KdTree => "kdtree",
            PartitionKind::Str => "str",
            PartitionKind::StrPlus => "str+",
            PartitionKind::ZCurve => "zcurve",
            PartitionKind::Hilbert => "hilbert",
        }
    }

    /// Parses a technique name (as accepted by Pigeon's `INDEX ... AS`).
    pub fn parse(s: &str) -> Option<PartitionKind> {
        match s.to_ascii_lowercase().as_str() {
            "grid" => Some(PartitionKind::Grid),
            "quadtree" | "quad" => Some(PartitionKind::QuadTree),
            "kdtree" | "kd" => Some(PartitionKind::KdTree),
            "str" | "rtree" => Some(PartitionKind::Str),
            "str+" | "strplus" | "r+tree" => Some(PartitionKind::StrPlus),
            "zcurve" | "z" => Some(PartitionKind::ZCurve),
            "hilbert" => Some(PartitionKind::Hilbert),
            _ => None,
        }
    }

    /// Whether this technique produces disjoint partitions (replicating
    /// records), which the pruning-based operations require.
    pub fn is_disjoint(&self) -> bool {
        matches!(
            self,
            PartitionKind::Grid
                | PartitionKind::QuadTree
                | PartitionKind::KdTree
                | PartitionKind::StrPlus
        )
    }
}

/// Boundary description of one technique's partitions, built from a
/// sample. Assignment of records to partitions dispatches on the variant.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum GlobalPartitioning {
    /// Uniform grid boundaries.
    Grid(GridPartitioning),
    /// Quad-tree leaf cells.
    QuadTree(QuadTreePartitioning),
    /// K-d tree leaf cells.
    KdTree(KdTreePartitioning),
    /// STR seed rectangles.
    Str(StrPartitioning),
    /// STR+ disjoint cells.
    StrPlus(StrPlusPartitioning),
    /// Z-curve value ranges.
    ZCurve(ZCurvePartitioning),
    /// Hilbert-curve value ranges.
    Hilbert(HilbertPartitioning),
}

impl GlobalPartitioning {
    /// Builds the requested technique from a point sample.
    ///
    /// `target_partitions` is the desired partition count (⌈file size /
    /// block size⌉ in the index-building job).
    pub fn build(
        kind: PartitionKind,
        sample: &[Point],
        universe: Rect,
        target_partitions: usize,
    ) -> GlobalPartitioning {
        let n = target_partitions.max(1);
        match kind {
            PartitionKind::Grid => GlobalPartitioning::Grid(GridPartitioning::build(universe, n)),
            PartitionKind::QuadTree => {
                GlobalPartitioning::QuadTree(QuadTreePartitioning::build(sample, universe, n))
            }
            PartitionKind::KdTree => {
                GlobalPartitioning::KdTree(KdTreePartitioning::build(sample, universe, n))
            }
            PartitionKind::Str => {
                GlobalPartitioning::Str(StrPartitioning::build(sample, universe, n))
            }
            PartitionKind::StrPlus => {
                GlobalPartitioning::StrPlus(StrPlusPartitioning::build(sample, universe, n))
            }
            PartitionKind::ZCurve => {
                GlobalPartitioning::ZCurve(ZCurvePartitioning::build(sample, universe, n))
            }
            PartitionKind::Hilbert => {
                GlobalPartitioning::Hilbert(HilbertPartitioning::build(sample, universe, n))
            }
        }
    }

    /// The technique that built this index.
    pub fn kind(&self) -> PartitionKind {
        match self {
            GlobalPartitioning::Grid(_) => PartitionKind::Grid,
            GlobalPartitioning::QuadTree(_) => PartitionKind::QuadTree,
            GlobalPartitioning::KdTree(_) => PartitionKind::KdTree,
            GlobalPartitioning::Str(_) => PartitionKind::Str,
            GlobalPartitioning::StrPlus(_) => PartitionKind::StrPlus,
            GlobalPartitioning::ZCurve(_) => PartitionKind::ZCurve,
            GlobalPartitioning::Hilbert(_) => PartitionKind::Hilbert,
        }
    }

    /// Disjointness of the built index.
    pub fn is_disjoint(&self) -> bool {
        self.kind().is_disjoint()
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        match self {
            GlobalPartitioning::Grid(g) => g.len(),
            GlobalPartitioning::QuadTree(q) => q.cells.len(),
            GlobalPartitioning::KdTree(k) => k.cells.len(),
            GlobalPartitioning::Str(s) => s.seeds.len(),
            GlobalPartitioning::StrPlus(s) => s.cells.len(),
            GlobalPartitioning::ZCurve(z) => z.len(),
            GlobalPartitioning::Hilbert(h) => h.len(),
        }
    }

    /// True for an index with no partitions (never produced by `build`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The universe (data extent) this index covers.
    pub fn universe(&self) -> Rect {
        match self {
            GlobalPartitioning::Grid(g) => g.universe,
            GlobalPartitioning::QuadTree(q) => q.universe,
            GlobalPartitioning::KdTree(k) => k.universe,
            GlobalPartitioning::Str(s) => s.universe,
            GlobalPartitioning::StrPlus(s) => s.universe,
            GlobalPartitioning::ZCurve(z) => z.universe(),
            GlobalPartitioning::Hilbert(h) => h.universe(),
        }
    }

    /// Boundary rectangle of partition `i` (the *cell*, not the data MBR;
    /// disjoint techniques tile the universe with these).
    pub fn cell(&self, i: usize) -> Rect {
        match self {
            GlobalPartitioning::Grid(g) => g.cell(i),
            GlobalPartitioning::QuadTree(q) => q.cells[i],
            GlobalPartitioning::KdTree(k) => k.cells[i],
            GlobalPartitioning::Str(s) => s.seeds[i],
            GlobalPartitioning::StrPlus(s) => s.cells[i],
            GlobalPartitioning::ZCurve(z) => z.seed(i),
            GlobalPartitioning::Hilbert(h) => h.seed(i),
        }
    }

    /// Partitions a record is stored in.
    ///
    /// Disjoint techniques replicate the record to *every* overlapping
    /// cell; overlapping techniques pick exactly one partition (the one
    /// whose seed needs least expansion, or the curve range of the
    /// record's center).
    pub fn assign(&self, mbr: &Rect) -> Vec<usize> {
        match self {
            GlobalPartitioning::Grid(g) => g.assign(mbr),
            GlobalPartitioning::QuadTree(q) => assign_disjoint(&q.cells, mbr, &q.universe),
            GlobalPartitioning::KdTree(k) => assign_disjoint(&k.cells, mbr, &k.universe),
            GlobalPartitioning::Str(s) => vec![s.choose(&mbr.center())],
            GlobalPartitioning::StrPlus(s) => assign_disjoint(&s.cells, mbr, &s.universe),
            GlobalPartitioning::ZCurve(z) => vec![z.choose(&mbr.center())],
            GlobalPartitioning::Hilbert(h) => vec![h.choose(&mbr.center())],
        }
    }
}

/// Disjoint-cell assignment: a degenerate (point) MBR goes to its single
/// half-open owner cell; an extended MBR is replicated to every
/// overlapping cell.
fn assign_disjoint(cells: &[Rect], mbr: &Rect, universe: &Rect) -> Vec<usize> {
    if mbr.width() == 0.0 && mbr.height() == 0.0 {
        let p = Point::new(mbr.x1, mbr.y1);
        if let Some(i) = cells.iter().position(|c| owns_point(c, &p, universe)) {
            return vec![i];
        }
        // Outside the universe: nearest cell.
        return vec![nearest_cell(cells, &p)];
    }
    let hits: Vec<usize> = cells
        .iter()
        .enumerate()
        .filter(|(_, c)| c.intersects(mbr))
        .map(|(i, _)| i)
        .collect();
    if hits.is_empty() {
        vec![nearest_cell(cells, &mbr.center())]
    } else {
        hits
    }
}

fn nearest_cell(cells: &[Rect], p: &Point) -> usize {
    cells
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.min_distance(p).total_cmp(&b.1.min_distance(p)))
        .map(|(i, _)| i)
        .expect("partitioning always has at least one cell")
}

/// Half-open point ownership that still covers the universe's maximum
/// edges: the cell `[x1, x2) × [y1, y2)`, closed on a side that touches
/// the universe boundary. Guarantees every universe point has exactly one
/// owner among a disjoint tiling.
pub fn owns_point(cell: &Rect, p: &Point, universe: &Rect) -> bool {
    let x_ok = p.x >= cell.x1 && (p.x < cell.x2 || (cell.x2 >= universe.x2 && p.x <= cell.x2));
    let y_ok = p.y >= cell.y1 && (p.y < cell.y2 || (cell.y2 >= universe.y2 && p.y <= cell.y2));
    x_ok && y_ok
}

/// Catalogue entry for one *materialized* partition of an indexed file:
/// where it lives, its actual data MBR, and its size. This is what the
/// master node consults in the filter step.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PartitionMeta {
    /// Partition id (index into the [`GlobalPartitioning`]).
    pub id: usize,
    /// DFS path of the partition file.
    pub path: String,
    /// Boundary cell of the partition (disjoint techniques tile with it).
    pub cell: [f64; 4],
    /// MBR of the records actually stored (⊆ cell for disjoint
    /// techniques; possibly larger than the seed for overlapping ones).
    pub mbr: [f64; 4],
    /// Number of records.
    pub records: u64,
    /// Bytes stored.
    pub bytes: u64,
}

impl PartitionMeta {
    /// Boundary cell as a [`Rect`].
    pub fn cell_rect(&self) -> Rect {
        Rect::new(self.cell[0], self.cell[1], self.cell[2], self.cell[3])
    }

    /// Data MBR as a [`Rect`].
    pub fn mbr_rect(&self) -> Rect {
        Rect::new(self.mbr[0], self.mbr[1], self.mbr[2], self.mbr[3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn sample(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect()
    }

    #[test]
    fn kind_names_roundtrip() {
        for k in PartitionKind::ALL {
            assert_eq!(PartitionKind::parse(k.name()), Some(k));
        }
        assert_eq!(PartitionKind::parse("nonsense"), None);
    }

    #[test]
    fn disjointness_table_matches_paper() {
        assert!(PartitionKind::Grid.is_disjoint());
        assert!(PartitionKind::QuadTree.is_disjoint());
        assert!(PartitionKind::KdTree.is_disjoint());
        assert!(PartitionKind::StrPlus.is_disjoint());
        assert!(!PartitionKind::Str.is_disjoint());
        assert!(!PartitionKind::ZCurve.is_disjoint());
        assert!(!PartitionKind::Hilbert.is_disjoint());
    }

    #[test]
    fn every_point_has_exactly_one_owner_in_disjoint_techniques() {
        let uni = Rect::new(0.0, 0.0, 100.0, 100.0);
        let pts = sample(500, 1);
        for kind in [
            PartitionKind::Grid,
            PartitionKind::QuadTree,
            PartitionKind::KdTree,
            PartitionKind::StrPlus,
        ] {
            let gp = GlobalPartitioning::build(kind, &pts, uni, 9);
            assert!(gp.is_disjoint());
            for p in &pts {
                let owners = gp.assign(&p.to_rect());
                assert_eq!(
                    owners.len(),
                    1,
                    "{}: point {p} owners {owners:?}",
                    kind.name()
                );
            }
            // Boundary corners of the universe are owned too.
            for corner in uni.corners() {
                assert_eq!(gp.assign(&corner.to_rect()).len(), 1);
            }
        }
    }

    #[test]
    fn overlapping_techniques_assign_exactly_one() {
        let uni = Rect::new(0.0, 0.0, 100.0, 100.0);
        let pts = sample(500, 2);
        for kind in [
            PartitionKind::Str,
            PartitionKind::ZCurve,
            PartitionKind::Hilbert,
        ] {
            let gp = GlobalPartitioning::build(kind, &pts, uni, 8);
            for p in &pts {
                let owners = gp.assign(&Rect::new(p.x, p.y, p.x + 1.0, p.y + 1.0));
                assert_eq!(owners.len(), 1, "{}", kind.name());
                assert!(owners[0] < gp.len());
            }
        }
    }

    #[test]
    fn rect_records_replicated_across_disjoint_cells() {
        let uni = Rect::new(0.0, 0.0, 100.0, 100.0);
        let gp = GlobalPartitioning::build(PartitionKind::Grid, &[], uni, 16);
        // A rect spanning the center crosses several cells.
        let r = Rect::new(40.0, 40.0, 60.0, 60.0);
        let owners = gp.assign(&r);
        assert!(owners.len() >= 2, "{owners:?}");
        // Each owner cell really overlaps.
        for &i in &owners {
            assert!(gp.cell(i).intersects(&r));
        }
    }

    #[test]
    fn target_partition_count_is_respected_roughly() {
        let uni = Rect::new(0.0, 0.0, 100.0, 100.0);
        let pts = sample(2000, 3);
        for kind in PartitionKind::ALL {
            let gp = GlobalPartitioning::build(kind, &pts, uni, 12);
            let n = gp.len();
            assert!(
                (4..=64).contains(&n),
                "{} produced {n} partitions for target 12",
                kind.name()
            );
        }
    }

    #[test]
    fn degenerate_duplicate_samples_still_tile() {
        // A sample of identical points must not break coverage or
        // single-ownership for any disjoint technique.
        let uni = Rect::new(0.0, 0.0, 100.0, 100.0);
        let dup = vec![Point::new(42.0, 42.0); 500];
        for kind in [
            PartitionKind::Grid,
            PartitionKind::QuadTree,
            PartitionKind::KdTree,
            PartitionKind::StrPlus,
        ] {
            let gp = GlobalPartitioning::build(kind, &dup, uni, 9);
            let probes = [
                Point::new(0.0, 0.0),
                Point::new(42.0, 42.0),
                Point::new(41.9, 42.1),
                Point::new(100.0, 100.0),
                Point::new(73.0, 11.0),
            ];
            for p in probes {
                let owners = (0..gp.len())
                    .filter(|&i| owns_point(&gp.cell(i), &p, &uni))
                    .count();
                assert_eq!(owners, 1, "{}: {p}", kind.name());
            }
        }
        // Overlapping techniques must still assign exactly one partition.
        for kind in [
            PartitionKind::Str,
            PartitionKind::ZCurve,
            PartitionKind::Hilbert,
        ] {
            let gp = GlobalPartitioning::build(kind, &dup, uni, 9);
            for p in [Point::new(0.0, 0.0), Point::new(99.0, 99.0)] {
                assert_eq!(gp.assign(&p.to_rect()).len(), 1, "{}", kind.name());
            }
        }
    }

    #[test]
    fn owns_point_covers_universe_edges() {
        let uni = Rect::new(0.0, 0.0, 10.0, 10.0);
        let left = Rect::new(0.0, 0.0, 5.0, 10.0);
        let right = Rect::new(5.0, 0.0, 10.0, 10.0);
        let max_corner = Point::new(10.0, 10.0);
        assert!(!owns_point(&left, &max_corner, &uni));
        assert!(owns_point(&right, &max_corner, &uni));
        let mid = Point::new(5.0, 5.0);
        assert!(!owns_point(&left, &mid, &uni));
        assert!(owns_point(&right, &mid, &uni));
    }

    #[test]
    fn partition_meta_roundtrips_rects() {
        let m = PartitionMeta {
            id: 3,
            path: "/idx/part-3".into(),
            cell: [0.0, 0.0, 10.0, 10.0],
            mbr: [1.0, 1.0, 9.0, 9.0],
            records: 42,
            bytes: 1000,
        };
        assert_eq!(m.cell_rect(), Rect::new(0.0, 0.0, 10.0, 10.0));
        assert_eq!(m.mbr_rect(), Rect::new(1.0, 1.0, 9.0, 9.0));
    }
}
