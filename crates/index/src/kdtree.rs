//! K-d tree partitioning: recursive median splits, alternating axes.

use serde::{Deserialize, Serialize};
use sh_geom::{Point, Rect};

/// Disjoint partitioning whose cells are the leaves of a K-d tree over
/// the sample: cells split at the *median* coordinate (alternating x/y),
/// so every leaf holds an almost equal share of the sample regardless of
/// skew — the best load balance of the disjoint techniques.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KdTreePartitioning {
    /// Universe the leaves cover.
    pub universe: Rect,
    /// Leaf cells; disjoint and covering the universe.
    pub cells: Vec<Rect>,
}

impl KdTreePartitioning {
    /// Splits until at most `target` leaves exist (rounded up to a power
    /// of two) or leaves become single-sample.
    pub fn build(sample: &[Point], universe: Rect, target: usize) -> KdTreePartitioning {
        let mut cells = Vec::new();
        let mut members: Vec<Point> = sample.to_vec();
        let depth_limit = (target.max(1) as f64).log2().ceil() as usize;
        split(&mut members, universe, 0, depth_limit, &mut cells);
        KdTreePartitioning { universe, cells }
    }
}

fn split(members: &mut [Point], cell: Rect, depth: usize, limit: usize, out: &mut Vec<Rect>) {
    if depth >= limit || members.len() < 2 {
        out.push(cell);
        return;
    }
    let by_x = depth.is_multiple_of(2);
    let mid = members.len() / 2;
    if by_x {
        members.sort_by(|a, b| a.x.total_cmp(&b.x));
    } else {
        members.sort_by(|a, b| a.y.total_cmp(&b.y));
    }
    let cut = if by_x { members[mid].x } else { members[mid].y };
    // Degenerate: all sample coordinates equal — stop splitting this axis.
    let (lo, hi) = if by_x {
        (
            Rect::new(cell.x1, cell.y1, cut, cell.y2),
            Rect::new(cut, cell.y1, cell.x2, cell.y2),
        )
    } else {
        (
            Rect::new(cell.x1, cell.y1, cell.x2, cut),
            Rect::new(cell.x1, cut, cell.x2, cell.y2),
        )
    };
    if lo.area() <= 0.0 || hi.area() <= 0.0 {
        out.push(cell);
        return;
    }
    let (left, right) = members.split_at_mut(mid);
    split(left, lo, depth + 1, limit, out);
    split(right, hi, depth + 1, limit, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::owns_point;
    use rand::prelude::*;

    fn gaussian_sample(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                // Box-Muller-ish central clustering via averaging.
                let x: f64 = (0..4).map(|_| rng.gen_range(0.0..100.0)).sum::<f64>() / 4.0;
                let y: f64 = (0..4).map(|_| rng.gen_range(0.0..100.0)).sum::<f64>() / 4.0;
                Point::new(x, y)
            })
            .collect()
    }

    #[test]
    fn cells_tile_the_universe() {
        let uni = Rect::new(0.0, 0.0, 100.0, 100.0);
        let k = KdTreePartitioning::build(&gaussian_sample(1000, 1), uni, 16);
        assert_eq!(k.cells.len(), 16);
        let total: f64 = k.cells.iter().map(Rect::area).sum();
        assert!((total - uni.area()).abs() < 1e-6);
    }

    #[test]
    fn load_balance_on_skewed_data() {
        let uni = Rect::new(0.0, 0.0, 100.0, 100.0);
        let pts = gaussian_sample(4096, 2);
        let k = KdTreePartitioning::build(&pts, uni, 16);
        let mut counts = vec![0usize; k.cells.len()];
        for p in &pts {
            let owner = k
                .cells
                .iter()
                .position(|c| owns_point(c, p, &uni))
                .expect("tiling covers universe");
            counts[owner] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        // Median splits keep partitions within a small factor even under
        // central clustering.
        assert!(max / min.max(1.0) < 2.0, "counts: {counts:?}");
    }

    #[test]
    fn every_point_has_one_owner() {
        let uni = Rect::new(0.0, 0.0, 100.0, 100.0);
        let pts = gaussian_sample(300, 3);
        let k = KdTreePartitioning::build(&pts, uni, 8);
        for p in &pts {
            let owners = k.cells.iter().filter(|c| owns_point(c, p, &uni)).count();
            assert_eq!(owners, 1);
        }
    }

    #[test]
    fn tiny_samples_do_not_over_split() {
        let uni = Rect::new(0.0, 0.0, 1.0, 1.0);
        let k = KdTreePartitioning::build(&[Point::new(0.5, 0.5)], uni, 64);
        assert_eq!(k.cells.len(), 1);
    }
}
