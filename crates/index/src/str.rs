//! STR (Sort-Tile-Recursive) partitioning and its disjoint STR+ variant.

use serde::{Deserialize, Serialize};
use sh_geom::{Point, Rect};

/// STR bulk-loading: sort the sample by x into ⌈√n⌉ vertical slices,
/// sort each slice by y and cut it into runs. Each run's sample MBR is a
/// partition *seed*; records are assigned to the seed needing the least
/// expansion (classic R-tree ChooseLeaf flavour), so partitions may end
/// up overlapping but no record is replicated.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StrPartitioning {
    /// Universe the seeds were sampled from.
    pub universe: Rect,
    /// Seed rectangles (sample MBR per tile).
    pub seeds: Vec<Rect>,
}

impl StrPartitioning {
    /// Builds roughly `target` seeds.
    pub fn build(sample: &[Point], universe: Rect, target: usize) -> StrPartitioning {
        let seeds = str_tiles(sample, target)
            .into_iter()
            .map(|tile| {
                let mut r = Rect::empty();
                for p in tile {
                    r.expand_point(&p);
                }
                r
            })
            .collect::<Vec<_>>();
        let seeds = if seeds.is_empty() {
            vec![universe]
        } else {
            seeds
        };
        StrPartitioning { universe, seeds }
    }

    /// Seed whose rectangle needs the least expansion to cover `p`
    /// (ties → smaller area).
    pub fn choose(&self, p: &Point) -> usize {
        choose_least_expansion(&self.seeds, p)
    }
}

/// STR+ partitioning: the same sort-tile pass, but the cut *lines* are
/// kept instead of the sample MBRs, producing disjoint cells that tile
/// the universe (records overlapping several cells are replicated —
/// R+-tree semantics). This is the disjoint technique the enhanced
/// operations default to.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StrPlusPartitioning {
    /// Universe the cells tile.
    pub universe: Rect,
    /// Disjoint cells covering the universe.
    pub cells: Vec<Rect>,
}

impl StrPlusPartitioning {
    /// Builds roughly `target` disjoint cells from sample quantiles.
    pub fn build(sample: &[Point], universe: Rect, target: usize) -> StrPlusPartitioning {
        let n = sample.len();
        let slices = (target.max(1) as f64).sqrt().ceil() as usize;
        if n == 0 {
            return StrPlusPartitioning {
                universe,
                cells: vec![universe],
            };
        }
        let mut by_x: Vec<Point> = sample.to_vec();
        by_x.sort_by(|a, b| a.x.total_cmp(&b.x));
        let per_slice = n.div_ceil(slices);
        let mut cells = Vec::new();
        let mut x_lo = universe.x1;
        for (si, chunk) in by_x.chunks(per_slice).enumerate() {
            let is_last_slice = (si + 1) * per_slice >= n;
            let x_hi = if is_last_slice {
                universe.x2
            } else {
                // Cut halfway between this slice's max x and the next
                // sample point would be ideal; the slice max is enough.
                chunk.last().unwrap().x
            };
            let x_hi = x_hi.max(x_lo); // guard against duplicate x
            let mut by_y: Vec<Point> = chunk.to_vec();
            by_y.sort_by(|a, b| a.y.total_cmp(&b.y));
            let runs = slices;
            let per_run = by_y.len().div_ceil(runs).max(1);
            let mut y_lo = universe.y1;
            for (ri, run) in by_y.chunks(per_run).enumerate() {
                let is_last_run = (ri + 1) * per_run >= by_y.len();
                let y_hi = if is_last_run {
                    universe.y2
                } else {
                    run.last().unwrap().y
                }
                .max(y_lo);
                if x_hi > x_lo && y_hi > y_lo {
                    cells.push(Rect::new(x_lo, y_lo, x_hi, y_hi));
                }
                y_lo = y_hi;
            }
            // Ensure the slice reaches the top even if runs degenerate.
            if y_lo < universe.y2 && x_hi > x_lo {
                if let Some(last) = cells.last_mut() {
                    if last.x1 == x_lo && last.x2 == x_hi {
                        last.y2 = universe.y2;
                    }
                }
            }
            x_lo = x_hi;
        }
        if cells.is_empty() {
            cells.push(universe);
        }
        StrPlusPartitioning { universe, cells }
    }
}

/// Sort-tile the sample into ⌈√target⌉ × ⌈√target⌉ chunks.
fn str_tiles(sample: &[Point], target: usize) -> Vec<Vec<Point>> {
    let n = sample.len();
    if n == 0 {
        return Vec::new();
    }
    let slices = (target.max(1) as f64).sqrt().ceil() as usize;
    let mut by_x: Vec<Point> = sample.to_vec();
    by_x.sort_by(|a, b| a.x.total_cmp(&b.x));
    let per_slice = n.div_ceil(slices);
    let mut tiles = Vec::new();
    for chunk in by_x.chunks(per_slice) {
        let mut by_y: Vec<Point> = chunk.to_vec();
        by_y.sort_by(|a, b| a.y.total_cmp(&b.y));
        let per_run = by_y.len().div_ceil(slices).max(1);
        for run in by_y.chunks(per_run) {
            tiles.push(run.to_vec());
        }
    }
    tiles
}

/// Index of the rect in `seeds` needing least area expansion to include
/// `p`; ties break toward the smaller seed then the lower index.
pub(crate) fn choose_least_expansion(seeds: &[Rect], p: &Point) -> usize {
    let mut best = 0usize;
    let mut best_expansion = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for (i, s) in seeds.iter().enumerate() {
        let mut grown = *s;
        grown.expand_point(p);
        let expansion = grown.area() - s.area();
        let area = s.area();
        if expansion < best_expansion || (expansion == best_expansion && area < best_area) {
            best = i;
            best_expansion = expansion;
            best_area = area;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::owns_point;
    use rand::prelude::*;

    fn sample(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect()
    }

    #[test]
    fn str_seed_count_near_target() {
        let pts = sample(1000, 1);
        let s = StrPartitioning::build(&pts, Rect::new(0.0, 0.0, 100.0, 100.0), 16);
        assert!((9..=25).contains(&s.seeds.len()), "{}", s.seeds.len());
    }

    #[test]
    fn str_choose_prefers_containing_seed() {
        let pts = sample(1000, 2);
        let s = StrPartitioning::build(&pts, Rect::new(0.0, 0.0, 100.0, 100.0), 9);
        for p in sample(100, 3) {
            let i = s.choose(&p);
            let mut grown = s.seeds[i];
            grown.expand_point(&p);
            let expansion = grown.area() - s.seeds[i].area();
            // If some seed contains the point, the chosen one must too
            // (zero expansion).
            if s.seeds.iter().any(|r| r.contains_point(&p)) {
                assert_eq!(expansion, 0.0);
            }
        }
    }

    #[test]
    fn str_plus_tiles_the_universe() {
        let uni = Rect::new(0.0, 0.0, 100.0, 100.0);
        let s = StrPlusPartitioning::build(&sample(2000, 4), uni, 16);
        let total: f64 = s.cells.iter().map(Rect::area).sum();
        assert!((total - uni.area()).abs() < 1e-6, "total {total}");
        for i in 0..s.cells.len() {
            for j in (i + 1)..s.cells.len() {
                let inter = s.cells[i].intersection(&s.cells[j]);
                assert!(inter.is_none_or(|r| r.area() < 1e-9));
            }
        }
    }

    #[test]
    fn str_plus_every_point_owned_once() {
        let uni = Rect::new(0.0, 0.0, 100.0, 100.0);
        let pts = sample(800, 5);
        let s = StrPlusPartitioning::build(&pts, uni, 12);
        for p in &pts {
            let owners = s.cells.iter().filter(|c| owns_point(c, p, &uni)).count();
            assert_eq!(owners, 1, "{p}");
        }
    }

    #[test]
    fn str_plus_balances_skewed_data() {
        let uni = Rect::new(0.0, 0.0, 100.0, 100.0);
        // 90% of the data in a corner.
        let mut rng = StdRng::seed_from_u64(6);
        let pts: Vec<Point> = (0..2000)
            .map(|i| {
                if i % 10 == 0 {
                    Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0))
                } else {
                    Point::new(rng.gen_range(0.0..5.0), rng.gen_range(0.0..5.0))
                }
            })
            .collect();
        let s = StrPlusPartitioning::build(&pts, uni, 16);
        let mut counts = vec![0usize; s.cells.len()];
        for p in &pts {
            if let Some(i) = s.cells.iter().position(|c| owns_point(c, p, &uni)) {
                counts[i] += 1;
            }
        }
        let max = *counts.iter().max().unwrap();
        // The grid would put ~1800 points in one cell; STR+ must do far
        // better.
        assert!(max < 600, "max cell load {max}, counts {counts:?}");
    }

    #[test]
    fn empty_sample_degrades_to_single_cell() {
        let uni = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert_eq!(StrPartitioning::build(&[], uni, 8).seeds.len(), 1);
        assert_eq!(StrPlusPartitioning::build(&[], uni, 8).cells.len(), 1);
    }
}
