//! Uniform grid partitioning.

use serde::{Deserialize, Serialize};
use sh_geom::{Point, Rect};

use crate::partitioner::owns_point;

/// Uniform grid over the universe: `cols × rows` equal cells.
///
/// The only technique that ignores the data distribution — cheap to build
/// (no sample needed) but skew-blind, which is exactly the trade-off the
/// partitioning-quality experiment (E2) demonstrates.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GridPartitioning {
    /// Universe the grid covers.
    pub universe: Rect,
    /// Columns.
    pub cols: usize,
    /// Rows.
    pub rows: usize,
}

impl GridPartitioning {
    /// Builds a grid with roughly `target` cells (⌈√target⌉ per side).
    pub fn build(universe: Rect, target: usize) -> GridPartitioning {
        let side = (target.max(1) as f64).sqrt().ceil() as usize;
        GridPartitioning {
            universe,
            cols: side.max(1),
            rows: side.max(1),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cols * self.rows
    }

    /// Never zero.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Boundary rectangle of cell `i` (row-major). Edge cells are pinned
    /// exactly to the universe bounds so the tiling is watertight under
    /// floating-point rounding.
    pub fn cell(&self, i: usize) -> Rect {
        let (col, row) = (i % self.cols, i / self.cols);
        let w = self.universe.width() / self.cols as f64;
        let h = self.universe.height() / self.rows as f64;
        let x2 = if col + 1 == self.cols {
            self.universe.x2
        } else {
            self.universe.x1 + (col + 1) as f64 * w
        };
        let y2 = if row + 1 == self.rows {
            self.universe.y2
        } else {
            self.universe.y1 + (row + 1) as f64 * h
        };
        Rect::new(
            self.universe.x1 + col as f64 * w,
            self.universe.y1 + row as f64 * h,
            x2,
            y2,
        )
    }

    /// Cells overlapping `mbr` (point records get exactly one owner).
    pub fn assign(&self, mbr: &Rect) -> Vec<usize> {
        if mbr.width() == 0.0 && mbr.height() == 0.0 {
            let p = Point::new(mbr.x1, mbr.y1);
            return vec![self.cell_of_point(&p)];
        }
        let (c1, r1) = self.locate_clamped(mbr.x1, mbr.y1);
        let (c2, r2) = self.locate_clamped(mbr.x2, mbr.y2);
        let mut out = Vec::with_capacity((c2 - c1 + 1) * (r2 - r1 + 1));
        for row in r1..=r2 {
            for col in c1..=c2 {
                let i = row * self.cols + col;
                if self.cell(i).intersects(mbr) {
                    out.push(i);
                }
            }
        }
        if out.is_empty() {
            out.push(self.cell_of_point(&mbr.center()));
        }
        out
    }

    /// The unique owner cell of a point (half-open semantics; points
    /// outside the universe are clamped to the nearest cell).
    pub fn cell_of_point(&self, p: &Point) -> usize {
        let (col, row) = self.locate_clamped(p.x, p.y);
        let i = row * self.cols + col;
        debug_assert!(
            owns_point(&self.cell(i), &clamp(p, &self.universe), &self.universe),
            "grid owner mismatch for {p}"
        );
        i
    }

    fn locate_clamped(&self, x: f64, y: f64) -> (usize, usize) {
        let w = self.universe.width() / self.cols as f64;
        let h = self.universe.height() / self.rows as f64;
        let col = (((x - self.universe.x1) / w).floor() as i64).clamp(0, self.cols as i64 - 1);
        let row = (((y - self.universe.y1) / h).floor() as i64).clamp(0, self.rows as i64 - 1);
        (col as usize, row as usize)
    }
}

fn clamp(p: &Point, uni: &Rect) -> Point {
    Point::new(p.x.clamp(uni.x1, uni.x2), p.y.clamp(uni.y1, uni.y2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GridPartitioning {
        GridPartitioning::build(Rect::new(0.0, 0.0, 100.0, 100.0), 16)
    }

    #[test]
    fn cells_tile_the_universe() {
        let g = grid();
        assert_eq!(g.len(), 16);
        let total: f64 = (0..g.len()).map(|i| g.cell(i).area()).sum();
        assert!((total - 100.0 * 100.0).abs() < 1e-6);
    }

    #[test]
    fn point_ownership_is_unique() {
        let g = grid();
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(25.0, 25.0), // interior boundary point
            Point::new(100.0, 100.0),
            Point::new(99.9, 0.1),
        ];
        for p in pts {
            let owners: Vec<usize> = (0..g.len())
                .filter(|&i| owns_point(&g.cell(i), &p, &g.universe))
                .collect();
            assert_eq!(owners.len(), 1, "{p}: {owners:?}");
            assert_eq!(owners[0], g.cell_of_point(&p));
        }
    }

    #[test]
    fn rect_assignment_covers_overlaps() {
        let g = grid();
        let r = Rect::new(20.0, 20.0, 30.0, 30.0); // crosses the 25-line both ways
        let cells = g.assign(&r);
        assert_eq!(cells.len(), 4);
        for i in cells {
            assert!(g.cell(i).intersects(&r));
        }
    }

    #[test]
    fn out_of_universe_points_clamp() {
        let g = grid();
        let p = Point::new(-5.0, 200.0);
        let i = g.cell_of_point(&p);
        assert!(i < g.len());
    }
}
