//! # sh-index — SpatialHadoop's indexing layer
//!
//! SpatialHadoop stores a spatial index *inside* the distributed file
//! system as two levels:
//!
//! * a **global index** partitions the file into spatial partitions (one
//!   partition ≈ one HDFS block), described by a small catalogue the
//!   master node keeps ([`GlobalPartitioning`] + per-partition
//!   [`PartitionMeta`]); the MapReduce layer prunes partitions against it;
//! * a **local index** organizes records inside each partition
//!   ([`LocalRTree`], an STR bulk-loaded R-tree) so map tasks can search a
//!   partition without scanning it.
//!
//! Seven partitioning techniques are provided, matching Table 1 of the
//! SpatialHadoop partitioning study: uniform grid, Quad-tree, K-d tree,
//! STR, STR+, Z-curve, and Hilbert-curve. They differ in whether the
//! resulting partitions are **disjoint** (records replicated to every
//! overlapping partition; required by the pruning-based operations) or
//! **overlapping** (each record in exactly one partition whose MBR then
//! grows), and in how well they handle skew:
//!
//! | technique | disjoint | skew-aware |
//! |-----------|----------|------------|
//! | grid      | yes      | no         |
//! | Quad-tree | yes      | yes        |
//! | K-d tree  | yes      | yes        |
//! | STR       | no       | yes        |
//! | STR+      | yes      | yes        |
//! | Z-curve   | no       | yes        |
//! | Hilbert   | no       | yes        |
//!
//! All sample-based techniques are built from a seeded random sample of
//! the input (the index-building MapReduce job in `sh-core` draws it),
//! reproducing SpatialHadoop's one-pass bulk loading.

pub mod curve;
pub mod grid;
pub mod kdtree;
pub mod local;
pub mod partitioner;
pub mod quadtree;
pub mod quality;
pub mod sampler;
pub mod str;

pub use local::LocalRTree;
pub use partitioner::{owns_point, GlobalPartitioning, PartitionKind, PartitionMeta};
pub use quality::QualityReport;
