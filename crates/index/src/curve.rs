//! Space-filling-curve partitioning: Z-order (Morton) and Hilbert.

use serde::{Deserialize, Serialize};
use sh_geom::{Point, Rect};

/// Resolution of the curve: coordinates are quantized to `2^ORDER` cells
/// per axis before computing curve positions.
pub const ORDER: u32 = 16;

/// Z-order (Morton) value of a quantized coordinate pair.
pub fn z_value(x: u32, y: u32) -> u64 {
    fn spread(v: u32) -> u64 {
        let mut v = v as u64;
        v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
        v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
        v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
        v = (v | (v << 2)) & 0x3333_3333_3333_3333;
        v = (v | (v << 1)) & 0x5555_5555_5555_5555;
        v
    }
    spread(x) | (spread(y) << 1)
}

/// Hilbert-curve distance of a quantized coordinate pair (order
/// [`ORDER`]); the classic xy→d bit-twiddling walk.
pub fn hilbert_value(mut x: u32, mut y: u32) -> u64 {
    let n: u32 = 1 << ORDER;
    let mut rx: u32;
    let mut ry: u32;
    let mut d: u64 = 0;
    let mut s = n / 2;
    while s > 0 {
        rx = u32::from((x & s) > 0);
        ry = u32::from((y & s) > 0);
        d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
        // Rotate the quadrant (reflection is within the full n-grid on
        // the encode side; the decode side reflects within s).
        if ry == 0 {
            if rx == 1 {
                x = (n - 1).wrapping_sub(x);
                y = (n - 1).wrapping_sub(y);
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Inverse of [`hilbert_value`] (used by tests to check bijectivity).
pub fn hilbert_point(mut d: u64) -> (u32, u32) {
    let n: u64 = 1 << ORDER;
    let (mut x, mut y): (u64, u64) = (0, 0);
    let mut s: u64 = 1;
    while s < n {
        let rx = 1 & (d / 2);
        let ry = 1 & (d ^ rx);
        // Rotate.
        if ry == 0 {
            if rx == 1 {
                x = s - 1 - x;
                y = s - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        x += s * rx;
        y += s * ry;
        d /= 4;
        s *= 2;
    }
    (x as u32, y as u32)
}

/// Quantizes a point into the `2^ORDER` grid of the universe.
pub fn quantize(p: &Point, universe: &Rect) -> (u32, u32) {
    let max = ((1u64 << ORDER) - 1) as f64;
    let w = universe.width().max(1e-12);
    let h = universe.height().max(1e-12);
    let x = (((p.x - universe.x1) / w) * max).clamp(0.0, max) as u32;
    let y = (((p.y - universe.y1) / h) * max).clamp(0.0, max) as u32;
    (x, y)
}

/// Shared shape of both curve partitionings: sorted upper bounds of the
/// curve ranges plus the seed MBR of each range's sample chunk.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CurvePartitioning {
    /// Universe coordinates are quantized within.
    pub universe: Rect,
    /// `bounds[i]` is the inclusive upper curve value of partition `i`;
    /// the last bound is `u64::MAX`.
    pub bounds: Vec<u64>,
    /// Sample MBR per range (reporting/quality only).
    pub seeds: Vec<Rect>,
}

impl CurvePartitioning {
    fn build(values: &mut [(u64, Point)], universe: Rect, target: usize) -> CurvePartitioning {
        values.sort_by_key(|(v, _)| *v);
        let n = values.len();
        if n == 0 {
            return CurvePartitioning {
                universe,
                bounds: vec![u64::MAX],
                seeds: vec![universe],
            };
        }
        let per = n.div_ceil(target.max(1)).max(1);
        let mut bounds = Vec::new();
        let mut seeds = Vec::new();
        for chunk in values.chunks(per) {
            bounds.push(chunk.last().unwrap().0);
            let mut r = Rect::empty();
            for (_, p) in chunk {
                r.expand_point(p);
            }
            seeds.push(r);
        }
        *bounds.last_mut().unwrap() = u64::MAX;
        CurvePartitioning {
            universe,
            bounds,
            seeds,
        }
    }

    fn choose_value(&self, v: u64) -> usize {
        match self.bounds.binary_search(&v) {
            Ok(i) | Err(i) => i.min(self.bounds.len() - 1),
        }
    }
}

/// Z-curve partitioning: equal-count ranges of Morton values.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ZCurvePartitioning(pub CurvePartitioning);

impl ZCurvePartitioning {
    /// Builds `target` ranges from the sample.
    pub fn build(sample: &[Point], universe: Rect, target: usize) -> ZCurvePartitioning {
        let mut values: Vec<(u64, Point)> = sample
            .iter()
            .map(|p| {
                let (x, y) = quantize(p, &universe);
                (z_value(x, y), *p)
            })
            .collect();
        ZCurvePartitioning(CurvePartitioning::build(&mut values, universe, target))
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.0.bounds.len()
    }

    /// Never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The universe.
    pub fn universe(&self) -> Rect {
        self.0.universe
    }

    /// Seed MBR of partition `i`.
    pub fn seed(&self, i: usize) -> Rect {
        self.0.seeds[i]
    }

    /// Partition of a point (by its Morton value).
    pub fn choose(&self, p: &Point) -> usize {
        let (x, y) = quantize(p, &self.0.universe);
        self.0.choose_value(z_value(x, y))
    }
}

/// Hilbert-curve partitioning: equal-count ranges of Hilbert distances.
/// Better locality than Z-order (no long diagonal jumps), which shows up
/// as lower partition margins in the quality experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HilbertPartitioning(pub CurvePartitioning);

impl HilbertPartitioning {
    /// Builds `target` ranges from the sample.
    pub fn build(sample: &[Point], universe: Rect, target: usize) -> HilbertPartitioning {
        let mut values: Vec<(u64, Point)> = sample
            .iter()
            .map(|p| {
                let (x, y) = quantize(p, &universe);
                (hilbert_value(x, y), *p)
            })
            .collect();
        HilbertPartitioning(CurvePartitioning::build(&mut values, universe, target))
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.0.bounds.len()
    }

    /// Never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The universe.
    pub fn universe(&self) -> Rect {
        self.0.universe
    }

    /// Seed MBR of partition `i`.
    pub fn seed(&self, i: usize) -> Rect {
        self.0.seeds[i]
    }

    /// Partition of a point (by its Hilbert value).
    pub fn choose(&self, p: &Point) -> usize {
        let (x, y) = quantize(p, &self.0.universe);
        self.0.choose_value(hilbert_value(x, y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn z_value_interleaves() {
        assert_eq!(z_value(0, 0), 0);
        assert_eq!(z_value(1, 0), 1);
        assert_eq!(z_value(0, 1), 2);
        assert_eq!(z_value(1, 1), 3);
        assert_eq!(z_value(2, 0), 4);
    }

    #[test]
    fn hilbert_roundtrip_is_bijective() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(0..(1 << ORDER));
            let y: u32 = rng.gen_range(0..(1 << ORDER));
            let d = hilbert_value(x, y);
            assert_eq!(hilbert_point(d), (x, y), "x={x} y={y} d={d}");
        }
    }

    #[test]
    fn hilbert_neighbors_are_adjacent_cells() {
        // Consecutive curve positions differ by exactly one step in x or y
        // — the locality property that makes Hilbert better than Z.
        for d in 0..4096u64 {
            let (x1, y1) = hilbert_point(d);
            let (x2, y2) = hilbert_point(d + 1);
            let dist = (x1 as i64 - x2 as i64).abs() + (y1 as i64 - y2 as i64).abs();
            assert_eq!(dist, 1, "jump at d={d}");
        }
    }

    #[test]
    fn quantize_clamps_and_scales() {
        let uni = Rect::new(0.0, 0.0, 100.0, 100.0);
        assert_eq!(quantize(&Point::new(0.0, 0.0), &uni), (0, 0));
        let (x, y) = quantize(&Point::new(100.0, 100.0), &uni);
        assert_eq!((x, y), ((1 << ORDER) - 1, (1 << ORDER) - 1));
        let (x, _) = quantize(&Point::new(-5.0, 50.0), &uni);
        assert_eq!(x, 0);
    }

    #[test]
    fn partitions_balance_counts() {
        let mut rng = StdRng::seed_from_u64(2);
        let pts: Vec<Point> = (0..4000)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        let uni = Rect::new(0.0, 0.0, 100.0, 100.0);
        for build in [
            |s: &[Point], u, t| ZCurvePartitioning::build(s, u, t).0,
            |s: &[Point], u, t| HilbertPartitioning::build(s, u, t).0,
        ] {
            let cp = build(&pts, uni, 10);
            let z = ZCurvePartitioning(cp.clone());
            let mut counts = vec![0usize; z.len()];
            for p in &pts {
                counts[z.choose(p)] += 1;
            }
            let max = *counts.iter().max().unwrap();
            let min = *counts.iter().min().unwrap();
            assert!(max <= 2 * min.max(1), "counts {counts:?}");
        }
    }

    #[test]
    fn choose_is_consistent_with_build_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts: Vec<Point> = (0..1000)
            .map(|_| Point::new(rng.gen_range(0.0..50.0), rng.gen_range(0.0..50.0)))
            .collect();
        let uni = Rect::new(0.0, 0.0, 50.0, 50.0);
        let h = HilbertPartitioning::build(&pts, uni, 8);
        // Every sample point must fall in the seed MBR of its chosen
        // partition (it was in that chunk during build).
        for p in &pts {
            let i = h.choose(p);
            assert!(
                h.seed(i).contains_point(p),
                "{p} not in seed {i} {:?}",
                h.seed(i)
            );
        }
    }

    #[test]
    fn empty_sample_single_partition() {
        let uni = Rect::new(0.0, 0.0, 1.0, 1.0);
        let z = ZCurvePartitioning::build(&[], uni, 4);
        assert_eq!(z.len(), 1);
        assert_eq!(z.choose(&Point::new(0.5, 0.5)), 0);
    }
}
