//! Partitioning quality metrics (the Q1–Q5 measures of the SpatialHadoop
//! partitioning study, experiment E2).

use sh_geom::Rect;

/// Quality metrics of one built index over one dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct QualityReport {
    /// Q1: total area of partition MBRs (normalized by universe area).
    /// Smaller is better — large/overlapping partitions force queries to
    /// open more of them.
    pub total_area: f64,
    /// Q2: total pairwise overlap area between partition MBRs
    /// (normalized). Zero for disjoint techniques.
    pub total_overlap: f64,
    /// Q3: total margin (half-perimeter) of partition MBRs, normalized by
    /// universe margin. Square-ish partitions score lower.
    pub total_margin: f64,
    /// Q4: load balance — coefficient of variation of partition record
    /// counts (stddev / mean). Zero is perfectly balanced.
    pub load_cv: f64,
    /// Q5: replication overhead — stored records / input records. 1.0
    /// when nothing is replicated.
    pub replication: f64,
    /// Number of partitions measured.
    pub partitions: usize,
}

/// Computes the report from partition data MBRs, per-partition record
/// counts, and the number of distinct input records.
pub fn measure(
    mbrs: &[Rect],
    counts: &[u64],
    input_records: u64,
    universe: &Rect,
) -> QualityReport {
    assert_eq!(mbrs.len(), counts.len(), "one count per partition");
    let uni_area = universe.area().max(1e-12);
    let uni_margin = universe.margin().max(1e-12);
    let total_area: f64 = mbrs.iter().map(Rect::area).sum::<f64>() / uni_area;
    let mut total_overlap = 0.0;
    for i in 0..mbrs.len() {
        for j in (i + 1)..mbrs.len() {
            if let Some(x) = mbrs[i].intersection(&mbrs[j]) {
                total_overlap += x.area();
            }
        }
    }
    let total_overlap = total_overlap / uni_area;
    let total_margin: f64 = mbrs.iter().map(Rect::margin).sum::<f64>() / uni_margin;
    let stored: u64 = counts.iter().sum();
    let n = counts.len().max(1) as f64;
    let mean = stored as f64 / n;
    let var = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    let load_cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
    let replication = if input_records > 0 {
        stored as f64 / input_records as f64
    } else {
        1.0
    };
    QualityReport {
        total_area,
        total_overlap,
        total_margin,
        load_cv,
        replication,
        partitions: mbrs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_tiling_scores_one_area_zero_overlap() {
        let uni = Rect::new(0.0, 0.0, 2.0, 2.0);
        let mbrs = vec![Rect::new(0.0, 0.0, 1.0, 2.0), Rect::new(1.0, 0.0, 2.0, 2.0)];
        let r = measure(&mbrs, &[10, 10], 20, &uni);
        assert!((r.total_area - 1.0).abs() < 1e-12);
        assert_eq!(r.total_overlap, 0.0);
        assert_eq!(r.load_cv, 0.0);
        assert_eq!(r.replication, 1.0);
        assert_eq!(r.partitions, 2);
    }

    #[test]
    fn overlap_is_detected() {
        let uni = Rect::new(0.0, 0.0, 2.0, 2.0);
        let mbrs = vec![Rect::new(0.0, 0.0, 1.5, 2.0), Rect::new(0.5, 0.0, 2.0, 2.0)];
        let r = measure(&mbrs, &[10, 10], 20, &uni);
        assert!(r.total_overlap > 0.4 && r.total_overlap < 0.6);
    }

    #[test]
    fn imbalance_raises_cv_and_replication_counts() {
        let uni = Rect::new(0.0, 0.0, 1.0, 1.0);
        let mbrs = vec![uni, uni];
        let balanced = measure(&mbrs, &[50, 50], 100, &uni);
        let skewed = measure(&mbrs, &[95, 5], 100, &uni);
        assert!(skewed.load_cv > balanced.load_cv);
        let replicated = measure(&mbrs, &[80, 40], 100, &uni);
        assert!((replicated.replication - 1.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one count per partition")]
    fn mismatched_lengths_panic() {
        let uni = Rect::new(0.0, 0.0, 1.0, 1.0);
        measure(&[uni], &[1, 2], 3, &uni);
    }
}
