//! Local index: an STR bulk-loaded R-tree over the records of one
//! partition.
//!
//! The `SpatialRecordReader` in `sh-core` builds one of these per
//! partition and hands it to the map function, so local processing can
//! search a partition (range query, kNN) without scanning every record —
//! the second level of SpatialHadoop's two-level index.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sh_geom::{Point, Rect};

/// Maximum entries per node.
const NODE_CAPACITY: usize = 32;

#[derive(Clone, Debug)]
struct Node {
    mbr: Rect,
    /// Children node indices for internal nodes; record indices for
    /// leaves.
    entries: Vec<usize>,
    leaf: bool,
}

/// Immutable R-tree over `(Rect, record index)` entries, built with the
/// Sort-Tile-Recursive algorithm.
#[derive(Clone, Debug)]
pub struct LocalRTree {
    rects: Vec<Rect>,
    nodes: Vec<Node>,
    root: Option<usize>,
}

impl LocalRTree {
    /// Bulk-loads the tree; `rects[i]` is the MBR of record `i`.
    pub fn build(rects: Vec<Rect>) -> LocalRTree {
        let n = rects.len();
        if n == 0 {
            return LocalRTree {
                rects,
                nodes: Vec::new(),
                root: None,
            };
        }
        let mut nodes: Vec<Node> = Vec::new();
        // Leaf level: STR packing of record indices.
        let mut level: Vec<usize> = pack_level(
            &mut (0..n).collect::<Vec<_>>(),
            |i| rects[*i].center(),
            |ids| {
                let mut mbr = Rect::empty();
                for &i in ids.iter() {
                    mbr.expand(&rects[i]);
                }
                let node = Node {
                    mbr,
                    entries: ids.to_vec(),
                    leaf: true,
                };
                nodes.push(node);
                nodes.len() - 1
            },
        );
        // Internal levels until a single root remains.
        while level.len() > 1 {
            // Snapshot the MBRs of the current level to avoid borrowing
            // `nodes` both mutably and immutably inside pack_level.
            let mbrs: Vec<Rect> = level.iter().map(|&id| nodes[id].mbr).collect();
            let pairs: Vec<(usize, Rect)> = level.iter().copied().zip(mbrs).collect();
            level = pack_level(
                &mut pairs.clone(),
                |(_, r)| r.center(),
                |children| {
                    let mut mbr = Rect::empty();
                    for (_, r) in children.iter() {
                        mbr.expand(r);
                    }
                    let node = Node {
                        mbr,
                        entries: children.iter().map(|(id, _)| *id).collect(),
                        leaf: false,
                    };
                    nodes.push(node);
                    nodes.len() - 1
                },
            );
        }
        let root = level.first().copied();
        LocalRTree { rects, nodes, root }
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// True when no records are indexed.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// MBR of all records.
    pub fn mbr(&self) -> Rect {
        self.root
            .map(|r| self.nodes[r].mbr)
            .unwrap_or_else(Rect::empty)
    }

    /// Record indices whose MBR intersects `query`, in ascending order.
    pub fn query(&self, query: &Rect) -> Vec<usize> {
        let mut out = Vec::new();
        if let Some(root) = self.root {
            self.query_node(root, query, &mut out);
        }
        out.sort_unstable();
        out
    }

    fn query_node(&self, node: usize, query: &Rect, out: &mut Vec<usize>) {
        let n = &self.nodes[node];
        if !n.mbr.intersects(query) {
            return;
        }
        if n.leaf {
            for &i in &n.entries {
                if self.rects[i].intersects(query) {
                    out.push(i);
                }
            }
        } else {
            for &c in &n.entries {
                self.query_node(c, query, out);
            }
        }
    }

    /// The `k` records nearest to `p` (by MBR min-distance), best-first.
    /// Returns `(record index, distance)` sorted by ascending distance.
    pub fn knn(&self, p: &Point, k: usize) -> Vec<(usize, f64)> {
        let mut out: Vec<(usize, f64)> = Vec::with_capacity(k);
        let Some(root) = self.root else {
            return out;
        };
        // Best-first search over a min-heap of (distance, is_record, id).
        #[derive(PartialEq)]
        struct Entry(f64, bool, usize);
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0
                    .total_cmp(&other.0)
                    .then_with(|| self.2.cmp(&other.2))
            }
        }
        let mut heap: BinaryHeap<Reverse<Entry>> = BinaryHeap::new();
        heap.push(Reverse(Entry(
            self.nodes[root].mbr.min_distance(p),
            false,
            root,
        )));
        while let Some(Reverse(Entry(dist, is_record, id))) = heap.pop() {
            if out.len() >= k {
                break;
            }
            if is_record {
                out.push((id, dist));
                continue;
            }
            let node = &self.nodes[id];
            if node.leaf {
                for &i in &node.entries {
                    heap.push(Reverse(Entry(self.rects[i].min_distance(p), true, i)));
                }
            } else {
                for &c in &node.entries {
                    heap.push(Reverse(Entry(self.nodes[c].mbr.min_distance(p), false, c)));
                }
            }
        }
        out
    }
}

/// STR-packs `items` into groups of [`NODE_CAPACITY`], calling `make`
/// per group and returning the created node ids.
fn pack_level<T: Clone, C, M>(items: &mut [T], center: C, mut make: M) -> Vec<usize>
where
    C: Fn(&T) -> Point,
    M: FnMut(&[T]) -> usize,
{
    let n = items.len();
    let num_nodes = n.div_ceil(NODE_CAPACITY);
    let slices = (num_nodes as f64).sqrt().ceil() as usize;
    items.sort_by(|a, b| center(a).x.total_cmp(&center(b).x));
    let per_slice = n.div_ceil(slices.max(1));
    let mut out = Vec::with_capacity(num_nodes);
    let mut start = 0;
    while start < n {
        let end = (start + per_slice).min(n);
        let slice = &mut items[start..end];
        slice.sort_by(|a, b| center(a).y.total_cmp(&center(b).y));
        let mut s = 0;
        while s < slice.len() {
            let e = (s + NODE_CAPACITY).min(slice.len());
            out.push(make(&slice[s..e]));
            s = e;
        }
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn random_rects(n: usize, seed: u64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.gen_range(0.0..1000.0);
                let y = rng.gen_range(0.0..1000.0);
                Rect::new(
                    x,
                    y,
                    x + rng.gen_range(0.0..5.0),
                    y + rng.gen_range(0.0..5.0),
                )
            })
            .collect()
    }

    #[test]
    fn query_matches_linear_scan() {
        let rects = random_rects(2000, 1);
        let tree = LocalRTree::build(rects.clone());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let x = rng.gen_range(0.0..900.0);
            let y = rng.gen_range(0.0..900.0);
            let q = Rect::new(
                x,
                y,
                x + rng.gen_range(1.0..100.0),
                y + rng.gen_range(1.0..100.0),
            );
            let expected: Vec<usize> = rects
                .iter()
                .enumerate()
                .filter(|(_, r)| r.intersects(&q))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(tree.query(&q), expected);
        }
    }

    #[test]
    fn knn_matches_linear_scan() {
        let rects = random_rects(1000, 3);
        let tree = LocalRTree::build(rects.clone());
        let p = Point::new(500.0, 500.0);
        for k in [1usize, 5, 32, 100] {
            let got = tree.knn(&p, k);
            assert_eq!(got.len(), k);
            let mut dists: Vec<f64> = rects.iter().map(|r| r.min_distance(&p)).collect();
            dists.sort_by(f64::total_cmp);
            for (i, (_, d)) in got.iter().enumerate() {
                assert!((d - dists[i]).abs() < 1e-9, "k={k} rank {i}");
            }
            // Ascending order.
            for w in got.windows(2) {
                assert!(w[0].1 <= w[1].1);
            }
        }
    }

    #[test]
    fn empty_and_single() {
        let empty = LocalRTree::build(Vec::new());
        assert!(empty.is_empty());
        assert!(empty.query(&Rect::new(0.0, 0.0, 1.0, 1.0)).is_empty());
        assert!(empty.knn(&Point::new(0.0, 0.0), 3).is_empty());

        let one = LocalRTree::build(vec![Rect::new(1.0, 1.0, 2.0, 2.0)]);
        assert_eq!(one.len(), 1);
        assert_eq!(one.query(&Rect::new(0.0, 0.0, 3.0, 3.0)), vec![0]);
        assert_eq!(one.knn(&Point::new(0.0, 0.0), 5).len(), 1);
    }

    #[test]
    fn knn_with_k_larger_than_n() {
        let rects = random_rects(10, 4);
        let tree = LocalRTree::build(rects);
        assert_eq!(tree.knn(&Point::new(0.0, 0.0), 100).len(), 10);
    }

    #[test]
    fn tree_mbr_covers_everything() {
        let rects = random_rects(500, 5);
        let tree = LocalRTree::build(rects.clone());
        let mbr = tree.mbr();
        for r in &rects {
            assert!(mbr.contains_rect(r));
        }
    }

    #[test]
    fn disjoint_query_returns_nothing() {
        let tree = LocalRTree::build(random_rects(100, 6));
        assert!(tree
            .query(&Rect::new(5000.0, 5000.0, 6000.0, 6000.0))
            .is_empty());
    }
}
