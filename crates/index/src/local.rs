//! Local index: an STR bulk-loaded R-tree over the records of one
//! partition.
//!
//! The `SpatialRecordReader` in `sh-core` builds one of these per
//! partition and hands it to the map function, so local processing can
//! search a partition (range query, kNN) without scanning every record —
//! the second level of SpatialHadoop's two-level index.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sh_geom::{Point, Rect};

/// Maximum entries per node.
const NODE_CAPACITY: usize = 32;

#[derive(Clone, Debug)]
struct Node {
    mbr: Rect,
    /// Children node indices for internal nodes; record indices for
    /// leaves.
    entries: Vec<usize>,
    leaf: bool,
}

/// Immutable R-tree over `(Rect, record index)` entries, built with the
/// Sort-Tile-Recursive algorithm.
#[derive(Clone, Debug)]
pub struct LocalRTree {
    rects: Vec<Rect>,
    nodes: Vec<Node>,
    root: Option<usize>,
}

impl LocalRTree {
    /// Bulk-loads the tree; `rects[i]` is the MBR of record `i`.
    pub fn build(rects: Vec<Rect>) -> LocalRTree {
        let n = rects.len();
        if n == 0 {
            return LocalRTree {
                rects,
                nodes: Vec::new(),
                root: None,
            };
        }
        let mut nodes: Vec<Node> = Vec::new();
        // Leaf level: STR packing of record indices.
        let mut level: Vec<usize> = pack_level(
            &mut (0..n).collect::<Vec<_>>(),
            |i| rects[*i].center(),
            |ids| {
                let mut mbr = Rect::empty();
                for &i in ids.iter() {
                    mbr.expand(&rects[i]);
                }
                let node = Node {
                    mbr,
                    entries: ids.to_vec(),
                    leaf: true,
                };
                nodes.push(node);
                nodes.len() - 1
            },
        );
        // Internal levels until a single root remains.
        while level.len() > 1 {
            // Snapshot the MBRs of the current level to avoid borrowing
            // `nodes` both mutably and immutably inside pack_level.
            let mbrs: Vec<Rect> = level.iter().map(|&id| nodes[id].mbr).collect();
            let pairs: Vec<(usize, Rect)> = level.iter().copied().zip(mbrs).collect();
            level = pack_level(
                &mut pairs.clone(),
                |(_, r)| r.center(),
                |children| {
                    let mut mbr = Rect::empty();
                    for (_, r) in children.iter() {
                        mbr.expand(r);
                    }
                    let node = Node {
                        mbr,
                        entries: children.iter().map(|(id, _)| *id).collect(),
                        leaf: false,
                    };
                    nodes.push(node);
                    nodes.len() - 1
                },
            );
        }
        let root = level.first().copied();
        LocalRTree { rects, nodes, root }
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// True when no records are indexed.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// MBR of all records.
    pub fn mbr(&self) -> Rect {
        self.root
            .map(|r| self.nodes[r].mbr)
            .unwrap_or_else(Rect::empty)
    }

    /// Record indices whose MBR intersects `query`, in ascending order.
    pub fn query(&self, query: &Rect) -> Vec<usize> {
        let mut out = Vec::new();
        if let Some(root) = self.root {
            self.query_node(root, query, &mut out);
        }
        out.sort_unstable();
        out
    }

    fn query_node(&self, node: usize, query: &Rect, out: &mut Vec<usize>) {
        let n = &self.nodes[node];
        if !n.mbr.intersects(query) {
            return;
        }
        if n.leaf {
            for &i in &n.entries {
                if self.rects[i].intersects(query) {
                    out.push(i);
                }
            }
        } else {
            for &c in &n.entries {
                self.query_node(c, query, out);
            }
        }
    }

    /// Serializes the tree as text — the `_lidx-NNNNN` sidecar the index
    /// builder writes next to each `part-NNNNN` so queries deserialize
    /// instead of re-running STR. The DFS stores UTF-8 text, and `f64`'s
    /// `Display` is shortest-roundtrip, so the encoding is exact:
    ///
    /// ```text
    /// LRT 1 <num_rects> <num_nodes> <root|-1>
    /// R <x1> <y1> <x2> <y2>                      (one per record MBR)
    /// N <leaf:0|1> <x1> <y1> <x2> <y2> <entries...>  (one per node)
    /// ```
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(self.rects.len() * 40 + self.nodes.len() * 64);
        let root = self.root.map(|r| r as i64).unwrap_or(-1);
        let _ = writeln!(s, "LRT 1 {} {} {root}", self.rects.len(), self.nodes.len());
        for r in &self.rects {
            let _ = writeln!(s, "R {} {} {} {}", r.x1, r.y1, r.x2, r.y2);
        }
        for n in &self.nodes {
            let m = &n.mbr;
            let _ = write!(
                s,
                "N {} {} {} {} {}",
                u8::from(n.leaf),
                m.x1,
                m.y1,
                m.x2,
                m.y2
            );
            for &e in &n.entries {
                let _ = write!(s, " {e}");
            }
            s.push('\n');
        }
        s
    }

    /// Deserializes [`LocalRTree::to_text`] output; structural errors
    /// (bad header, out-of-range indices, truncation) come back as
    /// messages for the caller to wrap.
    pub fn from_text(text: &str) -> Result<LocalRTree, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty local-index payload")?;
        let h: Vec<&str> = header.split_ascii_whitespace().collect();
        if h.len() != 5 || h[0] != "LRT" || h[1] != "1" {
            return Err(format!("bad local-index header: {header:?}"));
        }
        let nr: usize = h[2].parse().map_err(|_| "bad rect count".to_string())?;
        let nn: usize = h[3].parse().map_err(|_| "bad node count".to_string())?;
        let root: i64 = h[4].parse().map_err(|_| "bad root index".to_string())?;
        let mut rects = Vec::with_capacity(nr);
        for _ in 0..nr {
            let line = lines.next().ok_or("truncated local index: missing rect")?;
            let f: Vec<&str> = line.split_ascii_whitespace().collect();
            if f.len() != 5 || f[0] != "R" {
                return Err(format!("bad rect line: {line:?}"));
            }
            let mut v = [0f64; 4];
            for (slot, tok) in v.iter_mut().zip(&f[1..]) {
                *slot = tok
                    .parse()
                    .map_err(|_| format!("bad rect line: {line:?}"))?;
            }
            rects.push(Rect::new(v[0], v[1], v[2], v[3]));
        }
        let mut nodes = Vec::with_capacity(nn);
        for _ in 0..nn {
            let line = lines.next().ok_or("truncated local index: missing node")?;
            let f: Vec<&str> = line.split_ascii_whitespace().collect();
            if f.len() < 6 || f[0] != "N" {
                return Err(format!("bad node line: {line:?}"));
            }
            let leaf = match f[1] {
                "0" => false,
                "1" => true,
                _ => return Err(format!("bad node line: {line:?}")),
            };
            let mut v = [0f64; 4];
            for (slot, tok) in v.iter_mut().zip(&f[2..6]) {
                *slot = tok
                    .parse()
                    .map_err(|_| format!("bad node line: {line:?}"))?;
            }
            let limit = if leaf { nr } else { nn };
            let mut entries = Vec::with_capacity(f.len() - 6);
            for tok in &f[6..] {
                let e: usize = tok
                    .parse()
                    .map_err(|_| format!("bad node line: {line:?}"))?;
                if e >= limit {
                    return Err(format!("node entry {e} out of range (< {limit})"));
                }
                entries.push(e);
            }
            nodes.push(Node {
                mbr: Rect::new(v[0], v[1], v[2], v[3]),
                entries,
                leaf,
            });
        }
        let root = if root < 0 {
            None
        } else if (root as usize) < nodes.len() {
            Some(root as usize)
        } else {
            return Err(format!("root {root} out of range"));
        };
        if root.is_none() && !rects.is_empty() {
            return Err("non-empty local index without a root".to_string());
        }
        Ok(LocalRTree { rects, nodes, root })
    }

    /// Serializes the tree as a binary `SHLX` blob — the sidecar format
    /// binary-indexed partitions use. Little-endian throughout:
    ///
    /// ```text
    /// 4  magic b"SHLX"      2  version (1)
    /// 8  num_rects (u64)    8  num_nodes (u64)    8  root (i64, -1 = none)
    /// per rect: 4 x f64
    /// per node: leaf (u8), 4 x f64 mbr, entry count (u32), entries (u32 each)
    /// ```
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.rects.len() * 32 + self.nodes.len() * 48);
        out.extend_from_slice(b"SHLX");
        out.extend_from_slice(&1u16.to_le_bytes());
        out.extend_from_slice(&(self.rects.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.nodes.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.root.map(|r| r as i64).unwrap_or(-1).to_le_bytes());
        for r in &self.rects {
            for v in [r.x1, r.y1, r.x2, r.y2] {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        for n in &self.nodes {
            out.push(u8::from(n.leaf));
            for v in [n.mbr.x1, n.mbr.y1, n.mbr.x2, n.mbr.y2] {
                out.extend_from_slice(&v.to_le_bytes());
            }
            out.extend_from_slice(&(n.entries.len() as u32).to_le_bytes());
            for &e in &n.entries {
                out.extend_from_slice(&(e as u32).to_le_bytes());
            }
        }
        out
    }

    /// True when `data` starts with the binary sidecar magic.
    pub fn is_binary_sidecar(data: &[u8]) -> bool {
        data.len() >= 4 && &data[..4] == b"SHLX"
    }

    /// Deserializes [`LocalRTree::to_bytes`] output with the same
    /// validation rules as [`LocalRTree::from_text`]: bad magic/version,
    /// truncation, and out-of-range indices are all errors.
    pub fn from_bytes(data: &[u8]) -> Result<LocalRTree, String> {
        struct Cursor<'a> {
            data: &'a [u8],
            at: usize,
        }
        impl<'a> Cursor<'a> {
            fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
                if self.at + n > self.data.len() {
                    return Err("truncated local index".to_string());
                }
                let s = &self.data[self.at..self.at + n];
                self.at += n;
                Ok(s)
            }
            fn u64(&mut self) -> Result<u64, String> {
                Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
            }
            fn f64(&mut self) -> Result<f64, String> {
                Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
            }
            fn u32(&mut self) -> Result<u32, String> {
                Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
            }
        }
        let mut c = Cursor { data, at: 0 };
        if c.take(4)? != b"SHLX" {
            return Err("bad local-index magic".to_string());
        }
        let version = u16::from_le_bytes(c.take(2)?.try_into().unwrap());
        if version != 1 {
            return Err(format!("unsupported local-index version {version}"));
        }
        let nr = c.u64()? as usize;
        let nn = c.u64()? as usize;
        let root = i64::from_le_bytes(c.take(8)?.try_into().unwrap());
        // Sanity-bound the counts before allocating (a corrupt header
        // must not trigger a huge reservation).
        // 32 bytes per rect, at least 37 per node (flag + mbr + count).
        let remaining = data.len() - c.at;
        if nr.saturating_mul(32).saturating_add(nn.saturating_mul(37)) > remaining {
            return Err("local-index counts exceed payload".to_string());
        }
        let mut rects = Vec::with_capacity(nr);
        for _ in 0..nr {
            let (x1, y1, x2, y2) = (c.f64()?, c.f64()?, c.f64()?, c.f64()?);
            rects.push(Rect::new(x1, y1, x2, y2));
        }
        let mut nodes = Vec::with_capacity(nn);
        for _ in 0..nn {
            let leaf = match c.take(1)?[0] {
                0 => false,
                1 => true,
                b => return Err(format!("bad node leaf flag {b}")),
            };
            let (x1, y1, x2, y2) = (c.f64()?, c.f64()?, c.f64()?, c.f64()?);
            let count = c.u32()? as usize;
            let limit = if leaf { nr } else { nn };
            let mut entries = Vec::with_capacity(count.min(remaining / 4));
            for _ in 0..count {
                let e = c.u32()? as usize;
                if e >= limit {
                    return Err(format!("node entry {e} out of range (< {limit})"));
                }
                entries.push(e);
            }
            nodes.push(Node {
                mbr: Rect::new(x1, y1, x2, y2),
                entries,
                leaf,
            });
        }
        if c.at != data.len() {
            return Err("trailing bytes after local index".to_string());
        }
        let root = if root < 0 {
            None
        } else if (root as usize) < nodes.len() {
            Some(root as usize)
        } else {
            return Err(format!("root {root} out of range"));
        };
        if root.is_none() && !rects.is_empty() {
            return Err("non-empty local index without a root".to_string());
        }
        Ok(LocalRTree { rects, nodes, root })
    }

    /// The `k` records nearest to `p` (by MBR min-distance), best-first.
    /// Returns `(record index, distance)` sorted by ascending distance.
    pub fn knn(&self, p: &Point, k: usize) -> Vec<(usize, f64)> {
        let mut out: Vec<(usize, f64)> = Vec::with_capacity(k);
        let Some(root) = self.root else {
            return out;
        };
        // Best-first search over a min-heap of (distance, is_record, id).
        #[derive(PartialEq)]
        struct Entry(f64, bool, usize);
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0
                    .total_cmp(&other.0)
                    .then_with(|| self.2.cmp(&other.2))
            }
        }
        let mut heap: BinaryHeap<Reverse<Entry>> = BinaryHeap::new();
        heap.push(Reverse(Entry(
            self.nodes[root].mbr.min_distance(p),
            false,
            root,
        )));
        while let Some(Reverse(Entry(dist, is_record, id))) = heap.pop() {
            if out.len() >= k {
                break;
            }
            if is_record {
                out.push((id, dist));
                continue;
            }
            let node = &self.nodes[id];
            if node.leaf {
                for &i in &node.entries {
                    heap.push(Reverse(Entry(self.rects[i].min_distance(p), true, i)));
                }
            } else {
                for &c in &node.entries {
                    heap.push(Reverse(Entry(self.nodes[c].mbr.min_distance(p), false, c)));
                }
            }
        }
        out
    }
}

/// STR-packs `items` into groups of [`NODE_CAPACITY`], calling `make`
/// per group and returning the created node ids.
fn pack_level<T: Clone, C, M>(items: &mut [T], center: C, mut make: M) -> Vec<usize>
where
    C: Fn(&T) -> Point,
    M: FnMut(&[T]) -> usize,
{
    let n = items.len();
    let num_nodes = n.div_ceil(NODE_CAPACITY);
    let slices = (num_nodes as f64).sqrt().ceil() as usize;
    items.sort_by(|a, b| center(a).x.total_cmp(&center(b).x));
    let per_slice = n.div_ceil(slices.max(1));
    let mut out = Vec::with_capacity(num_nodes);
    let mut start = 0;
    while start < n {
        let end = (start + per_slice).min(n);
        let slice = &mut items[start..end];
        slice.sort_by(|a, b| center(a).y.total_cmp(&center(b).y));
        let mut s = 0;
        while s < slice.len() {
            let e = (s + NODE_CAPACITY).min(slice.len());
            out.push(make(&slice[s..e]));
            s = e;
        }
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn random_rects(n: usize, seed: u64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.gen_range(0.0..1000.0);
                let y = rng.gen_range(0.0..1000.0);
                Rect::new(
                    x,
                    y,
                    x + rng.gen_range(0.0..5.0),
                    y + rng.gen_range(0.0..5.0),
                )
            })
            .collect()
    }

    #[test]
    fn query_matches_linear_scan() {
        let rects = random_rects(2000, 1);
        let tree = LocalRTree::build(rects.clone());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let x = rng.gen_range(0.0..900.0);
            let y = rng.gen_range(0.0..900.0);
            let q = Rect::new(
                x,
                y,
                x + rng.gen_range(1.0..100.0),
                y + rng.gen_range(1.0..100.0),
            );
            let expected: Vec<usize> = rects
                .iter()
                .enumerate()
                .filter(|(_, r)| r.intersects(&q))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(tree.query(&q), expected);
        }
    }

    #[test]
    fn knn_matches_linear_scan() {
        let rects = random_rects(1000, 3);
        let tree = LocalRTree::build(rects.clone());
        let p = Point::new(500.0, 500.0);
        for k in [1usize, 5, 32, 100] {
            let got = tree.knn(&p, k);
            assert_eq!(got.len(), k);
            let mut dists: Vec<f64> = rects.iter().map(|r| r.min_distance(&p)).collect();
            dists.sort_by(f64::total_cmp);
            for (i, (_, d)) in got.iter().enumerate() {
                assert!((d - dists[i]).abs() < 1e-9, "k={k} rank {i}");
            }
            // Ascending order.
            for w in got.windows(2) {
                assert!(w[0].1 <= w[1].1);
            }
        }
    }

    #[test]
    fn empty_and_single() {
        let empty = LocalRTree::build(Vec::new());
        assert!(empty.is_empty());
        assert!(empty.query(&Rect::new(0.0, 0.0, 1.0, 1.0)).is_empty());
        assert!(empty.knn(&Point::new(0.0, 0.0), 3).is_empty());

        let one = LocalRTree::build(vec![Rect::new(1.0, 1.0, 2.0, 2.0)]);
        assert_eq!(one.len(), 1);
        assert_eq!(one.query(&Rect::new(0.0, 0.0, 3.0, 3.0)), vec![0]);
        assert_eq!(one.knn(&Point::new(0.0, 0.0), 5).len(), 1);
    }

    #[test]
    fn knn_with_k_larger_than_n() {
        let rects = random_rects(10, 4);
        let tree = LocalRTree::build(rects);
        assert_eq!(tree.knn(&Point::new(0.0, 0.0), 100).len(), 10);
    }

    #[test]
    fn tree_mbr_covers_everything() {
        let rects = random_rects(500, 5);
        let tree = LocalRTree::build(rects.clone());
        let mbr = tree.mbr();
        for r in &rects {
            assert!(mbr.contains_rect(r));
        }
    }

    #[test]
    fn text_roundtrip_preserves_query_results() {
        for n in [0usize, 1, 33, 2000] {
            let rects = random_rects(n, 7);
            let tree = LocalRTree::build(rects);
            let back = LocalRTree::from_text(&tree.to_text()).unwrap();
            assert_eq!(back.len(), tree.len());
            let q = Rect::new(100.0, 100.0, 600.0, 600.0);
            assert_eq!(back.query(&q), tree.query(&q));
            let p = Point::new(250.0, 250.0);
            let a = tree.knn(&p, 10);
            let b = back.knn(&p, 10);
            assert_eq!(a.len(), b.len());
            for ((ia, da), (ib, db)) in a.iter().zip(&b) {
                assert_eq!(ia, ib);
                assert_eq!(da.to_bits(), db.to_bits(), "distances must be exact");
            }
            // Re-serialization is byte-identical (determinism).
            assert_eq!(back.to_text(), tree.to_text());
        }
    }

    #[test]
    fn binary_roundtrip_preserves_query_results() {
        for n in [0usize, 1, 33, 2000] {
            let rects = random_rects(n, 9);
            let tree = LocalRTree::build(rects);
            let blob = tree.to_bytes();
            assert!(LocalRTree::is_binary_sidecar(&blob));
            let back = LocalRTree::from_bytes(&blob).unwrap();
            assert_eq!(back.len(), tree.len());
            let q = Rect::new(100.0, 100.0, 600.0, 600.0);
            assert_eq!(back.query(&q), tree.query(&q));
            // Re-serialization is byte-identical (determinism).
            assert_eq!(back.to_bytes(), blob);
        }
    }

    #[test]
    fn corrupt_binary_sidecar_is_rejected() {
        let tree = LocalRTree::build(random_rects(50, 10));
        let blob = tree.to_bytes();
        assert!(LocalRTree::from_bytes(&blob).is_ok());
        assert!(LocalRTree::from_bytes(&[]).is_err());
        assert!(LocalRTree::from_bytes(&blob[..10]).is_err());
        assert!(LocalRTree::from_bytes(&blob[..blob.len() - 1]).is_err());
        let mut bad = blob.clone();
        bad[0] = b'Z';
        assert!(LocalRTree::from_bytes(&bad).is_err());
        assert!(!LocalRTree::is_binary_sidecar(&bad));
        let mut bad = blob.clone();
        bad[4] = 9; // version
        assert!(LocalRTree::from_bytes(&bad).is_err());
        let mut bad = blob.clone();
        bad[6] = 0xff; // rect count blown up
        assert!(LocalRTree::from_bytes(&bad).is_err());
    }

    #[test]
    fn corrupt_text_is_rejected() {
        assert!(LocalRTree::from_text("").is_err());
        assert!(LocalRTree::from_text("XYZ 1 0 0 -1").is_err());
        assert!(LocalRTree::from_text("LRT 2 0 0 -1").is_err());
        assert!(LocalRTree::from_text("LRT 1 1 0 -1").is_err()); // missing rect
        assert!(LocalRTree::from_text("LRT 1 1 1 0\nR 0 0 1 1\nN 1 0 0 1 1 5").is_err()); // entry oob
        assert!(LocalRTree::from_text("LRT 1 1 1 3\nR 0 0 1 1\nN 1 0 0 1 1 0").is_err()); // root oob
        let tree = LocalRTree::build(random_rects(10, 8));
        assert!(LocalRTree::from_text(&tree.to_text()).is_ok());
    }

    #[test]
    fn disjoint_query_returns_nothing() {
        let tree = LocalRTree::build(random_rects(100, 6));
        assert!(tree
            .query(&Rect::new(5000.0, 5000.0, 6000.0, 6000.0))
            .is_empty());
    }
}
