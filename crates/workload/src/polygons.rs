//! Polygon generators for the union and polygon-join workloads.

use rand::prelude::*;
use sh_geom::algorithms::convex_hull::convex_hull;
use sh_geom::{Point, Polygon, Rect};

/// A random convex polygon: the hull of `vertices` random points in a
/// disc of radius `radius` around `center`. Always has ≥ 3 vertices.
pub fn random_convex_polygon(
    center: Point,
    radius: f64,
    vertices: usize,
    rng: &mut StdRng,
) -> Polygon {
    loop {
        let pts: Vec<Point> = (0..vertices.max(3) * 2)
            .map(|_| {
                let a = rng.gen::<f64>() * std::f64::consts::TAU;
                let r = radius * rng.gen::<f64>().sqrt();
                Point::new(center.x + a.cos() * r, center.y + a.sin() * r)
            })
            .collect();
        let hull = convex_hull(&pts);
        if hull.len() >= 3 {
            return Polygon::new(hull);
        }
    }
}

/// A random *star-shaped* (simple but concave) polygon: vertices at
/// jittered radii in increasing angular order around `center` — the
/// "complex polygon" shape of the union experiment (real lake/park
/// boundaries are concave).
pub fn random_star_polygon(
    center: Point,
    radius: f64,
    vertices: usize,
    rng: &mut StdRng,
) -> Polygon {
    let n = vertices.max(4);
    let ring: Vec<Point> = (0..n)
        .map(|i| {
            let a =
                (i as f64 / n as f64) * std::f64::consts::TAU + rng.gen_range(-0.3..0.3) / n as f64;
            let r = radius * rng.gen_range(0.35..1.0);
            Point::new(center.x + a.cos() * r, center.y + a.sin() * r)
        })
        .collect();
    Polygon::new(ring)
}

/// OSM-like polygon dataset: ZIP-code-style mosaics. Polygons cluster in
/// "urban areas" (many small adjacent polygons) with scattered large
/// rural ones, mimicking the paper's OSM lakes/parks extract:
///
/// * ~80% small polygons (radius ≈ `scale`) packed inside cluster blobs —
///   heavy overlap within a cluster, so local union removes many edges;
/// * ~20% larger polygons spread uniformly.
///
/// `osm_like_polygons` emits convex ("simple") shapes; use
/// [`osm_like_polygons_complex`] for the concave variant.
pub fn osm_like_polygons(n: usize, universe: &Rect, scale: f64, seed: u64) -> Vec<Polygon> {
    let mut rng = StdRng::seed_from_u64(seed);
    let clusters = ((n as f64).sqrt() as usize).clamp(1, 64);
    let centers: Vec<Point> = (0..clusters)
        .map(|_| {
            Point::new(
                universe.x1 + rng.gen::<f64>() * universe.width(),
                universe.y1 + rng.gen::<f64>() * universe.height(),
            )
        })
        .collect();
    (0..n)
        .map(|i| {
            if i % 5 == 0 {
                // Rural: larger, anywhere.
                let c = Point::new(
                    universe.x1 + rng.gen::<f64>() * universe.width(),
                    universe.y1 + rng.gen::<f64>() * universe.height(),
                );
                random_convex_polygon(c, scale * rng.gen_range(2.0..5.0), 8, &mut rng)
            } else {
                // Urban: small, near a cluster center.
                let base = centers[rng.gen_range(0..centers.len())];
                let c = Point::new(
                    base.x + (rng.gen::<f64>() - 0.5) * scale * 10.0,
                    base.y + (rng.gen::<f64>() - 0.5) * scale * 10.0,
                );
                random_convex_polygon(c, scale * rng.gen_range(0.5..1.5), 6, &mut rng)
            }
        })
        .collect()
}

/// The concave ("complex") variant of [`osm_like_polygons`]: same
/// clustering, star-shaped boundaries with `detail` vertices each.
pub fn osm_like_polygons_complex(
    n: usize,
    universe: &Rect,
    scale: f64,
    detail: usize,
    seed: u64,
) -> Vec<Polygon> {
    let mut rng = StdRng::seed_from_u64(seed);
    let clusters = ((n as f64).sqrt() as usize).clamp(1, 64);
    let centers: Vec<Point> = (0..clusters)
        .map(|_| {
            Point::new(
                universe.x1 + rng.gen::<f64>() * universe.width(),
                universe.y1 + rng.gen::<f64>() * universe.height(),
            )
        })
        .collect();
    (0..n)
        .map(|i| {
            let (c, r) = if i % 5 == 0 {
                (
                    Point::new(
                        universe.x1 + rng.gen::<f64>() * universe.width(),
                        universe.y1 + rng.gen::<f64>() * universe.height(),
                    ),
                    scale * rng.gen_range(2.0..5.0),
                )
            } else {
                let base = centers[rng.gen_range(0..centers.len())];
                (
                    Point::new(
                        base.x + (rng.gen::<f64>() - 0.5) * scale * 10.0,
                        base.y + (rng.gen::<f64>() - 0.5) * scale * 10.0,
                    ),
                    scale * rng.gen_range(0.5..1.5),
                )
            };
            random_star_polygon(c, r, detail, &mut rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convex_polygons_are_convex() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let p = random_convex_polygon(Point::new(100.0, 100.0), 20.0, 8, &mut rng);
            assert!(p.is_convex());
            assert!(p.len() >= 3);
            assert!(p.area() > 0.0);
        }
    }

    #[test]
    fn polygons_stay_near_center() {
        let mut rng = StdRng::seed_from_u64(2);
        let c = Point::new(50.0, 50.0);
        let p = random_convex_polygon(c, 10.0, 8, &mut rng);
        for v in p.vertices() {
            assert!(v.distance(&c) <= 10.0 + 1e-9);
        }
    }

    #[test]
    fn osm_like_polygons_cluster() {
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let polys = osm_like_polygons(500, &uni, 5.0, 3);
        assert_eq!(polys.len(), 500);
        // Urban polygons overlap heavily: count overlapping pairs by MBR.
        let mbrs: Vec<Rect> = polys.iter().map(Polygon::mbr).collect();
        let overlaps = sh_geom::algorithms::plane_sweep::plane_sweep_self_join(&mbrs).len();
        assert!(overlaps > 100, "expected clustered overlap, got {overlaps}");
    }

    #[test]
    fn star_polygons_are_simple_and_mostly_concave() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut concave = 0;
        for _ in 0..30 {
            let p = random_star_polygon(Point::new(100.0, 100.0), 20.0, 12, &mut rng);
            assert!(p.len() >= 4);
            assert!(p.area() > 0.0);
            // No self-intersection: every pair of non-adjacent edges
            // misses each other.
            let edges: Vec<_> = p.edges().collect();
            for i in 0..edges.len() {
                for j in (i + 2)..edges.len() {
                    if i == 0 && j == edges.len() - 1 {
                        continue; // adjacent around the ring
                    }
                    assert!(
                        edges[i].intersection(&edges[j]).is_none(),
                        "self-intersection between edges {i} and {j}"
                    );
                }
            }
            if !p.is_convex() {
                concave += 1;
            }
        }
        assert!(
            concave > 20,
            "stars should usually be concave: {concave}/30"
        );
    }

    #[test]
    fn complex_variant_generates_concave_clusters() {
        let uni = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let polys = osm_like_polygons_complex(200, &uni, 5.0, 10, 6);
        assert_eq!(polys.len(), 200);
        let concave = polys.iter().filter(|p| !p.is_convex()).count();
        assert!(concave > 150, "{concave}");
    }

    #[test]
    fn deterministic_in_seed() {
        let uni = Rect::new(0.0, 0.0, 100.0, 100.0);
        let a = osm_like_polygons(50, &uni, 2.0, 9);
        let b = osm_like_polygons(50, &uni, 2.0, 9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.vertices(), y.vertices());
        }
    }
}
