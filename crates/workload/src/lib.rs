//! # sh-workload — dataset generators
//!
//! Generates the datasets the SpatialHadoop evaluation uses:
//!
//! * the **SYNTH** point distributions (uniform, Gaussian, correlated,
//!   anti-correlated, circular) — anti-correlated is the skyline worst
//!   case, circular the farthest-pair/convex-hull worst case;
//! * **OSM-like** clustered points and polygons standing in for the
//!   OpenStreetMap extracts (see DESIGN.md §2: same skew structure at
//!   laptop scale);
//! * rectangle datasets for the spatial-join experiments.
//!
//! All generators are deterministic in `(n, seed)` and emit coordinates
//! inside a caller-provided universe.

pub mod distributions;
pub mod polygons;

pub use distributions::{osm_like_points, points, rects, Distribution};
pub use polygons::{
    osm_like_polygons, osm_like_polygons_complex, random_convex_polygon, random_star_polygon,
};

use sh_geom::Rect;

/// The default `1M × 1M` universe the paper generates SYNTH data in.
pub fn default_universe() -> Rect {
    Rect::new(0.0, 0.0, 1_000_000.0, 1_000_000.0)
}
