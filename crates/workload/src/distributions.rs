//! Point and rectangle distributions.

use rand::prelude::*;
use sh_geom::{Point, Rect};

/// The SYNTH distributions of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// Uniform over the universe.
    Uniform,
    /// Gaussian cluster at the universe center (σ = 1/5 of each extent),
    /// clamped to the universe.
    Gaussian,
    /// Diagonal band `y ≈ x` — the skyline best case.
    Correlated,
    /// Anti-diagonal band `y ≈ max − x` — the skyline worst case (every
    /// point may be on the skyline).
    AntiCorrelated,
    /// Ring of radius 0.4·extent around the center — the convex-hull /
    /// farthest-pair worst case (hull size ≈ n).
    Circular,
}

impl Distribution {
    /// All distributions, in the order the experiments sweep them.
    pub const ALL: [Distribution; 5] = [
        Distribution::Uniform,
        Distribution::Gaussian,
        Distribution::Correlated,
        Distribution::AntiCorrelated,
        Distribution::Circular,
    ];

    /// Display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Distribution::Uniform => "uniform",
            Distribution::Gaussian => "gaussian",
            Distribution::Correlated => "correlated",
            Distribution::AntiCorrelated => "anti-correlated",
            Distribution::Circular => "circular",
        }
    }
}

/// Generates `n` points with the given distribution inside `universe`.
pub fn points(n: usize, dist: Distribution, universe: &Rect, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    let w = universe.width();
    let h = universe.height();
    let cx = universe.center().x;
    let cy = universe.center().y;
    let clamp = |p: Point| {
        Point::new(
            p.x.clamp(universe.x1, universe.x2),
            p.y.clamp(universe.y1, universe.y2),
        )
    };
    (0..n)
        .map(|_| {
            let p = match dist {
                Distribution::Uniform => Point::new(
                    universe.x1 + rng.gen::<f64>() * w,
                    universe.y1 + rng.gen::<f64>() * h,
                ),
                Distribution::Gaussian => Point::new(
                    cx + gaussian(&mut rng) * w / 5.0,
                    cy + gaussian(&mut rng) * h / 5.0,
                ),
                Distribution::Correlated => {
                    let x = universe.x1 + rng.gen::<f64>() * w;
                    let t = (x - universe.x1) / w;
                    Point::new(x, universe.y1 + t * h + gaussian(&mut rng) * h / 20.0)
                }
                Distribution::AntiCorrelated => {
                    // Essentially on the anti-diagonal: the skyline worst
                    // case where (almost) every point is on the skyline.
                    let x = universe.x1 + rng.gen::<f64>() * w;
                    let t = (x - universe.x1) / w;
                    Point::new(
                        x,
                        universe.y1 + (1.0 - t) * h + gaussian(&mut rng) * h * 1e-9,
                    )
                }
                Distribution::Circular => {
                    // Exactly on a ring: hull size ≈ n, the convex-hull /
                    // farthest-pair worst case.
                    let a = rng.gen::<f64>() * std::f64::consts::TAU;
                    let r = 0.4;
                    Point::new(cx + a.cos() * r * w, cy + a.sin() * r * h)
                }
            };
            clamp(p)
        })
        .collect()
}

/// OSM-like clustered points: `clusters` Gaussian blobs of very different
/// densities plus a thin uniform background — the skew profile of
/// real-world map data.
pub fn osm_like_points(n: usize, universe: &Rect, clusters: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    let clusters = clusters.max(1);
    let centers: Vec<(Point, f64, f64)> = (0..clusters)
        .map(|_| {
            let c = Point::new(
                universe.x1 + rng.gen::<f64>() * universe.width(),
                universe.y1 + rng.gen::<f64>() * universe.height(),
            );
            let sigma = universe.width() * rng.gen_range(0.005..0.05);
            let weight = rng.gen_range(0.5..4.0);
            (c, sigma, weight)
        })
        .collect();
    let total_weight: f64 = centers.iter().map(|(_, _, w)| w).sum();
    (0..n)
        .map(|_| {
            if rng.gen::<f64>() < 0.1 {
                // Background noise.
                return Point::new(
                    universe.x1 + rng.gen::<f64>() * universe.width(),
                    universe.y1 + rng.gen::<f64>() * universe.height(),
                );
            }
            let mut pick = rng.gen::<f64>() * total_weight;
            let mut chosen = &centers[0];
            for c in &centers {
                pick -= c.2;
                if pick <= 0.0 {
                    chosen = c;
                    break;
                }
            }
            let (c, sigma, _) = chosen;
            Point::new(
                (c.x + gaussian(&mut rng) * sigma).clamp(universe.x1, universe.x2),
                (c.y + gaussian(&mut rng) * sigma).clamp(universe.y1, universe.y2),
            )
        })
        .collect()
}

/// Random rectangles: uniform centers, edge lengths uniform in
/// `(0, max_side]`. The spatial-join workload.
pub fn rects(n: usize, universe: &Rect, max_side: f64, seed: u64) -> Vec<Rect> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let w = rng.gen::<f64>() * max_side;
            let h = rng.gen::<f64>() * max_side;
            let x = universe.x1 + rng.gen::<f64>() * (universe.width() - w).max(0.0);
            let y = universe.y1 + rng.gen::<f64>() * (universe.height() - h).max(0.0);
            Rect::new(x, y, x + w, y + h)
        })
        .collect()
}

/// Standard normal via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sh_geom::algorithms::convex_hull::convex_hull;
    use sh_geom::algorithms::skyline::skyline;

    fn uni() -> Rect {
        Rect::new(0.0, 0.0, 1000.0, 1000.0)
    }

    #[test]
    fn all_points_inside_universe() {
        for dist in Distribution::ALL {
            for p in points(2000, dist, &uni(), 1) {
                assert!(uni().contains_point(&p), "{} escaped: {p}", dist.name());
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = points(100, Distribution::Uniform, &uni(), 42);
        let b = points(100, Distribution::Uniform, &uni(), 42);
        let c = points(100, Distribution::Uniform, &uni(), 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gaussian_clusters_centrally() {
        let pts = points(5000, Distribution::Gaussian, &uni(), 2);
        let center_count = pts
            .iter()
            .filter(|p| p.distance(&Point::new(500.0, 500.0)) < 300.0)
            .count();
        assert!(center_count > 3000, "{center_count}");
    }

    #[test]
    fn anti_correlated_has_huge_skyline() {
        let anti = points(5000, Distribution::AntiCorrelated, &uni(), 3);
        let unif = points(5000, Distribution::Uniform, &uni(), 3);
        let sky_anti = skyline(&anti).len();
        let sky_unif = skyline(&unif).len();
        assert!(
            sky_anti > 50 * sky_unif.max(1),
            "anti {sky_anti} vs uniform {sky_unif}"
        );
    }

    #[test]
    fn correlated_has_tiny_skyline() {
        let pts = points(5000, Distribution::Correlated, &uni(), 4);
        assert!(skyline(&pts).len() < 60);
    }

    #[test]
    fn circular_has_huge_hull() {
        let circ = points(3000, Distribution::Circular, &uni(), 5);
        let unif = points(3000, Distribution::Uniform, &uni(), 5);
        let hull_circ = convex_hull(&circ).len();
        let hull_unif = convex_hull(&unif).len();
        assert!(
            hull_circ > 10 * hull_unif,
            "circular {hull_circ} vs uniform {hull_unif}"
        );
    }

    #[test]
    fn osm_like_is_skewed() {
        let pts = osm_like_points(8000, &uni(), 6, 7);
        assert_eq!(pts.len(), 8000);
        // Measure skew: occupancy of a 10x10 grid is far from uniform.
        let mut counts = [0usize; 100];
        for p in &pts {
            let cx = ((p.x / 100.0) as usize).min(9);
            let cy = ((p.y / 100.0) as usize).min(9);
            counts[cy * 10 + cx] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(max > 800, "max cell {max} — expected heavy clustering");
    }

    #[test]
    fn rects_are_valid_and_bounded() {
        for r in rects(1000, &uni(), 50.0, 8) {
            assert!(r.x1 <= r.x2 && r.y1 <= r.y2);
            assert!(uni().contains_rect(&r));
            assert!(r.width() <= 50.0 && r.height() <= 50.0);
        }
    }
}
