//! Blocks: the unit of storage, replication, and map-task scheduling.

use bytes::Bytes;

use crate::config::NodeId;

/// Globally unique block identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

/// Block payload plus its replica locations.
#[derive(Clone, Debug)]
pub struct BlockData {
    /// Raw record-aligned bytes (newline-terminated text records).
    pub data: Bytes,
    /// Nodes holding a replica; the first entry is the "primary" written
    /// by the creating node.
    pub replicas: Vec<NodeId>,
}

/// Location metadata exposed to the MapReduce scheduler — everything it
/// needs for locality-aware task placement, without the payload.
#[derive(Clone, Debug)]
pub struct BlockInfo {
    /// Block id.
    pub id: BlockId,
    /// Payload bytes.
    pub len: u64,
    /// Nodes holding a replica.
    pub replicas: Vec<NodeId>,
}

impl BlockData {
    /// True when at least one replica lives on a node in `alive`.
    pub fn available(&self, alive: &[bool]) -> bool {
        self.replicas
            .iter()
            .any(|&n| alive.get(n).copied().unwrap_or(false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_follows_replicas() {
        let b = BlockData {
            data: Bytes::from_static(b"1 2\n"),
            replicas: vec![0, 2],
        };
        assert!(b.available(&[true, true, true]));
        assert!(b.available(&[false, false, true]));
        assert!(!b.available(&[false, true, false]));
    }
}
