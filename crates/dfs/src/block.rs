//! Blocks: the unit of storage, replication, and map-task scheduling.

use std::collections::BTreeMap;

use bytes::Bytes;

use crate::config::NodeId;

/// Globally unique block identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

/// Block payload plus its replica locations.
///
/// The simulation keeps one canonical byte copy per block; `replicas`
/// lists the nodes nominally holding it. Silent corruption is modelled as
/// a per-replica *overlay*: a node in `corrupt` serves the overlaid bytes
/// instead of the canonical payload, while `crc` still describes the
/// bytes that were written — which is exactly how readers detect the rot.
#[derive(Clone, Debug)]
pub struct BlockData {
    /// Raw record-aligned bytes (newline-terminated text records).
    pub data: Bytes,
    /// CRC-64/XZ of `data`, computed once at write time.
    pub crc: u64,
    /// File this block belongs to (read-repair invalidates caches by
    /// path).
    pub path: String,
    /// Nodes holding a replica; the first entry is the "primary" written
    /// by the creating node.
    pub replicas: Vec<NodeId>,
    /// Silently corrupted replicas: the bytes the named node would
    /// actually serve (bit-rot / torn-write injection).
    pub corrupt: BTreeMap<NodeId, Bytes>,
}

/// Location metadata exposed to the MapReduce scheduler — everything it
/// needs for locality-aware task placement, without the payload.
#[derive(Clone, Debug)]
pub struct BlockInfo {
    /// Block id.
    pub id: BlockId,
    /// Payload bytes.
    pub len: u64,
    /// Nodes holding a replica.
    pub replicas: Vec<NodeId>,
}

impl BlockData {
    /// True when at least one replica lives on a node in `alive`.
    pub fn available(&self, alive: &[bool]) -> bool {
        self.replicas
            .iter()
            .any(|&n| alive.get(n).copied().unwrap_or(false))
    }

    /// The bytes replica `node` would serve: the corruption overlay when
    /// one is installed, the canonical payload otherwise.
    pub fn replica_bytes(&self, node: NodeId) -> &Bytes {
        self.corrupt.get(&node).unwrap_or(&self.data)
    }

    /// True when replica `node` serves bytes matching the write-time
    /// checksum.
    pub fn replica_healthy(&self, node: NodeId) -> bool {
        match self.corrupt.get(&node) {
            None => true,
            Some(bytes) => crate::crc64::crc64(bytes) == self.crc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crc64::crc64;

    fn block(data: &'static [u8], replicas: Vec<NodeId>) -> BlockData {
        BlockData {
            data: Bytes::from_static(data),
            crc: crc64(data),
            path: "/f".to_string(),
            replicas,
            corrupt: BTreeMap::new(),
        }
    }

    #[test]
    fn availability_follows_replicas() {
        let b = block(b"1 2\n", vec![0, 2]);
        assert!(b.available(&[true, true, true]));
        assert!(b.available(&[false, false, true]));
        assert!(!b.available(&[false, true, false]));
    }

    #[test]
    fn corruption_overlay_shadows_one_replica() {
        let mut b = block(b"1 2\n", vec![0, 2]);
        assert!(b.replica_healthy(0) && b.replica_healthy(2));
        b.corrupt.insert(0, Bytes::from_static(b"9 2\n"));
        assert!(!b.replica_healthy(0), "flipped replica must fail its crc");
        assert!(b.replica_healthy(2), "other replica untouched");
        assert_eq!(&b.replica_bytes(0)[..], b"9 2\n");
        assert_eq!(&b.replica_bytes(2)[..], b"1 2\n");
    }
}
