//! Per-node block cache: parsed record vectors and loaded local trees,
//! keyed by path identity, bounded by a byte budget.
//!
//! The real system caches the local index that ships inside each block;
//! here the cache lives next to the namenode handle (one process stands
//! in for the cluster) and stores whatever the query layer parsed out of
//! a block or partition file — `Arc<dyn Any>` so the DFS stays ignorant
//! of record types. Entries are invalidated whenever the underlying
//! bytes could change: file delete/overwrite, and wholesale on node
//! kill/revive/re-replication so chaos runs stay byte-identical with an
//! uncached run.
//!
//! Hits, misses, and evictions are mirrored into the global `sh-trace`
//! registry under `dfs.cache.hits` / `dfs.cache.misses` /
//! `dfs.cache.evictions`, with the resident size in the
//! `dfs.cache.bytes` gauge.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

/// Default byte budget: 64 MiB.
pub const DEFAULT_CACHE_BUDGET: u64 = 64 * 1024 * 1024;

/// A cached value: the parsed payload plus its accounted size.
struct Entry {
    value: Arc<dyn Any + Send + Sync>,
    bytes: u64,
    /// Last-use tick for LRU eviction.
    tick: u64,
}

#[derive(Default)]
struct CacheInner {
    entries: HashMap<String, Entry>,
    total_bytes: u64,
    tick: u64,
    /// Tick of the last wholesale [`BlockCache::clear`].
    cleared_at: u64,
    /// Tick each key was last individually invalidated at.
    invalidated_at: HashMap<String, u64>,
}

/// Snapshot of cache effectiveness counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries dropped to stay under the byte budget.
    pub evictions: u64,
    /// [`BlockCache::put_at`] calls dropped because the key was
    /// invalidated (or the cache cleared) after the caller read the
    /// underlying bytes — stale parses that must not be installed.
    pub stale_puts: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
    /// Entries currently resident.
    pub resident_entries: u64,
}

/// LRU cache with a byte budget (see module docs). Shared across all
/// clones of a [`crate::Dfs`] handle.
pub struct BlockCache {
    inner: Mutex<CacheInner>,
    budget: Mutex<u64>,
    stats: Mutex<CacheStats>,
}

impl Default for BlockCache {
    fn default() -> Self {
        BlockCache::new(DEFAULT_CACHE_BUDGET)
    }
}

impl BlockCache {
    /// Creates a cache with the given byte budget (0 disables caching).
    pub fn new(budget: u64) -> BlockCache {
        BlockCache {
            inner: Mutex::new(CacheInner::default()),
            budget: Mutex::new(budget),
            stats: Mutex::new(CacheStats::default()),
        }
    }

    /// The current byte budget.
    pub fn budget(&self) -> u64 {
        *self.budget.lock()
    }

    /// Adjusts the byte budget; shrinking evicts immediately, 0 clears
    /// and disables.
    pub fn set_budget(&self, budget: u64) {
        *self.budget.lock() = budget;
        let mut inner = self.inner.lock();
        let evicted = evict_to(&mut inner, budget);
        drop(inner);
        if evicted > 0 {
            let mut stats = self.stats.lock();
            stats.evictions += evicted;
            drop(stats);
            sh_trace::global().counter_add("dfs.cache.evictions", evicted);
        }
        self.publish_gauges();
    }

    /// Looks up `key`, bumping its recency. Counts a hit or a miss.
    pub fn get(&self, key: &str) -> Option<Arc<dyn Any + Send + Sync>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let found = inner.entries.get_mut(key).map(|e| {
            e.tick = tick;
            Arc::clone(&e.value)
        });
        drop(inner);
        let mut stats = self.stats.lock();
        if found.is_some() {
            stats.hits += 1;
            drop(stats);
            sh_trace::global().counter_add("dfs.cache.hits", 1);
        } else {
            stats.misses += 1;
            drop(stats);
            sh_trace::global().counter_add("dfs.cache.misses", 1);
        }
        found
    }

    /// Logical clock for [`BlockCache::put_at`]: capture before reading
    /// the bytes a parse is derived from; any invalidation of the key
    /// (or wholesale clear) after this point makes the parse stale.
    pub fn epoch(&self) -> u64 {
        self.inner.lock().tick
    }

    /// Race-safe insert for values parsed from bytes read at `epoch`
    /// (see [`BlockCache::epoch`]): the insert is dropped when the key
    /// was invalidated — or the whole cache cleared — after the capture,
    /// so a concurrent job's node kill or file overwrite can never be
    /// shadowed by a stale parse that was already in flight. The check
    /// and the insert happen under one lock.
    pub fn put_at(&self, key: &str, value: Arc<dyn Any + Send + Sync>, bytes: u64, epoch: u64) {
        let budget = *self.budget.lock();
        if bytes > budget {
            return;
        }
        let inner = self.inner.lock();
        let stale =
            inner.cleared_at > epoch || inner.invalidated_at.get(key).is_some_and(|&at| at > epoch);
        if stale {
            drop(inner);
            let mut stats = self.stats.lock();
            stats.stale_puts += 1;
            drop(stats);
            sh_trace::global().counter_add("dfs.cache.stale_puts", 1);
            return;
        }
        self.insert_locked(inner, key, value, bytes, budget);
    }

    /// Inserts (or replaces) `key`, then evicts least-recently-used
    /// entries until the budget holds. Values larger than the whole
    /// budget are not cached.
    pub fn put(&self, key: &str, value: Arc<dyn Any + Send + Sync>, bytes: u64) {
        let budget = *self.budget.lock();
        if bytes > budget {
            return;
        }
        let inner = self.inner.lock();
        self.insert_locked(inner, key, value, bytes, budget);
    }

    fn insert_locked(
        &self,
        mut inner: parking_lot::MutexGuard<'_, CacheInner>,
        key: &str,
        value: Arc<dyn Any + Send + Sync>,
        bytes: u64,
        budget: u64,
    ) {
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner
            .entries
            .insert(key.to_string(), Entry { value, bytes, tick })
        {
            inner.total_bytes -= old.bytes;
        }
        inner.total_bytes += bytes;
        let evicted = evict_to(&mut inner, budget);
        drop(inner);
        if evicted > 0 {
            let mut stats = self.stats.lock();
            stats.evictions += evicted;
            drop(stats);
            sh_trace::global().counter_add("dfs.cache.evictions", evicted);
        }
        self.publish_gauges();
    }

    /// Drops one key (file deleted or overwritten). Also advances the
    /// key's invalidation tick so in-flight [`BlockCache::put_at`] calls
    /// that read the old bytes are rejected.
    pub fn invalidate(&self, key: &str) {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.invalidated_at.insert(key.to_string(), tick);
        sh_trace::events::emit(
            "cache.invalidate",
            vec![("key", key.to_string()), ("epoch", tick.to_string())],
        );
        if let Some(e) = inner.entries.remove(key) {
            inner.total_bytes -= e.bytes;
            drop(inner);
            self.publish_gauges();
        }
    }

    /// Drops everything (node membership or replica layout changed) and
    /// advances the clear tick, staling every in-flight
    /// [`BlockCache::put_at`].
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        inner.cleared_at = inner.tick;
        sh_trace::events::emit("cache.clear", vec![("epoch", inner.tick.to_string())]);
        // The wholesale tick supersedes all per-key records.
        inner.invalidated_at.clear();
        inner.entries.clear();
        inner.total_bytes = 0;
        drop(inner);
        self.publish_gauges();
    }

    /// Effectiveness counters since creation.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        let mut stats = *self.stats.lock();
        stats.resident_bytes = inner.total_bytes;
        stats.resident_entries = inner.entries.len() as u64;
        stats
    }

    fn publish_gauges(&self) {
        let inner = self.inner.lock();
        sh_trace::global().gauge_set("dfs.cache.bytes", inner.total_bytes as i64);
        sh_trace::global().gauge_set("dfs.cache.entries", inner.entries.len() as i64);
    }
}

/// Evicts lowest-tick entries until `total_bytes <= budget`; returns the
/// eviction count. O(n) per eviction is fine at cache cardinalities
/// (hundreds of partitions).
fn evict_to(inner: &mut CacheInner, budget: u64) -> u64 {
    let mut evicted = 0;
    while inner.total_bytes > budget {
        let Some(victim) = inner
            .entries
            .iter()
            .min_by_key(|(_, e)| e.tick)
            .map(|(k, _)| k.clone())
        else {
            break;
        };
        let e = inner.entries.remove(&victim).expect("victim exists");
        inner.total_bytes -= e.bytes;
        evicted += 1;
    }
    evicted
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc(v: u32) -> Arc<dyn Any + Send + Sync> {
        Arc::new(v)
    }

    fn get_u32(c: &BlockCache, key: &str) -> Option<u32> {
        c.get(key).map(|v| *v.downcast::<u32>().unwrap())
    }

    #[test]
    fn hit_miss_roundtrip() {
        let c = BlockCache::new(1024);
        assert!(c.get("/a").is_none());
        c.put("/a", arc(7), 100);
        assert_eq!(get_u32(&c, "/a"), Some(7));
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.resident_bytes, 100);
        assert_eq!(s.resident_entries, 1);
    }

    #[test]
    fn lru_eviction_respects_budget() {
        let c = BlockCache::new(250);
        c.put("/a", arc(1), 100);
        c.put("/b", arc(2), 100);
        assert_eq!(get_u32(&c, "/a"), Some(1)); // /a now most recent
        c.put("/c", arc(3), 100); // over budget: evict LRU = /b
        assert_eq!(get_u32(&c, "/b"), None);
        assert_eq!(get_u32(&c, "/a"), Some(1));
        assert_eq!(get_u32(&c, "/c"), Some(3));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn oversized_values_are_not_cached() {
        let c = BlockCache::new(50);
        c.put("/big", arc(1), 100);
        assert!(c.get("/big").is_none());
        assert_eq!(c.stats().resident_bytes, 0);
    }

    #[test]
    fn replace_updates_accounting() {
        let c = BlockCache::new(1000);
        c.put("/a", arc(1), 100);
        c.put("/a", arc(2), 300);
        assert_eq!(c.stats().resident_bytes, 300);
        assert_eq!(get_u32(&c, "/a"), Some(2));
    }

    #[test]
    fn invalidate_and_clear() {
        let c = BlockCache::new(1000);
        c.put("/a", arc(1), 100);
        c.put("/b", arc(2), 100);
        c.invalidate("/a");
        assert!(c.get("/a").is_none());
        assert_eq!(get_u32(&c, "/b"), Some(2));
        c.clear();
        assert!(c.get("/b").is_none());
        assert_eq!(c.stats().resident_bytes, 0);
    }

    #[test]
    fn stale_put_after_invalidate_is_dropped() {
        let c = BlockCache::new(1000);
        let epoch = c.epoch();
        // Another job overwrites the file after our bytes were read...
        c.invalidate("/a");
        // ...so the in-flight parse must not be installed.
        c.put_at("/a", arc(1), 100, epoch);
        assert!(c.get("/a").is_none());
        assert_eq!(c.stats().stale_puts, 1);
        // A parse started after the invalidation is fine.
        let epoch = c.epoch();
        c.put_at("/a", arc(2), 100, epoch);
        assert_eq!(get_u32(&c, "/a"), Some(2));
    }

    #[test]
    fn stale_put_after_clear_is_dropped() {
        let c = BlockCache::new(1000);
        let epoch = c.epoch();
        c.clear(); // node kill mid-read
        c.put_at("/a", arc(1), 100, epoch);
        assert!(c.get("/a").is_none());
        assert_eq!(c.stats().stale_puts, 1);
        // Unrelated keys invalidated before the capture don't stale it.
        c.invalidate("/other");
        let epoch = c.epoch();
        c.put_at("/a", arc(3), 100, epoch);
        assert_eq!(get_u32(&c, "/a"), Some(3));
    }

    #[test]
    fn zero_budget_disables() {
        let c = BlockCache::new(0);
        c.put("/a", arc(1), 1);
        assert!(c.get("/a").is_none());
        let c2 = BlockCache::new(1000);
        c2.put("/a", arc(1), 100);
        c2.set_budget(0);
        assert!(c2.get("/a").is_none());
        assert_eq!(c2.stats().resident_bytes, 0);
    }
}
