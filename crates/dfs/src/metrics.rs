//! Byte-level I/O accounting.
//!
//! Besides the per-instance [`DfsMetrics`] snapshots, every read and write
//! is forwarded to the process-wide [`sh_trace`] registry under `dfs.*`
//! keys, so profiles and registry dumps see DFS traffic without holding a
//! reference to the `Dfs` that produced it.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative DFS counters.
///
/// Every read records whether it was served from a replica on the reading
/// node (local) or had to cross the network (remote); the cost model
/// charges them at disk vs. network bandwidth respectively. All counters
/// are monotonic; [`DfsMetrics::snapshot`] gives a consistent-enough view
/// for reporting (exactness across counters is not required).
#[derive(Debug, Default)]
pub struct DfsMetrics {
    local_bytes_read: AtomicU64,
    remote_bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    blocks_read: AtomicU64,
    blocks_written: AtomicU64,
    corrupt_replicas: AtomicU64,
    repaired_replicas: AtomicU64,
}

/// Point-in-time copy of the counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub local_bytes_read: u64,
    pub remote_bytes_read: u64,
    pub bytes_written: u64,
    pub blocks_read: u64,
    pub blocks_written: u64,
    /// Replicas that failed their checksum on read or scrub.
    pub corrupt_replicas: u64,
    /// Fresh replicas created by read-repair or the scrubber.
    pub repaired_replicas: u64,
}

impl DfsMetrics {
    pub(crate) fn record_read(&self, bytes: u64, local: bool) {
        let registry = sh_trace::global();
        if local {
            self.local_bytes_read.fetch_add(bytes, Ordering::Relaxed);
            registry.counter_add("dfs.bytes.read.local", bytes);
        } else {
            self.remote_bytes_read.fetch_add(bytes, Ordering::Relaxed);
            registry.counter_add("dfs.bytes.read.remote", bytes);
        }
        self.blocks_read.fetch_add(1, Ordering::Relaxed);
        registry.counter_add("dfs.blocks.read", 1);
        registry.observe("dfs.block.read.bytes", bytes);
    }

    pub(crate) fn record_write(&self, bytes: u64) {
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        self.blocks_written.fetch_add(1, Ordering::Relaxed);
        let registry = sh_trace::global();
        registry.counter_add("dfs.bytes.written", bytes);
        registry.counter_add("dfs.blocks.written", 1);
        registry.observe("dfs.block.write.bytes", bytes);
    }

    /// Records one integrity incident: `corrupt` replicas detected rotten
    /// and `repaired` fresh replicas created to heal them. Mirrored to
    /// the global registry as `dfs.integrity.corrupt` /
    /// `dfs.integrity.repaired`.
    pub(crate) fn record_integrity(&self, corrupt: u64, repaired: u64) {
        self.corrupt_replicas.fetch_add(corrupt, Ordering::Relaxed);
        self.repaired_replicas
            .fetch_add(repaired, Ordering::Relaxed);
        let registry = sh_trace::global();
        if corrupt > 0 {
            registry.counter_add("dfs.integrity.corrupt", corrupt);
        }
        if repaired > 0 {
            registry.counter_add("dfs.integrity.repaired", repaired);
        }
    }

    /// Copies the current counter values.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            local_bytes_read: self.local_bytes_read.load(Ordering::Relaxed),
            remote_bytes_read: self.remote_bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            blocks_read: self.blocks_read.load(Ordering::Relaxed),
            blocks_written: self.blocks_written.load(Ordering::Relaxed),
            corrupt_replicas: self.corrupt_replicas.load(Ordering::Relaxed),
            repaired_replicas: self.repaired_replicas.load(Ordering::Relaxed),
        }
    }
}

impl MetricsSnapshot {
    /// Total bytes read, local + remote.
    pub fn total_bytes_read(&self) -> u64 {
        self.local_bytes_read + self.remote_bytes_read
    }

    /// Counter-wise difference `self - earlier` (for measuring one job).
    /// Saturating: comparing snapshots from different `Dfs` instances (or
    /// out of order) yields zeros instead of a wrap-around panic.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            local_bytes_read: self
                .local_bytes_read
                .saturating_sub(earlier.local_bytes_read),
            remote_bytes_read: self
                .remote_bytes_read
                .saturating_sub(earlier.remote_bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            blocks_read: self.blocks_read.saturating_sub(earlier.blocks_read),
            blocks_written: self.blocks_written.saturating_sub(earlier.blocks_written),
            corrupt_replicas: self
                .corrupt_replicas
                .saturating_sub(earlier.corrupt_replicas),
            repaired_replicas: self
                .repaired_replicas
                .saturating_sub(earlier.repaired_replicas),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = DfsMetrics::default();
        m.record_read(100, true);
        m.record_read(50, false);
        m.record_write(10);
        let s = m.snapshot();
        assert_eq!(s.local_bytes_read, 100);
        assert_eq!(s.remote_bytes_read, 50);
        assert_eq!(s.total_bytes_read(), 150);
        assert_eq!(s.bytes_written, 10);
        assert_eq!(s.blocks_read, 2);
        assert_eq!(s.blocks_written, 1);
    }

    #[test]
    fn since_subtracts() {
        let m = DfsMetrics::default();
        m.record_read(100, true);
        let before = m.snapshot();
        m.record_read(25, false);
        let delta = m.snapshot().since(&before);
        assert_eq!(delta.local_bytes_read, 0);
        assert_eq!(delta.remote_bytes_read, 25);
        assert_eq!(delta.blocks_read, 1);
    }

    #[test]
    fn since_saturates_instead_of_panicking() {
        let fresh = DfsMetrics::default().snapshot();
        let mut busy = MetricsSnapshot::default();
        busy.local_bytes_read = 500;
        busy.blocks_read = 3;
        // "Earlier" snapshot from a busier instance: must clamp to zero.
        let delta = fresh.since(&busy);
        assert_eq!(delta, MetricsSnapshot::default());
    }

    #[test]
    fn reads_and_writes_reach_the_global_registry() {
        let before = sh_trace::global().snapshot();
        let m = DfsMetrics::default();
        m.record_read(64, true);
        m.record_read(32, false);
        m.record_write(16);
        let delta = sh_trace::global().snapshot().since(&before);
        assert!(delta.counter("dfs.bytes.read.local") >= 64);
        assert!(delta.counter("dfs.bytes.read.remote") >= 32);
        assert!(delta.counter("dfs.bytes.written") >= 16);
        assert!(delta.counter("dfs.blocks.read") >= 2);
    }
}
