//! Byte-level I/O accounting.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative DFS counters.
///
/// Every read records whether it was served from a replica on the reading
/// node (local) or had to cross the network (remote); the cost model
/// charges them at disk vs. network bandwidth respectively. All counters
/// are monotonic; [`DfsMetrics::snapshot`] gives a consistent-enough view
/// for reporting (exactness across counters is not required).
#[derive(Debug, Default)]
pub struct DfsMetrics {
    local_bytes_read: AtomicU64,
    remote_bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    blocks_read: AtomicU64,
    blocks_written: AtomicU64,
}

/// Point-in-time copy of the counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub local_bytes_read: u64,
    pub remote_bytes_read: u64,
    pub bytes_written: u64,
    pub blocks_read: u64,
    pub blocks_written: u64,
}

impl DfsMetrics {
    pub(crate) fn record_read(&self, bytes: u64, local: bool) {
        if local {
            self.local_bytes_read.fetch_add(bytes, Ordering::Relaxed);
        } else {
            self.remote_bytes_read.fetch_add(bytes, Ordering::Relaxed);
        }
        self.blocks_read.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_write(&self, bytes: u64) {
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        self.blocks_written.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the current counter values.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            local_bytes_read: self.local_bytes_read.load(Ordering::Relaxed),
            remote_bytes_read: self.remote_bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            blocks_read: self.blocks_read.load(Ordering::Relaxed),
            blocks_written: self.blocks_written.load(Ordering::Relaxed),
        }
    }
}

impl MetricsSnapshot {
    /// Total bytes read, local + remote.
    pub fn total_bytes_read(&self) -> u64 {
        self.local_bytes_read + self.remote_bytes_read
    }

    /// Counter-wise difference `self - earlier` (for measuring one job).
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            local_bytes_read: self.local_bytes_read - earlier.local_bytes_read,
            remote_bytes_read: self.remote_bytes_read - earlier.remote_bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            blocks_read: self.blocks_read - earlier.blocks_read,
            blocks_written: self.blocks_written - earlier.blocks_written,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = DfsMetrics::default();
        m.record_read(100, true);
        m.record_read(50, false);
        m.record_write(10);
        let s = m.snapshot();
        assert_eq!(s.local_bytes_read, 100);
        assert_eq!(s.remote_bytes_read, 50);
        assert_eq!(s.total_bytes_read(), 150);
        assert_eq!(s.bytes_written, 10);
        assert_eq!(s.blocks_read, 2);
        assert_eq!(s.blocks_written, 1);
    }

    #[test]
    fn since_subtracts() {
        let m = DfsMetrics::default();
        m.record_read(100, true);
        let before = m.snapshot();
        m.record_read(25, false);
        let delta = m.snapshot().since(&before);
        assert_eq!(delta.local_bytes_read, 0);
        assert_eq!(delta.remote_bytes_read, 25);
        assert_eq!(delta.blocks_read, 1);
    }
}
