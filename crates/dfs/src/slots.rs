//! Global worker-slot pool shared by every job on a cluster.
//!
//! Hadoop caps the cluster's concurrency at its slot count no matter how
//! many jobs the JobTracker is running; this pool reproduces that: N
//! concurrent jobs on a C-slot cluster execute C task attempts at a
//! time, not N×C. Each task attempt acquires a [`SlotLease`] before it
//! runs and releases it (RAII) when it settles, so speculative backups
//! and retries compete for the same capacity as first attempts.
//!
//! Acquisition blocks (back-pressure, not failure) and is serviced in
//! wake-up order. Wait time is observed into the global trace registry
//! as `sched.slot.wait.micros`; occupancy is mirrored into the
//! `sched.slots.in_use` gauge and the high-water mark is queryable via
//! [`SlotPool::peak`] so tests can assert the cap was never exceeded.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

struct PoolState {
    total: usize,
    in_use: usize,
    /// High-water mark of `in_use` since creation.
    peak: usize,
}

/// Counting semaphore over the cluster's worker slots (see module docs).
///
/// Uses `std::sync` primitives: leases are held across task execution,
/// and the wait path needs a condition variable.
pub struct SlotPool {
    state: Mutex<PoolState>,
    cv: Condvar,
}

impl SlotPool {
    /// Creates a pool with `total` slots (clamped to at least 1 — a
    /// zero-slot cluster would deadlock every job).
    pub fn new(total: usize) -> SlotPool {
        SlotPool {
            state: Mutex::new(PoolState {
                total: total.max(1),
                in_use: 0,
                peak: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Blocks until a slot is free, then leases it. The lease returns
    /// the slot on drop.
    pub fn acquire(self: &Arc<Self>) -> SlotLease {
        let t0 = Instant::now();
        let mut st = self.state.lock().expect("slot pool poisoned");
        if st.in_use >= st.total {
            sh_trace::events::emit(
                "slots.exhausted",
                vec![
                    ("in_use", st.in_use.to_string()),
                    ("total", st.total.to_string()),
                ],
            );
        }
        while st.in_use >= st.total {
            st = self.cv.wait(st).expect("slot pool poisoned");
        }
        st.in_use += 1;
        st.peak = st.peak.max(st.in_use);
        let in_use = st.in_use;
        drop(st);
        let registry = sh_trace::global();
        registry.observe("sched.slot.wait.micros", t0.elapsed().as_micros() as u64);
        registry.gauge_set("sched.slots.in_use", in_use as i64);
        SlotLease {
            pool: Arc::clone(self),
        }
    }

    /// Leases a slot only if one is free right now, without blocking.
    ///
    /// This is the intra-task parallelism path: a running task already
    /// holds one slot, and blocking here for extra slots while every
    /// other task does the same would deadlock the pool. Extra slots are
    /// strictly opportunistic — `None` means "scan serially".
    pub fn try_acquire(self: &Arc<Self>) -> Option<SlotLease> {
        let mut st = self.state.lock().expect("slot pool poisoned");
        if st.in_use >= st.total {
            return None;
        }
        st.in_use += 1;
        st.peak = st.peak.max(st.in_use);
        let in_use = st.in_use;
        drop(st);
        sh_trace::global().gauge_set("sched.slots.in_use", in_use as i64);
        Some(SlotLease {
            pool: Arc::clone(self),
        })
    }

    /// Resizes the pool (clamped to at least 1). Growing wakes waiters;
    /// shrinking lets in-flight leases drain naturally — `in_use` may
    /// exceed the new total until they release.
    pub fn set_total(&self, total: usize) {
        let mut st = self.state.lock().expect("slot pool poisoned");
        st.total = total.max(1);
        self.cv.notify_all();
    }

    /// Configured slot count.
    pub fn total(&self) -> usize {
        self.state.lock().expect("slot pool poisoned").total
    }

    /// Slots currently leased.
    pub fn in_use(&self) -> usize {
        self.state.lock().expect("slot pool poisoned").in_use
    }

    /// High-water mark of concurrently leased slots since creation.
    pub fn peak(&self) -> usize {
        self.state.lock().expect("slot pool poisoned").peak
    }
}

/// An acquired worker slot; returned to the pool on drop.
pub struct SlotLease {
    pool: Arc<SlotPool>,
}

impl Drop for SlotLease {
    fn drop(&mut self) {
        let mut st = self.pool.state.lock().expect("slot pool poisoned");
        st.in_use -= 1;
        let in_use = st.in_use;
        drop(st);
        self.pool.cv.notify_one();
        sh_trace::global().gauge_set("sched.slots.in_use", in_use as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn lease_roundtrip_updates_occupancy_and_peak() {
        let pool = Arc::new(SlotPool::new(2));
        assert_eq!(pool.total(), 2);
        let a = pool.acquire();
        let b = pool.acquire();
        assert_eq!(pool.in_use(), 2);
        drop(a);
        assert_eq!(pool.in_use(), 1);
        drop(b);
        assert_eq!(pool.in_use(), 0);
        assert_eq!(pool.peak(), 2);
    }

    #[test]
    fn zero_slots_clamps_to_one() {
        let pool = Arc::new(SlotPool::new(0));
        assert_eq!(pool.total(), 1);
        let lease = pool.acquire();
        drop(lease);
        pool.set_total(0);
        assert_eq!(pool.total(), 1);
    }

    #[test]
    fn concurrent_holders_never_exceed_total() {
        let pool = Arc::new(SlotPool::new(3));
        let live = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..16 {
                let pool = Arc::clone(&pool);
                let live = Arc::clone(&live);
                let max_seen = Arc::clone(&max_seen);
                scope.spawn(move || {
                    for _ in 0..20 {
                        let _lease = pool.acquire();
                        let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                        max_seen.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_micros(200));
                        live.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert!(max_seen.load(Ordering::SeqCst) <= 3);
        assert_eq!(pool.in_use(), 0);
        assert!(pool.peak() <= 3);
    }

    #[test]
    fn try_acquire_never_blocks_and_respects_the_cap() {
        let pool = Arc::new(SlotPool::new(2));
        let a = pool.try_acquire().expect("slot free");
        let b = pool.try_acquire().expect("slot free");
        assert!(pool.try_acquire().is_none(), "pool exhausted");
        drop(a);
        let c = pool.try_acquire().expect("slot returned");
        drop(b);
        drop(c);
        assert_eq!(pool.in_use(), 0);
        assert_eq!(pool.peak(), 2);
    }

    #[test]
    fn growing_the_pool_wakes_waiters() {
        let pool = Arc::new(SlotPool::new(1));
        let gate = pool.acquire();
        let pool2 = Arc::clone(&pool);
        let waiter = std::thread::spawn(move || {
            let _lease = pool2.acquire();
        });
        std::thread::sleep(Duration::from_millis(20));
        pool.set_total(2);
        waiter.join().expect("waiter must finish once pool grows");
        drop(gate);
    }
}
