//! Disk spill store backing the zero-copy (mmap) scan path.
//!
//! The simulated DFS keeps block payloads in memory (`Bytes`), so there is
//! no on-disk file to map. The spill store bridges that gap at read time:
//! the first mmap-enabled scan of a file writes its concatenated block
//! bytes to a private temp file once, maps it, and caches the mapping
//! keyed by `(path, generation, len)`. Later scans of the same file —
//! including cold scans after a `BlockCache` clear — reuse the mapping
//! without re-spilling or re-copying.
//!
//! Correctness protocol:
//!
//! * Spill files are **immutable per generation**. The namespace bumps a
//!   per-path generation counter on every `create`/`delete`, so an
//!   overwrite under the same path can never be served from a stale
//!   mapping — the key no longer matches and a fresh spill file (with a
//!   fresh name) is written. The old file is unlinked immediately;
//!   existing mappings keep their pages per POSIX semantics.
//! * Node kills and re-replication change *placement*, not *content*, so
//!   they do not invalidate spills. Availability is still enforced because
//!   callers obtain the bytes through [`crate::Dfs::read_block`] (which
//!   fails on unavailable blocks) before asking for a mapping.
//! * A `validated` flag records that a consumer has already run its full
//!   content validation (e.g. the columnar decoder's finite-value check)
//!   against this exact mapping, letting repeat cold scans skip it.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

use memmap2::Mmap;
use parking_lot::Mutex;

/// A cached read-only mapping of one file's bytes.
#[derive(Clone, Debug)]
pub struct SpillMap {
    /// The mapping; keeps the pages alive even after the spill file is
    /// unlinked or superseded by a newer generation.
    pub map: Arc<Mmap>,
    /// True once [`SpillStore::mark_validated`] has been called for this
    /// exact `(path, generation)` — the consumer's content validation has
    /// already passed against these bytes.
    pub validated: bool,
}

struct SpillEntry {
    generation: u64,
    /// CRC-64 the caller claimed for the spilled bytes — a hit requires
    /// the same checksum, so a repaired file (new digest, same length)
    /// can never reuse a mapping of the pre-repair bytes.
    crc: u64,
    file: PathBuf,
    map: Arc<Mmap>,
    validated: bool,
}

struct SpillInner {
    dir: Option<PathBuf>,
    entries: HashMap<String, SpillEntry>,
    next_seq: u64,
}

/// Process-private spill directory with one immutable file per
/// `(path, generation)` currently cached. Created lazily on first use and
/// removed on drop.
pub struct SpillStore {
    inner: Mutex<SpillInner>,
}

impl Default for SpillStore {
    fn default() -> SpillStore {
        SpillStore {
            inner: Mutex::new(SpillInner {
                dir: None,
                entries: HashMap::new(),
                next_seq: 0,
            }),
        }
    }
}

impl SpillStore {
    /// Returns a mapping of `data` for DFS path `key` at `generation`,
    /// spilling to disk on first use and reusing the cached mapping when
    /// the generation, length, and checksum still match.
    ///
    /// `crc` is the expected CRC-64 of `data` (the file's write-time
    /// digest). A fresh spill is verified against it after the write+map
    /// round-trip, so a torn spill write or tmpfs bit-flip surfaces as an
    /// error (callers fall back to the owned path) instead of being
    /// scanned as truth.
    pub fn map_path(
        &self,
        key: &str,
        generation: u64,
        data: &[u8],
        crc: u64,
    ) -> io::Result<SpillMap> {
        let mut inner = self.inner.lock();
        if let Some(entry) = inner.entries.get(key) {
            if entry.generation == generation && entry.map.len() == data.len() && entry.crc == crc {
                return Ok(SpillMap {
                    map: Arc::clone(&entry.map),
                    validated: entry.validated,
                });
            }
        }
        if inner.dir.is_none() {
            let dir = std::env::temp_dir().join(format!(
                "sh-spill-{}-{:x}",
                std::process::id(),
                self as *const SpillStore as usize
            ));
            fs::create_dir_all(&dir)?;
            inner.dir = Some(dir);
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let file = inner
            .dir
            .as_ref()
            .expect("spill dir initialized above")
            .join(format!("s{seq}.bin"));
        fs::write(&file, data)?;
        let map = Arc::new(unsafe { Mmap::map(&fs::File::open(&file)?)? });
        if crate::crc64::crc64(&map) != crc {
            let _ = fs::remove_file(&file);
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("spill of {key} failed its checksum"),
            ));
        }
        if let Some(old) = inner.entries.insert(
            key.to_string(),
            SpillEntry {
                generation,
                crc,
                file,
                map: Arc::clone(&map),
                validated: false,
            },
        ) {
            // Superseded spill: unlink now; live mappings keep their pages.
            let _ = fs::remove_file(&old.file);
        }
        Ok(SpillMap {
            map,
            validated: false,
        })
    }

    /// Records that the consumer's content validation passed against the
    /// mapping currently cached for `(key, generation)`.
    pub fn mark_validated(&self, key: &str, generation: u64) {
        let mut inner = self.inner.lock();
        if let Some(entry) = inner.entries.get_mut(key) {
            if entry.generation == generation {
                entry.validated = true;
            }
        }
    }

    /// Drops the cached spill for `key` (file deleted or overwritten);
    /// live mappings handed out earlier stay readable.
    pub fn remove(&self, key: &str) {
        let mut inner = self.inner.lock();
        if let Some(old) = inner.entries.remove(key) {
            let _ = fs::remove_file(&old.file);
        }
    }

    /// Number of cached spill files (tests / introspection).
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True when no spills are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        let inner = self.inner.get_mut();
        if let Some(dir) = inner.dir.take() {
            let _ = fs::remove_dir_all(dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crc64::crc64;

    fn map(store: &SpillStore, key: &str, generation: u64, data: &[u8]) -> io::Result<SpillMap> {
        store.map_path(key, generation, data, crc64(data))
    }

    #[test]
    fn spill_roundtrip_and_reuse() {
        let store = SpillStore::default();
        let m1 = map(&store, "/f", 1, b"abcdef").unwrap();
        assert_eq!(&m1.map[..], b"abcdef");
        assert!(!m1.validated);
        store.mark_validated("/f", 1);
        let m2 = map(&store, "/f", 1, b"abcdef").unwrap();
        assert!(m2.validated, "revalidated flag survives a cache hit");
        assert!(
            std::ptr::eq(Arc::as_ptr(&m1.map), Arc::as_ptr(&m2.map)),
            "same generation reuses the same mapping"
        );
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn new_generation_respills_and_old_mapping_stays_readable() {
        let store = SpillStore::default();
        let old = map(&store, "/f", 1, b"old contents").unwrap();
        store.mark_validated("/f", 1);
        let new = map(&store, "/f", 2, b"new!").unwrap();
        assert_eq!(&new.map[..], b"new!");
        assert!(
            !new.validated,
            "validation does not carry across generations"
        );
        assert_eq!(&old.map[..], b"old contents", "unlinked pages stay valid");
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn length_change_respills() {
        let store = SpillStore::default();
        map(&store, "/f", 1, b"aaaa").unwrap();
        let m = map(&store, "/f", 1, b"aaaaaa").unwrap();
        assert_eq!(m.map.len(), 6);
    }

    #[test]
    fn crc_change_respills_same_length() {
        let store = SpillStore::default();
        let old = map(&store, "/f", 1, b"aaaa").unwrap();
        store.mark_validated("/f", 1);
        // Same generation and length, different bytes (a repaired file):
        // must not serve the stale mapping or its validated flag.
        let new = map(&store, "/f", 1, b"bbbb").unwrap();
        assert_eq!(&new.map[..], b"bbbb");
        assert!(!new.validated);
        assert_eq!(&old.map[..], b"aaaa");
    }

    #[test]
    fn checksum_mismatch_is_an_error() {
        let store = SpillStore::default();
        let err = store
            .map_path("/f", 1, b"payload", 0xDEAD_BEEF)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(store.is_empty(), "rejected spill leaves nothing cached");
    }

    #[test]
    fn remove_drops_entry() {
        let store = SpillStore::default();
        map(&store, "/f", 1, b"x").unwrap();
        store.remove("/f");
        assert!(store.is_empty());
    }
}
