//! Cluster topology and performance parameters.

use serde::{Deserialize, Serialize};

use crate::fault::{FaultPlan, FtOptions};

/// Identifier of a cluster node (datanode + task tracker), `0..num_nodes`.
pub type NodeId = usize;

/// Static description of the simulated cluster.
///
/// The defaults model the paper's testbed: a 25-node commodity cluster
/// with 64 MB HDFS blocks, 3-way replication, ~100 MB/s disks, ~1 GbE
/// network, and the multi-second MapReduce job startup overhead that
/// motivates single-round algorithm designs.
///
/// Tests and laptop-scale experiments shrink `block_size` so that the
/// *number of partitions* matches cluster-scale shapes at small data
/// sizes (see DESIGN.md §2).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of worker nodes.
    pub num_nodes: usize,
    /// Concurrent map tasks per node.
    pub map_slots_per_node: usize,
    /// Concurrent reduce tasks per node.
    pub reduce_slots_per_node: usize,
    /// HDFS block size in bytes.
    pub block_size: u64,
    /// Replication factor (clamped to `num_nodes`).
    pub replication: usize,
    /// Sequential disk bandwidth per node, bytes/second.
    pub disk_bandwidth: f64,
    /// Point-to-point network bandwidth, bytes/second.
    pub network_bandwidth: f64,
    /// Network oversubscription: remote block reads by concurrent tasks
    /// share switch uplinks, so a task's effective remote bandwidth is
    /// `network_bandwidth / network_oversubscription`. (Shuffle traffic
    /// is already modelled cluster-wide and is not divided again.)
    pub network_oversubscription: f64,
    /// Fixed simulated overhead of starting a MapReduce job, seconds.
    /// Dominates short jobs; the reason multi-round algorithms lose.
    pub job_startup_overhead: f64,
    /// Fixed simulated overhead of launching one task attempt, seconds.
    pub task_startup_overhead: f64,
    /// Per-record CPU cost in seconds used by the simulated-time model
    /// (parse + process a record of typical size).
    pub cpu_cost_per_record: f64,
    /// Seed for deterministic replica placement.
    pub placement_seed: u64,
    /// Locality-aware map scheduling (the Hadoop default). When false the
    /// scheduler ignores replica locations — the ablation experiment A1
    /// measures what that costs in remote reads.
    pub locality_scheduling: bool,
    /// Number of straggler nodes (node ids `0..stragglers`) whose tasks
    /// run `straggler_slowdown`x slower in the simulated-time model.
    pub stragglers: usize,
    /// Slowdown factor applied to straggler nodes (>= 1).
    pub straggler_slowdown: f64,
    /// Speculative execution: when a straggler task falls behind, a
    /// backup attempt launches on a healthy node once the expected task
    /// time has elapsed, and the first finisher wins — Hadoop's
    /// straggler mitigation, modelled as
    /// `min(straggler time, 2x healthy time)` in the cost model and run
    /// for real by the executor (duplicate attempt, first finisher
    /// wins, loser cancelled).
    pub speculative_execution: bool,
    /// Attempts per task (first run + retries) before the job fails —
    /// Hadoop's `mapreduce.map.maxattempts`, default 4.
    pub max_task_attempts: usize,
    /// Failed attempts on one node before the scheduler blacklists the
    /// node for the rest of the job and asks the DFS to re-replicate.
    pub node_blacklist_threshold: usize,
    /// Executor worker threads; `None` uses `available_parallelism()`.
    pub worker_threads: Option<usize>,
    /// Deterministic retry backoff: attempt `a` waits `a * backoff` ms
    /// of wall time before re-running.
    pub retry_backoff_ms: u64,
    /// A running task becomes a speculation candidate once it has been
    /// in flight this long with the task queue empty.
    pub speculation_threshold_ms: u64,
    /// Injected faults for chaos testing (empty = no faults).
    pub fault_plan: FaultPlan,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            num_nodes: 25,
            map_slots_per_node: 2,
            reduce_slots_per_node: 1,
            block_size: 64 * 1024 * 1024,
            replication: 3,
            disk_bandwidth: 100.0 * 1024.0 * 1024.0,
            network_bandwidth: 117.0 * 1024.0 * 1024.0,
            network_oversubscription: 4.0,
            job_startup_overhead: 6.0,
            task_startup_overhead: 0.5,
            cpu_cost_per_record: 2.0e-6,
            placement_seed: 0xC0FFEE,
            locality_scheduling: true,
            stragglers: 0,
            straggler_slowdown: 1.0,
            speculative_execution: false,
            max_task_attempts: 4,
            node_blacklist_threshold: 3,
            worker_threads: None,
            retry_backoff_ms: 5,
            speculation_threshold_ms: 30,
            fault_plan: FaultPlan::default(),
        }
    }
}

impl ClusterConfig {
    /// Laptop-scale configuration used by tests: a small cluster with
    /// tiny blocks so small datasets still produce many partitions.
    pub fn small_for_tests() -> Self {
        ClusterConfig {
            num_nodes: 4,
            map_slots_per_node: 2,
            reduce_slots_per_node: 1,
            block_size: 8 * 1024,
            replication: 2,
            ..ClusterConfig::default()
        }
    }

    /// The paper-shaped cluster with a custom block size — the standard
    /// configuration of the benchmark harness.
    pub fn paper_cluster(block_size: u64) -> Self {
        ClusterConfig {
            block_size,
            ..ClusterConfig::default()
        }
    }

    /// Effective replication (never more than the number of nodes).
    pub fn effective_replication(&self) -> usize {
        self.replication.clamp(1, self.num_nodes)
    }

    /// Total map slots in the cluster.
    pub fn total_map_slots(&self) -> usize {
        self.num_nodes * self.map_slots_per_node
    }

    /// Total reduce slots in the cluster.
    pub fn total_reduce_slots(&self) -> usize {
        self.num_nodes * self.reduce_slots_per_node
    }

    /// Initial fault-tolerance policy derived from the static config;
    /// the [`Dfs`](crate::Dfs) copies this into a mutable cell so it can
    /// be adjusted between jobs (Pigeon `SET ...`).
    pub fn ft_options(&self) -> FtOptions {
        FtOptions {
            max_task_attempts: self.max_task_attempts.max(1),
            node_blacklist_threshold: self.node_blacklist_threshold.max(1),
            worker_threads: self.worker_threads,
            retry_backoff_ms: self.retry_backoff_ms,
            speculative_execution: self.speculative_execution,
            speculation_threshold_ms: self.speculation_threshold_ms,
            mmap_scans: false,
            fault_plan: self.fault_plan.clone(),
        }
    }

    /// Simulated speed factor of a node (stragglers are slower).
    pub fn node_slowdown(&self, node: usize) -> f64 {
        if node < self.stragglers {
            self.straggler_slowdown.max(1.0)
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_model_the_paper_testbed() {
        let c = ClusterConfig::default();
        assert_eq!(c.num_nodes, 25);
        assert_eq!(c.block_size, 64 * 1024 * 1024);
        assert_eq!(c.total_map_slots(), 50);
        assert_eq!(c.total_reduce_slots(), 25);
    }

    #[test]
    fn replication_is_clamped() {
        let mut c = ClusterConfig::small_for_tests();
        c.replication = 100;
        assert_eq!(c.effective_replication(), c.num_nodes);
        c.replication = 0;
        assert_eq!(c.effective_replication(), 1);
    }
}
