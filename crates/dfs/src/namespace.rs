//! The namenode: file namespace, block store, and replica placement.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use rand::prelude::*;

use crate::block::{BlockData, BlockId, BlockInfo};
use crate::cache::BlockCache;
use crate::config::{ClusterConfig, NodeId};
use crate::crc64::{crc64, Crc64};
use crate::fault::{CorruptKind, FtOptions};
use crate::metrics::DfsMetrics;
use crate::slots::SlotPool;
use crate::spill::{SpillMap, SpillStore};
use crate::writer::FileWriter;

/// Errors surfaced by the DFS API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DfsError {
    /// Path does not exist.
    NotFound(String),
    /// Path already exists (create without overwrite).
    AlreadyExists(String),
    /// Every replica of a block is on a dead node.
    BlockUnavailable(BlockId),
    /// Every live replica of a block failed its checksum — the data is
    /// detectably rotten and nothing healthy remains to repair from.
    CorruptBlock(BlockId),
    /// A text read hit non-UTF-8 bytes (binary file read as text).
    NotUtf8(String),
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::NotFound(p) => write!(f, "file not found: {p}"),
            DfsError::AlreadyExists(p) => write!(f, "file already exists: {p}"),
            DfsError::BlockUnavailable(b) => write!(f, "all replicas lost for block {b:?}"),
            DfsError::CorruptBlock(b) => {
                write!(f, "every live replica of block {b:?} failed its checksum")
            }
            DfsError::NotUtf8(p) => write!(f, "not valid UTF-8 text: {p}"),
        }
    }
}

impl std::error::Error for DfsError {}

#[derive(Clone, Debug, Default)]
struct FileMeta {
    blocks: Vec<BlockId>,
    len: u64,
    /// Streaming CRC-64 over the file's concatenated block payloads, in
    /// append order — the digest the mmap spill path verifies against.
    crc: Crc64,
}

/// What one scrubber pass saw and did. Replica counts are per-replica,
/// `unrecoverable` counts whole blocks with no healthy live replica left
/// (those are reported, not quarantined — rotten bytes beat no bytes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Files walked.
    pub files: usize,
    /// Blocks checked.
    pub blocks: usize,
    /// Live replicas whose bytes were checksummed.
    pub replicas: usize,
    /// Replicas that failed their checksum.
    pub corrupt: usize,
    /// Fresh replicas created to restore the replication factor.
    pub repaired: usize,
    /// Blocks where every live replica failed its checksum.
    pub unrecoverable: usize,
}

impl fmt::Display for ScrubReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scrubbed {} files ({} blocks, {} replicas): {} corrupt, {} repaired, {} unrecoverable",
            self.files, self.blocks, self.replicas, self.corrupt, self.repaired, self.unrecoverable
        )
    }
}

/// File-level metadata returned by [`Dfs::stat`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileStat {
    /// File path.
    pub path: String,
    /// Total bytes.
    pub len: u64,
    /// Number of blocks.
    pub num_blocks: usize,
}

struct Inner {
    files: BTreeMap<String, FileMeta>,
    blocks: BTreeMap<BlockId, BlockData>,
    // Per-path content generation: bumped on create/delete so the spill
    // store can never serve a mapping of an overwritten file's old bytes.
    generations: BTreeMap<String, u64>,
    next_block: u64,
    next_writer_node: usize,
    alive: Vec<bool>,
    rng: StdRng,
}

/// The simulated distributed file system (namenode + datanodes).
///
/// `Dfs` is cheaply cloneable (`Arc` inside) and thread-safe; map and
/// reduce tasks running on executor threads read blocks through a shared
/// handle. All mutation goes through one mutex — namenode semantics — and
/// payload bytes are shared (`bytes::Bytes`), so reads never copy.
#[derive(Clone)]
pub struct Dfs {
    config: Arc<ClusterConfig>,
    inner: Arc<Mutex<Inner>>,
    metrics: Arc<DfsMetrics>,
    ft: Arc<Mutex<FtOptions>>,
    cache: Arc<BlockCache>,
    slots: Arc<SlotPool>,
    spill: Arc<SpillStore>,
}

impl Dfs {
    /// Creates an empty DFS over the given cluster.
    pub fn new(config: ClusterConfig) -> Dfs {
        let alive = vec![true; config.num_nodes];
        let rng = StdRng::seed_from_u64(config.placement_seed);
        let ft = config.ft_options();
        let slots = default_slot_count(ft.worker_threads);
        Dfs {
            config: Arc::new(config),
            inner: Arc::new(Mutex::new(Inner {
                files: BTreeMap::new(),
                blocks: BTreeMap::new(),
                generations: BTreeMap::new(),
                next_block: 0,
                next_writer_node: 0,
                alive,
                rng,
            })),
            metrics: Arc::new(DfsMetrics::default()),
            ft: Arc::new(Mutex::new(ft)),
            cache: Arc::new(BlockCache::default()),
            slots: Arc::new(SlotPool::new(slots)),
            spill: Arc::new(SpillStore::default()),
        }
    }

    /// The per-node block cache: parsed records and loaded local trees,
    /// keyed by path. Shared across all clones of this handle.
    pub fn cache(&self) -> &BlockCache {
        &self.cache
    }

    /// The cluster's global worker-slot pool: every task attempt of
    /// every concurrent job leases a slot here before it runs, so the
    /// cluster's concurrency is capped at the slot count no matter how
    /// many jobs are in flight.
    pub fn slots(&self) -> &Arc<SlotPool> {
        &self.slots
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Snapshot of the current fault-tolerance policy (the executor
    /// reads this once per job).
    pub fn ft_options(&self) -> FtOptions {
        self.ft.lock().clone()
    }

    /// Adjusts the fault-tolerance policy in place (Pigeon `SET ...`,
    /// chaos tests installing a [`crate::FaultPlan`]). A change to
    /// `worker_threads` resizes the global slot pool to match.
    pub fn update_ft_options(&self, f: impl FnOnce(&mut FtOptions)) {
        let mut ft = self.ft.lock();
        let before = ft.worker_threads;
        f(&mut ft);
        let after = ft.worker_threads;
        drop(ft);
        if before != after {
            self.slots.set_total(default_slot_count(after));
        }
    }

    /// The I/O counters.
    pub fn metrics(&self) -> &DfsMetrics {
        &self.metrics
    }

    /// Opens a streaming writer; fails if `path` exists.
    pub fn create(&self, path: &str) -> Result<FileWriter, DfsError> {
        let mut inner = self.inner.lock();
        if inner.files.contains_key(path) {
            return Err(DfsError::AlreadyExists(path.to_string()));
        }
        inner.files.insert(path.to_string(), FileMeta::default());
        *inner.generations.entry(path.to_string()).or_insert(0) += 1;
        // Round-robin "writing node" stands in for the client location.
        let node = inner.next_writer_node % self.config.num_nodes;
        inner.next_writer_node += 1;
        drop(inner);
        // A fresh file under an old path must not serve stale parses or
        // stale spilled mappings.
        self.cache.invalidate(path);
        self.spill.remove(path);
        Ok(FileWriter::new(self.clone(), path.to_string(), node))
    }

    /// Deletes a file and frees its blocks; idempotent.
    pub fn delete(&self, path: &str) {
        let mut inner = self.inner.lock();
        if let Some(meta) = inner.files.remove(path) {
            for b in meta.blocks {
                inner.blocks.remove(&b);
            }
            *inner.generations.entry(path.to_string()).or_insert(0) += 1;
        }
        drop(inner);
        self.cache.invalidate(path);
        self.spill.remove(path);
    }

    /// True when `path` exists.
    pub fn exists(&self, path: &str) -> bool {
        self.inner.lock().files.contains_key(path)
    }

    /// File metadata.
    pub fn stat(&self, path: &str) -> Result<FileStat, DfsError> {
        let inner = self.inner.lock();
        let meta = inner
            .files
            .get(path)
            .ok_or_else(|| DfsError::NotFound(path.to_string()))?;
        Ok(FileStat {
            path: path.to_string(),
            len: meta.len,
            num_blocks: meta.blocks.len(),
        })
    }

    /// Paths with the given prefix, sorted (namespace listing).
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.inner
            .lock()
            .files
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// Block locations of a file, in order — the scheduler's input.
    pub fn block_locations(&self, path: &str) -> Result<Vec<BlockInfo>, DfsError> {
        let inner = self.inner.lock();
        let meta = inner
            .files
            .get(path)
            .ok_or_else(|| DfsError::NotFound(path.to_string()))?;
        Ok(meta
            .blocks
            .iter()
            .map(|&id| {
                let b = &inner.blocks[&id];
                BlockInfo {
                    id,
                    len: b.data.len() as u64,
                    replicas: b.replicas.clone(),
                }
            })
            .collect())
    }

    /// Reads one block from the perspective of `reader`: served locally if
    /// `reader` holds a live replica, remotely from any live replica
    /// otherwise. Returns the payload and whether the read was local.
    ///
    /// Every candidate replica is verified against the block's write-time
    /// CRC-64 before it is served. A mismatch triggers *read-repair*: the
    /// read falls over to the next replica, the rotten replica is
    /// quarantined and the replication factor restored from a healthy
    /// copy, and the path's caches are invalidated so no stale mapping of
    /// the corrupt bytes survives. Only when every live replica fails its
    /// checksum does the read error out — it never returns wrong bytes.
    pub fn read_block(&self, id: BlockId, reader: NodeId) -> Result<(Bytes, bool), DfsError> {
        let mut inner = self.inner.lock();
        let Some(block) = inner.blocks.get(&id) else {
            return Err(DfsError::BlockUnavailable(id));
        };
        let alive = &inner.alive;
        let mut candidates: Vec<NodeId> = block
            .replicas
            .iter()
            .copied()
            .filter(|&n| alive.get(n).copied().unwrap_or(false))
            .collect();
        if candidates.is_empty() {
            return Err(DfsError::BlockUnavailable(id));
        }
        // Locality first: a replica on the reading node is tried before
        // any remote one.
        if let Some(pos) = candidates.iter().position(|&n| n == reader) {
            candidates.swap(0, pos);
        }
        let mut served: Option<(Bytes, bool)> = None;
        let mut quarantined: Vec<NodeId> = Vec::new();
        for node in candidates {
            let bytes = block.replica_bytes(node);
            if crc64(bytes) == block.crc {
                served = Some((bytes.clone(), node == reader));
                break;
            }
            quarantined.push(node);
        }
        let Some((data, local)) = served else {
            // Nothing healthy left: surface the corruption rather than
            // serving rotten bytes. Replicas stay put for post-mortems.
            let path = block.path.clone();
            drop(inner);
            self.metrics.record_integrity(quarantined.len() as u64, 0);
            for node in &quarantined {
                emit_corrupt_replica(&path, id, *node, "unrecoverable");
            }
            return Err(DfsError::CorruptBlock(id));
        };
        if quarantined.is_empty() {
            drop(inner);
            self.metrics.record_read(data.len() as u64, local);
            return Ok((data, local));
        }
        // ---- read-repair ------------------------------------------------
        let path = block.path.clone();
        if let Some(b) = inner.blocks.get_mut(&id) {
            b.replicas.retain(|n| !quarantined.contains(n));
            for n in &quarantined {
                b.corrupt.remove(n);
            }
        }
        let (created, len) =
            restore_replication_locked(&mut inner, self.config.effective_replication(), id);
        // A mapped spill or cached parse of the corrupt bytes must never
        // be served after the repair: bump the path's generation and drop
        // both caches through the epoch protocol.
        *inner.generations.entry(path.clone()).or_insert(0) += 1;
        drop(inner);
        for _ in 0..created {
            // Each restored replica copies the block across the network.
            self.metrics.record_read(len, false);
        }
        self.metrics
            .record_integrity(quarantined.len() as u64, created as u64);
        for node in &quarantined {
            emit_corrupt_replica(&path, id, *node, "read");
        }
        sh_trace::events::emit(
            "storage.read_repair",
            vec![
                ("path", path.clone()),
                ("block", id.0.to_string()),
                ("quarantined", quarantined.len().to_string()),
                ("created", created.to_string()),
            ],
        );
        self.cache.invalidate(&path);
        self.spill.remove(&path);
        self.metrics.record_read(data.len() as u64, local);
        Ok((data, local))
    }

    /// Convenience: reads a whole file as one string (driver-side use —
    /// reading back small outputs; charged as remote reads from node 0).
    pub fn read_to_string(&self, path: &str) -> Result<String, DfsError> {
        let locations = self.block_locations(path)?;
        let mut out = String::new();
        for info in locations {
            let (bytes, _) = self.read_block(info.id, usize::MAX)?;
            out.push_str(
                std::str::from_utf8(&bytes).map_err(|_| DfsError::NotUtf8(path.to_string()))?,
            );
        }
        Ok(out)
    }

    /// Reads a whole file as raw bytes (binary block formats; same
    /// driver-side cost accounting as [`Dfs::read_to_string`]).
    pub fn read_bytes(&self, path: &str) -> Result<Vec<u8>, DfsError> {
        let locations = self.block_locations(path)?;
        let mut out = Vec::new();
        for info in locations {
            let (bytes, _) = self.read_block(info.id, usize::MAX)?;
            out.extend_from_slice(&bytes);
        }
        Ok(out)
    }

    /// Current content generation of `path` (0 if never created). Bumped
    /// by `create` and `delete`; constant across node kills and
    /// re-replication, which move replicas but never change bytes.
    pub fn file_generation(&self, path: &str) -> u64 {
        self.inner
            .lock()
            .generations
            .get(path)
            .copied()
            .unwrap_or(0)
    }

    /// Zero-copy view of a file's bytes: spills `data` (the file's
    /// concatenated, availability-checked block payloads) to the process
    /// spill store and returns a page-aligned mapping of it, reusing the
    /// cached mapping while the path's generation is unchanged.
    ///
    /// Returns `None` when the mmap scan path is disabled
    /// (`FtOptions::mmap_scans`, the Pigeon `SET mmap` knob) or when
    /// spilling fails for any I/O reason — callers fall back to the owned
    /// decode path, which is always correct.
    pub fn map_file_bytes(&self, path: &str, data: &[u8]) -> Option<SpillMap> {
        if !self.ft.lock().mmap_scans {
            return None;
        }
        let (generation, expected_crc) = {
            let inner = self.inner.lock();
            let crc = inner.files.get(path)?.crc.finish();
            (inner.generations.get(path).copied().unwrap_or(0), crc)
        };
        match self.spill.map_path(path, generation, data, expected_crc) {
            Ok(map) => Some(map),
            Err(_) => {
                // Spill failed its checksum (or plain I/O): fall back to
                // the owned decode path rather than scanning suspect bytes.
                sh_trace::global().counter_add("dfs.integrity.spill_rejected", 1);
                None
            }
        }
    }

    /// Records that content validation passed against the mapping
    /// currently spilled for `path`, so repeat cold scans can skip it.
    pub fn mark_spill_validated(&self, path: &str) {
        let generation = self.file_generation(path);
        self.spill.mark_validated(path, generation);
    }

    /// Writes a complete string as a new file (driver-side convenience).
    pub fn write_string(&self, path: &str, contents: &str) -> Result<(), DfsError> {
        let mut w = self.create(path)?;
        w.write_str(contents);
        w.close()
    }

    /// True when `node` is alive (task trackers heartbeat through the
    /// namenode in this model, so the scheduler asks the DFS).
    pub fn node_alive(&self, node: NodeId) -> bool {
        self.inner.lock().alive.get(node).copied().unwrap_or(false)
    }

    /// Ids of all live nodes, ascending.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        let inner = self.inner.lock();
        (0..inner.alive.len()).filter(|&n| inner.alive[n]).collect()
    }

    /// Marks a datanode dead: its replicas become unreadable. Drops the
    /// whole cache — the dead node's cached parses go with it, and what
    /// survives must be re-read so chaos runs match uncached runs.
    pub fn kill_node(&self, node: NodeId) {
        let mut inner = self.inner.lock();
        if node < inner.alive.len() {
            inner.alive[node] = false;
        }
        let alive = inner.alive.iter().filter(|&&a| a).count();
        drop(inner);
        self.cache.clear();
        sh_trace::global().gauge_set("dfs.nodes.alive", alive as i64);
        sh_trace::events::emit(
            "node.kill",
            vec![("node", node.to_string()), ("alive", alive.to_string())],
        );
    }

    /// Revives a datanode (cache dropped; see [`Dfs::kill_node`]).
    pub fn revive_node(&self, node: NodeId) {
        let mut inner = self.inner.lock();
        if node < inner.alive.len() {
            inner.alive[node] = true;
        }
        let alive = inner.alive.iter().filter(|&&a| a).count();
        drop(inner);
        self.cache.clear();
        sh_trace::global().gauge_set("dfs.nodes.alive", alive as i64);
        sh_trace::events::emit(
            "node.revive",
            vec![("node", node.to_string()), ("alive", alive.to_string())],
        );
    }

    /// Restores the replication factor of every block that lost replicas
    /// to dead nodes, copying from a surviving replica onto live nodes —
    /// the namenode's re-replication pass after failure detection.
    ///
    /// Returns the number of new replicas created. Blocks with no
    /// surviving replica are left unrecoverable (and counted in
    /// [`Dfs::unrecoverable_blocks`]).
    pub fn rereplicate(&self) -> usize {
        let mut inner = self.inner.lock();
        let replication = self.config.effective_replication();
        let ids: Vec<BlockId> = inner.blocks.keys().copied().collect();
        let mut created = 0usize;
        let mut copied: Vec<u64> = Vec::new();
        for id in ids {
            let (made, len) = restore_replication_locked(&mut inner, replication, id);
            created += made;
            // Copying a block crosses the network once per new replica.
            copied.extend(std::iter::repeat_n(len, made));
        }
        drop(inner);
        for len in copied {
            self.metrics.record_read(len, false);
        }
        // Replica layout changed under the readers' feet: flush.
        self.cache.clear();
        sh_trace::events::emit("dfs.rereplicate", vec![("created", created.to_string())]);
        created
    }

    /// Test/chaos hook: installs a silent-corruption overlay on replica
    /// ordinal `replica` of every block of `path` — a flipped middle byte
    /// or a truncation to half length, depending on `kind`. Nothing else
    /// happens: no cache is invalidated and no event beyond `fault.inject`
    /// is emitted, because bit-rot does not announce itself. Returns the
    /// number of blocks corrupted (blocks without that ordinal or with an
    /// empty payload are skipped).
    pub fn corrupt_replica(&self, path: &str, replica: usize, kind: CorruptKind) -> usize {
        let mut inner = self.inner.lock();
        let Some(meta) = inner.files.get(path) else {
            return 0;
        };
        let ids = meta.blocks.clone();
        let mut hit = 0usize;
        for id in ids {
            let Some(block) = inner.blocks.get_mut(&id) else {
                continue;
            };
            let Some(&node) = block.replicas.get(replica) else {
                continue;
            };
            if block.data.is_empty() {
                continue;
            }
            let mut bytes = block.data.to_vec();
            let mid = bytes.len() / 2;
            match kind {
                CorruptKind::Flip => bytes[mid] ^= 0x01,
                CorruptKind::Truncate => bytes.truncate(mid),
            }
            block.corrupt.insert(node, Bytes::from(bytes));
            hit += 1;
        }
        drop(inner);
        if hit > 0 {
            sh_trace::events::emit(
                "fault.inject",
                vec![
                    ("action", kind.to_string()),
                    ("path", path.to_string()),
                    ("replica", replica.to_string()),
                    ("blocks", hit.to_string()),
                ],
            );
        }
        hit
    }

    /// Test hook for property tests: flips one bit of one byte at file
    /// offset `offset % len` in replica ordinal `replica` of `path`.
    /// Returns false when the file is missing/empty or the containing
    /// block has no such replica ordinal.
    pub fn corrupt_replica_byte(&self, path: &str, replica: usize, offset: u64) -> bool {
        let mut inner = self.inner.lock();
        let Some(meta) = inner.files.get(path) else {
            return false;
        };
        if meta.len == 0 {
            return false;
        }
        let mut target = offset % meta.len;
        let ids = meta.blocks.clone();
        for id in ids {
            let Some(block) = inner.blocks.get_mut(&id) else {
                continue;
            };
            let len = block.data.len() as u64;
            if target >= len {
                target -= len;
                continue;
            }
            let Some(&node) = block.replicas.get(replica) else {
                return false;
            };
            let mut bytes = block.data.to_vec();
            bytes[target as usize] ^= 0x80;
            block.corrupt.insert(node, Bytes::from(bytes));
            return true;
        }
        false
    }

    /// One scrubber pass over every file under `prefix`: checksums every
    /// live replica, quarantines and re-replicates the rotten ones, and
    /// invalidates the caches of any path it healed. Blocks whose every
    /// live replica is rotten are reported as unrecoverable but left in
    /// place — rotten bytes beat no bytes for post-mortems.
    ///
    /// The lock is taken per block, not for the whole pass, so a
    /// background scrub never stalls concurrent readers for long.
    pub fn scrub(&self, prefix: &str) -> ScrubReport {
        let mut report = ScrubReport::default();
        let replication = self.config.effective_replication();
        for path in self.list(prefix) {
            report.files += 1;
            let ids: Vec<BlockId> = {
                let inner = self.inner.lock();
                match inner.files.get(&path) {
                    Some(meta) => meta.blocks.clone(),
                    None => continue, // deleted since listing
                }
            };
            let mut healed = false;
            for id in ids {
                report.blocks += 1;
                let mut inner = self.inner.lock();
                let Some(block) = inner.blocks.get(&id) else {
                    continue;
                };
                let alive = &inner.alive;
                let live: Vec<NodeId> = block
                    .replicas
                    .iter()
                    .copied()
                    .filter(|&n| alive.get(n).copied().unwrap_or(false))
                    .collect();
                report.replicas += live.len();
                let bad: Vec<NodeId> = live
                    .iter()
                    .copied()
                    .filter(|&n| !block.replica_healthy(n))
                    .collect();
                if bad.is_empty() {
                    continue;
                }
                report.corrupt += bad.len();
                if bad.len() == live.len() {
                    report.unrecoverable += 1;
                    drop(inner);
                    self.metrics.record_integrity(bad.len() as u64, 0);
                    for node in &bad {
                        emit_corrupt_replica(&path, id, *node, "unrecoverable");
                    }
                    continue;
                }
                if let Some(b) = inner.blocks.get_mut(&id) {
                    b.replicas.retain(|n| !bad.contains(n));
                    for node in &bad {
                        b.corrupt.remove(node);
                    }
                }
                let (created, len) = restore_replication_locked(&mut inner, replication, id);
                drop(inner);
                healed = true;
                report.repaired += created;
                for _ in 0..created {
                    self.metrics.record_read(len, false);
                }
                self.metrics
                    .record_integrity(bad.len() as u64, created as u64);
                for node in &bad {
                    emit_corrupt_replica(&path, id, *node, "scrub");
                }
            }
            if healed {
                // Same epoch protocol as read-repair: no cached parse or
                // mapped spill of the pre-repair bytes may survive.
                let mut inner = self.inner.lock();
                *inner.generations.entry(path.clone()).or_insert(0) += 1;
                drop(inner);
                self.cache.invalidate(&path);
                self.spill.remove(&path);
            }
        }
        sh_trace::global().counter_add("dfs.integrity.scrubbed_blocks", report.blocks as u64);
        sh_trace::events::emit(
            "scrub.done",
            vec![
                ("prefix", prefix.to_string()),
                ("files", report.files.to_string()),
                ("blocks", report.blocks.to_string()),
                ("corrupt", report.corrupt.to_string()),
                ("repaired", report.repaired.to_string()),
                ("unrecoverable", report.unrecoverable.to_string()),
            ],
        );
        report
    }

    /// Blocks whose every replica is on a dead node.
    pub fn unrecoverable_blocks(&self) -> usize {
        let inner = self.inner.lock();
        inner
            .blocks
            .values()
            .filter(|b| !b.available(&inner.alive))
            .count()
    }

    /// Appends one sealed block to `path` (called by [`FileWriter`]).
    ///
    /// Fails with [`DfsError::NotFound`] when the file vanished under the
    /// writer (deleted mid-write, or an injected namespace fault) — the
    /// task fails cleanly instead of panicking a worker thread.
    pub(crate) fn append_block(
        &self,
        path: &str,
        data: Bytes,
        writer_node: NodeId,
    ) -> Result<(), DfsError> {
        let len = data.len() as u64;
        let crc = crc64(&data);
        let payload = data.clone(); // Bytes: refcount bump, not a copy
        let mut inner = self.inner.lock();
        if !inner.files.contains_key(path) {
            return Err(DfsError::NotFound(path.to_string()));
        }
        let id = BlockId(inner.next_block);
        inner.next_block += 1;
        let replicas = place_replicas(
            writer_node,
            self.config.num_nodes,
            self.config.effective_replication(),
            &mut inner.rng,
        );
        inner.blocks.insert(
            id,
            BlockData {
                data,
                crc,
                path: path.to_string(),
                replicas,
                corrupt: BTreeMap::new(),
            },
        );
        let Some(meta) = inner.files.get_mut(path) else {
            return Err(DfsError::NotFound(path.to_string()));
        };
        meta.blocks.push(id);
        meta.len += len;
        meta.crc.update(&payload);
        drop(inner);
        self.metrics.record_write(len);
        Ok(())
    }
}

/// Slot-pool size for a `worker_threads` setting: the configured count,
/// or every core when unset.
fn default_slot_count(worker_threads: Option<usize>) -> usize {
    worker_threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
        .max(1)
}

/// Restores the replication factor of one block from its surviving live
/// replicas, picking targets at random among live nodes not already
/// holding a copy. Shared by [`Dfs::rereplicate`], read-repair, and the
/// scrubber. Returns `(replicas created, block length)`; blocks that are
/// missing, already at factor, or have no live replica are left alone.
fn restore_replication_locked(inner: &mut Inner, replication: usize, id: BlockId) -> (usize, u64) {
    let alive = inner.alive.clone();
    let live_nodes: Vec<NodeId> = (0..alive.len()).filter(|&n| alive[n]).collect();
    if live_nodes.is_empty() {
        return (0, 0);
    }
    // Compute the replacement plan without holding a mutable borrow on
    // the block (the rng shuffle below needs one on `inner`).
    let (mut live_replicas, len) = {
        let Some(block) = inner.blocks.get(&id) else {
            return (0, 0);
        };
        let live: Vec<NodeId> = block
            .replicas
            .iter()
            .copied()
            .filter(|&n| alive.get(n).copied().unwrap_or(false))
            .collect();
        (live, block.data.len() as u64)
    };
    let target = replication.min(live_nodes.len());
    if live_replicas.is_empty() || live_replicas.len() >= target {
        return (0, len);
    }
    let mut candidates: Vec<NodeId> = live_nodes
        .iter()
        .copied()
        .filter(|n| !live_replicas.contains(n))
        .collect();
    candidates.shuffle(&mut inner.rng);
    let mut created = 0usize;
    while live_replicas.len() < target {
        let Some(node) = candidates.pop() else {
            break;
        };
        live_replicas.push(node);
        created += 1;
    }
    if let Some(block) = inner.blocks.get_mut(&id) {
        block.replicas = live_replicas;
    }
    (created, len)
}

/// Journals one detected-rotten replica: `repair` says which path found
/// it ("read", "scrub") or that nothing healthy was left
/// ("unrecoverable").
fn emit_corrupt_replica(path: &str, id: BlockId, node: NodeId, repair: &str) {
    sh_trace::events::emit(
        "storage.corrupt_replica",
        vec![
            ("path", path.to_string()),
            ("block", id.0.to_string()),
            ("node", node.to_string()),
            ("repair", repair.to_string()),
        ],
    );
}

/// HDFS-shaped placement: first replica on the writer, the rest on
/// distinct random other nodes.
fn place_replicas(
    writer: NodeId,
    num_nodes: usize,
    replication: usize,
    rng: &mut StdRng,
) -> Vec<NodeId> {
    let primary = writer % num_nodes;
    let mut replicas = vec![primary];
    let mut others: Vec<NodeId> = (0..num_nodes).filter(|&n| n != primary).collect();
    others.shuffle(rng);
    replicas.extend(others.into_iter().take(replication.saturating_sub(1)));
    replicas
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dfs() -> Dfs {
        Dfs::new(ClusterConfig::small_for_tests())
    }

    #[test]
    fn create_write_read_roundtrip() {
        let fs = dfs();
        let mut w = fs.create("/data/points").unwrap();
        w.write_line("1 2");
        w.write_line("3 4");
        w.close().unwrap();
        assert_eq!(fs.read_to_string("/data/points").unwrap(), "1 2\n3 4\n");
        let stat = fs.stat("/data/points").unwrap();
        assert_eq!(stat.len, 8);
        assert_eq!(stat.num_blocks, 1);
    }

    #[test]
    fn create_existing_fails() {
        let fs = dfs();
        fs.write_string("/a", "x\n").unwrap();
        assert!(matches!(fs.create("/a"), Err(DfsError::AlreadyExists(_))));
    }

    #[test]
    fn blocks_are_record_aligned() {
        let fs = dfs(); // 8 KiB blocks
        let mut w = fs.create("/big").unwrap();
        let line = "x".repeat(100);
        for _ in 0..1000 {
            w.write_line(&line);
        }
        w.close().unwrap();
        let stat = fs.stat("/big").unwrap();
        assert!(stat.num_blocks > 1, "expected multiple blocks");
        for info in fs.block_locations("/big").unwrap() {
            let (bytes, _) = fs.read_block(info.id, 0).unwrap();
            assert_eq!(bytes.last(), Some(&b'\n'), "block must end at a record");
            assert!(bytes.len() as u64 <= fs.config().block_size);
        }
    }

    #[test]
    fn replica_placement_width() {
        let fs = dfs();
        fs.write_string("/f", &"line\n".repeat(10)).unwrap();
        for info in fs.block_locations("/f").unwrap() {
            assert_eq!(info.replicas.len(), fs.config().effective_replication());
            let mut uniq = info.replicas.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), info.replicas.len(), "replicas must be distinct");
        }
    }

    #[test]
    fn local_vs_remote_reads_are_accounted() {
        let fs = dfs();
        fs.write_string("/f", "hello\n").unwrap();
        let info = &fs.block_locations("/f").unwrap()[0];
        let holder = info.replicas[0];
        let non_holder = (0..fs.config().num_nodes)
            .find(|n| !info.replicas.contains(n))
            .unwrap();
        let before = fs.metrics().snapshot();
        let (_, local) = fs.read_block(info.id, holder).unwrap();
        assert!(local);
        let (_, local) = fs.read_block(info.id, non_holder).unwrap();
        assert!(!local);
        let delta = fs.metrics().snapshot().since(&before);
        assert_eq!(delta.local_bytes_read, 6);
        assert_eq!(delta.remote_bytes_read, 6);
    }

    #[test]
    fn node_failure_falls_back_to_replicas() {
        let fs = dfs();
        fs.write_string("/f", "payload\n").unwrap();
        let info = fs.block_locations("/f").unwrap()[0].clone();
        // Kill all but the last replica: still readable.
        for &n in &info.replicas[..info.replicas.len() - 1] {
            fs.kill_node(n);
        }
        assert!(fs.read_block(info.id, 0).is_ok());
        // Kill the last: unavailable.
        fs.kill_node(*info.replicas.last().unwrap());
        assert_eq!(
            fs.read_block(info.id, 0),
            Err(DfsError::BlockUnavailable(info.id))
        );
        // Revive: readable again.
        fs.revive_node(info.replicas[0]);
        assert!(fs.read_block(info.id, 0).is_ok());
    }

    #[test]
    fn rereplication_restores_the_factor() {
        let fs = dfs(); // replication = 2, 4 nodes
        fs.write_string("/f", &"data line\n".repeat(200)).unwrap();
        fs.kill_node(0);
        fs.kill_node(1);
        let lost_before = fs
            .block_locations("/f")
            .unwrap()
            .iter()
            .filter(|b| b.replicas.iter().all(|&n| n <= 1))
            .count();
        assert_eq!(fs.unrecoverable_blocks(), lost_before);
        let created = fs.rereplicate();
        if lost_before == 0 {
            // Every block still has a live replica; factor restored.
            assert!(
                created > 0
                    || fs
                        .block_locations("/f")
                        .unwrap()
                        .iter()
                        .all(|b| { b.replicas.iter().filter(|&&n| n > 1).count() >= 2 })
            );
        }
        for info in fs.block_locations("/f").unwrap() {
            let live = info.replicas.iter().filter(|&&n| n > 1).count();
            if info.replicas.iter().any(|&n| n > 1) {
                assert_eq!(live, 2, "factor restored on live nodes: {info:?}");
                // Readable from any node again.
                assert!(fs.read_block(info.id, 2).is_ok());
            }
        }
        // Idempotent once healthy.
        assert_eq!(fs.rereplicate(), 0);
    }

    #[test]
    fn delete_frees_blocks() {
        let fs = dfs();
        fs.write_string("/f", "data\n").unwrap();
        let info = fs.block_locations("/f").unwrap()[0].clone();
        fs.delete("/f");
        assert!(!fs.exists("/f"));
        assert_eq!(
            fs.read_block(info.id, 0),
            Err(DfsError::BlockUnavailable(info.id))
        );
        fs.delete("/f"); // idempotent
    }

    #[test]
    fn list_by_prefix() {
        let fs = dfs();
        fs.write_string("/x/a", "1\n").unwrap();
        fs.write_string("/x/b", "2\n").unwrap();
        fs.write_string("/y/c", "3\n").unwrap();
        assert_eq!(fs.list("/x/"), vec!["/x/a".to_string(), "/x/b".to_string()]);
        assert_eq!(fs.list("/"), vec!["/x/a", "/x/b", "/y/c"]);
    }

    #[test]
    fn cache_invalidated_by_namespace_and_node_events() {
        let fs = dfs();
        fs.write_string("/f", "1 2\n").unwrap();
        let put = |v: u32| fs.cache().put("/f", Arc::new(v), 8);
        let get = || fs.cache().get("/f").map(|v| *v.downcast::<u32>().unwrap());

        put(1);
        assert_eq!(get(), Some(1));
        fs.delete("/f");
        assert_eq!(get(), None, "delete must invalidate");

        fs.write_string("/f", "3 4\n").unwrap();
        put(2);
        fs.delete("/f");
        fs.write_string("/f", "5 6\n").unwrap();
        assert_eq!(get(), None, "overwrite via create must invalidate");

        put(3);
        fs.kill_node(0);
        assert_eq!(get(), None, "kill_node must flush the cache");
        put(4);
        fs.rereplicate();
        assert_eq!(get(), None, "rereplicate must flush the cache");
        put(5);
        fs.revive_node(0);
        assert_eq!(get(), None, "revive_node must flush the cache");
    }

    #[test]
    fn map_file_bytes_is_gated_and_generation_checked() {
        let fs = dfs();
        fs.write_string("/f", "1 2\n").unwrap();
        let data = fs.read_bytes("/f").unwrap();
        assert!(fs.map_file_bytes("/f", &data).is_none(), "off by default");
        fs.update_ft_options(|ft| ft.mmap_scans = true);
        let m1 = fs.map_file_bytes("/f", &data).unwrap();
        assert_eq!(&m1.map[..], data.as_slice());
        assert!(!m1.validated);
        fs.mark_spill_validated("/f");
        assert!(fs.map_file_bytes("/f", &data).unwrap().validated);
        // Overwrite under the same path: generation bumps, so the new
        // bytes get a fresh, unvalidated mapping while the old mapping
        // stays readable for anyone still holding it.
        let gen_before = fs.file_generation("/f");
        fs.delete("/f");
        fs.write_string("/f", "9 9\n").unwrap();
        assert!(fs.file_generation("/f") > gen_before);
        let data2 = fs.read_bytes("/f").unwrap();
        let m2 = fs.map_file_bytes("/f", &data2).unwrap();
        assert!(!m2.validated);
        assert_eq!(&m2.map[..], data2.as_slice());
        assert_eq!(&m1.map[..], data.as_slice(), "old mapping still valid");
    }

    #[test]
    fn read_repair_quarantines_and_heals() {
        let fs = dfs();
        fs.write_string("/f", "alpha\nbeta\n").unwrap();
        let before = fs.metrics().snapshot();
        assert_eq!(fs.corrupt_replica("/f", 0, CorruptKind::Flip), 1);
        let info = fs.block_locations("/f").unwrap()[0].clone();
        let primary = info.replicas[0];
        // Reading from the corrupt primary must serve the written bytes
        // from a healthy replica, never the rotten local copy.
        let (bytes, local) = fs.read_block(info.id, primary).unwrap();
        assert_eq!(&bytes[..], b"alpha\nbeta\n");
        assert!(!local, "the local replica was rotten; served remotely");
        let delta = fs.metrics().snapshot().since(&before);
        assert_eq!(delta.corrupt_replicas, 1);
        assert!(delta.repaired_replicas >= 1);
        // Factor restored, and the healed file reads clean from anywhere.
        let info = fs.block_locations("/f").unwrap()[0].clone();
        assert_eq!(info.replicas.len(), fs.config().effective_replication());
        for n in 0..fs.config().num_nodes {
            assert_eq!(&fs.read_block(info.id, n).unwrap().0[..], b"alpha\nbeta\n");
        }
    }

    #[test]
    fn read_repair_bumps_generation_and_drops_caches() {
        let fs = dfs();
        fs.write_string("/f", "1 2\n").unwrap();
        let gen0 = fs.file_generation("/f");
        fs.cache().put("/f", Arc::new(7u32), 8);
        fs.corrupt_replica("/f", 0, CorruptKind::Truncate);
        // Silent corruption is silent: nothing is invalidated yet.
        assert!(fs.cache().get("/f").is_some());
        assert_eq!(fs.file_generation("/f"), gen0);
        let info = fs.block_locations("/f").unwrap()[0].clone();
        fs.read_block(info.id, info.replicas[0]).unwrap();
        assert!(fs.file_generation("/f") > gen0, "repair bumps generation");
        assert!(
            fs.cache().get("/f").is_none(),
            "repair invalidates the path"
        );
    }

    #[test]
    fn all_replicas_corrupt_is_an_error_not_wrong_bytes() {
        let fs = dfs();
        fs.write_string("/f", "payload\n").unwrap();
        let rep = fs.config().effective_replication();
        for r in 0..rep {
            assert_eq!(fs.corrupt_replica("/f", r, CorruptKind::Flip), 1);
        }
        let info = fs.block_locations("/f").unwrap()[0].clone();
        assert_eq!(
            fs.read_block(info.id, 0),
            Err(DfsError::CorruptBlock(info.id))
        );
        // The scrubber reports it unrecoverable and leaves the replicas
        // in place for post-mortems.
        let report = fs.scrub("/f");
        assert_eq!(report.unrecoverable, 1);
        assert_eq!(fs.block_locations("/f").unwrap()[0].replicas.len(), rep);
    }

    #[test]
    fn scrub_heals_silent_corruption() {
        let fs = dfs();
        fs.write_string("/x/a", &"row one\n".repeat(100)).unwrap();
        fs.write_string("/x/b", "solo\n").unwrap();
        let hit = fs.corrupt_replica("/x/a", 0, CorruptKind::Flip)
            + fs.corrupt_replica("/x/b", 1, CorruptKind::Truncate);
        assert!(hit >= 2);
        let report = fs.scrub("/x/");
        assert_eq!(report.files, 2);
        assert_eq!(report.corrupt, hit);
        assert_eq!(report.repaired, hit);
        assert_eq!(report.unrecoverable, 0);
        assert_eq!(fs.read_to_string("/x/b").unwrap(), "solo\n");
        // Second pass finds nothing: the heal stuck.
        let clean = fs.scrub("/x/");
        assert_eq!(clean.corrupt, 0);
        assert_eq!(clean.repaired, 0);
    }

    #[test]
    fn single_byte_rot_at_any_offset_is_detected() {
        let fs = dfs();
        let content = "0123456789\n".repeat(50);
        fs.write_string("/f", &content).unwrap();
        for offset in [0u64, 7, 100, 549, 10_000] {
            assert!(fs.corrupt_replica_byte("/f", 0, offset));
            let report = fs.scrub("/f");
            assert_eq!(report.corrupt, 1, "offset {offset}");
            assert_eq!(fs.read_to_string("/f").unwrap(), content);
        }
    }

    #[test]
    fn empty_file_stat() {
        let fs = dfs();
        let w = fs.create("/empty").unwrap();
        w.close().unwrap();
        let stat = fs.stat("/empty").unwrap();
        assert_eq!(stat.len, 0);
        assert_eq!(stat.num_blocks, 0);
        assert_eq!(fs.read_to_string("/empty").unwrap(), "");
    }
}
