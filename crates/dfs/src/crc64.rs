//! CRC-64 checksums for stored blocks (CRC-64/XZ parameters).
//!
//! Every sealed block gets a checksum at write time and is verified on
//! every read, closing the silent-corruption gap: replication protects
//! against *losing* bytes, a checksum protects against *trusting changed*
//! bytes. CRC-64/XZ (reflected ECMA-182 polynomial, `!0` init and final
//! xor) is the variant production storage stacks use for exactly this —
//! strong enough to detect any single bit flip, any burst shorter than
//! 64 bits, and truncation, while staying a table lookup per byte with no
//! external dependencies.

/// Reflected form of the ECMA-182 polynomial `0x42F0E1EBA9EA3693`.
const POLY: u64 = 0xC96C_5795_D787_0F42;

const fn build_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u64; 256] = build_table();

/// Streaming CRC-64/XZ state. Blocks of one file are checksummed
/// independently *and* folded into a whole-file digest (the spill path
/// verifies concatenations), so the state must be resumable.
#[derive(Clone, Copy, Debug)]
pub struct Crc64 {
    state: u64,
}

impl Default for Crc64 {
    fn default() -> Crc64 {
        Crc64 { state: !0 }
    }
}

impl Crc64 {
    /// Fresh digest.
    pub fn new() -> Crc64 {
        Crc64::default()
    }

    /// Folds `data` into the digest.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = TABLE[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    /// The finalized checksum; the state stays usable for further
    /// [`Crc64::update`] calls.
    pub fn finish(&self) -> u64 {
        !self.state
    }
}

/// One-shot checksum of a byte slice.
pub fn crc64(data: &[u8]) -> u64 {
    let mut c = Crc64::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        // The standard CRC-64/XZ check vector.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc64::new();
        c.update(&data[..10]);
        c.update(&data[10..]);
        assert_eq!(c.finish(), crc64(data));
    }

    #[test]
    fn detects_single_bit_flips_and_truncation() {
        let data: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
        let base = crc64(&data);
        for i in [0, 1, 511, 1023] {
            for bit in 0..8 {
                let mut bad = data.clone();
                bad[i] ^= 1 << bit;
                assert_ne!(crc64(&bad), base, "flip at byte {i} bit {bit} missed");
            }
        }
        for cut in [0, 1, 512, 1023] {
            assert_ne!(crc64(&data[..cut]), base, "truncation to {cut} missed");
        }
    }
}
