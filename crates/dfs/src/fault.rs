//! Deterministic fault injection and fault-tolerance policy.
//!
//! Chaos tests need *reproducible* failures: the same plan against the
//! same cluster seed must produce the same retries, blacklists, and
//! speculative attempts on every run. A [`FaultPlan`] is therefore a
//! fully explicit list of actions — no probabilistic coin flips — keyed
//! on task indices and attempt numbers, which the executor consults at
//! well-defined points (wave boundary, attempt start).
//!
//! [`FtOptions`] carries the execution policy itself (attempt limits,
//! blacklist threshold, speculation knobs). It is seeded from
//! [`ClusterConfig`](crate::ClusterConfig) but lives in a mutable cell
//! on the [`Dfs`](crate::Dfs) so a running session (e.g. a Pigeon
//! `SET retries 5;`) can adjust it between jobs.

use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// How an injected silent corruption mangles a replica's bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorruptKind {
    /// Flip one bit in the middle of each block — bit rot.
    Flip,
    /// Cut each block to half its length — a torn write.
    Truncate,
}

impl fmt::Display for CorruptKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptKind::Flip => write!(f, "flip"),
            CorruptKind::Truncate => write!(f, "truncate"),
        }
    }
}

/// One injected fault, applied by the job executor.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultAction {
    /// Fail attempt `attempt` (0-based) of map task `task` just before
    /// it would run — models a task crash on its node.
    FailTask { task: usize, attempt: usize },
    /// Kill datanode `node` at the map-wave boundary: after splits are
    /// scheduled but before the first attempt executes. Tasks placed on
    /// the node fail and must be rescheduled onto replica holders.
    KillNode { node: usize },
    /// Delay the *first* attempt of map task `task` by `millis`,
    /// making it a straggler. Later attempts (the speculative backup)
    /// run at full speed — the delay models a slow node, not slow data.
    DelayTask { task: usize, millis: u64 },
    /// Silently corrupt replica ordinal `replica` of every block of
    /// `path` at the map-wave boundary. Unlike a node kill nothing is
    /// announced — only the block checksums can catch it.
    CorruptReplica {
        path: String,
        replica: usize,
        kind: CorruptKind,
    },
}

/// A reproducible schedule of injected faults for one job.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Actions, applied in order where order matters (node kills).
    pub actions: Vec<FaultAction>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Adds a task-failure injection (builder style).
    pub fn fail_task(mut self, task: usize, attempt: usize) -> FaultPlan {
        self.actions.push(FaultAction::FailTask { task, attempt });
        self
    }

    /// Adds a wave-boundary node kill (builder style).
    pub fn kill_node(mut self, node: usize) -> FaultPlan {
        self.actions.push(FaultAction::KillNode { node });
        self
    }

    /// Adds a first-attempt straggler delay (builder style).
    pub fn delay_task(mut self, task: usize, millis: u64) -> FaultPlan {
        self.actions.push(FaultAction::DelayTask { task, millis });
        self
    }

    /// Adds a silent replica corruption (builder style).
    pub fn corrupt_replica(mut self, path: &str, replica: usize, kind: CorruptKind) -> FaultPlan {
        self.actions.push(FaultAction::CorruptReplica {
            path: path.to_string(),
            replica,
            kind,
        });
        self
    }

    /// Should attempt `attempt` of map task `task` fail? The executor
    /// consults this exactly once per attempt, so a hit is journaled as
    /// one `fault.inject` event — chaos runs stay auditable post-hoc.
    pub fn should_fail(&self, task: usize, attempt: usize) -> bool {
        let hit = self.actions.iter().any(|a| {
            matches!(a, FaultAction::FailTask { task: t, attempt: at }
                         if *t == task && *at == attempt)
        });
        if hit {
            sh_trace::events::emit(
                "fault.inject",
                vec![
                    ("action", "fail_task".to_string()),
                    ("task", task.to_string()),
                    ("attempt", attempt.to_string()),
                ],
            );
        }
        hit
    }

    /// Injected straggler delay for an attempt, if any (first attempts
    /// only; backups run at full speed).
    pub fn delay_for(&self, task: usize, attempt: usize) -> Option<Duration> {
        if attempt != 0 {
            return None;
        }
        self.actions.iter().find_map(|a| match a {
            FaultAction::DelayTask { task: t, millis } if *t == task => {
                Some(Duration::from_millis(*millis))
            }
            _ => None,
        })
    }

    /// Nodes the plan kills at the map-wave boundary.
    pub fn nodes_to_kill(&self) -> Vec<usize> {
        self.actions
            .iter()
            .filter_map(|a| match a {
                FaultAction::KillNode { node } => Some(*node),
                _ => None,
            })
            .collect()
    }

    /// Silent replica corruptions the plan applies at the map-wave
    /// boundary, as `(path, replica ordinal, kind)`.
    pub fn corruptions(&self) -> Vec<(String, usize, CorruptKind)> {
        self.actions
            .iter()
            .filter_map(|a| match a {
                FaultAction::CorruptReplica {
                    path,
                    replica,
                    kind,
                } => Some((path.clone(), *replica, *kind)),
                _ => None,
            })
            .collect()
    }

    /// Parses the compact text form used by Pigeon's `SET fault_plan`:
    /// semicolon-separated actions `fail:<task>@<attempt>`,
    /// `kill:<node>`, `delay:<task>x<millis>`,
    /// `flip:<path>@<replica>`, `truncate:<path>@<replica>`. Empty
    /// string or `none` clears the plan.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        let text = text.trim();
        if text.is_empty() || text.eq_ignore_ascii_case("none") {
            return Ok(plan);
        }
        for part in text.split(';').map(str::trim).filter(|p| !p.is_empty()) {
            let (kind, rest) = part
                .split_once(':')
                .ok_or_else(|| format!("fault action missing ':': {part}"))?;
            let num = |s: &str| {
                s.trim()
                    .parse::<usize>()
                    .map_err(|_| format!("bad number '{s}' in fault action {part}"))
            };
            match kind.trim().to_ascii_lowercase().as_str() {
                "fail" => {
                    let (t, a) = rest
                        .split_once('@')
                        .ok_or_else(|| format!("fail action needs <task>@<attempt>: {part}"))?;
                    plan = plan.fail_task(num(t)?, num(a)?);
                }
                "kill" => plan = plan.kill_node(num(rest)?),
                "delay" => {
                    let (t, ms) = rest
                        .split_once('x')
                        .ok_or_else(|| format!("delay action needs <task>x<millis>: {part}"))?;
                    plan = plan.delay_task(num(t)?, num(ms)? as u64);
                }
                k @ ("flip" | "truncate") => {
                    let (path, r) = rest
                        .rsplit_once('@')
                        .ok_or_else(|| format!("{k} action needs <path>@<replica>: {part}"))?;
                    let kind = if k == "flip" {
                        CorruptKind::Flip
                    } else {
                        CorruptKind::Truncate
                    };
                    plan = plan.corrupt_replica(path.trim(), num(r)?, kind);
                }
                other => return Err(format!("unknown fault action kind '{other}'")),
            }
        }
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.actions.is_empty() {
            return write!(f, "none");
        }
        let mut first = true;
        for a in &self.actions {
            if !first {
                write!(f, ";")?;
            }
            first = false;
            match a {
                FaultAction::FailTask { task, attempt } => write!(f, "fail:{task}@{attempt}")?,
                FaultAction::KillNode { node } => write!(f, "kill:{node}")?,
                FaultAction::DelayTask { task, millis } => write!(f, "delay:{task}x{millis}")?,
                FaultAction::CorruptReplica {
                    path,
                    replica,
                    kind,
                } => write!(f, "{kind}:{path}@{replica}")?,
            }
        }
        Ok(())
    }
}

/// Fault-tolerance policy of the job executor. Initialized from
/// [`ClusterConfig`](crate::ClusterConfig), adjustable at runtime via
/// [`Dfs::update_ft_options`](crate::Dfs::update_ft_options).
#[derive(Clone, Debug, PartialEq)]
pub struct FtOptions {
    /// Attempts per task (first run + retries) before the job fails.
    pub max_task_attempts: usize,
    /// Failed attempts on one node before it is blacklisted for the job
    /// (and the DFS re-replicates blocks off dead nodes).
    pub node_blacklist_threshold: usize,
    /// Executor worker threads; `None` uses `available_parallelism()`.
    pub worker_threads: Option<usize>,
    /// Deterministic retry backoff: attempt `a` waits `a * backoff` ms
    /// before re-running.
    pub retry_backoff_ms: u64,
    /// Launch speculative duplicates of stragglers when idle.
    pub speculative_execution: bool,
    /// A running task becomes a speculation candidate once it has been
    /// in flight this long and the task queue is empty.
    pub speculation_threshold_ms: u64,
    /// Serve binary scans from mmap-backed spill files (zero-copy read
    /// path) instead of decoding owned buffers. Off by default; toggled
    /// by Pigeon's `SET mmap on|off`. Readers always fall back to the
    /// owned path when mapping or alignment checks fail.
    pub mmap_scans: bool,
    /// Injected faults for the next jobs (chaos testing).
    pub fault_plan: FaultPlan,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_queries() {
        let plan = FaultPlan::none()
            .fail_task(3, 0)
            .fail_task(3, 1)
            .kill_node(2)
            .delay_task(1, 250);
        assert!(plan.should_fail(3, 0));
        assert!(plan.should_fail(3, 1));
        assert!(!plan.should_fail(3, 2));
        assert!(!plan.should_fail(2, 0));
        assert_eq!(plan.nodes_to_kill(), vec![2]);
        assert_eq!(plan.delay_for(1, 0), Some(Duration::from_millis(250)));
        assert_eq!(plan.delay_for(1, 1), None, "backups run at full speed");
        assert_eq!(plan.delay_for(0, 0), None);
    }

    #[test]
    fn text_form_roundtrips() {
        let plan = FaultPlan::none()
            .fail_task(3, 1)
            .kill_node(2)
            .delay_task(0, 100)
            .corrupt_replica("/idx/p/part-00000", 1, CorruptKind::Flip)
            .corrupt_replica("/idx/p/part-00001", 0, CorruptKind::Truncate);
        let text = plan.to_string();
        assert_eq!(
            text,
            "fail:3@1;kill:2;delay:0x100;flip:/idx/p/part-00000@1;\
             truncate:/idx/p/part-00001@0"
        );
        assert_eq!(FaultPlan::parse(&text).unwrap(), plan);
        assert_eq!(FaultPlan::parse("none").unwrap(), FaultPlan::none());
        assert_eq!(FaultPlan::parse("  ").unwrap(), FaultPlan::none());
        assert_eq!(FaultPlan::none().to_string(), "none");
    }

    #[test]
    fn corruption_queries() {
        let plan = FaultPlan::none()
            .kill_node(1)
            .corrupt_replica("/f", 1, CorruptKind::Flip);
        assert_eq!(
            plan.corruptions(),
            vec![("/f".to_string(), 1, CorruptKind::Flip)]
        );
        assert_eq!(plan.nodes_to_kill(), vec![1]);
    }

    #[test]
    fn parse_rejects_malformed_actions() {
        assert!(FaultPlan::parse("fail:3").is_err());
        assert!(FaultPlan::parse("delay:1").is_err());
        assert!(FaultPlan::parse("explode:1").is_err());
        assert!(FaultPlan::parse("kill:x").is_err());
        assert!(FaultPlan::parse("flip:/f").is_err());
        assert!(FaultPlan::parse("truncate:/f@x").is_err());
    }
}
