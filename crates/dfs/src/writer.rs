//! Streaming, record-aligned block writer.

use bytes::Bytes;

use crate::config::NodeId;
use crate::namespace::Dfs;

/// Writes newline-terminated records into a DFS file, sealing a block
/// whenever the buffer would exceed the configured block size. Blocks are
/// always sealed at a record boundary.
///
/// Dropping the writer without calling [`FileWriter::close`] flushes the
/// tail block too (RAII), but `close` is preferred for explicitness.
pub struct FileWriter {
    dfs: Dfs,
    path: String,
    node: NodeId,
    buf: Vec<u8>,
    closed: bool,
}

impl FileWriter {
    pub(crate) fn new(dfs: Dfs, path: String, node: NodeId) -> FileWriter {
        let cap = dfs.config().block_size as usize;
        FileWriter {
            dfs,
            path,
            node,
            buf: Vec::with_capacity(cap.min(1 << 20)),
            closed: false,
        }
    }

    /// Appends one record (a newline is added).
    pub fn write_line(&mut self, line: &str) {
        let needed = line.len() + 1;
        let block_size = self.dfs.config().block_size as usize;
        if !self.buf.is_empty() && self.buf.len() + needed > block_size {
            self.seal_block();
        }
        self.buf.extend_from_slice(line.as_bytes());
        self.buf.push(b'\n');
    }

    /// Appends pre-formatted text that already contains its newlines.
    /// Splits on line boundaries so blocks stay record-aligned.
    pub fn write_str(&mut self, text: &str) {
        for line in text.lines() {
            self.write_line(line);
        }
    }

    /// Appends raw bytes (binary block formats). The chunk is cut into
    /// block-size pieces; unlike [`FileWriter::write_line`] no record
    /// alignment is attempted — binary files are always read whole, so
    /// blocks may split anywhere.
    pub fn write_chunk(&mut self, chunk: &[u8]) {
        let block_size = self.dfs.config().block_size as usize;
        let mut rest = chunk;
        while !rest.is_empty() {
            let room = block_size.saturating_sub(self.buf.len()).max(1);
            let take = room.min(rest.len());
            self.buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buf.len() >= block_size {
                self.seal_block();
            }
        }
    }

    /// The node this writer is (nominally) running on — first replicas of
    /// its blocks land here.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Flushes the tail block and finishes the file.
    pub fn close(mut self) {
        self.finish();
    }

    fn seal_block(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let data = Bytes::from(std::mem::take(&mut self.buf));
        self.dfs.append_block(&self.path, data, self.node);
    }

    fn finish(&mut self) {
        if !self.closed {
            self.seal_block();
            self.closed = true;
        }
    }
}

impl Drop for FileWriter {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use crate::config::ClusterConfig;
    use crate::namespace::Dfs;

    #[test]
    fn drop_flushes_tail() {
        let fs = Dfs::new(ClusterConfig::small_for_tests());
        {
            let mut w = fs.create("/f").unwrap();
            w.write_line("tail");
        } // dropped without close()
        assert_eq!(fs.read_to_string("/f").unwrap(), "tail\n");
    }

    #[test]
    fn oversized_record_gets_its_own_block() {
        let fs = Dfs::new(ClusterConfig::small_for_tests()); // 8 KiB blocks
        let mut w = fs.create("/f").unwrap();
        let huge = "h".repeat(20_000);
        w.write_line("small");
        w.write_line(&huge);
        w.write_line("after");
        w.close();
        let stat = fs.stat("/f").unwrap();
        assert_eq!(stat.num_blocks, 3);
        let text = fs.read_to_string("/f").unwrap();
        assert!(text.starts_with("small\n"));
        assert!(text.ends_with("after\n"));
    }

    #[test]
    fn write_chunk_splits_on_block_size_and_roundtrips() {
        let fs = Dfs::new(ClusterConfig::small_for_tests()); // 8 KiB blocks
        let blob: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        let mut w = fs.create("/bin").unwrap();
        w.write_chunk(&blob);
        w.close();
        let stat = fs.stat("/bin").unwrap();
        assert_eq!(stat.len, blob.len() as u64);
        assert_eq!(stat.num_blocks, 3);
        assert_eq!(fs.read_bytes("/bin").unwrap(), blob);
    }

    #[test]
    fn write_str_matches_write_line() {
        let fs = Dfs::new(ClusterConfig::small_for_tests());
        fs.write_string("/a", "1 2\n3 4\n").unwrap();
        let mut w = fs.create("/b").unwrap();
        w.write_line("1 2");
        w.write_line("3 4");
        w.close();
        assert_eq!(
            fs.read_to_string("/a").unwrap(),
            fs.read_to_string("/b").unwrap()
        );
    }
}
