//! Streaming, record-aligned block writer.

use bytes::Bytes;

use crate::config::NodeId;
use crate::namespace::{Dfs, DfsError};

/// Writes newline-terminated records into a DFS file, sealing a block
/// whenever the buffer would exceed the configured block size. Blocks are
/// always sealed at a record boundary.
///
/// Append failures (the file deleted under the writer, injected namespace
/// faults) are latched and surfaced by [`FileWriter::close`]; subsequent
/// writes become no-ops. Dropping the writer without calling `close`
/// flushes the tail block too (RAII) but swallows any latched error, so
/// `close` is preferred wherever the result can be checked.
pub struct FileWriter {
    dfs: Dfs,
    path: String,
    node: NodeId,
    buf: Vec<u8>,
    closed: bool,
    err: Option<DfsError>,
}

impl FileWriter {
    pub(crate) fn new(dfs: Dfs, path: String, node: NodeId) -> FileWriter {
        let cap = dfs.config().block_size as usize;
        FileWriter {
            dfs,
            path,
            node,
            buf: Vec::with_capacity(cap.min(1 << 20)),
            closed: false,
            err: None,
        }
    }

    /// Appends one record (a newline is added).
    pub fn write_line(&mut self, line: &str) {
        let needed = line.len() + 1;
        let block_size = self.dfs.config().block_size as usize;
        if !self.buf.is_empty() && self.buf.len() + needed > block_size {
            self.seal_block();
        }
        self.buf.extend_from_slice(line.as_bytes());
        self.buf.push(b'\n');
    }

    /// Appends pre-formatted text that already contains its newlines.
    /// Splits on line boundaries so blocks stay record-aligned.
    pub fn write_str(&mut self, text: &str) {
        for line in text.lines() {
            self.write_line(line);
        }
    }

    /// Appends raw bytes (binary block formats). The chunk is cut into
    /// block-size pieces; unlike [`FileWriter::write_line`] no record
    /// alignment is attempted — binary files are always read whole, so
    /// blocks may split anywhere.
    pub fn write_chunk(&mut self, chunk: &[u8]) {
        let block_size = self.dfs.config().block_size as usize;
        let mut rest = chunk;
        while !rest.is_empty() {
            let room = block_size.saturating_sub(self.buf.len()).max(1);
            let take = room.min(rest.len());
            self.buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buf.len() >= block_size {
                self.seal_block();
            }
        }
    }

    /// The node this writer is (nominally) running on — first replicas of
    /// its blocks land here.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Flushes the tail block and finishes the file, surfacing the first
    /// append error hit during the write (if any).
    pub fn close(mut self) -> Result<(), DfsError> {
        self.finish();
        match self.err.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn seal_block(&mut self) {
        if self.buf.is_empty() || self.err.is_some() {
            return;
        }
        let data = Bytes::from(std::mem::take(&mut self.buf));
        if let Err(e) = self.dfs.append_block(&self.path, data, self.node) {
            self.err = Some(e);
        }
    }

    fn finish(&mut self) {
        if !self.closed {
            self.seal_block();
            self.closed = true;
        }
    }
}

impl Drop for FileWriter {
    fn drop(&mut self) {
        // RAII flush; a latched error has nowhere to go from a destructor.
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use crate::config::ClusterConfig;
    use crate::namespace::Dfs;

    #[test]
    fn drop_flushes_tail() {
        let fs = Dfs::new(ClusterConfig::small_for_tests());
        {
            let mut w = fs.create("/f").unwrap();
            w.write_line("tail");
        } // dropped without close()
        assert_eq!(fs.read_to_string("/f").unwrap(), "tail\n");
    }

    #[test]
    fn oversized_record_gets_its_own_block() {
        let fs = Dfs::new(ClusterConfig::small_for_tests()); // 8 KiB blocks
        let mut w = fs.create("/f").unwrap();
        let huge = "h".repeat(20_000);
        w.write_line("small");
        w.write_line(&huge);
        w.write_line("after");
        w.close().unwrap();
        let stat = fs.stat("/f").unwrap();
        assert_eq!(stat.num_blocks, 3);
        let text = fs.read_to_string("/f").unwrap();
        assert!(text.starts_with("small\n"));
        assert!(text.ends_with("after\n"));
    }

    #[test]
    fn write_chunk_splits_on_block_size_and_roundtrips() {
        let fs = Dfs::new(ClusterConfig::small_for_tests()); // 8 KiB blocks
        let blob: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        let mut w = fs.create("/bin").unwrap();
        w.write_chunk(&blob);
        w.close().unwrap();
        let stat = fs.stat("/bin").unwrap();
        assert_eq!(stat.len, blob.len() as u64);
        assert_eq!(stat.num_blocks, 3);
        assert_eq!(fs.read_bytes("/bin").unwrap(), blob);
    }

    #[test]
    fn close_surfaces_append_failure() {
        use crate::namespace::DfsError;
        let fs = Dfs::new(ClusterConfig::small_for_tests());
        let mut w = fs.create("/gone").unwrap();
        w.write_line("doomed");
        // Deleting the file under an open writer turns the flush into a
        // structured error instead of a worker panic.
        fs.delete("/gone");
        assert_eq!(w.close(), Err(DfsError::NotFound("/gone".to_string())));
    }

    #[test]
    fn write_str_matches_write_line() {
        let fs = Dfs::new(ClusterConfig::small_for_tests());
        fs.write_string("/a", "1 2\n3 4\n").unwrap();
        let mut w = fs.create("/b").unwrap();
        w.write_line("1 2");
        w.write_line("3 4");
        w.close().unwrap();
        assert_eq!(
            fs.read_to_string("/a").unwrap(),
            fs.read_to_string("/b").unwrap()
        );
    }
}
