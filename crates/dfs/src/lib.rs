//! # sh-dfs — simulated Hadoop Distributed File System
//!
//! SpatialHadoop's performance story is written in HDFS terms: files are
//! split into fixed-size *blocks* (64 MB by default), blocks are
//! replicated across *datanodes*, and MapReduce tasks are scheduled close
//! to their input block. This crate reproduces that model in-process:
//!
//! * [`ClusterConfig`] — cluster topology and the bandwidth/overhead
//!   figures that the cost model in `sh-mapreduce` converts byte counts
//!   into simulated cluster time with;
//! * [`Dfs`] — the namenode + datanodes: a namespace of files, each a
//!   sequence of record-aligned blocks with replicas placed across nodes;
//! * [`FileWriter`] — streaming, record-aligned block writer;
//! * [`DfsMetrics`] — byte-level accounting (local vs. remote reads),
//!   which is what the experiments measure.
//!
//! Blocks are *record aligned*: a block always ends at a record (line)
//! boundary, the standard simplification that lets record readers treat a
//! block as a self-contained split. Replica placement follows HDFS's
//! default policy shape (first replica on the writing node, remaining
//! replicas on distinct random nodes) with a seeded RNG for determinism.
//!
//! Failure injection: [`Dfs::kill_node`] removes a datanode; reads fall
//! back to surviving replicas and fail only when every replica is gone.
//! [`FaultPlan`] describes deterministic injected faults (task failures,
//! wave-boundary node kills, straggler delays) that the job executor in
//! `sh-mapreduce` applies, and [`FtOptions`] the retry/blacklist/
//! speculation policy it follows.

mod block;
mod cache;
mod config;
mod crc64;
mod fault;
mod metrics;
mod namespace;
mod slots;
mod spill;
mod writer;

pub use block::{BlockData, BlockId, BlockInfo};
pub use cache::{BlockCache, CacheStats, DEFAULT_CACHE_BUDGET};
pub use config::{ClusterConfig, NodeId};
pub use crc64::{crc64, Crc64};
pub use fault::{CorruptKind, FaultAction, FaultPlan, FtOptions};
pub use metrics::DfsMetrics;
pub use namespace::{Dfs, DfsError, FileStat, ScrubReport};
pub use slots::{SlotLease, SlotPool};
pub use spill::{SpillMap, SpillStore};
pub use writer::FileWriter;
