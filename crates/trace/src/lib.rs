//! Cross-layer observability: hierarchical spans, a process-wide metrics
//! registry, per-job query profiles, a structured event journal, and a
//! time-series sampler turning counters into rates and percentiles.

pub mod events;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod sampler;
pub mod span;

pub use events::{emit, journal, Event, EventJournal};
pub use metrics::{global, Histogram, MetricKind, MetricsRegistry, RegistrySnapshot};
pub use profile::{format_bytes, JobProfile, PhaseProfile, Selectivity};
pub use sampler::{Sample, Sampler, Window};
pub use span::{critical_path, format_duration, Span, SpanRecord, SpanTree, Waterfall};
