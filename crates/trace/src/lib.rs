//! Cross-layer observability: hierarchical spans, a process-wide metrics
//! registry, and per-job query profiles.

pub mod json;
pub mod metrics;
pub mod profile;
pub mod span;

pub use metrics::{global, Histogram, MetricKind, MetricsRegistry, RegistrySnapshot};
pub use profile::{format_bytes, JobProfile, PhaseProfile, Selectivity};
pub use span::{format_duration, Span, SpanRecord, SpanTree};
