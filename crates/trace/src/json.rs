//! Minimal JSON tree, writer, and parser.
//!
//! The workspace has no serializer crate (serde here is derive-only), so
//! profile export/import is hand-rolled on this little value type. Integers
//! are kept exact (`i128` covers `u64` and `i64`); floats use shortest
//! round-trip formatting.

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i128),
    Float(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    let s = format!("{f}");
                    // Ensure floats survive re-parsing as floats.
                    if s.contains('.') || s.contains('e') || s.contains('E') {
                        out.push_str(&s);
                    } else {
                        out.push_str(&s);
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serializes without insignificant whitespace (gives `Value::to_string`).
impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| "invalid utf8 in number".to_string())?;
    if is_float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| format!("bad number '{text}': {e}"))
    } else {
        text.parse::<i128>()
            .map(Value::Int)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (multi-byte sequences intact).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid utf8 in string".to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("rangé \"q\"\n".into())),
            ("n".into(), Value::Int(18446744073709551615)),
            ("neg".into(), Value::Int(-42)),
            ("f".into(), Value::Float(0.25)),
            ("whole".into(), Value::Float(2.0)),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            (
                "arr".into(),
                Value::Arr(vec![Value::Int(1), Value::Int(2), Value::Obj(vec![])]),
            ),
        ]);
        let text = v.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
        // Whole-number floats must stay floats across the round-trip.
        assert!(matches!(back.get("whole"), Some(Value::Float(_))));
    }

    #[test]
    fn parse_errors() {
        assert!(parse("").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("{}extra").is_err());
    }

    #[test]
    fn accessors() {
        let v = parse("{\"a\": [1, 2.5], \"s\": \"x\"}").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert!(v.get("missing").is_none());
    }
}
