//! Per-job query profiles: one [`JobProfile`] per executed MapReduce job,
//! combining phase timings, DFS traffic, shuffle volume, splitter
//! selectivity, engine counters, and the span tree. Renders as an aligned
//! text table for humans and exports/imports hand-rolled JSON (the
//! workspace deliberately carries no serializer crate).

use crate::json::{self, Value};
use crate::metrics::Histogram;
use crate::span::{format_duration, SpanRecord, SpanTree};
use std::collections::BTreeMap;
use std::time::Duration;

/// How much of the input the splitter and filters let through.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Selectivity {
    /// Partitions in the indexed file (0 for heap inputs).
    pub partitions_total: u64,
    /// Partitions the splitter kept.
    pub partitions_scanned: u64,
    /// Partitions the splitter pruned via the global index.
    pub partitions_pruned: u64,
    /// Records read by map tasks.
    pub records_scanned: u64,
    /// Records that survived filtering (emitted or output).
    pub records_emitted: u64,
}

impl Selectivity {
    /// Selectivity of a splitter decision over an indexed file:
    /// `scanned` of `total` partitions survived the filter function and
    /// together hold `records_scanned` records. `records_emitted` is
    /// left at zero for the caller to fill once the answer size is
    /// known.
    pub fn of_split(total: usize, scanned: usize, records_scanned: u64) -> Selectivity {
        Selectivity {
            partitions_total: total as u64,
            partitions_scanned: scanned as u64,
            partitions_pruned: total.saturating_sub(scanned) as u64,
            records_scanned,
            records_emitted: 0,
        }
    }

    /// Selectivity of a full scan (heap inputs): every split is read,
    /// nothing is pruned, and the record count is unknown (zero).
    pub fn full_scan(splits: usize, records_emitted: u64) -> Selectivity {
        Selectivity {
            partitions_total: splits as u64,
            partitions_scanned: splits as u64,
            partitions_pruned: 0,
            records_scanned: 0,
            records_emitted,
        }
    }

    /// Fraction of partitions pruned without being read, in `[0, 1]`.
    pub fn pruning_ratio(&self) -> f64 {
        if self.partitions_total == 0 {
            0.0
        } else {
            self.partitions_pruned as f64 / self.partitions_total as f64
        }
    }
}

/// One engine phase (map, shuffle, reduce, or an index-build stage).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseProfile {
    pub name: String,
    /// Simulated cluster time attributed to the phase.
    pub sim_seconds: f64,
    /// Tasks executed in the phase (0 for task-free phases like shuffle).
    pub tasks: u64,
    /// Wall-clock duration of each task, in microseconds.
    pub task_micros: Histogram,
}

impl PhaseProfile {
    pub fn new(name: impl Into<String>) -> PhaseProfile {
        PhaseProfile {
            name: name.into(),
            ..PhaseProfile::default()
        }
    }
}

/// Everything observed about one executed job.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JobProfile {
    pub job: String,
    /// Wall-clock time of the in-process run.
    pub wall: Duration,
    /// Simulated cluster makespan.
    pub sim_seconds: f64,
    pub phases: Vec<PhaseProfile>,
    /// DFS bytes served from a replica on the reading node.
    pub dfs_local_bytes: u64,
    /// DFS bytes that crossed the simulated network.
    pub dfs_remote_bytes: u64,
    pub dfs_bytes_written: u64,
    pub shuffle_pairs: u64,
    pub shuffle_bytes: u64,
    /// Task re-attempts launched after failed attempts (map + reduce).
    pub task_retries: u64,
    /// Speculative duplicate attempts launched for stragglers.
    pub speculative_launched: u64,
    /// Speculative attempts that finished first and won their task.
    pub speculative_won: u64,
    /// Nodes blacklisted by the job scheduler after repeated failures.
    pub nodes_blacklisted: u64,
    pub selectivity: Selectivity,
    /// Engine + user counters at job completion.
    pub counters: BTreeMap<String, u64>,
    /// Span tree of the run, when captured.
    pub spans: Option<SpanRecord>,
}

impl JobProfile {
    pub fn new(job: impl Into<String>) -> JobProfile {
        JobProfile {
            job: job.into(),
            ..JobProfile::default()
        }
    }

    pub fn phase(&self, name: &str) -> Option<&PhaseProfile> {
        self.phases.iter().find(|p| p.name == name)
    }

    fn phase_mut(&mut self, name: &str) -> &mut PhaseProfile {
        if let Some(i) = self.phases.iter().position(|p| p.name == name) {
            return &mut self.phases[i];
        }
        self.phases.push(PhaseProfile::new(name));
        self.phases.last_mut().unwrap()
    }

    /// Folds another profile into this one (multi-job operations such as
    /// iterative kNN report one combined profile). Phases merge by name;
    /// the span tree keeps the first capture.
    pub fn absorb(&mut self, other: &JobProfile) {
        self.wall += other.wall;
        self.sim_seconds += other.sim_seconds;
        for p in &other.phases {
            let mine = self.phase_mut(&p.name);
            mine.sim_seconds += p.sim_seconds;
            mine.tasks += p.tasks;
            mine.task_micros.merge(&p.task_micros);
        }
        self.dfs_local_bytes += other.dfs_local_bytes;
        self.dfs_remote_bytes += other.dfs_remote_bytes;
        self.dfs_bytes_written += other.dfs_bytes_written;
        self.shuffle_pairs += other.shuffle_pairs;
        self.shuffle_bytes += other.shuffle_bytes;
        self.task_retries += other.task_retries;
        self.speculative_launched += other.speculative_launched;
        self.speculative_won += other.speculative_won;
        self.nodes_blacklisted += other.nodes_blacklisted;
        let s = &mut self.selectivity;
        let o = &other.selectivity;
        s.partitions_total += o.partitions_total;
        s.partitions_scanned += o.partitions_scanned;
        s.partitions_pruned += o.partitions_pruned;
        s.records_scanned += o.records_scanned;
        s.records_emitted += o.records_emitted;
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        if self.spans.is_none() {
            self.spans = other.spans.clone();
        }
    }

    /// Aligned, human-readable table (plus the span tree when captured).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("job profile: {}\n", self.job));
        out.push_str(&format!(
            "  wall {:<10} sim {:.3}s\n",
            format_duration(self.wall),
            self.sim_seconds
        ));
        if !self.phases.is_empty() {
            out.push_str(&format!(
                "  {:<14} {:>9} {:>7} {:>10} {:>10} {:>10}\n",
                "phase", "sim(s)", "tasks", "p50", "p95", "max"
            ));
            for p in &self.phases {
                let h = &p.task_micros;
                let (p50, p95, max) = if h.count() == 0 {
                    ("-".to_string(), "-".to_string(), "-".to_string())
                } else {
                    (
                        format_duration(Duration::from_micros(h.quantile(0.5))),
                        format_duration(Duration::from_micros(h.quantile(0.95))),
                        format_duration(Duration::from_micros(h.max())),
                    )
                };
                out.push_str(&format!(
                    "  {:<14} {:>9.3} {:>7} {:>10} {:>10} {:>10}\n",
                    p.name, p.sim_seconds, p.tasks, p50, p95, max
                ));
            }
        }
        let sel = &self.selectivity;
        if sel.partitions_total > 0 {
            out.push_str(&format!(
                "  splitter: {} scanned / {} pruned of {} partitions ({:.0}% pruned)\n",
                sel.partitions_scanned,
                sel.partitions_pruned,
                sel.partitions_total,
                100.0 * sel.pruning_ratio()
            ));
        }
        if sel.records_scanned > 0 || sel.records_emitted > 0 {
            out.push_str(&format!(
                "  records:  {} scanned -> {} emitted\n",
                sel.records_scanned, sel.records_emitted
            ));
        }
        out.push_str(&format!(
            "  dfs:      {} local, {} remote, {} written\n",
            format_bytes(self.dfs_local_bytes),
            format_bytes(self.dfs_remote_bytes),
            format_bytes(self.dfs_bytes_written)
        ));
        if self.shuffle_pairs > 0 || self.shuffle_bytes > 0 {
            out.push_str(&format!(
                "  shuffle:  {} pairs, {}\n",
                self.shuffle_pairs,
                format_bytes(self.shuffle_bytes)
            ));
        }
        if self.task_retries > 0 || self.speculative_launched > 0 || self.nodes_blacklisted > 0 {
            out.push_str(&format!(
                "  faults:   {} retries, {} speculative ({} won), {} nodes blacklisted\n",
                self.task_retries,
                self.speculative_launched,
                self.speculative_won,
                self.nodes_blacklisted
            ));
        }
        if !self.counters.is_empty() {
            let width = self
                .counters
                .keys()
                .map(String::len)
                .max()
                .unwrap_or(0)
                .max(12);
            out.push_str("  counters:\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("    {k:<width$}  {v:>12}\n"));
            }
        }
        if let Some(spans) = &self.spans {
            out.push_str("  spans:\n");
            for line in format!("{}", SpanTree(spans)).lines() {
                out.push_str(&format!("    {line}\n"));
            }
        }
        out
    }

    /// Compact JSON export; [`JobProfile::from_json`] inverts it exactly.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            ("job".to_string(), Value::Str(self.job.clone())),
            (
                "wall_nanos".to_string(),
                Value::Int(self.wall.as_nanos() as i128),
            ),
            ("sim_seconds".to_string(), Value::Float(self.sim_seconds)),
            (
                "phases".to_string(),
                Value::Arr(self.phases.iter().map(phase_to_value).collect()),
            ),
            (
                "dfs".to_string(),
                Value::Obj(vec![
                    (
                        "local_bytes".to_string(),
                        Value::Int(self.dfs_local_bytes as i128),
                    ),
                    (
                        "remote_bytes".to_string(),
                        Value::Int(self.dfs_remote_bytes as i128),
                    ),
                    (
                        "bytes_written".to_string(),
                        Value::Int(self.dfs_bytes_written as i128),
                    ),
                ]),
            ),
            (
                "shuffle".to_string(),
                Value::Obj(vec![
                    ("pairs".to_string(), Value::Int(self.shuffle_pairs as i128)),
                    ("bytes".to_string(), Value::Int(self.shuffle_bytes as i128)),
                ]),
            ),
            (
                "fault_tolerance".to_string(),
                Value::Obj(vec![
                    (
                        "task_retries".to_string(),
                        Value::Int(self.task_retries as i128),
                    ),
                    (
                        "speculative_launched".to_string(),
                        Value::Int(self.speculative_launched as i128),
                    ),
                    (
                        "speculative_won".to_string(),
                        Value::Int(self.speculative_won as i128),
                    ),
                    (
                        "nodes_blacklisted".to_string(),
                        Value::Int(self.nodes_blacklisted as i128),
                    ),
                ]),
            ),
            (
                "selectivity".to_string(),
                Value::Obj(vec![
                    (
                        "partitions_total".to_string(),
                        Value::Int(self.selectivity.partitions_total as i128),
                    ),
                    (
                        "partitions_scanned".to_string(),
                        Value::Int(self.selectivity.partitions_scanned as i128),
                    ),
                    (
                        "partitions_pruned".to_string(),
                        Value::Int(self.selectivity.partitions_pruned as i128),
                    ),
                    (
                        "records_scanned".to_string(),
                        Value::Int(self.selectivity.records_scanned as i128),
                    ),
                    (
                        "records_emitted".to_string(),
                        Value::Int(self.selectivity.records_emitted as i128),
                    ),
                ]),
            ),
            (
                "counters".to_string(),
                Value::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Int(*v as i128)))
                        .collect(),
                ),
            ),
        ];
        if let Some(spans) = &self.spans {
            fields.push(("spans".to_string(), span_to_value(spans)));
        }
        Value::Obj(fields).to_string()
    }

    /// Parses a profile previously produced by [`JobProfile::to_json`].
    pub fn from_json(text: &str) -> Result<JobProfile, String> {
        let v = json::parse(text)?;
        let req_u64 = |node: &Value, key: &str| -> Result<u64, String> {
            node.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing or non-integer field '{key}'"))
        };
        let mut profile = JobProfile::new(
            v.get("job")
                .and_then(Value::as_str)
                .ok_or("missing field 'job'")?,
        );
        profile.wall = Duration::from_nanos(req_u64(&v, "wall_nanos")?);
        profile.sim_seconds = v
            .get("sim_seconds")
            .and_then(Value::as_f64)
            .ok_or("missing field 'sim_seconds'")?;
        for p in v
            .get("phases")
            .and_then(Value::as_arr)
            .ok_or("missing field 'phases'")?
        {
            profile.phases.push(phase_from_value(p)?);
        }
        let dfs = v.get("dfs").ok_or("missing field 'dfs'")?;
        profile.dfs_local_bytes = req_u64(dfs, "local_bytes")?;
        profile.dfs_remote_bytes = req_u64(dfs, "remote_bytes")?;
        profile.dfs_bytes_written = req_u64(dfs, "bytes_written")?;
        let shuffle = v.get("shuffle").ok_or("missing field 'shuffle'")?;
        profile.shuffle_pairs = req_u64(shuffle, "pairs")?;
        profile.shuffle_bytes = req_u64(shuffle, "bytes")?;
        // Optional for profiles exported before fault tolerance existed.
        if let Some(ft) = v.get("fault_tolerance") {
            profile.task_retries = req_u64(ft, "task_retries")?;
            profile.speculative_launched = req_u64(ft, "speculative_launched")?;
            profile.speculative_won = req_u64(ft, "speculative_won")?;
            profile.nodes_blacklisted = req_u64(ft, "nodes_blacklisted")?;
        }
        let sel = v.get("selectivity").ok_or("missing field 'selectivity'")?;
        profile.selectivity = Selectivity {
            partitions_total: req_u64(sel, "partitions_total")?,
            partitions_scanned: req_u64(sel, "partitions_scanned")?,
            partitions_pruned: req_u64(sel, "partitions_pruned")?,
            records_scanned: req_u64(sel, "records_scanned")?,
            records_emitted: req_u64(sel, "records_emitted")?,
        };
        for (k, val) in v
            .get("counters")
            .and_then(Value::as_obj)
            .ok_or("missing field 'counters'")?
        {
            profile.counters.insert(
                k.clone(),
                val.as_u64()
                    .ok_or_else(|| format!("non-integer counter '{k}'"))?,
            );
        }
        if let Some(spans) = v.get("spans") {
            profile.spans = Some(span_from_value(spans)?);
        }
        Ok(profile)
    }
}

fn histogram_to_value(h: &Histogram) -> Value {
    Value::Obj(vec![
        (
            "buckets".to_string(),
            Value::Arr(
                h.nonzero_buckets()
                    .iter()
                    .map(|&(i, n)| Value::Arr(vec![Value::Int(i as i128), Value::Int(n as i128)]))
                    .collect(),
            ),
        ),
        ("sum".to_string(), Value::Int(h.sum() as i128)),
        ("min".to_string(), Value::Int(h.min() as i128)),
        ("max".to_string(), Value::Int(h.max() as i128)),
    ])
}

fn histogram_from_value(v: &Value) -> Result<Histogram, String> {
    let mut pairs = Vec::new();
    for pair in v
        .get("buckets")
        .and_then(Value::as_arr)
        .ok_or("histogram missing 'buckets'")?
    {
        let pair = pair.as_arr().ok_or("histogram bucket must be a pair")?;
        if pair.len() != 2 {
            return Err("histogram bucket must be a pair".to_string());
        }
        pairs.push((
            pair[0].as_usize().ok_or("bad bucket index")?,
            pair[1].as_u64().ok_or("bad bucket count")?,
        ));
    }
    let field = |key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("histogram missing '{key}'"))
    };
    Ok(Histogram::from_parts(
        &pairs,
        field("sum")?,
        field("min")?,
        field("max")?,
    ))
}

fn phase_to_value(p: &PhaseProfile) -> Value {
    Value::Obj(vec![
        ("name".to_string(), Value::Str(p.name.clone())),
        ("sim_seconds".to_string(), Value::Float(p.sim_seconds)),
        ("tasks".to_string(), Value::Int(p.tasks as i128)),
        (
            "task_micros".to_string(),
            histogram_to_value(&p.task_micros),
        ),
    ])
}

fn phase_from_value(v: &Value) -> Result<PhaseProfile, String> {
    Ok(PhaseProfile {
        name: v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("phase missing 'name'")?
            .to_string(),
        sim_seconds: v
            .get("sim_seconds")
            .and_then(Value::as_f64)
            .ok_or("phase missing 'sim_seconds'")?,
        tasks: v
            .get("tasks")
            .and_then(Value::as_u64)
            .ok_or("phase missing 'tasks'")?,
        task_micros: histogram_from_value(
            v.get("task_micros").ok_or("phase missing 'task_micros'")?,
        )?,
    })
}

fn span_to_value(s: &SpanRecord) -> Value {
    Value::Obj(vec![
        ("name".to_string(), Value::Str(s.name.clone())),
        (
            "start_nanos".to_string(),
            Value::Int(s.start.as_nanos() as i128),
        ),
        (
            "duration_nanos".to_string(),
            Value::Int(s.duration.as_nanos() as i128),
        ),
        (
            "attrs".to_string(),
            Value::Obj(
                s.attrs
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                    .collect(),
            ),
        ),
        (
            "children".to_string(),
            Value::Arr(s.children.iter().map(span_to_value).collect()),
        ),
    ])
}

fn span_from_value(v: &Value) -> Result<SpanRecord, String> {
    let mut attrs = Vec::new();
    for (k, val) in v
        .get("attrs")
        .and_then(Value::as_obj)
        .ok_or("span missing 'attrs'")?
    {
        attrs.push((
            k.clone(),
            val.as_str()
                .ok_or("span attr must be a string")?
                .to_string(),
        ));
    }
    let mut children = Vec::new();
    for c in v
        .get("children")
        .and_then(Value::as_arr)
        .ok_or("span missing 'children'")?
    {
        children.push(span_from_value(c)?);
    }
    Ok(SpanRecord {
        name: v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("span missing 'name'")?
            .to_string(),
        start: Duration::from_nanos(
            v.get("start_nanos")
                .and_then(Value::as_u64)
                .ok_or("span missing 'start_nanos'")?,
        ),
        duration: Duration::from_nanos(
            v.get("duration_nanos")
                .and_then(Value::as_u64)
                .ok_or("span missing 'duration_nanos'")?,
        ),
        attrs,
        children,
    })
}

/// Human-scale byte count: `982B`, `12.4KB`, `3.1MB`.
pub fn format_bytes(n: u64) -> String {
    if n < 1_024 {
        format!("{n}B")
    } else if n < 1_024 * 1_024 {
        format!("{:.1}KB", n as f64 / 1_024.0)
    } else if n < 1_024 * 1_024 * 1_024 {
        format!("{:.1}MB", n as f64 / (1_024.0 * 1_024.0))
    } else {
        format!("{:.2}GB", n as f64 / (1_024.0 * 1_024.0 * 1_024.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> JobProfile {
        let mut p = JobProfile::new("range-spatial");
        p.wall = Duration::from_micros(15_700);
        p.sim_seconds = 0.523;
        let mut map = PhaseProfile::new("map");
        map.sim_seconds = 0.4;
        map.tasks = 8;
        for t in [120u64, 140, 150, 900, 210, 250, 180, 130] {
            map.task_micros.observe(t);
        }
        p.phases.push(map);
        p.phases.push(PhaseProfile::new("shuffle"));
        p.dfs_local_bytes = 64_000;
        p.dfs_remote_bytes = 8_000;
        p.dfs_bytes_written = 1_200;
        p.shuffle_pairs = 42;
        p.shuffle_bytes = 512;
        p.task_retries = 3;
        p.speculative_launched = 2;
        p.speculative_won = 1;
        p.nodes_blacklisted = 1;
        p.selectivity = Selectivity {
            partitions_total: 10,
            partitions_scanned: 2,
            partitions_pruned: 8,
            records_scanned: 20_000,
            records_emitted: 37,
        };
        p.counters.insert("range.results".to_string(), 37);
        p.spans = Some(SpanRecord {
            name: "job:range".to_string(),
            start: Duration::ZERO,
            duration: Duration::from_micros(15_700),
            attrs: vec![("op".to_string(), "range".to_string())],
            children: vec![SpanRecord {
                name: "map-wave".to_string(),
                start: Duration::from_micros(10),
                duration: Duration::from_micros(14_000),
                attrs: vec![],
                children: vec![],
            }],
        });
        p
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let p = sample_profile();
        let json = p.to_json();
        let back = JobProfile::from_json(&json).unwrap();
        assert_eq!(back, p);
        // And a second trip is stable.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn json_roundtrip_without_spans() {
        let mut p = sample_profile();
        p.spans = None;
        let back = JobProfile::from_json(&p.to_json()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(JobProfile::from_json("not json").is_err());
        assert!(JobProfile::from_json("{}").is_err());
        assert!(JobProfile::from_json("{\"job\": 3}").is_err());
    }

    #[test]
    fn render_mentions_the_interesting_numbers() {
        let text = sample_profile().render();
        assert!(text.contains("range-spatial"));
        assert!(text.contains("2 scanned / 8 pruned of 10"));
        assert!(text.contains("80% pruned"));
        assert!(text.contains("range.results"));
        assert!(text.contains("map-wave"));
        assert!(text.contains("shuffle"));
        assert!(text.contains("3 retries, 2 speculative (1 won), 1 nodes blacklisted"));
    }

    #[test]
    fn fault_free_profiles_omit_the_fault_line_and_parse_without_it() {
        let mut p = sample_profile();
        p.task_retries = 0;
        p.speculative_launched = 0;
        p.speculative_won = 0;
        p.nodes_blacklisted = 0;
        assert!(!p.render().contains("retries"));
        // Profiles exported before the fault_tolerance block existed
        // still parse (fields default to zero).
        let json = p.to_json().replace(
            "\"fault_tolerance\":{\"task_retries\":0,\"speculative_launched\":0,\"speculative_won\":0,\"nodes_blacklisted\":0},",
            "",
        );
        assert!(!json.contains("fault_tolerance"), "surgery failed: {json}");
        let back = JobProfile::from_json(&json).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn absorb_sums_and_merges_phases() {
        let mut a = sample_profile();
        let b = sample_profile();
        a.absorb(&b);
        assert_eq!(a.selectivity.partitions_pruned, 16);
        assert_eq!(a.phase("map").unwrap().tasks, 16);
        assert_eq!(a.counters["range.results"], 74);
        assert_eq!(a.phases.len(), 2); // merged by name, not duplicated
        assert!((a.sim_seconds - 1.046).abs() < 1e-9);
    }

    #[test]
    fn pruning_ratio_handles_heap_inputs() {
        assert_eq!(Selectivity::default().pruning_ratio(), 0.0);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes(10), "10B");
        assert_eq!(format_bytes(2_048), "2.0KB");
        assert_eq!(format_bytes(3 * 1024 * 1024), "3.0MB");
    }
}
